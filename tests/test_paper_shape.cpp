// Integration tests pinning the *shape* of the paper's evaluation -- the
// relations EXPERIMENTS.md reports. If a profile or model change breaks
// one of these, the reproduction's headline claims silently drift; these
// tests make that loud.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/cost_model.hpp"
#include "core/morphology.hpp"
#include "util/rng.hpp"

namespace hs::core {
namespace {

class PaperShape : public ::testing::Test {
 protected:
  static constexpr int kBands = 216;
  static constexpr int kSe = 9;  // 3x3

  static const AmcGpuReport& calibration(const gpusim::DeviceProfile& profile) {
    // One functional run per device, shared across tests.
    static std::map<std::string, AmcGpuReport> cache;
    auto it = cache.find(profile.name);
    if (it == cache.end()) {
      util::Xoshiro256 rng(71);
      hsi::HyperCube cube(32, 32, kBands);
      for (auto& v : cube.raw()) v = static_cast<float>(rng.uniform(0.05, 1.0));
      AmcGpuOptions opt;
      opt.profile = profile;
      it = cache.emplace(profile.name,
                         morphology_gpu(cube, StructuringElement::square(1), opt))
               .first;
    }
    return it->second;
  }

  static double gpu_seconds(const gpusim::DeviceProfile& profile, int w, int h) {
    return extrapolate_gpu_morphology(calibration(profile), profile, w, h,
                                      kBands, 1, true)
        .total_seconds();
  }

  static double cpu_seconds(const gpusim::CpuProfile& cpu, bool vectorized,
                            std::uint64_t px) {
    return model_cpu_morphology_seconds(cpu, cpu_morphology_cost(px, kSe, kBands),
                                        vectorized);
  }
};

TEST_F(PaperShape, CpuGenerationGainMatchesTables45) {
  // Table 4: Prescott/Northwood = 0.914 (gcc); Table 5: 0.839 (icc).
  const std::uint64_t px = 1'000'000;
  const double gcc_ratio =
      cpu_seconds(gpusim::pentium4_prescott(), false, px) /
      cpu_seconds(gpusim::pentium4_northwood(), false, px);
  EXPECT_NEAR(gcc_ratio, 0.914, 0.01);
  const double icc_ratio =
      cpu_seconds(gpusim::pentium4_prescott(), true, px) /
      cpu_seconds(gpusim::pentium4_northwood(), true, px);
  EXPECT_NEAR(icc_ratio, 0.839, 0.01);
}

TEST_F(PaperShape, GccIccRatioMatchesTables45) {
  // Paper: 734/444 = 1.65 on Northwood, 671/373 = 1.80 on Prescott.
  const std::uint64_t px = 1'000'000;
  const double northwood =
      cpu_seconds(gpusim::pentium4_northwood(), false, px) /
      cpu_seconds(gpusim::pentium4_northwood(), true, px);
  EXPECT_GT(northwood, 1.5);
  EXPECT_LT(northwood, 2.0);
}

TEST_F(PaperShape, ModeledTimeIsLinearInImageSize) {
  // "doubling the size doubles the execution time" -- within chunking slop.
  const auto g70 = gpusim::geforce_7800_gtx();
  const double t1 = gpu_seconds(g70, 700, 200);
  const double t2 = gpu_seconds(g70, 1400, 200);
  EXPECT_GT(t2 / t1, 1.85);
  EXPECT_LT(t2 / t1, 2.25);

  const double c1 = cpu_seconds(gpusim::pentium4_northwood(), false, 140'000);
  const double c2 = cpu_seconds(gpusim::pentium4_northwood(), false, 280'000);
  EXPECT_DOUBLE_EQ(c2 / c1, 2.0);
}

TEST_F(PaperShape, GpuGenerationGapInPaperRegime) {
  // Paper: FX5950 / 7800 GTX = 4.4x. Accept the 3-6x band end-to-end.
  const double nv38 = gpu_seconds(gpusim::geforce_fx5950_ultra(), 2166, 614);
  const double g70 = gpu_seconds(gpusim::geforce_7800_gtx(), 2166, 614);
  EXPECT_GT(nv38 / g70, 3.0);
  EXPECT_LT(nv38 / g70, 6.0);
}

TEST_F(PaperShape, GpusBeatCpusByOrderOfMagnitude) {
  // Full Indian Pines scene: 2166 x 614.
  const std::uint64_t px = 2166ull * 614ull;
  const double p4_gcc = cpu_seconds(gpusim::pentium4_northwood(), false, px);
  const double p4_icc = cpu_seconds(gpusim::pentium4_northwood(), true, px);
  const double g70 = gpu_seconds(gpusim::geforce_7800_gtx(), 2166, 614);
  const double nv38 = gpu_seconds(gpusim::geforce_fx5950_ultra(), 2166, 614);

  // Ordering: scalar CPU slowest, 7800 GTX fastest.
  EXPECT_GT(p4_gcc, p4_icc);
  EXPECT_GT(p4_icc, nv38);
  EXPECT_GT(nv38, g70);

  // Magnitudes: >10x for the newer GPU vs both CPU builds (paper: 55/20x).
  EXPECT_GT(p4_gcc / g70, 15.0);
  EXPECT_GT(p4_icc / g70, 9.0);
}

TEST_F(PaperShape, CpuEvolutionFlatGpuEvolutionSteep) {
  // Figure 6: CPU generation <10% gain; GPU generation several-fold.
  const std::uint64_t px = 2166ull * 614ull;
  const double cpu_gain =
      cpu_seconds(gpusim::pentium4_northwood(), false, px) /
          cpu_seconds(gpusim::pentium4_prescott(), false, px) -
      1.0;
  EXPECT_GT(cpu_gain, 0.0);
  EXPECT_LT(cpu_gain, 0.10);

  const double gpu_gain =
      gpu_seconds(gpusim::geforce_fx5950_ultra(), 2166, 614) /
          gpu_seconds(gpusim::geforce_7800_gtx(), 2166, 614) -
      1.0;
  EXPECT_GT(gpu_gain, 2.0);  // several hundred percent
}

}  // namespace
}  // namespace hs::core
