#include "core/flightline.hpp"

#include <gtest/gtest.h>

#include "core/morphology.hpp"
#include "util/rng.hpp"

namespace hs::core {
namespace {

hsi::HyperCube random_cube(int w, int h, int n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  hsi::HyperCube cube(w, h, n);
  for (auto& v : cube.raw()) v = static_cast<float>(rng.uniform(0.05, 1.0));
  return cube;
}

FlightlineConfig fast_config(int block_rows) {
  FlightlineConfig cfg;
  cfg.block_rows = block_rows;
  cfg.gpu.profile.fragment_pipes = 4;
  return cfg;
}

/// Streams `cube` row by row and collects the emitted rows.
std::vector<FlightlineRow> stream_cube(const hsi::HyperCube& cube,
                                       FlightlineConfig cfg,
                                       FlightlineProcessor** out = nullptr) {
  std::vector<FlightlineRow> rows;
  FlightlineProcessor proc(cube.width(), cube.bands(), std::move(cfg),
                           [&](FlightlineRow&& r) { rows.push_back(std::move(r)); });
  std::vector<float> row(static_cast<std::size_t>(cube.width()) *
                         static_cast<std::size_t>(cube.bands()));
  std::vector<float> spec(static_cast<std::size_t>(cube.bands()));
  for (int y = 0; y < cube.height(); ++y) {
    for (int x = 0; x < cube.width(); ++x) {
      cube.pixel(x, y, spec);
      std::copy(spec.begin(), spec.end(),
                row.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(x) *
                                  static_cast<std::size_t>(cube.bands())));
    }
    proc.push_row(row);
  }
  proc.finish();
  if (out) *out = nullptr;  // proc is local; expose stats via captures below
  return rows;
}

TEST(Flightline, EmitsEveryRowExactlyOnceInOrder) {
  const auto cube = random_cube(10, 37, 8, 1);
  const auto rows = stream_cube(cube, fast_config(8));
  ASSERT_EQ(rows.size(), 37u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].row, static_cast<std::int64_t>(i));
    EXPECT_EQ(rows[i].mei.size(), 10u);
  }
}

TEST(Flightline, BitIdenticalToWholeImageRun) {
  const auto cube = random_cube(12, 29, 8, 2);
  const MorphOutputs full = morphology_vectorized(cube, StructuringElement::square(1));
  const auto rows = stream_cube(cube, fast_config(7));
  ASSERT_EQ(rows.size(), 29u);
  for (int y = 0; y < 29; ++y) {
    for (int x = 0; x < 12; ++x) {
      const std::size_t idx = static_cast<std::size_t>(y) * 12u + static_cast<std::size_t>(x);
      EXPECT_EQ(rows[static_cast<std::size_t>(y)].mei[static_cast<std::size_t>(x)],
                full.mei[idx])
          << x << "," << y;
      EXPECT_EQ(rows[static_cast<std::size_t>(y)].db[static_cast<std::size_t>(x)],
                full.db[idx]);
      EXPECT_EQ(rows[static_cast<std::size_t>(y)].erosion_index[static_cast<std::size_t>(x)],
                full.erosion_index[idx]);
      EXPECT_EQ(rows[static_cast<std::size_t>(y)].dilation_index[static_cast<std::size_t>(x)],
                full.dilation_index[idx]);
    }
  }
}

class FlightlineBlockSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlightlineBlockSweep, BlockSizeDoesNotChangeResults) {
  const auto cube = random_cube(9, 23, 8, 3);
  const auto base = stream_cube(cube, fast_config(23));  // one block
  const auto rows = stream_cube(cube, fast_config(GetParam()));
  ASSERT_EQ(rows.size(), base.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].mei, base[i].mei) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, FlightlineBlockSweep,
                         ::testing::Values(1, 3, 5, 8, 16, 22));

TEST(Flightline, BufferStaysBounded) {
  const auto cube = random_cube(8, 64, 8, 4);
  std::size_t max_buffered = 0;
  FlightlineProcessor proc(8, 8, fast_config(8), [](FlightlineRow&&) {});
  std::vector<float> row(8 * 8);
  std::vector<float> spec(8);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 8; ++x) {
      cube.pixel(x, y, spec);
      std::copy(spec.begin(), spec.end(), row.begin() + x * 8);
    }
    proc.push_row(row);
    max_buffered = std::max(max_buffered, proc.buffered_rows());
  }
  proc.finish();
  EXPECT_EQ(proc.rows_emitted(), 64);
  // Block (8) + both halos (2+2) rows is the steady-state bound.
  EXPECT_LE(max_buffered, 8u + 4u + 1u);
  EXPECT_GT(proc.blocks_launched(), 4u);
  EXPECT_GT(proc.modeled_gpu_seconds(), 0.0);
}

TEST(Flightline, ShortFlightlineSmallerThanOneBlock) {
  const auto cube = random_cube(6, 3, 8, 5);
  const auto rows = stream_cube(cube, fast_config(16));
  ASSERT_EQ(rows.size(), 3u);
  const MorphOutputs full = morphology_vectorized(cube, StructuringElement::square(1));
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 6; ++x) {
      EXPECT_EQ(rows[static_cast<std::size_t>(y)].mei[static_cast<std::size_t>(x)],
                full.mei[static_cast<std::size_t>(y) * 6u + static_cast<std::size_t>(x)]);
    }
  }
}

TEST(Flightline, LargerSeUsesWiderHalo) {
  const auto cube = random_cube(10, 25, 8, 6);
  FlightlineConfig cfg = fast_config(6);
  cfg.se = StructuringElement::square(2);
  const auto rows = stream_cube(cube, cfg);
  const MorphOutputs full = morphology_vectorized(cube, StructuringElement::square(2));
  ASSERT_EQ(rows.size(), 25u);
  for (int y = 0; y < 25; ++y) {
    for (int x = 0; x < 10; ++x) {
      EXPECT_EQ(rows[static_cast<std::size_t>(y)].mei[static_cast<std::size_t>(x)],
                full.mei[static_cast<std::size_t>(y) * 10u + static_cast<std::size_t>(x)])
          << x << "," << y;
    }
  }
}

}  // namespace
}  // namespace hs::core
