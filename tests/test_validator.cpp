#include <gtest/gtest.h>

#include "gpusim/assembler.hpp"
#include "gpusim/fragment_ir.hpp"

namespace hs::gpusim {
namespace {

// The assembler runs validate() internally; these tests build IR directly
// to hit the checks the parser cannot produce, plus parser-reachable ones.

Instruction mov_out_from_temp(std::uint8_t temp) {
  Instruction ins;
  ins.op = Opcode::MOV;
  ins.dst.file = RegFile::Output;
  ins.dst.index = 0;
  ins.src[0].file = RegFile::Temp;
  ins.src[0].index = temp;
  ins.src_count = 1;
  return ins;
}

Instruction mov_temp_from_literal(std::uint8_t temp, std::uint8_t mask = 0xF) {
  Instruction ins;
  ins.op = Opcode::MOV;
  ins.dst.file = RegFile::Temp;
  ins.dst.index = temp;
  ins.dst.write_mask = mask;
  ins.src[0].file = RegFile::Literal;
  ins.src[0].literal = float4(1.f);
  ins.src_count = 1;
  return ins;
}

TEST(Validator, EmptyProgramRejected) {
  FragmentProgram p;
  const auto errors = validate(p);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("no instructions"), std::string::npos);
}

TEST(Validator, AcceptsWellFormedProgram) {
  FragmentProgram p;
  p.code.push_back(mov_temp_from_literal(0));
  p.code.push_back(mov_out_from_temp(0));
  EXPECT_TRUE(validate(p).empty());
}

TEST(Validator, UninitializedTempRead) {
  FragmentProgram p;
  p.code.push_back(mov_out_from_temp(3));
  const auto errors = validate(p);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("uninitialized"), std::string::npos);
}

TEST(Validator, PartialWriteTracksComponents) {
  // Write only .x, then read all four components.
  FragmentProgram p;
  p.code.push_back(mov_temp_from_literal(0, 0b0001));
  p.code.push_back(mov_out_from_temp(0));
  const auto errors = validate(p);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("uninitialized"), std::string::npos);
}

TEST(Validator, PartialWriteReadOfWrittenLaneIsFine) {
  FragmentProgram p;
  p.code.push_back(mov_temp_from_literal(0, 0b0001));
  Instruction out = mov_out_from_temp(0);
  out.src[0].swizzle.comp = {0, 0, 0, 0};  // .x broadcast
  p.code.push_back(out);
  EXPECT_TRUE(validate(p).empty());
}

TEST(Validator, MissingOutputRejected) {
  FragmentProgram p;
  p.code.push_back(mov_temp_from_literal(0));
  const auto errors = validate(p);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("result.color"), std::string::npos);
}

TEST(Validator, TempIndexOutOfRange) {
  FragmentProgram p;
  p.code.push_back(mov_temp_from_literal(static_cast<std::uint8_t>(kMaxTemps)));
  p.code.push_back(mov_out_from_temp(0));
  EXPECT_FALSE(validate(p).empty());
}

TEST(Validator, OutputIndexOutOfRange) {
  FragmentProgram p;
  Instruction ins = mov_temp_from_literal(0);
  ins.dst.file = RegFile::Output;
  ins.dst.index = kMaxOutputs;
  p.code.push_back(ins);
  EXPECT_FALSE(validate(p).empty());
}

TEST(Validator, EmptyWriteMaskRejected) {
  FragmentProgram p;
  p.code.push_back(mov_temp_from_literal(0, 0));
  p.code.push_back(mov_out_from_temp(0));
  EXPECT_FALSE(validate(p).empty());
}

TEST(Validator, OutputReadRejected) {
  FragmentProgram p;
  Instruction ins = mov_temp_from_literal(0);
  p.code.push_back(ins);
  Instruction bad = mov_out_from_temp(0);
  bad.src[0].file = RegFile::Output;
  p.code.push_back(bad);
  const auto errors = validate(p);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("write-only"), std::string::npos);
}

TEST(Validator, ArityMismatchRejected) {
  FragmentProgram p;
  Instruction ins = mov_temp_from_literal(0);
  ins.op = Opcode::ADD;  // needs two sources, has one
  p.code.push_back(ins);
  p.code.push_back(mov_out_from_temp(0));
  EXPECT_FALSE(validate(p).empty());
}

TEST(Validator, TexUnitOutOfRange) {
  FragmentProgram p;
  Instruction tex;
  tex.op = Opcode::TEX;
  tex.dst.file = RegFile::Temp;
  tex.dst.index = 0;
  tex.src[0].file = RegFile::TexCoord;
  tex.src[0].index = 0;
  tex.src_count = 1;
  tex.tex_unit = kMaxTexUnits;
  p.code.push_back(tex);
  p.code.push_back(mov_out_from_temp(0));
  EXPECT_FALSE(validate(p).empty());
}

TEST(Validator, DestinationMustBeTempOrOutput) {
  FragmentProgram p;
  Instruction ins = mov_temp_from_literal(0);
  ins.dst.file = RegFile::Const;
  p.code.push_back(ins);
  EXPECT_FALSE(validate(p).empty());
}

TEST(Validator, ProgramMetrics) {
  const auto p = assemble_or_die("metrics",
                                 "!!HSFP1.0\n"
                                 "TEX R0, fragment.texcoord[2], texture[5];\n"
                                 "ADD R1, R0, c[9];\n"
                                 "MOV result.color[1], R1;\n"
                                 "END\n");
  EXPECT_EQ(p.alu_instruction_count(), 2);
  EXPECT_EQ(p.tex_instruction_count(), 1);
  EXPECT_EQ(p.max_tex_unit(), 5);
  EXPECT_EQ(p.max_texcoord(), 2);
  EXPECT_EQ(p.max_constant(), 9);
  EXPECT_EQ(p.max_output(), 1);
}


TEST(Validator, MaskedComponentwiseOpsOnlyNeedMaskedLanes) {
  // Write only .xy of R0, then ABS R1.xy, R0 -- legal: the op never
  // evaluates the z/w lanes.
  const auto p = assemble_or_die("masked",
                                 "!!HSFP1.0\n"
                                 "MOV R0.xy, {1.0};\n"
                                 "ABS R1.xy, R0;\n"
                                 "MOV result.color.xy, R1;\n"
                                 "END\n");
  EXPECT_TRUE(validate(p).empty());
}

TEST(Validator, MaskedOpStillCatchesUninitializedSwizzledLane) {
  // .x write, then a .y-masked op whose swizzle routes lane y from
  // uninitialized R0.y.
  FragmentProgram p;
  Instruction init;
  init.op = Opcode::MOV;
  init.dst.file = RegFile::Temp;
  init.dst.index = 0;
  init.dst.write_mask = 0b0001;
  init.src[0].file = RegFile::Literal;
  init.src[0].literal = float4(1.f);
  init.src_count = 1;
  p.code.push_back(init);

  Instruction use;
  use.op = Opcode::ABS;
  use.dst.file = RegFile::Temp;
  use.dst.index = 1;
  use.dst.write_mask = 0b0010;  // writes .y, reads swizzled lane y
  use.src[0].file = RegFile::Temp;
  use.src[0].index = 0;
  use.src_count = 1;
  p.code.push_back(use);

  Instruction out;
  out.op = Opcode::MOV;
  out.dst.file = RegFile::Output;
  out.dst.index = 0;
  out.src[0].file = RegFile::Literal;
  out.src[0].literal = float4(0.f);
  out.src_count = 1;
  p.code.push_back(out);

  EXPECT_FALSE(validate(p).empty());
}

}  // namespace
}  // namespace hs::gpusim
