#include "hsi/synthetic.hpp"

#include <gtest/gtest.h>

#include "core/distances.hpp"

#include <cmath>
#include <set>

namespace hs::hsi {
namespace {

SceneConfig small_config() {
  SceneConfig cfg;
  cfg.width = 48;
  cfg.height = 48;
  cfg.bands = 32;
  cfg.seed = 11;
  return cfg;
}

TEST(SyntheticScene, ShapesMatchConfig) {
  const SyntheticScene scene = generate_indian_pines_scene(small_config());
  EXPECT_EQ(scene.cube.width(), 48);
  EXPECT_EQ(scene.cube.height(), 48);
  EXPECT_EQ(scene.cube.bands(), 32);
  EXPECT_EQ(scene.truth.width(), 48);
  EXPECT_EQ(scene.truth.height(), 48);
  EXPECT_EQ(scene.truth.num_classes(), 32);
}

TEST(SyntheticScene, DeterministicInSeed) {
  const SyntheticScene a = generate_indian_pines_scene(small_config());
  const SyntheticScene b = generate_indian_pines_scene(small_config());
  EXPECT_EQ(a.truth.labels(), b.truth.labels());
  for (std::size_t i = 0; i < a.cube.raw().size(); ++i) {
    EXPECT_EQ(a.cube.raw()[i], b.cube.raw()[i]) << i;
  }
}

TEST(SyntheticScene, DifferentSeedsDiffer) {
  SceneConfig cfg = small_config();
  const SyntheticScene a = generate_indian_pines_scene(cfg);
  cfg.seed = 12;
  const SyntheticScene b = generate_indian_pines_scene(cfg);
  EXPECT_NE(a.truth.labels(), b.truth.labels());
}

TEST(SyntheticScene, AllPixelsLabeled) {
  const SyntheticScene scene = generate_indian_pines_scene(small_config());
  EXPECT_EQ(scene.truth.labeled_count(), 48u * 48u);
}

TEST(SyntheticScene, StructuralClassesArePresent) {
  const SyntheticScene scene = generate_indian_pines_scene(small_config());
  const auto& lib = scene.library;
  for (const char* name : {"Woods", "Lake", "Road", "Buildings"}) {
    const int c = lib.find(name);
    ASSERT_GE(c, 0);
    EXPECT_GT(scene.truth.class_count(c), 0u) << name;
  }
}

TEST(SyntheticScene, ManyClassesAppear) {
  SceneConfig cfg = small_config();
  cfg.width = 96;
  cfg.height = 96;
  const SyntheticScene scene = generate_indian_pines_scene(cfg);
  std::set<std::int16_t> present;
  for (auto v : scene.truth.labels()) present.insert(v);
  EXPECT_GE(present.size(), 12u);
}

TEST(SyntheticScene, ReflectancesPositiveAndBounded) {
  const SyntheticScene scene = generate_indian_pines_scene(small_config());
  for (float v : scene.cube.raw()) {
    EXPECT_GT(v, 0.f);
    EXPECT_LT(v, 2.f);  // gain + noise can push slightly above 1
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(SyntheticScene, InteriorPixelsResembleTheirClassSignature) {
  SceneConfig cfg = small_config();
  cfg.snr_db = 60;                 // nearly noiseless
  cfg.brightness_jitter = 0.0;
  cfg.mixing_halfwidth = 0;        // no boundary mixing
  cfg.intrinsic_mix_jitter = 0.0;
  const SyntheticScene scene = generate_indian_pines_scene(cfg);
  const int woods = scene.library.find("Woods");
  // Woods has self_fraction 1.0: pixels should match the signature closely.
  std::vector<float> spec(static_cast<std::size_t>(cfg.bands));
  int checked = 0;
  for (int y = 0; y < cfg.height && checked < 10; ++y) {
    for (int x = 0; x < cfg.width && checked < 10; ++x) {
      if (scene.truth.at(x, y) != woods) continue;
      scene.cube.pixel(x, y, spec);
      const auto sig = scene.library.signature(woods);
      for (int b = 0; b < cfg.bands; ++b) {
        EXPECT_NEAR(spec[static_cast<std::size_t>(b)], sig[static_cast<std::size_t>(b)], 0.02f);
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(SyntheticScene, NoiseScalesWithSnr) {
  SceneConfig clean = small_config();
  clean.snr_db = 60;
  SceneConfig noisy = small_config();
  noisy.snr_db = 10;

  auto roughness = [](const SyntheticScene& s) {
    // Mean absolute second difference along the spectrum: noise raises it.
    double acc = 0;
    std::vector<float> spec(static_cast<std::size_t>(s.cube.bands()));
    for (int y = 0; y < s.cube.height(); y += 7) {
      for (int x = 0; x < s.cube.width(); x += 7) {
        s.cube.pixel(x, y, spec);
        for (int b = 1; b + 1 < s.cube.bands(); ++b) {
          acc += std::fabs(spec[static_cast<std::size_t>(b - 1)] -
                           2 * spec[static_cast<std::size_t>(b)] +
                           spec[static_cast<std::size_t>(b + 1)]);
        }
      }
    }
    return acc;
  };

  EXPECT_GT(roughness(generate_indian_pines_scene(noisy)),
            2 * roughness(generate_indian_pines_scene(clean)));
}

TEST(SyntheticScene, CornPixelsAreHeavilyMixed) {
  // With intrinsic mixing on, a corn pixel sits between the corn signature
  // and bare soil: its distance to its own class signature exceeds the
  // woods pixels' distance to theirs.
  SceneConfig cfg = small_config();
  cfg.width = 96;
  cfg.height = 96;
  cfg.snr_db = 60;
  cfg.brightness_jitter = 0.0;
  const SyntheticScene scene = generate_indian_pines_scene(cfg);

  auto mean_self_distance = [&](int cls) {
    std::vector<float> spec(static_cast<std::size_t>(cfg.bands));
    double acc = 0;
    int n = 0;
    for (int y = 2; y < cfg.height - 2; ++y) {
      for (int x = 2; x < cfg.width - 2; ++x) {
        if (scene.truth.at(x, y) != cls) continue;
        // Skip mixing-zone pixels (any different neighbor class).
        bool interior = true;
        for (int dy = -2; dy <= 2 && interior; ++dy) {
          for (int dx = -2; dx <= 2 && interior; ++dx) {
            interior = scene.truth.at(x + dx, y + dy) == cls;
          }
        }
        if (!interior) continue;
        scene.cube.pixel(x, y, spec);
        acc += core::sid(spec, scene.library.signature(cls));
        ++n;
      }
    }
    return n > 0 ? acc / n : -1.0;
  };

  const double woods = mean_self_distance(scene.library.find("Woods"));
  // Find a corn class present in the scene.
  double corn = -1;
  for (int c = 0; c < scene.library.num_classes(); ++c) {
    if (scene.library.names[static_cast<std::size_t>(c)].rfind("Corn", 0) == 0) {
      const double d = mean_self_distance(c);
      if (d >= 0) {
        corn = d;
        break;
      }
    }
  }
  ASSERT_GE(woods, 0.0);
  ASSERT_GE(corn, 0.0);
  EXPECT_GT(corn, woods * 3);
}

}  // namespace
}  // namespace hs::hsi
