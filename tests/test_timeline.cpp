#include "serve/timeline.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/job.hpp"
#include "trace/json_check.hpp"

namespace hs::serve {
namespace {

JobResult sample_result() {
  JobResult r;
  r.id = 9;
  r.name = "unmix \"batch\"";  // exercises JSON escaping
  r.kind = JobKind::Unmix;
  r.priority = Priority::High;
  r.state = JobState::Done;
  r.attempts = 2;
  r.cached = false;
  r.queue_seconds = 0.004;
  r.run_seconds = 0.031;
  r.exec_seconds = 0.027;
  r.output_hash = 0xdeadbeefcafef00dull;
  r.timeline.push_back({0.0, "submitted", ""});
  r.timeline.push_back({0.004, "dequeued", ""});
  r.timeline.push_back({0.005, "attempt", "1"});
  r.timeline.push_back({0.012, "fault", "TransientFault: chunk 3"});
  r.timeline.push_back({0.014, "attempt", "2"});
  r.timeline.push_back({0.035, "terminal", "Done"});
  return r;
}

TEST(Timeline, DocumentValidatesAndRoundTripsCoreFields) {
  std::ostringstream os;
  write_timeline_json(os, sample_result());
  const std::string text = os.str();

  std::string error;
  ASSERT_TRUE(trace::json::validate_timeline_json(text, &error))
      << error << "\n" << text;

  const auto doc = trace::json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("schema")->string, "hs.timeline.v1");
  EXPECT_EQ(doc->find("id")->number, 9.0);
  EXPECT_EQ(doc->find("name")->string, "unmix \"batch\"");
  EXPECT_EQ(doc->find("kind")->string, "unmix");
  EXPECT_EQ(doc->find("state")->string, "done");
  EXPECT_EQ(doc->find("attempts")->number, 2.0);
  EXPECT_NEAR(doc->find("queue_ms")->number, 4.0, 1e-9);
  EXPECT_NEAR(doc->find("exec_ms")->number, 27.0, 1e-9);
  // total = queue + run, matching the serve.total_s histogram definition.
  EXPECT_NEAR(doc->find("total_ms")->number, 35.0, 1e-9);
  EXPECT_EQ(doc->find("output_hash")->string, "deadbeefcafef00d");

  const trace::json::Value* events = doc->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 6u);
  EXPECT_EQ(events->array[0].find("what")->string, "submitted");
  EXPECT_EQ(events->array[3].find("detail")->string,
            "TransientFault: chunk 3");
  EXPECT_EQ(events->array[5].find("what")->string, "terminal");
}

TEST(Timeline, ValidatorRejectsNonMonotonicEvents) {
  JobResult r = sample_result();
  std::swap(r.timeline[1], r.timeline[4]);  // break t_ms ordering
  std::ostringstream os;
  write_timeline_json(os, r);
  std::string error;
  EXPECT_FALSE(trace::json::validate_timeline_json(os.str(), &error));
  EXPECT_NE(error.find("out of order"), std::string::npos) << error;
}

TEST(Timeline, ValidatorRejectsWrongSchemaAndGarbage) {
  std::string error;
  EXPECT_FALSE(trace::json::validate_timeline_json("{", &error));
  EXPECT_FALSE(trace::json::validate_timeline_json("{}", &error));
  EXPECT_FALSE(trace::json::validate_timeline_json(
      "{\"schema\": \"hs.snapshot.v1\"}", &error));
}

TEST(Timeline, EmptyTimelineStillValidates) {
  // Rejected jobs can terminalize with a minimal timeline; the document
  // must still be schema-valid.
  JobResult r;
  r.id = 3;
  r.name = "rejected";
  r.state = JobState::Rejected;
  r.detail = "queue full";
  std::ostringstream os;
  write_timeline_json(os, r);
  std::string error;
  EXPECT_TRUE(trace::json::validate_timeline_json(os.str(), &error))
      << error << "\n" << os.str();
}

TEST(Timeline, FileWriterProducesNamedValidFile) {
  const JobResult r = sample_result();
  EXPECT_EQ(timeline_filename(r), "timeline_job9.json");
  const std::string path =
      ::testing::TempDir() + "/hs_timeline_test_job9.json";
  ASSERT_TRUE(write_timeline_json_file(path, r));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  std::string error;
  EXPECT_TRUE(trace::json::validate_timeline_json(ss.str(), &error)) << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hs::serve
