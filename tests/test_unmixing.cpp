#include "core/unmixing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hs::core {
namespace {

std::vector<std::vector<float>> random_endmembers(int count, int bands,
                                                  std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<float>> e(static_cast<std::size_t>(count));
  for (auto& sig : e) {
    sig.resize(static_cast<std::size_t>(bands));
    for (auto& v : sig) v = static_cast<float>(rng.uniform(0.05, 1.0));
  }
  return e;
}

std::vector<float> mix(const std::vector<std::vector<float>>& e,
                       const std::vector<double>& a) {
  std::vector<float> x(e[0].size(), 0.f);
  for (std::size_t k = 0; k < e.size(); ++k) {
    for (std::size_t b = 0; b < x.size(); ++b) {
      x[b] += static_cast<float>(a[k] * static_cast<double>(e[k][b]));
    }
  }
  return x;
}

TEST(Unmixer, RecoversExactAbundances) {
  const auto e = random_endmembers(4, 32, 1);
  const std::vector<double> a_true{0.4, 0.3, 0.2, 0.1};
  const auto x = mix(e, a_true);
  const Unmixer unmixer(e, UnmixingMethod::Unconstrained);
  const auto a = unmixer.abundances(x);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(a[k], a_true[k], 1e-4);
}

TEST(Unmixer, ClassifyPicksDominantEndmember) {
  const auto e = random_endmembers(5, 24, 2);
  const std::vector<double> a_true{0.1, 0.1, 0.6, 0.1, 0.1};
  const auto x = mix(e, a_true);
  const Unmixer unmixer(e, UnmixingMethod::Unconstrained);
  EXPECT_EQ(unmixer.classify(x), 2);
}

TEST(Unmixer, PureEndmemberClassifiesAsItself) {
  const auto e = random_endmembers(6, 20, 3);
  const Unmixer unmixer(e, UnmixingMethod::Unconstrained);
  for (int k = 0; k < 6; ++k) {
    EXPECT_EQ(unmixer.classify(e[static_cast<std::size_t>(k)]), k);
  }
}

TEST(Unmixer, SumToOneConstraintHolds) {
  const auto e = random_endmembers(4, 16, 4);
  const Unmixer unmixer(e, UnmixingMethod::SumToOne);
  util::Xoshiro256 rng(5);
  std::vector<float> x(16);
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.1, 1.0));
  const auto a = unmixer.abundances(x);
  double sum = 0;
  for (double v : a) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Unmixer, SumToOnePreservesExactMixtures) {
  const auto e = random_endmembers(3, 16, 6);
  const std::vector<double> a_true{0.5, 0.3, 0.2};  // already sums to 1
  const auto x = mix(e, a_true);
  const Unmixer unmixer(e, UnmixingMethod::SumToOne);
  const auto a = unmixer.abundances(x);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_NEAR(a[k], a_true[k], 1e-4);
}

TEST(Unmixer, NnlsProducesNonNegativeAbundances) {
  const auto e = random_endmembers(4, 16, 7);
  const Unmixer unmixer(e, UnmixingMethod::Nnls);
  util::Xoshiro256 rng(8);
  std::vector<float> x(16);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-0.2, 1.0));
  const auto a = unmixer.abundances(x);
  for (double v : a) EXPECT_GE(v, 0.0);
}

TEST(Unmixer, NnlsMatchesUnconstrainedOnInteriorMixture) {
  const auto e = random_endmembers(3, 24, 9);
  const std::vector<double> a_true{0.5, 0.25, 0.25};
  const auto x = mix(e, a_true);
  const Unmixer nnls_solver(e, UnmixingMethod::Nnls);
  const auto a = nnls_solver.abundances(x);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_NEAR(a[k], a_true[k], 1e-5);
}

TEST(Unmixer, NearDuplicateEndmembersDoNotCrash) {
  auto e = random_endmembers(3, 16, 10);
  e.push_back(e[0]);  // exact duplicate -> singular Gram
  const Unmixer unmixer(e, UnmixingMethod::Unconstrained);
  const auto a = unmixer.abundances(e[1]);
  for (double v : a) EXPECT_TRUE(std::isfinite(v));
}

TEST(Unmixer, ClassifyCubeLabelsEveryPixel) {
  const auto e = random_endmembers(3, 8, 11);
  hsi::HyperCube cube(4, 3, 8);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      const std::size_t k = static_cast<std::size_t>((x + y) % 3);
      cube.set_pixel(x, y, e[k]);
    }
  }
  const Unmixer unmixer(e, UnmixingMethod::Unconstrained);
  std::vector<double> abundances;
  const auto labels = unmixer.classify_cube(cube, &abundances);
  ASSERT_EQ(labels.size(), 12u);
  EXPECT_EQ(abundances.size(), 12u * 3u);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(labels[static_cast<std::size_t>(y * 4 + x)], (x + y) % 3);
    }
  }
}

TEST(Unmixer, MethodNames) {
  EXPECT_STREQ(unmixing_method_name(UnmixingMethod::Unconstrained),
               "unconstrained");
  EXPECT_STREQ(unmixing_method_name(UnmixingMethod::SumToOne), "sum-to-one");
  EXPECT_STREQ(unmixing_method_name(UnmixingMethod::Nnls), "nnls");
}

}  // namespace
}  // namespace hs::core
