#include "core/amc.hpp"

#include <gtest/gtest.h>

#include <set>

#include "hsi/synthetic.hpp"

namespace hs::core {
namespace {

hsi::SyntheticScene test_scene() {
  hsi::SceneConfig cfg;
  cfg.width = 56;
  cfg.height = 56;
  cfg.bands = 32;
  cfg.seed = 21;
  return hsi::generate_indian_pines_scene(cfg);
}

AmcConfig base_config() {
  AmcConfig cfg;
  cfg.num_classes = 12;
  cfg.endmember_min_separation = 4;
  return cfg;
}

TEST(Amc, ProducesLabelsForEveryPixel) {
  const auto scene = test_scene();
  AmcConfig cfg = base_config();
  const AmcResult result = run_amc(scene.cube, cfg);
  EXPECT_EQ(result.labels.size(), scene.cube.pixel_count());
  for (int v : result.labels) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, cfg.num_classes);
  }
  EXPECT_EQ(result.endmember_pixels.size(), 12u);
  EXPECT_EQ(result.endmember_spectra.size(), 12u);
  EXPECT_GE(result.morphology_wall_seconds, 0.0);
}

TEST(Amc, UsesMultipleClasses) {
  const auto scene = test_scene();
  const AmcResult result = run_amc(scene.cube, base_config());
  std::set<int> used(result.labels.begin(), result.labels.end());
  EXPECT_GE(used.size(), 4u);
}

TEST(Amc, AccuracyBeatsChanceOnSyntheticScene) {
  const auto scene = test_scene();
  const AmcResult result = run_amc(scene.cube, base_config());
  const AccuracyReport acc = evaluate_accuracy(result, scene.truth);
  // 32 ground-truth classes: chance is ~just picking the biggest class.
  EXPECT_GT(acc.overall, 0.35);
  EXPECT_GT(acc.kappa, 0.25);
}

TEST(Amc, CpuBackendsAgreeAlmostEverywhere) {
  const auto scene = test_scene();
  AmcConfig ref_cfg = base_config();
  ref_cfg.backend = Backend::CpuReference;
  AmcConfig vec_cfg = base_config();
  vec_cfg.backend = Backend::CpuVectorized;
  const AmcResult ref = run_amc(scene.cube, ref_cfg);
  const AmcResult vec = run_amc(scene.cube, vec_cfg);
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < ref.labels.size(); ++i) {
    if (ref.labels[i] != vec.labels[i]) ++disagreements;
  }
  EXPECT_LT(disagreements, ref.labels.size() / 10);
}

TEST(Amc, GpuBackendMatchesVectorizedCpuExactly) {
  hsi::SceneConfig scfg;
  scfg.width = 28;
  scfg.height = 28;
  scfg.bands = 16;
  scfg.seed = 22;
  const auto scene = hsi::generate_indian_pines_scene(scfg);

  AmcConfig vec_cfg = base_config();
  vec_cfg.num_classes = 6;
  vec_cfg.backend = Backend::CpuVectorized;
  AmcConfig gpu_cfg = vec_cfg;
  gpu_cfg.backend = Backend::GpuStream;
  gpu_cfg.gpu.profile.fragment_pipes = 4;

  const AmcResult vec = run_amc(scene.cube, vec_cfg);
  const AmcResult gpu = run_amc(scene.cube, gpu_cfg);

  // MEI is bit-identical, so endmembers and labels coincide exactly.
  EXPECT_EQ(vec.endmember_pixels, gpu.endmember_pixels);
  EXPECT_EQ(vec.labels, gpu.labels);
  ASSERT_TRUE(gpu.gpu.has_value());
  EXPECT_FALSE(vec.gpu.has_value());
  EXPECT_GT(gpu.gpu->modeled_seconds, 0.0);
  EXPECT_EQ(gpu.gpu->stages.size(), 6u);
}

TEST(Amc, EndmembersAreDistinctDilationSelectedPixels) {
  const auto scene = test_scene();
  AmcConfig cfg = base_config();
  const AmcResult result = run_amc(scene.cube, cfg);

  // No duplicate endmember pixels.
  std::set<std::size_t> unique(result.endmember_pixels.begin(),
                               result.endmember_pixels.end());
  EXPECT_EQ(unique.size(), result.endmember_pixels.size());

  // Each endmember is the dilation selection of some pixel: its spectrum
  // must match the cube at its location.
  std::vector<float> spec(static_cast<std::size_t>(scene.cube.bands()));
  for (std::size_t k = 0; k < result.endmember_pixels.size(); ++k) {
    const std::size_t p = result.endmember_pixels[k];
    const int x = static_cast<int>(p % static_cast<std::size_t>(scene.cube.width()));
    const int y = static_cast<int>(p / static_cast<std::size_t>(scene.cube.width()));
    scene.cube.pixel(x, y, spec);
    for (int b = 0; b < scene.cube.bands(); ++b) {
      EXPECT_EQ(result.endmember_spectra[k][static_cast<std::size_t>(b)],
                spec[static_cast<std::size_t>(b)]);
    }
  }
}

TEST(Amc, UnmixingMethodsProduceValidLabels) {
  hsi::SceneConfig scfg;
  scfg.width = 24;
  scfg.height = 24;
  scfg.bands = 16;
  scfg.seed = 23;
  const auto scene = hsi::generate_indian_pines_scene(scfg);
  for (UnmixingMethod m : {UnmixingMethod::Unconstrained,
                           UnmixingMethod::SumToOne, UnmixingMethod::Nnls}) {
    AmcConfig cfg = base_config();
    cfg.num_classes = 5;
    cfg.unmixing = m;
    const AmcResult result = run_amc(scene.cube, cfg);
    for (int v : result.labels) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 5);
    }
  }
}

TEST(Amc, BackendNames) {
  EXPECT_STREQ(backend_name(Backend::CpuReference), "cpu-reference");
  EXPECT_STREQ(backend_name(Backend::CpuVectorized), "cpu-vectorized");
  EXPECT_STREQ(backend_name(Backend::GpuStream), "gpu-stream");
}

TEST(Amc, AccuracyReportShapesMatchTruth) {
  const auto scene = test_scene();
  const AmcResult result = run_amc(scene.cube, base_config());
  const AccuracyReport acc = evaluate_accuracy(result, scene.truth);
  EXPECT_EQ(acc.per_class.size(),
            static_cast<std::size_t>(scene.truth.num_classes()));
  for (double v : acc.per_class) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}


TEST(Amc, GpuClassificationAgreesWithHostUnmixing) {
  hsi::SceneConfig scfg;
  scfg.width = 24;
  scfg.height = 24;
  scfg.bands = 16;
  scfg.seed = 31;
  const auto scene = hsi::generate_indian_pines_scene(scfg);

  AmcConfig host_cfg = base_config();
  host_cfg.num_classes = 6;
  host_cfg.backend = Backend::GpuStream;
  host_cfg.gpu.profile.fragment_pipes = 4;
  AmcConfig gpu_cfg = host_cfg;
  gpu_cfg.gpu_classification = true;

  const AmcResult host = run_amc(scene.cube, host_cfg);
  const AmcResult gpu = run_amc(scene.cube, gpu_cfg);

  // Endmembers come from the identical MEI map, so they match exactly;
  // labels may differ only on float-vs-double abundance near-ties.
  EXPECT_EQ(host.endmember_pixels, gpu.endmember_pixels);
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < host.labels.size(); ++i) {
    if (host.labels[i] != gpu.labels[i]) ++disagreements;
  }
  EXPECT_LE(disagreements, host.labels.size() / 50);
  ASSERT_TRUE(gpu.gpu.has_value());
  EXPECT_GT(gpu.gpu->classification_modeled_seconds, 0.0);
  EXPECT_EQ(host.gpu->classification_modeled_seconds, 0.0);
}

}  // namespace
}  // namespace hs::core
