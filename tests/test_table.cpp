#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hs::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os, "caption");
  const std::string s = os.str();
  EXPECT_NE(s.find("caption"), std::string::npos);
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| 1 |"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(12.0, 0), "12");
  EXPECT_EQ(Table::num(1.55211, 5), "1.55211");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace hs::util
