#include "hsi/cube.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hs::hsi {
namespace {

HyperCube random_cube(int w, int h, int n, Interleave il, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  HyperCube cube(w, h, n, il);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int b = 0; b < n; ++b) {
        cube.at(x, y, b) = static_cast<float>(rng.uniform());
      }
    }
  }
  return cube;
}

TEST(HyperCube, DimensionsAndCounts) {
  HyperCube cube(5, 3, 7);
  EXPECT_EQ(cube.width(), 5);
  EXPECT_EQ(cube.height(), 3);
  EXPECT_EQ(cube.bands(), 7);
  EXPECT_EQ(cube.pixel_count(), 15u);
  EXPECT_EQ(cube.raw().size(), 105u);
  EXPECT_EQ(cube.size_bytes(), 105u * 4);
  EXPECT_EQ(cube.sensor_size_bytes(), 105u * 2);
}

class InterleaveSweep : public ::testing::TestWithParam<Interleave> {};

TEST_P(InterleaveSweep, AtIsConsistentWithItself) {
  HyperCube cube(4, 3, 5, GetParam());
  cube.at(2, 1, 3) = 42.f;
  EXPECT_EQ(cube.at(2, 1, 3), 42.f);
  // No aliasing with neighbors in any dimension.
  EXPECT_EQ(cube.at(1, 1, 3), 0.f);
  EXPECT_EQ(cube.at(2, 0, 3), 0.f);
  EXPECT_EQ(cube.at(2, 1, 2), 0.f);
}

TEST_P(InterleaveSweep, IndexIsABijection) {
  HyperCube cube(3, 4, 5, GetParam());
  std::vector<int> seen(cube.raw().size(), 0);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 3; ++x) {
      for (int b = 0; b < 5; ++b) {
        ++seen[cube.index(x, y, b)];
      }
    }
  }
  for (int v : seen) EXPECT_EQ(v, 1);
}

TEST_P(InterleaveSweep, PixelGetSetRoundTrips) {
  HyperCube cube(3, 3, 6, GetParam());
  std::vector<float> in{1, 2, 3, 4, 5, 6};
  cube.set_pixel(1, 2, in);
  std::vector<float> out(6);
  cube.pixel(1, 2, out);
  EXPECT_EQ(in, out);
}

INSTANTIATE_TEST_SUITE_P(Layouts, InterleaveSweep,
                         ::testing::Values(Interleave::BSQ, Interleave::BIL,
                                           Interleave::BIP));

TEST(HyperCube, BsqLayoutIsBandMajor) {
  HyperCube cube(2, 2, 2, Interleave::BSQ);
  cube.at(1, 1, 1) = 5.f;
  // BSQ: band 1 plane starts at offset 4.
  EXPECT_EQ(cube.raw()[4 + 3], 5.f);
}

TEST(HyperCube, BipLayoutIsPixelMajor) {
  HyperCube cube(2, 2, 3, Interleave::BIP);
  cube.at(1, 0, 2) = 5.f;
  EXPECT_EQ(cube.raw()[1 * 3 + 2], 5.f);
}

TEST(HyperCube, ConversionPreservesValues) {
  const HyperCube bip = random_cube(4, 5, 6, Interleave::BIP, 1);
  for (Interleave target : {Interleave::BSQ, Interleave::BIL, Interleave::BIP}) {
    const HyperCube converted = bip.converted(target);
    EXPECT_EQ(converted.interleave(), target);
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 4; ++x) {
        for (int b = 0; b < 6; ++b) {
          EXPECT_EQ(converted.at(x, y, b), bip.at(x, y, b));
        }
      }
    }
  }
}

TEST(HyperCube, ConversionRoundTripIsExact) {
  const HyperCube orig = random_cube(3, 3, 8, Interleave::BIP, 2);
  const HyperCube back = orig.converted(Interleave::BSQ).converted(Interleave::BIP);
  EXPECT_EQ(orig.raw().size(), back.raw().size());
  for (std::size_t i = 0; i < orig.raw().size(); ++i) {
    EXPECT_EQ(orig.raw()[i], back.raw()[i]);
  }
}

TEST(HyperCube, CropExtractsSubregion) {
  const HyperCube cube = random_cube(8, 8, 4, Interleave::BIP, 3);
  const HyperCube sub = cube.crop(2, 3, 4, 2);
  EXPECT_EQ(sub.width(), 4);
  EXPECT_EQ(sub.height(), 2);
  EXPECT_EQ(sub.bands(), 4);
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 4; ++x) {
      for (int b = 0; b < 4; ++b) {
        EXPECT_EQ(sub.at(x, y, b), cube.at(2 + x, 3 + y, b));
      }
    }
  }
}

TEST(HyperCube, InterleaveNames) {
  EXPECT_STREQ(interleave_name(Interleave::BSQ), "bsq");
  EXPECT_STREQ(interleave_name(Interleave::BIL), "bil");
  EXPECT_STREQ(interleave_name(Interleave::BIP), "bip");
}

}  // namespace
}  // namespace hs::hsi
