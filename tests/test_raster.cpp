#include "gpusim/raster.hpp"

#include <gtest/gtest.h>

#include "gpusim/assembler.hpp"

namespace hs::gpusim {
namespace {

DeviceProfile tiny_profile() {
  DeviceProfile p = geforce_7800_gtx();
  p.fragment_pipes = 4;
  p.video_memory_bytes = 8 * 1024 * 1024;
  return p;
}

FragmentProgram coord_program() {
  return assemble_or_die(
      "coords", "!!HSFP1.0\nMOV result.color, fragment.texcoord[0];\nEND\n");
}

TEST(Raster, FullscreenQuadReproducesDrawExactly) {
  Device dev(tiny_profile());
  const TextureHandle in = dev.create_texture(16, 12, TextureFormat::RGBA32F);
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 16; ++x) {
      dev.texture(in).store(x, y, {static_cast<float>(x * y), 1, 2, 3});
    }
  }
  const TextureHandle out_a = dev.create_texture(16, 12, TextureFormat::RGBA32F);
  const TextureHandle out_b = dev.create_texture(16, 12, TextureFormat::RGBA32F);
  const auto program = assemble_or_die("copy",
                                       "!!HSFP1.0\n"
                                       "TEX R0, fragment.texcoord[0], texture[0];\n"
                                       "MUL result.color, R0, R0;\n"
                                       "END\n");
  const TextureHandle ins[1] = {in};
  const TextureHandle outs_a[1] = {out_a};
  const TextureHandle outs_b[1] = {out_b};

  const PassStats full = dev.draw(program, ins, {}, outs_a);
  const auto quad = fullscreen_quad(16, 12);
  const PassStats raster =
      draw_triangles(dev, program, quad, Viewport{0, 0, 16, 12}, ins, {}, outs_b);

  EXPECT_EQ(raster.fragments, full.fragments);
  EXPECT_EQ(raster.exec.alu_instructions, full.exec.alu_instructions);
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_EQ(dev.texture(out_b).load(x, y), dev.texture(out_a).load(x, y))
          << x << "," << y;
    }
  }
}

TEST(Raster, FullscreenQuadInterpolatesTexelCenters) {
  Device dev(tiny_profile());
  const TextureHandle out = dev.create_texture(8, 8, TextureFormat::RGBA32F);
  const TextureHandle outs[1] = {out};
  const auto quad = fullscreen_quad(8, 8);
  draw_triangles(dev, coord_program(), quad, Viewport{0, 0, 8, 8}, {}, {}, outs);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const float4 v = dev.texture(out).load(x, y);
      EXPECT_FLOAT_EQ(v.x, static_cast<float>(x) + 0.5f);
      EXPECT_FLOAT_EQ(v.y, static_cast<float>(y) + 0.5f);
    }
  }
}

TEST(Raster, HalfViewportTriangleCoversHalfThePixels) {
  Device dev(tiny_profile());
  const TextureHandle out = dev.create_texture(16, 16, TextureFormat::R32F);
  const TextureHandle outs[1] = {out};
  const auto program =
      assemble_or_die("one", "!!HSFP1.0\nMOV result.color, {1.0};\nEND\n");
  // One triangle = half the fullscreen quad.
  const auto quad = fullscreen_quad(16, 16);
  const std::vector<Vertex> tri(quad.begin(), quad.begin() + 3);
  const PassStats stats =
      draw_triangles(dev, program, tri, Viewport{0, 0, 16, 16}, {}, {}, outs);
  EXPECT_GT(stats.fragments, 16u * 16u / 2 - 16);
  EXPECT_LT(stats.fragments, 16u * 16u / 2 + 17);
}

TEST(Raster, UncoveredPixelsAreUntouched) {
  Device dev(tiny_profile());
  const TextureHandle out = dev.create_texture(8, 8, TextureFormat::R32F);
  dev.texture(out).store(7, 7, float4(42.f));
  const TextureHandle outs[1] = {out};
  const auto program =
      assemble_or_die("one", "!!HSFP1.0\nMOV result.color, {1.0};\nEND\n");
  // A tiny triangle near the origin.
  Vertex a, b, c;
  a.position = {-1.f, -1.f, 0, 1};
  b.position = {-0.5f, -1.f, 0, 1};
  c.position = {-1.f, -0.5f, 0, 1};
  const std::vector<Vertex> tri{a, b, c};
  draw_triangles(dev, program, tri, Viewport{0, 0, 8, 8}, {}, {}, outs);
  EXPECT_EQ(dev.texture(out).load(7, 7).x, 42.f);
  EXPECT_EQ(dev.texture(out).load(0, 0).x, 1.f);
}

TEST(Raster, WindingDoesNotAffectCoverage) {
  Device dev(tiny_profile());
  const TextureHandle out_ccw = dev.create_texture(8, 8, TextureFormat::R32F);
  const TextureHandle out_cw = dev.create_texture(8, 8, TextureFormat::R32F);
  const auto program =
      assemble_or_die("one", "!!HSFP1.0\nMOV result.color, {1.0};\nEND\n");
  Vertex a, b, c;
  a.position = {-1.f, -1.f, 0, 1};
  b.position = {1.f, -1.f, 0, 1};
  c.position = {0.f, 1.f, 0, 1};
  const std::vector<Vertex> ccw{a, b, c};
  const std::vector<Vertex> cw{a, c, b};
  const TextureHandle outs1[1] = {out_ccw};
  const TextureHandle outs2[1] = {out_cw};
  const PassStats s1 =
      draw_triangles(dev, program, ccw, Viewport{0, 0, 8, 8}, {}, {}, outs1);
  const PassStats s2 =
      draw_triangles(dev, program, cw, Viewport{0, 0, 8, 8}, {}, {}, outs2);
  EXPECT_EQ(s1.fragments, s2.fragments);
}

TEST(Raster, DegenerateTriangleDrawsNothing) {
  Device dev(tiny_profile());
  const TextureHandle out = dev.create_texture(8, 8, TextureFormat::R32F);
  const TextureHandle outs[1] = {out};
  const auto program =
      assemble_or_die("one", "!!HSFP1.0\nMOV result.color, {1.0};\nEND\n");
  Vertex a;
  a.position = {0.f, 0.f, 0, 1};
  const std::vector<Vertex> tri{a, a, a};
  const PassStats stats =
      draw_triangles(dev, program, tri, Viewport{0, 0, 8, 8}, {}, {}, outs);
  EXPECT_EQ(stats.fragments, 0u);
}

TEST(Raster, AttributeGradientInterpolatesLinearly) {
  Device dev(tiny_profile());
  const TextureHandle out = dev.create_texture(16, 16, TextureFormat::RGBA32F);
  const TextureHandle outs[1] = {out};
  // Attribute 1 ramps 0..1 left to right; the program emits texcoord[1].
  const auto program = assemble_or_die(
      "attr", "!!HSFP1.0\nMOV result.color, fragment.texcoord[1];\nEND\n");
  auto quad = fullscreen_quad(16, 16);
  for (auto& v : quad) {
    const float ramp = (v.position.x * 0.5f + 0.5f);
    v.attributes[1] = {ramp, 0, 0, 1};
  }
  draw_triangles(dev, program, quad, Viewport{0, 0, 16, 16}, {}, {}, outs);
  for (int x = 0; x < 16; ++x) {
    const float expected = (static_cast<float>(x) + 0.5f) / 16.f;
    EXPECT_NEAR(dev.texture(out).load(x, 5).x, expected, 1e-5f) << x;
  }
}

TEST(Raster, LaterTriangleWinsOverlap) {
  Device dev(tiny_profile());
  const TextureHandle out = dev.create_texture(8, 8, TextureFormat::R32F);
  const TextureHandle outs[1] = {out};
  const auto program = assemble_or_die(
      "attr", "!!HSFP1.0\nMOV result.color, fragment.texcoord[1];\nEND\n");
  auto first = fullscreen_quad(8, 8);
  for (auto& v : first) v.attributes[1] = float4(1.f);
  auto second = fullscreen_quad(8, 8);
  for (auto& v : second) v.attributes[1] = float4(2.f);
  std::vector<Vertex> both = first;
  both.insert(both.end(), second.begin(), second.end());
  const PassStats stats =
      draw_triangles(dev, program, both, Viewport{0, 0, 8, 8}, {}, {}, outs);
  // Overdraw resolves before shading: 64 fragments, all from the second quad.
  EXPECT_EQ(stats.fragments, 64u);
  EXPECT_EQ(dev.texture(out).load(3, 3).x, 2.f);
}

}  // namespace
}  // namespace hs::gpusim
