#include "trace/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hs::trace {
namespace {

// gtest_discover_tests runs every TEST in its own process, so mutating the
// process-global histogram registry here cannot leak into other tests.

#if HS_TRACE_ENABLED

TEST(Histogram, BucketBoundsTileTheRangeWithoutGapsOrOverlap) {
  // Walking every bucket: lower bounds are strictly increasing and each
  // bucket's upper bound is the next bucket's lower bound.
  for (int i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    EXPECT_LT(Histogram::bucket_lower(i), Histogram::bucket_upper(i)) << i;
    EXPECT_EQ(Histogram::bucket_upper(i), Histogram::bucket_lower(i + 1)) << i;
  }
  EXPECT_EQ(Histogram::bucket_lower(0), 0.0);
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper(Histogram::kBucketCount - 1)));
}

TEST(Histogram, BucketIndexAgreesWithBucketBounds) {
  // For a spread of magnitudes (sub-ns to minutes), the value must land in
  // a bucket whose [lower, upper) interval contains it.
  for (const double v : {1e-10, 2.3e-9, 1e-6, 3.7e-5, 1e-3, 0.25, 1.0, 7.5,
                         60.0, 1023.0, 5000.0}) {
    const int idx = Histogram::bucket_index(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, Histogram::kBucketCount);
    EXPECT_GE(v, Histogram::bucket_lower(idx)) << v;
    EXPECT_LT(v, Histogram::bucket_upper(idx)) << v;
  }
  // Exact octave boundaries land in the bucket they open.
  const int at_one = Histogram::bucket_index(1.0);
  EXPECT_EQ(Histogram::bucket_lower(at_one), 1.0);
}

TEST(Histogram, RelativeBucketWidthIsBounded) {
  // The log-linear scheme promises <= 1/kSubBuckets relative width inside
  // the covered range; that bound is what makes quantile cross-checks
  // against exact percentiles meaningful.
  for (double v = 2e-9; v < 500.0; v *= 1.7) {
    EXPECT_LE(Histogram::bucket_width_at(v) / v,
              1.0 / Histogram::kSubBuckets + 1e-12)
        << v;
  }
}

TEST(Histogram, CountSumMinMaxAndIgnoredValues) {
  Histogram h;
  h.record(0.010);
  h.record(0.020);
  h.record(0.030);
  h.record(-1.0);  // dropped
  h.record(std::nan(""));  // dropped
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_NEAR(snap.sum, 0.060, 1e-12);
  EXPECT_EQ(snap.min, 0.010);
  EXPECT_EQ(snap.max, 0.030);
  EXPECT_NEAR(snap.mean(), 0.020, 1e-12);
}

TEST(Histogram, QuantilesAgreeWithExactRankWithinOneBucketWidth) {
  // 1000 deterministic samples spanning three decades: every reported
  // quantile must sit within one bucket width of the exact ceil(q*n)-th
  // order statistic -- the same tolerance the serve-load bench enforces.
  util::Xoshiro256 rng(1234);
  Histogram h;
  std::vector<double> vals;
  for (int i = 0; i < 1000; ++i) {
    const double v = 1e-4 * std::pow(10.0, 3.0 * rng.uniform());
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, vals.size());
  for (const double q : {0.50, 0.90, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(vals.size()))));
    const double exact = vals[rank - 1];
    EXPECT_NEAR(snap.quantile(q), exact, Histogram::bucket_width_at(exact))
        << "q=" << q;
  }
  // Quantiles clamp to the observed extremes.
  EXPECT_EQ(snap.quantile(0.0), snap.min);
  EXPECT_EQ(snap.quantile(1.0), snap.max);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h;
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(Histogram, ConcurrentRecordsAreAllCounted) {
  // 8 threads x 4000 records into one histogram: the merged snapshot must
  // account for every sample exactly (shards are per-thread, so nothing
  // can be lost to a data race by construction -- this pins it).
  Histogram h;
  constexpr std::size_t kThreads = 8;
  constexpr int kIters = 4000;
  util::ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](std::size_t t) {
    for (int i = 0; i < kIters; ++i) {
      h.record(1e-6 * static_cast<double>(1 + (t * kIters + i) % 1000));
    }
  });
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kIters);
  EXPECT_EQ(snap.min, 1e-6);
  EXPECT_NEAR(snap.max, 1e-3, 1e-12);
}

TEST(Histogram, RegistryFindsSameInstanceAndResetZeroes) {
  Histogram& h = histogram("test.hist_s");
  EXPECT_EQ(&histogram("test.hist_s"), &h);
  h.record(0.5);
  bool found = false;
  for (const auto& [name, snap] : histograms_snapshot()) {
    if (name == "test.hist_s") {
      found = true;
      EXPECT_EQ(snap.count, 1u);
    }
  }
  EXPECT_TRUE(found);

  reset_histograms();
  EXPECT_EQ(h.snapshot().count, 0u);
  // The registration survives reset; only the samples are dropped.
  EXPECT_EQ(&histogram("test.hist_s"), &h);
}

#else  // HS_TRACE_ENABLED == 0

TEST(Histogram, DisabledBuildIsANoOpWithEmptySnapshots) {
  Histogram& h = histogram("off.hist_s");
  h.record(0.5);
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_TRUE(histograms_snapshot().empty());
  reset_histograms();  // must not crash
}

#endif  // HS_TRACE_ENABLED

}  // namespace
}  // namespace hs::trace
