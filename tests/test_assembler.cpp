#include "gpusim/assembler.hpp"

#include <gtest/gtest.h>

namespace hs::gpusim {
namespace {

FragmentProgram ok(const std::string& src) {
  auto result = assemble("test", src);
  auto* err = std::get_if<AssembleError>(&result);
  EXPECT_EQ(err, nullptr) << (err ? err->message : "");
  return std::get<FragmentProgram>(std::move(result));
}

std::string err_of(const std::string& src) {
  auto result = assemble("test", src);
  auto* err = std::get_if<AssembleError>(&result);
  EXPECT_NE(err, nullptr) << "expected assembly failure";
  return err ? err->message : "";
}

TEST(Assembler, MinimalProgram) {
  const auto p = ok("!!HSFP1.0\nMOV result.color, {1.0, 2.0, 3.0, 4.0};\nEND\n");
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_EQ(p.code[0].op, Opcode::MOV);
  EXPECT_EQ(p.code[0].dst.file, RegFile::Output);
  EXPECT_EQ(p.code[0].src[0].file, RegFile::Literal);
  EXPECT_EQ(p.code[0].src[0].literal, float4(1, 2, 3, 4));
}

TEST(Assembler, MissingHeaderFails) {
  EXPECT_NE(err_of("MOV result.color, {1.0};\nEND\n").find("header"),
            std::string::npos);
}

TEST(Assembler, MissingEndFails) {
  EXPECT_NE(err_of("!!HSFP1.0\nMOV result.color, {1.0};\n").find("END"),
            std::string::npos);
}

TEST(Assembler, CommentsAreIgnored) {
  const auto p = ok(
      "!!HSFP1.0\n"
      "# a comment line\n"
      "MOV result.color, {0.5}; # trailing comment\n"
      "END\n");
  EXPECT_EQ(p.code.size(), 1u);
}

TEST(Assembler, ScalarLiteralBroadcasts) {
  const auto p = ok("!!HSFP1.0\nMOV result.color, {0.5};\nEND\n");
  EXPECT_EQ(p.code[0].src[0].literal, float4(0.5f));
}

TEST(Assembler, ThreeComponentLiteralGetsUnitW) {
  const auto p = ok("!!HSFP1.0\nMOV result.color, {1.0, 2.0, 3.0};\nEND\n");
  EXPECT_EQ(p.code[0].src[0].literal, float4(1, 2, 3, 1));
}

TEST(Assembler, TwoComponentLiteralFails) {
  EXPECT_NE(err_of("!!HSFP1.0\nMOV result.color, {1.0, 2.0};\nEND\n")
                .find("literal"),
            std::string::npos);
}

TEST(Assembler, TempRegisters) {
  const auto p = ok(
      "!!HSFP1.0\n"
      "MOV R0, {1.0};\n"
      "MOV R15, R0;\n"
      "MOV result.color, R15;\n"
      "END\n");
  EXPECT_EQ(p.code[1].dst.index, 15);
  EXPECT_EQ(p.code[1].src[0].file, RegFile::Temp);
}

TEST(Assembler, ConstantsAndTexcoords) {
  const auto p = ok(
      "!!HSFP1.0\n"
      "ADD R0, fragment.texcoord[2], c[7];\n"
      "MOV result.color, R0;\n"
      "END\n");
  EXPECT_EQ(p.code[0].src[0].file, RegFile::TexCoord);
  EXPECT_EQ(p.code[0].src[0].index, 2);
  EXPECT_EQ(p.code[0].src[1].file, RegFile::Const);
  EXPECT_EQ(p.code[0].src[1].index, 7);
}

TEST(Assembler, SingleComponentSwizzleBroadcasts) {
  const auto p = ok(
      "!!HSFP1.0\n"
      "MOV R0, {1.0, 2.0, 3.0, 4.0};\n"
      "MOV result.color, R0.y;\n"
      "END\n");
  const Swizzle& s = p.code[1].src[0].swizzle;
  EXPECT_EQ(s.comp, (std::array<std::uint8_t, 4>{1, 1, 1, 1}));
}

TEST(Assembler, FullSwizzleAndRgbaAliases) {
  const auto p = ok(
      "!!HSFP1.0\n"
      "MOV R0, {1.0, 2.0, 3.0, 4.0};\n"
      "MOV result.color, R0.wzyx;\n"
      "MOV result.color, R0.abgr;\n"
      "END\n");
  EXPECT_EQ(p.code[1].src[0].swizzle.comp,
            (std::array<std::uint8_t, 4>{3, 2, 1, 0}));
  EXPECT_EQ(p.code[2].src[0].swizzle.comp,
            (std::array<std::uint8_t, 4>{3, 2, 1, 0}));
}

TEST(Assembler, BadSwizzleLengthFails) {
  const std::string msg = err_of(
      "!!HSFP1.0\n"
      "MOV R0, {1.0};\n"
      "MOV result.color, R0.xy;\n"
      "END\n");
  EXPECT_NE(msg.find("swizzle"), std::string::npos);
}

TEST(Assembler, WriteMasks) {
  const auto p = ok(
      "!!HSFP1.0\n"
      "MOV R0.xz, {1.0};\n"
      "MOV R0.yw, {2.0};\n"
      "MOV result.color.xyz, R0;\n"
      "END\n");
  EXPECT_EQ(p.code[0].dst.write_mask, 0b0101);
  EXPECT_EQ(p.code[1].dst.write_mask, 0b1010);
  EXPECT_EQ(p.code[2].dst.write_mask, 0b0111);
}

TEST(Assembler, OutOfOrderWriteMaskFails) {
  const std::string msg = err_of(
      "!!HSFP1.0\n"
      "MOV R0.zx, {1.0};\n"
      "MOV result.color, R0;\n"
      "END\n");
  EXPECT_NE(msg.find("mask"), std::string::npos);
}

TEST(Assembler, NegatedSource) {
  const auto p = ok(
      "!!HSFP1.0\n"
      "MOV R0, {1.0};\n"
      "ADD result.color, R0, -R0;\n"
      "END\n");
  EXPECT_TRUE(p.code[1].src[1].negate);
}

TEST(Assembler, TexInstruction) {
  const auto p = ok(
      "!!HSFP1.0\n"
      "TEX R0, fragment.texcoord[0], texture[3];\n"
      "MOV result.color, R0;\n"
      "END\n");
  EXPECT_EQ(p.code[0].op, Opcode::TEX);
  EXPECT_EQ(p.code[0].tex_unit, 3);
  EXPECT_EQ(p.code[0].src_count, 1);
}

TEST(Assembler, TexWithoutUnitFails) {
  err_of(
      "!!HSFP1.0\n"
      "TEX R0, fragment.texcoord[0];\n"
      "MOV result.color, R0;\n"
      "END\n");
}

TEST(Assembler, UnknownOpcodeFails) {
  EXPECT_NE(err_of("!!HSFP1.0\nFOO result.color, {1.0};\nEND\n").find("FOO"),
            std::string::npos);
}

TEST(Assembler, UnknownRegisterFails) {
  err_of("!!HSFP1.0\nMOV result.color, bogus;\nEND\n");
}

TEST(Assembler, MissingSemicolonFails) {
  err_of("!!HSFP1.0\nMOV result.color, {1.0}\nEND\n");
}

TEST(Assembler, MrtOutputs) {
  const auto p = ok(
      "!!HSFP1.0\n"
      "MOV result.color[0], {1.0};\n"
      "MOV result.color[2], {2.0};\n"
      "END\n");
  EXPECT_EQ(p.code[0].dst.index, 0);
  EXPECT_EQ(p.code[1].dst.index, 2);
  EXPECT_EQ(p.max_output(), 2);
}

TEST(Assembler, ErrorCarriesLineNumber) {
  auto result = assemble("test",
                         "!!HSFP1.0\n"
                         "MOV R0, {1.0};\n"
                         "MOV result.color, bogus;\n"
                         "END\n");
  auto* err = std::get_if<AssembleError>(&result);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->line, 3);
}

TEST(Assembler, EveryOpcodeParses) {
  const auto p = ok(
      "!!HSFP1.0\n"
      "MOV R0, {1.0, 2.0, 3.0, 4.0};\n"
      "ABS R1, R0;\n"
      "FLR R2, R0;\n"
      "FRC R3, R0;\n"
      "RCP R4.x, R0.x;\n"
      "RSQ R5.x, R0.x;\n"
      "LG2 R6.x, R0.x;\n"
      "EX2 R7.x, R0.x;\n"
      "ADD R8, R0, R1;\n"
      "SUB R9, R0, R1;\n"
      "MUL R10, R0, R1;\n"
      "MIN R11, R0, R1;\n"
      "MAX R12, R0, R1;\n"
      "SLT R13, R0, R1;\n"
      "SGE R14, R0, R1;\n"
      "DP3 R15.x, R0, R1;\n"
      "DP4 R16.x, R0, R1;\n"
      "MAD R17, R0, R1, R2;\n"
      "CMP R18, R0, R1, R2;\n"
      "LRP R19, R0, R1, R2;\n"
      "MOV result.color, R19;\n"
      "END\n");
  EXPECT_EQ(p.code.size(), 21u);
  EXPECT_EQ(p.alu_instruction_count(), 21);
  EXPECT_EQ(p.tex_instruction_count(), 0);
}

TEST(Assembler, DisassembleRoundTrips) {
  const std::string src =
      "!!HSFP1.0\n"
      "TEX R0, fragment.texcoord[0], texture[0];\n"
      "ADD R1.xy, fragment.texcoord[0], c[3];\n"
      "TEX R2, R1, texture[1];\n"
      "SUB R3, R0, R2;\n"
      "DP4 R4.x, R3, R3;\n"
      "CMP R5.x, R4.x, R0.x, R2.x;\n"
      "MOV result.color.x, R5.x;\n"
      "END\n";
  const auto p1 = ok(src);
  const std::string dis = disassemble(p1);
  const auto p2 = ok(dis);
  ASSERT_EQ(p1.code.size(), p2.code.size());
  for (std::size_t i = 0; i < p1.code.size(); ++i) {
    EXPECT_EQ(p1.code[i].op, p2.code[i].op) << i;
    EXPECT_EQ(p1.code[i].dst.write_mask, p2.code[i].dst.write_mask) << i;
    EXPECT_EQ(p1.code[i].src_count, p2.code[i].src_count) << i;
    for (int s = 0; s < p1.code[i].src_count; ++s) {
      EXPECT_EQ(p1.code[i].src[static_cast<std::size_t>(s)].swizzle.comp,
                p2.code[i].src[static_cast<std::size_t>(s)].swizzle.comp)
          << i;
    }
  }
}

TEST(Assembler, RejectsTrailingGarbageInDestinationRegister) {
  // std::atoi("1Q") silently read 1, so "R1Q" assembled as R1.
  const std::string e = err_of(
      "!!HSFP1.0\nMOV R1Q, {1.0};\nMOV result.color, R0;\nEND\n");
  EXPECT_NE(e.find("R1Q"), std::string::npos) << e;
}

TEST(Assembler, RejectsTrailingGarbageInSourceRegister) {
  const std::string e = err_of("!!HSFP1.0\nMOV result.color, R2x;\nEND\n");
  EXPECT_NE(e.find("R2x"), std::string::npos) << e;
}

TEST(Assembler, RejectsOutOfRangeRegisterIndex) {
  // R260 used to wrap to R4 through the std::uint8_t narrowing cast.
  const std::string e = err_of(
      "!!HSFP1.0\nMOV R260, {1.0};\nMOV result.color, R0;\nEND\n");
  EXPECT_NE(e.find("R260"), std::string::npos) << e;
}

TEST(Assembler, RejectsOutOfRangeBracketedIndex) {
  // c[300] used to wrap to c[44]; the error must name the bad index.
  const std::string e = err_of("!!HSFP1.0\nMOV result.color, c[300];\nEND\n");
  EXPECT_NE(e.find("300"), std::string::npos) << e;
}

TEST(Assembler, AssembleOrDieReturnsProgram) {
  const auto p =
      assemble_or_die("clear", "!!HSFP1.0\nMOV result.color, {0.0};\nEND\n");
  EXPECT_EQ(p.name, "clear");
  EXPECT_EQ(p.code.size(), 1u);
}

}  // namespace
}  // namespace hs::gpusim
