#include "core/rx.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace hs::core {
namespace {

/// Background of correlated Gaussian spectra with `anomalies` implanted
/// pixels drawn from a very different distribution.
hsi::HyperCube scene_with_anomalies(int w, int h, int n,
                                    const std::vector<std::pair<int, int>>& anomalies,
                                    std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  hsi::HyperCube cube(w, h, n);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double base = 0.4 + 0.05 * rng.normal();
      for (int b = 0; b < n; ++b) {
        cube.at(x, y, b) = static_cast<float>(
            base + 0.01 * std::sin(0.3 * b) + 0.005 * rng.normal());
      }
    }
  }
  for (const auto& [ax, ay] : anomalies) {
    for (int b = 0; b < n; ++b) {
      cube.at(ax, ay, b) =
          static_cast<float>(0.1 + 0.8 * (b % 2));  // sawtooth: very unusual
    }
  }
  return cube;
}

TEST(Rx, ScoresAreNonNegative) {
  const auto cube = scene_with_anomalies(16, 16, 12, {}, 1);
  const RxResult result = rx_detect(cube);
  for (float s : result.scores) EXPECT_GE(s, -1e-4f);
}

TEST(Rx, ImplantedAnomaliesScoreHighest) {
  const std::vector<std::pair<int, int>> anomalies{{3, 4}, {12, 9}};
  const auto cube = scene_with_anomalies(16, 16, 12, anomalies, 2);
  const RxResult result = rx_detect(cube);
  // The two implants must carry the two largest scores.
  std::vector<float> sorted = result.scores;
  std::sort(sorted.begin(), sorted.end(), std::greater<float>());
  for (const auto& [ax, ay] : anomalies) {
    const float s = result.scores[static_cast<std::size_t>(ay) * 16 + static_cast<std::size_t>(ax)];
    EXPECT_GE(s, sorted[1]);
  }
}

TEST(Rx, DetectionsRespectFalseAlarmRate) {
  const auto cube = scene_with_anomalies(32, 32, 8, {{5, 5}}, 3);
  RxConfig cfg;
  cfg.false_alarm_rate = 0.01;
  const RxResult result = rx_detect(cube, cfg);
  // ~1% of 1024 pixels.
  EXPECT_LE(result.detections.size(), 16u);
  EXPECT_GE(result.detections.size(), 1u);
  // Detections are sorted by descending score and above threshold.
  for (std::size_t i = 1; i < result.detections.size(); ++i) {
    EXPECT_GE(result.scores[result.detections[i - 1]],
              result.scores[result.detections[i]]);
  }
  for (std::size_t idx : result.detections) {
    EXPECT_GT(result.scores[idx], result.threshold);
  }
}

TEST(Rx, TopDetectionIsTheImplant) {
  const auto cube = scene_with_anomalies(24, 24, 16, {{10, 7}}, 4);
  RxConfig cfg;
  // 576 pixels: the default 1e-3 quantile would sit above every score.
  cfg.false_alarm_rate = 0.005;
  const RxResult result = rx_detect(cube, cfg);
  ASSERT_FALSE(result.detections.empty());
  EXPECT_EQ(result.detections.front(), 7u * 24u + 10u);
}

TEST(Rx, MeanScoreNearBandCount) {
  // For Gaussian data, E[RX] = number of bands (Mahalanobis distance is
  // chi-squared with n degrees of freedom).
  const auto cube = scene_with_anomalies(32, 32, 10, {}, 5);
  const RxResult result = rx_detect(cube);
  double mean = 0;
  for (float s : result.scores) mean += s;
  mean /= static_cast<double>(result.scores.size());
  EXPECT_NEAR(mean, 10.0, 2.0);
}

TEST(Rx, HandlesRankDeficientBands) {
  // Two identical bands: covariance is singular without the ridge.
  hsi::HyperCube cube(8, 8, 3);
  util::Xoshiro256 rng(6);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const float v = static_cast<float>(rng.uniform(0.2, 0.8));
      cube.at(x, y, 0) = v;
      cube.at(x, y, 1) = v;  // duplicate band
      cube.at(x, y, 2) = static_cast<float>(rng.uniform(0.2, 0.8));
    }
  }
  EXPECT_NO_FATAL_FAILURE({ rx_detect(cube); });
}

}  // namespace
}  // namespace hs::core
