#include "util/timer.hpp"

#include <gtest/gtest.h>

namespace hs::util {
namespace {

TEST(FormatDuration, PicksAdaptiveUnits) {
  EXPECT_EQ(format_duration(1.5e-9), "1.50 ns");
  EXPECT_EQ(format_duration(2.5e-6), "2.50 us");
  EXPECT_EQ(format_duration(12.1771e-3), "12.18 ms");
  EXPECT_EQ(format_duration(3.25), "3.25 s");
}

TEST(FormatBytes, PicksAdaptiveUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(68 * 1000 * 1000ull), "68.0 MB");
  EXPECT_EQ(format_bytes(547 * 1000 * 1000ull), "547.0 MB");
  EXPECT_EQ(format_bytes(2'100'000'000ull), "2.10 GB");
}

TEST(Timer, MeasuresMonotonicallyNonNegative) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), 0.0);
  EXPECT_GE(t.microseconds(), 0.0);
}

}  // namespace
}  // namespace hs::util
