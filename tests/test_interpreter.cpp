#include "gpusim/interpreter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/assembler.hpp"

namespace hs::gpusim {
namespace {

/// Runs a one-liner program of the form "OP result.color, <operands>;"
/// with R0/R1/R2 preloaded from a/b/c.
float4 run_op(const std::string& body, float4 a = float4(0.f),
              float4 b = float4(0.f), float4 c = float4(0.f),
              ExecCounters* counters_out = nullptr) {
  std::string src = "!!HSFP1.0\n";
  src += "MOV R0, {" + std::to_string(a.x) + "," + std::to_string(a.y) + "," +
         std::to_string(a.z) + "," + std::to_string(a.w) + "};\n";
  src += "MOV R1, {" + std::to_string(b.x) + "," + std::to_string(b.y) + "," +
         std::to_string(b.z) + "," + std::to_string(b.w) + "};\n";
  src += "MOV R2, {" + std::to_string(c.x) + "," + std::to_string(c.y) + "," +
         std::to_string(c.z) + "," + std::to_string(c.w) + "};\n";
  src += body + "\n";
  src += "END\n";
  const auto program = assemble_or_die("op", src);
  FragmentContext ctx;
  ExecCounters counters;
  const auto result = execute_fragment(program, ctx, counters);
  if (counters_out) *counters_out = counters;
  EXPECT_TRUE(result.outputs_written & 1u);
  return result.color[0];
}

TEST(Interpreter, Mov) {
  EXPECT_EQ(run_op("MOV result.color, R0;", {1, 2, 3, 4}), float4(1, 2, 3, 4));
}

TEST(Interpreter, AddSubMul) {
  EXPECT_EQ(run_op("ADD result.color, R0, R1;", {1, 2, 3, 4}, {1, 1, 1, 1}),
            float4(2, 3, 4, 5));
  EXPECT_EQ(run_op("SUB result.color, R0, R1;", {1, 2, 3, 4}, {1, 1, 1, 1}),
            float4(0, 1, 2, 3));
  EXPECT_EQ(run_op("MUL result.color, R0, R1;", {1, 2, 3, 4}, {2, 2, 2, 2}),
            float4(2, 4, 6, 8));
}

TEST(Interpreter, MadComputesFusedForm) {
  EXPECT_EQ(run_op("MAD result.color, R0, R1, R2;", {1, 2, 3, 4}, {2, 2, 2, 2},
                   {10, 10, 10, 10}),
            float4(12, 14, 16, 18));
}

TEST(Interpreter, MinMax) {
  EXPECT_EQ(run_op("MIN result.color, R0, R1;", {1, 5, 3, 0}, {2, 4, 3, -1}),
            float4(1, 4, 3, -1));
  EXPECT_EQ(run_op("MAX result.color, R0, R1;", {1, 5, 3, 0}, {2, 4, 3, -1}),
            float4(2, 5, 3, 0));
}

TEST(Interpreter, SltSge) {
  EXPECT_EQ(run_op("SLT result.color, R0, R1;", {1, 2, 3, 4}, {2, 2, 2, 2}),
            float4(1, 0, 0, 0));
  EXPECT_EQ(run_op("SGE result.color, R0, R1;", {1, 2, 3, 4}, {2, 2, 2, 2}),
            float4(0, 1, 1, 1));
}

TEST(Interpreter, CmpSelectsOnNegativeCondition) {
  EXPECT_EQ(run_op("CMP result.color, R0, R1, R2;", {-1, 0, -0.5, 2},
                   {10, 10, 10, 10}, {20, 20, 20, 20}),
            float4(10, 20, 10, 20));
}

TEST(Interpreter, LrpInterpolates) {
  EXPECT_EQ(run_op("LRP result.color, R0, R1, R2;", {0.25f, 0.5f, 0, 1},
                   {8, 8, 8, 8}, {4, 4, 4, 4}),
            float4(5, 6, 4, 8));
}

TEST(Interpreter, AbsFlrFrc) {
  EXPECT_EQ(run_op("ABS result.color, R0;", {-1, 2, -3, 0}),
            float4(1, 2, 3, 0));
  EXPECT_EQ(run_op("FLR result.color, R0;", {1.5f, -1.5f, 2.0f, -0.1f}),
            float4(1, -2, 2, -1));
  const float4 frc =
      run_op("FRC result.color, R0;", {1.25f, -1.25f, 2.0f, 0.75f});
  EXPECT_FLOAT_EQ(frc.x, 0.25f);
  EXPECT_FLOAT_EQ(frc.y, 0.75f);
  EXPECT_FLOAT_EQ(frc.z, 0.0f);
  EXPECT_FLOAT_EQ(frc.w, 0.75f);
}

TEST(Interpreter, ScalarOpsBroadcast) {
  EXPECT_EQ(run_op("RCP result.color, R0.x;", {4, 9, 9, 9}),
            float4(0.25f, 0.25f, 0.25f, 0.25f));
  EXPECT_EQ(run_op("RSQ result.color, R0.y;", {0, 16, 0, 0}),
            float4(0.25f));
  EXPECT_EQ(run_op("LG2 result.color, R0.x;", {8, 0, 0, 0}), float4(3.f));
  EXPECT_EQ(run_op("EX2 result.color, R0.x;", {3, 0, 0, 0}), float4(8.f));
}

TEST(Interpreter, DotProducts) {
  EXPECT_EQ(run_op("DP3 result.color, R0, R1;", {1, 2, 3, 100}, {1, 1, 1, 100}),
            float4(6.f));
  EXPECT_EQ(run_op("DP4 result.color, R0, R1;", {1, 2, 3, 4}, {1, 1, 1, 1}),
            float4(10.f));
}

TEST(Interpreter, SwizzleReordersComponents) {
  EXPECT_EQ(run_op("MOV result.color, R0.wzyx;", {1, 2, 3, 4}),
            float4(4, 3, 2, 1));
}

TEST(Interpreter, NegateFlipsSign) {
  EXPECT_EQ(run_op("MOV result.color, -R0;", {1, -2, 3, -4}),
            float4(-1, 2, -3, 4));
}

TEST(Interpreter, WriteMaskPreservesOtherLanes) {
  const auto program = assemble_or_die("mask",
                                       "!!HSFP1.0\n"
                                       "MOV R0, {1.0, 1.0, 1.0, 1.0};\n"
                                       "MOV R0.yw, {9.0};\n"
                                       "MOV result.color, R0;\n"
                                       "END\n");
  FragmentContext ctx;
  ExecCounters counters;
  const auto result = execute_fragment(program, ctx, counters);
  EXPECT_EQ(result.color[0], float4(1, 9, 1, 9));
}

TEST(Interpreter, ConstantsComeFromContext) {
  const auto program = assemble_or_die("consts",
                                       "!!HSFP1.0\n"
                                       "MOV result.color, c[1];\n"
                                       "END\n");
  const float4 constants[2] = {{0, 0, 0, 0}, {5, 6, 7, 8}};
  FragmentContext ctx;
  ctx.constants = constants;
  ExecCounters counters;
  const auto result = execute_fragment(program, ctx, counters);
  EXPECT_EQ(result.color[0], float4(5, 6, 7, 8));
}

TEST(Interpreter, UnboundConstantReadsZero) {
  const auto program = assemble_or_die("consts",
                                       "!!HSFP1.0\n"
                                       "MOV result.color, c[9];\n"
                                       "END\n");
  FragmentContext ctx;
  ExecCounters counters;
  const auto result = execute_fragment(program, ctx, counters);
  EXPECT_EQ(result.color[0], float4(0.f));
}

TEST(Interpreter, TexcoordComesFromContext) {
  const auto program = assemble_or_die("tc",
                                       "!!HSFP1.0\n"
                                       "MOV result.color, fragment.texcoord[1];\n"
                                       "END\n");
  FragmentContext ctx;
  ctx.texcoord[1] = {3, 4, 0, 1};
  ExecCounters counters;
  const auto result = execute_fragment(program, ctx, counters);
  EXPECT_EQ(result.color[0], float4(3, 4, 0, 1));
}

TEST(Interpreter, TexFetchesFromBoundTexture) {
  Texture2D tex(4, 4, TextureFormat::RGBA32F);
  tex.store(2, 1, {7, 8, 9, 10});
  const Texture2D* textures[1] = {&tex};
  const auto program = assemble_or_die("tex",
                                       "!!HSFP1.0\n"
                                       "TEX R0, fragment.texcoord[0], texture[0];\n"
                                       "MOV result.color, R0;\n"
                                       "END\n");
  FragmentContext ctx;
  ctx.texcoord[0] = {2.5f, 1.5f, 0, 1};
  ctx.textures = textures;
  ExecCounters counters;
  const auto result = execute_fragment(program, ctx, counters);
  EXPECT_EQ(result.color[0], float4(7, 8, 9, 10));
  EXPECT_EQ(counters.tex_fetches, 1u);
  EXPECT_EQ(counters.tex_fetch_bytes, 16u);
}

TEST(Interpreter, DependentTexRead) {
  Texture2D tex(4, 4, TextureFormat::RGBA32F);
  tex.store(3, 2, {1, 2, 3, 4});
  const Texture2D* textures[1] = {&tex};
  const auto program = assemble_or_die("dep",
                                       "!!HSFP1.0\n"
                                       "ADD R0.xy, fragment.texcoord[0], c[0];\n"
                                       "TEX R1, R0, texture[0];\n"
                                       "MOV result.color, R1;\n"
                                       "END\n");
  const float4 constants[1] = {{1, 1, 0, 0}};
  FragmentContext ctx;
  ctx.texcoord[0] = {2.5f, 1.5f, 0, 1};
  ctx.constants = constants;
  ctx.textures = textures;
  ExecCounters counters;
  const auto result = execute_fragment(program, ctx, counters);
  EXPECT_EQ(result.color[0], float4(1, 2, 3, 4));
}

TEST(Interpreter, CountsAluAndTexSeparately) {
  Texture2D tex(2, 2, TextureFormat::R32F);
  const Texture2D* textures[1] = {&tex};
  const auto program = assemble_or_die("count",
                                       "!!HSFP1.0\n"
                                       "TEX R0, fragment.texcoord[0], texture[0];\n"
                                       "ADD R1, R0, R0;\n"
                                       "MUL R1, R1, R1;\n"
                                       "MOV result.color, R1;\n"
                                       "END\n");
  FragmentContext ctx;
  ctx.textures = textures;
  ExecCounters counters;
  execute_fragment(program, ctx, counters);
  EXPECT_EQ(counters.alu_instructions, 3u);
  EXPECT_EQ(counters.tex_fetches, 1u);
  EXPECT_EQ(counters.tex_fetch_bytes, 4u);
}

TEST(Interpreter, MultipleRenderTargets) {
  const auto program = assemble_or_die("mrt",
                                       "!!HSFP1.0\n"
                                       "MOV result.color[0], {1.0};\n"
                                       "MOV result.color[2], {2.0};\n"
                                       "END\n");
  FragmentContext ctx;
  ExecCounters counters;
  const auto result = execute_fragment(program, ctx, counters);
  EXPECT_EQ(result.outputs_written, 0b101);
  EXPECT_EQ(result.color[0], float4(1.f));
  EXPECT_EQ(result.color[2], float4(2.f));
}

TEST(Interpreter, TexCacheRecordsAccesses) {
  Texture2D tex(8, 8, TextureFormat::RGBA32F);
  const Texture2D* textures[1] = {&tex};
  const std::uint32_t ids[1] = {42};
  TextureCacheConfig cfg;
  TextureCache cache(cfg);
  const auto program = assemble_or_die("cached",
                                       "!!HSFP1.0\n"
                                       "TEX R0, fragment.texcoord[0], texture[0];\n"
                                       "MOV result.color, R0;\n"
                                       "END\n");
  FragmentContext ctx;
  ctx.texcoord[0] = {0.5f, 0.5f, 0, 1};
  ctx.textures = textures;
  ctx.texture_ids = ids;
  ctx.cache = &cache;
  ExecCounters counters;
  execute_fragment(program, ctx, counters);
  execute_fragment(program, ctx, counters);
  EXPECT_EQ(cache.stats().accesses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

}  // namespace
}  // namespace hs::gpusim
