#include "core/unmix_gpu.hpp"

#include <gtest/gtest.h>

#include "core/unmixing.hpp"
#include "util/rng.hpp"

namespace hs::core {
namespace {

std::vector<std::vector<float>> random_endmembers(int count, int bands,
                                                  std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<float>> e(static_cast<std::size_t>(count));
  for (auto& sig : e) {
    sig.resize(static_cast<std::size_t>(bands));
    for (auto& v : sig) v = static_cast<float>(rng.uniform(0.05, 1.0));
  }
  return e;
}

hsi::HyperCube mixture_cube(const std::vector<std::vector<float>>& e, int w,
                            int h, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const int bands = static_cast<int>(e[0].size());
  hsi::HyperCube cube(w, h, bands);
  std::vector<float> spec(static_cast<std::size_t>(bands));
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // Random positive abundances summing to ~1, plus a dominant one.
      std::vector<double> a(e.size());
      double sum = 0;
      for (auto& v : a) {
        v = rng.uniform(0.0, 0.3);
        sum += v;
      }
      a[rng.uniform_int(e.size())] += 1.0;
      sum += 1.0;
      std::fill(spec.begin(), spec.end(), 0.f);
      for (std::size_t k = 0; k < e.size(); ++k) {
        for (int b = 0; b < bands; ++b) {
          spec[static_cast<std::size_t>(b)] += static_cast<float>(
              a[k] / sum * static_cast<double>(e[k][static_cast<std::size_t>(b)]));
        }
      }
      cube.set_pixel(x, y, spec);
    }
  }
  return cube;
}

AmcGpuOptions fast_options() {
  AmcGpuOptions opt;
  opt.profile.fragment_pipes = 4;
  return opt;
}

TEST(UnmixGpu, LabelsMatchHostUnmixer) {
  const auto e = random_endmembers(6, 16, 1);
  const auto cube = mixture_cube(e, 12, 10, 2);
  const GpuUnmixReport gpu = unmix_gpu(cube, e, fast_options());
  const Unmixer host(e, UnmixingMethod::Unconstrained);
  const auto host_labels = host.classify_cube(cube);
  ASSERT_EQ(gpu.labels.size(), host_labels.size());
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < host_labels.size(); ++i) {
    if (gpu.labels[i] != host_labels[i]) ++disagreements;
  }
  // float (GPU) vs double (host) can flip near-ties only.
  EXPECT_LE(disagreements, host_labels.size() / 50);
}

TEST(UnmixGpu, AbundancesMatchHostWithinFloatTolerance) {
  const auto e = random_endmembers(5, 12, 3);
  const auto cube = mixture_cube(e, 8, 8, 4);
  const GpuUnmixReport gpu =
      unmix_gpu(cube, e, fast_options(), /*download_abundances=*/true);
  ASSERT_EQ(gpu.abundances.size(), cube.pixel_count() * 5);
  const Unmixer host(e, UnmixingMethod::Unconstrained);
  std::vector<float> spec(12);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      cube.pixel(x, y, spec);
      const auto a = host.abundances(spec);
      for (int k = 0; k < 5; ++k) {
        const float gpu_a =
            gpu.abundances[(static_cast<std::size_t>(y) * 8 + static_cast<std::size_t>(x)) * 5 +
                           static_cast<std::size_t>(k)];
        EXPECT_NEAR(gpu_a, a[static_cast<std::size_t>(k)],
                    1e-3 * std::max(1.0, std::fabs(a[static_cast<std::size_t>(k)])));
      }
    }
  }
}

TEST(UnmixGpu, PureEndmemberPixelsClassifyAsThemselves) {
  const auto e = random_endmembers(7, 20, 5);
  hsi::HyperCube cube(7, 1, 20);
  for (int k = 0; k < 7; ++k) cube.set_pixel(k, 0, e[static_cast<std::size_t>(k)]);
  const GpuUnmixReport gpu = unmix_gpu(cube, e, fast_options());
  for (int k = 0; k < 7; ++k) EXPECT_EQ(gpu.labels[static_cast<std::size_t>(k)], k);
}

TEST(UnmixGpu, ChunkedMatchesUnchunked) {
  const auto e = random_endmembers(5, 8, 6);
  const auto cube = mixture_cube(e, 16, 16, 7);
  const GpuUnmixReport whole = unmix_gpu(cube, e, fast_options());
  AmcGpuOptions chunked = fast_options();
  chunked.chunk_texel_budget = 16 * 4;
  const GpuUnmixReport parts = unmix_gpu(cube, e, chunked);
  EXPECT_GT(parts.chunk_count, 1u);
  EXPECT_EQ(whole.labels, parts.labels);
}

TEST(UnmixGpu, MoreThanFourEndmembersUseSeveralPackedTextures) {
  const auto e = random_endmembers(9, 16, 8);  // 3 packed textures
  const auto cube = mixture_cube(e, 6, 6, 9);
  const GpuUnmixReport gpu = unmix_gpu(cube, e, fast_options());
  for (int v : gpu.labels) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 9);
  }
  EXPECT_GT(gpu.modeled_seconds, 0.0);
}

TEST(UnmixGpu, PassCountMatchesStructure) {
  const auto e = random_endmembers(4, 8, 10);  // 2 groups, 1 packed texture
  const auto cube = mixture_cube(e, 8, 8, 11);
  const GpuUnmixReport gpu = unmix_gpu(cube, e, fast_options());
  // Per endmember: clear + 2 group passes + 1 pack; plus 1 argmax.
  EXPECT_EQ(gpu.totals.passes, 4u * (1 + 2 + 1) + 1u);
}

}  // namespace
}  // namespace hs::core
