#include "util/log.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

namespace hs::util {
namespace {

TEST(Log, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("none"), LogLevel::Off);
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

TEST(Log, LineFormatHasTimestampLevelAndThread) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Info);
  testing::internal::CaptureStderr();
  HS_LOG_INFO("hello %d", 42);
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(prev);

  // "[2026-08-06T12:34:56.789Z info tNN] hello 42\n"
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), '\n');
  EXPECT_NE(out.find(" info t"), std::string::npos);
  EXPECT_NE(out.find("] hello 42\n"), std::string::npos);
  // ISO-8601 shape: YYYY-MM-DDTHH:MM:SS.mmmZ right after the bracket.
  ASSERT_GE(out.size(), 25u);
  EXPECT_EQ(out[5], '-');
  EXPECT_EQ(out[8], '-');
  EXPECT_EQ(out[11], 'T');
  EXPECT_EQ(out[14], ':');
  EXPECT_EQ(out[17], ':');
  EXPECT_EQ(out[20], '.');
  EXPECT_EQ(out[24], 'Z');
  // Exactly one line per message.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(Log, ThresholdSuppresses) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Error);
  testing::internal::CaptureStderr();
  HS_LOG_DEBUG("dropped");
  HS_LOG_WARN("dropped too");
  HS_LOG_ERROR("kept");
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(prev);

  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept"), std::string::npos);
}

TEST(Log, ConcurrentMessagesDoNotInterleave) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Info);
  testing::internal::CaptureStderr();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        HS_LOG_INFO("thread-%d-message-%d-payload-payload-payload", t, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(prev);

  // Every line is a complete, well-formed message: starts with '[',
  // contains exactly one payload marker.
  int lines = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    const std::string line = out.substr(pos, nl - pos);
    EXPECT_EQ(line.front(), '[') << line;
    EXPECT_NE(line.find("-payload-payload-payload"), std::string::npos) << line;
    // A torn write would leave a second '[' mid-line.
    EXPECT_EQ(line.find('[', 1), std::string::npos) << line;
    ++lines;
    pos = nl + 1;
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
}

TEST(Log, LogKvRendersTokensQuotedStringsAndNumbers) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Info);
  testing::internal::CaptureStderr();
  logkv(LogLevel::Info, "job done",
        {{"state", "done"},
         {"detail", "queue full at depth=8"},
         {"attempts", 3},
         {"queue_ms", 4.25},
         {"cached", false}});
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(prev);

  // Plain tokens stay unquoted; values with spaces or '=' get quoted.
  EXPECT_NE(out.find("] job done state=done"), std::string::npos) << out;
  EXPECT_NE(out.find("detail=\"queue full at depth=8\""), std::string::npos)
      << out;
  EXPECT_NE(out.find("attempts=3"), std::string::npos) << out;
  EXPECT_NE(out.find("queue_ms=4.25"), std::string::npos) << out;
  EXPECT_NE(out.find("cached=false"), std::string::npos) << out;
  // Integral-valued doubles drop the trailing zeros entirely.
  EXPECT_EQ(out.find("3.000000"), std::string::npos) << out;
}

TEST(Log, LogKvQuotesEmbeddedQuotesAndBackslashes) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Info);
  testing::internal::CaptureStderr();
  logkv(LogLevel::Info, "m", {{"k", "say \"hi\" \\ there"}});
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(prev);
  EXPECT_NE(out.find("k=\"say \\\"hi\\\" \\\\ there\""), std::string::npos)
      << out;
}

TEST(Log, ScopedJobTagSuffixesEveryLineAndNests) {
  EXPECT_EQ(current_job_tag(), 0u);
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Info);
  testing::internal::CaptureStderr();
  {
    ScopedJobTag outer(7);
    EXPECT_EQ(current_job_tag(), 7u);
    HS_LOG_INFO("from logf");
    logkv(LogLevel::Info, "from logkv", {{"k", 1}});
    {
      ScopedJobTag inner(9);
      EXPECT_EQ(current_job_tag(), 9u);
      HS_LOG_INFO("nested");
    }
    EXPECT_EQ(current_job_tag(), 7u);
  }
  EXPECT_EQ(current_job_tag(), 0u);
  HS_LOG_INFO("untagged");
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(prev);

  EXPECT_NE(out.find("from logf job=7"), std::string::npos) << out;
  EXPECT_NE(out.find("from logkv k=1 job=7"), std::string::npos) << out;
  EXPECT_NE(out.find("nested job=9"), std::string::npos) << out;
  // The untagged line carries no job suffix.
  const std::size_t untagged = out.find("untagged");
  ASSERT_NE(untagged, std::string::npos);
  EXPECT_EQ(out.find("job=", untagged), std::string::npos) << out;
}

TEST(Log, JobTagIsPerThread) {
  ScopedJobTag tag(42);
  std::uint64_t seen = 99;
  std::thread([&] { seen = current_job_tag(); }).join();
  EXPECT_EQ(seen, 0u);
  EXPECT_EQ(current_job_tag(), 42u);
}

}  // namespace
}  // namespace hs::util
