#include "util/log.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

namespace hs::util {
namespace {

TEST(Log, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("none"), LogLevel::Off);
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

TEST(Log, LineFormatHasTimestampLevelAndThread) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Info);
  testing::internal::CaptureStderr();
  HS_LOG_INFO("hello %d", 42);
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(prev);

  // "[2026-08-06T12:34:56.789Z info tNN] hello 42\n"
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), '\n');
  EXPECT_NE(out.find(" info t"), std::string::npos);
  EXPECT_NE(out.find("] hello 42\n"), std::string::npos);
  // ISO-8601 shape: YYYY-MM-DDTHH:MM:SS.mmmZ right after the bracket.
  ASSERT_GE(out.size(), 25u);
  EXPECT_EQ(out[5], '-');
  EXPECT_EQ(out[8], '-');
  EXPECT_EQ(out[11], 'T');
  EXPECT_EQ(out[14], ':');
  EXPECT_EQ(out[17], ':');
  EXPECT_EQ(out[20], '.');
  EXPECT_EQ(out[24], 'Z');
  // Exactly one line per message.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(Log, ThresholdSuppresses) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Error);
  testing::internal::CaptureStderr();
  HS_LOG_DEBUG("dropped");
  HS_LOG_WARN("dropped too");
  HS_LOG_ERROR("kept");
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(prev);

  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept"), std::string::npos);
}

TEST(Log, ConcurrentMessagesDoNotInterleave) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Info);
  testing::internal::CaptureStderr();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        HS_LOG_INFO("thread-%d-message-%d-payload-payload-payload", t, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(prev);

  // Every line is a complete, well-formed message: starts with '[',
  // contains exactly one payload marker.
  int lines = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    const std::string line = out.substr(pos, nl - pos);
    EXPECT_EQ(line.front(), '[') << line;
    EXPECT_NE(line.find("-payload-payload-payload"), std::string::npos) << line;
    // A torn write would leave a second '[' mid-line.
    EXPECT_EQ(line.find('[', 1), std::string::npos) << line;
    ++lines;
    pos = nl + 1;
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
}

}  // namespace
}  // namespace hs::util
