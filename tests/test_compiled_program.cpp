// Unit tests for the pre-decoded execution engine's compiler
// (compiled_program.hpp): constant folding, dead-write elimination, the
// program cache's keying and LRU policy, and bit-identity of the compiled
// fast paths against the interpreter on hand-built corner-case programs.
#include <gtest/gtest.h>

#include <cstring>

#include "gpusim/compiled_program.hpp"
#include "gpusim/gpu_device.hpp"
#include "gpusim/interpreter.hpp"

namespace hs::gpusim {
namespace {

SrcOperand temp_src(std::uint8_t index,
                    std::array<std::uint8_t, 4> swz = {0, 1, 2, 3},
                    bool negate = false) {
  SrcOperand s;
  s.file = RegFile::Temp;
  s.index = index;
  s.swizzle.comp = swz;
  s.negate = negate;
  return s;
}

SrcOperand const_src(std::uint8_t index,
                     std::array<std::uint8_t, 4> swz = {0, 1, 2, 3},
                     bool negate = false) {
  SrcOperand s;
  s.file = RegFile::Const;
  s.index = index;
  s.swizzle.comp = swz;
  s.negate = negate;
  return s;
}

SrcOperand lit_src(float4 v) {
  SrcOperand s;
  s.file = RegFile::Literal;
  s.literal = v;
  return s;
}

SrcOperand tc_src(std::uint8_t index) {
  SrcOperand s;
  s.file = RegFile::TexCoord;
  s.index = index;
  return s;
}

Instruction ins1(Opcode op, RegFile dst_file, std::uint8_t dst_index,
                 std::uint8_t mask, SrcOperand a) {
  Instruction i;
  i.op = op;
  i.dst.file = dst_file;
  i.dst.index = dst_index;
  i.dst.write_mask = mask;
  i.src[0] = a;
  i.src_count = 1;
  return i;
}

Instruction ins2(Opcode op, RegFile dst_file, std::uint8_t dst_index,
                 std::uint8_t mask, SrcOperand a, SrcOperand b) {
  Instruction i = ins1(op, dst_file, dst_index, mask, a);
  i.src[1] = b;
  i.src_count = 2;
  return i;
}

Instruction tex_ins(std::uint8_t dst_index, SrcOperand coord,
                    std::uint8_t unit) {
  Instruction i;
  i.op = Opcode::TEX;
  i.dst.file = RegFile::Temp;
  i.dst.index = dst_index;
  i.src[0] = coord;
  i.src_count = 1;
  i.tex_unit = unit;
  return i;
}

FragmentProgram make_program(std::vector<Instruction> code) {
  FragmentProgram p;
  p.name = "test";
  p.code = std::move(code);
  EXPECT_TRUE(validate(p).empty());
  return p;
}

// ---- constant folding ------------------------------------------------------

TEST(CompiledProgram, ConstantOperandsFoldToImmediates) {
  const FragmentProgram p = make_program({
      ins2(Opcode::ADD, RegFile::Output, 0, 0xF,
           const_src(1, {3, 2, 1, 0}, /*negate=*/true), lit_src({1, 2, 3, 4})),
  });
  const float4 constants[2] = {{9, 9, 9, 9}, {10, 20, 30, 40}};
  const CompiledProgram cp = compile_program(p, constants, {});

  ASSERT_EQ(cp.code.size(), 1u);
  const CompiledSrc& a = cp.code[0].src[0];
  ASSERT_EQ(a.kind, CompiledSrc::Kind::Imm);
  EXPECT_EQ(a.imm, float4(-40.f, -30.f, -20.f, -10.f));  // swizzle, then negate
  const CompiledSrc& b = cp.code[0].src[1];
  ASSERT_EQ(b.kind, CompiledSrc::Kind::Imm);
  EXPECT_EQ(b.imm, float4(1.f, 2.f, 3.f, 4.f));
  EXPECT_EQ(cp.imm_count, 2);
}

TEST(CompiledProgram, UnboundConstantReadsFoldToZero) {
  const FragmentProgram p = make_program({
      ins1(Opcode::MOV, RegFile::Output, 0, 0xF, const_src(7)),
  });
  const float4 constants[1] = {{5, 5, 5, 5}};  // c[7] is out of range
  const CompiledProgram cp = compile_program(p, constants, {});
  ASSERT_EQ(cp.code[0].src[0].kind, CompiledSrc::Kind::Imm);
  EXPECT_EQ(cp.code[0].src[0].imm, float4(0.f));
}

// ---- dead-write elimination ------------------------------------------------

TEST(CompiledProgram, FullyOverwrittenTempWriteIsEliminated) {
  const FragmentProgram p = make_program({
      ins1(Opcode::MOV, RegFile::Temp, 0, 0xF, lit_src({1, 1, 1, 1})),
      ins1(Opcode::MOV, RegFile::Temp, 0, 0xF, lit_src({2, 2, 2, 2})),
      ins1(Opcode::MOV, RegFile::Output, 0, 0xF, temp_src(0)),
  });
  const CompiledProgram cp = compile_program(p, {}, {});
  EXPECT_EQ(cp.dce_removed, 1);
  ASSERT_EQ(cp.code.size(), 2u);
  EXPECT_EQ(cp.code[0].src[0].imm, float4(2.f, 2.f, 2.f, 2.f));
  // The interpreter still executed the dead MOV; analytic counters match it.
  EXPECT_EQ(cp.alu_per_fragment, 3u);
}

TEST(CompiledProgram, PartiallyDeadWriteShrinksItsMask) {
  const FragmentProgram p = make_program({
      ins1(Opcode::MOV, RegFile::Temp, 0, 0xF, lit_src({1, 2, 3, 4})),
      ins1(Opcode::MOV, RegFile::Temp, 0, 0x3, lit_src({8, 9, 0, 0})),
      ins1(Opcode::MOV, RegFile::Output, 0, 0xF, temp_src(0)),
  });
  const CompiledProgram cp = compile_program(p, {}, {});
  EXPECT_EQ(cp.dce_removed, 0);
  ASSERT_EQ(cp.code.size(), 3u);
  EXPECT_EQ(cp.code[0].write_mask, 0xC);  // .xy dead, .zw live
  EXPECT_EQ(cp.code[1].write_mask, 0x3);
}

TEST(CompiledProgram, OverwrittenOutputWriteIsEliminated) {
  const FragmentProgram p = make_program({
      ins1(Opcode::MOV, RegFile::Output, 0, 0xF, lit_src({1, 1, 1, 1})),
      ins1(Opcode::MOV, RegFile::Output, 0, 0xF, lit_src({2, 2, 2, 2})),
  });
  const CompiledProgram cp = compile_program(p, {}, {});
  EXPECT_EQ(cp.dce_removed, 1);
  ASSERT_EQ(cp.code.size(), 1u);
  // The bit is still reported: the interpreter sets it on every write.
  EXPECT_EQ(cp.outputs_written, 1u);
  EXPECT_EQ(cp.output_comp_mask[0], 0xF);
}

TEST(CompiledProgram, TexWithDeadResultIsKept) {
  Texture2D tex(4, 4, TextureFormat::RGBA32F);
  const Texture2D* textures[1] = {&tex};
  const FragmentProgram p = make_program({
      tex_ins(0, tc_src(0), 0),  // result never consumed
      ins1(Opcode::MOV, RegFile::Output, 0, 0xF, lit_src({1, 1, 1, 1})),
  });
  const CompiledProgram cp = compile_program(p, {}, textures);
  // The fetch has cache-model side effects; it must survive with its
  // original mask even though no lane is live.
  EXPECT_EQ(cp.dce_removed, 0);
  ASSERT_EQ(cp.code.size(), 2u);
  EXPECT_EQ(cp.code[0].op, Opcode::TEX);
  EXPECT_EQ(cp.code[0].write_mask, 0xF);
  EXPECT_EQ(cp.tex_per_fragment, 1u);
  EXPECT_EQ(cp.tex_bytes_per_fragment, 16u);
}

// ---- program cache ---------------------------------------------------------

TEST(ProgramCacheTest, RecompilesOnlyOnChangedSpecialization) {
  ProgramCache cache(4);
  const FragmentProgram p = make_program({
      ins1(Opcode::MOV, RegFile::Output, 0, 0xF, const_src(0)),
  });
  const float4 c1[1] = {{1, 2, 3, 4}};
  const float4 c2[1] = {{5, 6, 7, 8}};

  (void)cache.get(p, c1, {});
  EXPECT_EQ(cache.misses(), 1u);
  (void)cache.get(p, c1, {});
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  // Same instructions, different constant *values*: a new specialization.
  (void)cache.get(p, c2, {});
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ProgramCacheTest, TextureShapeIsPartOfTheKey) {
  ProgramCache cache(4);
  Texture2D small(4, 4, TextureFormat::RGBA32F);
  Texture2D large(8, 8, TextureFormat::RGBA32F);
  const FragmentProgram p = make_program({
      tex_ins(0, tc_src(0), 0),
      ins1(Opcode::MOV, RegFile::Output, 0, 0xF, temp_src(0)),
  });
  const Texture2D* bind_small[1] = {&small};
  const Texture2D* bind_large[1] = {&large};
  (void)cache.get(p, {}, bind_small);
  (void)cache.get(p, {}, bind_large);
  EXPECT_EQ(cache.misses(), 2u);
  (void)cache.get(p, {}, bind_small);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ProgramCacheTest, EvictsLeastRecentlyUsed) {
  ProgramCache cache(2);
  const float4 c[1] = {{0, 0, 0, 0}};
  auto program_with_value = [](float v) {
    return make_program({
        ins1(Opcode::MOV, RegFile::Output, 0, 0xF, lit_src(float4(v))),
    });
  };
  const FragmentProgram a = program_with_value(1.f);
  const FragmentProgram b = program_with_value(2.f);
  const FragmentProgram d = program_with_value(3.f);

  (void)cache.get(a, c, {});
  (void)cache.get(b, c, {});
  (void)cache.get(a, c, {});  // refresh a; b becomes LRU
  (void)cache.get(d, c, {});  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.get(a, c, {});
  EXPECT_EQ(cache.hits(), 2u);  // the refresh above plus this get
  (void)cache.get(b, c, {});    // must recompile
  EXPECT_EQ(cache.misses(), 4u);
}

// ---- compiled-vs-interpreter corner cases ----------------------------------

struct MiniPass {
  static constexpr int kW = 70;  // crosses the 64-fragment tile boundary
  static constexpr int kH = 5;

  /// Draws `p` under both engines over identical random-ish inputs and
  /// expects bitwise-equal target texels.
  static void expect_identical(const FragmentProgram& p,
                               AddressMode mode = AddressMode::ClampToEdge) {
    DeviceProfile profile = geforce_7800_gtx();
    profile.fragment_pipes = 2;
    SimConfig ci, cc;
    ci.exec_engine = ExecEngine::Interpreter;
    cc.exec_engine = ExecEngine::Compiled;
    Device di(profile, ci), dc(profile, cc);

    std::vector<float4> data(kW * kH);
    for (std::size_t i = 0; i < data.size(); ++i) {
      const float f = static_cast<float>(i);
      data[i] = {0.5f * f, -0.25f * f, 1.f + f, 7.f - f};
    }
    const float4 constants[2] = {{1.5f, -2.f, 0.25f, 8.f}, {3.f, 3.f, 3.f, 3.f}};

    PassStats si, sc;
    TextureHandle oi = 0, oc = 0;
    for (Device* dev : {&di, &dc}) {
      const TextureHandle in = dev->create_texture(kW, kH,
                                                   TextureFormat::RGBA32F, mode);
      const TextureHandle out = dev->create_texture(kW, kH,
                                                    TextureFormat::RGBA32F);
      dev->upload(in, data);
      const TextureHandle ins[1] = {in};
      const TextureHandle outs[1] = {out};
      const PassStats s = dev->draw(p, ins, constants, outs);
      if (dev == &di) { si = s; oi = out; } else { sc = s; oc = out; }
    }
    EXPECT_EQ(si.exec.alu_instructions, sc.exec.alu_instructions);
    EXPECT_EQ(si.exec.tex_fetches, sc.exec.tex_fetches);
    EXPECT_EQ(si.cache.hits, sc.cache.hits);
    EXPECT_EQ(si.cache.misses, sc.cache.misses);
    EXPECT_EQ(si.modeled_seconds, sc.modeled_seconds);
    const auto& ri = di.texture(oi).raw();
    const auto& rc = dc.texture(oc).raw();
    ASSERT_EQ(ri.size(), rc.size());
    EXPECT_EQ(0, std::memcmp(ri.data(), rc.data(), ri.size() * sizeof(float)));
  }
};

TEST(CompiledEngine, AliasHazardSwapMatchesInterpreter) {
  // MOV R0.xy, R0.yxzw reads lanes the same instruction overwrites.
  const FragmentProgram p = make_program({
      ins1(Opcode::MOV, RegFile::Temp, 0, 0xF, tc_src(0)),
      ins1(Opcode::MOV, RegFile::Temp, 0, 0x3, temp_src(0, {1, 0, 2, 3})),
      ins1(Opcode::MOV, RegFile::Output, 0, 0xF, temp_src(0)),
  });
  MiniPass::expect_identical(p);
}

TEST(CompiledEngine, ScalarAndDotOpsMatchInterpreter) {
  const FragmentProgram p = make_program({
      ins1(Opcode::MOV, RegFile::Temp, 0, 0xF, tc_src(0)),
      ins1(Opcode::RCP, RegFile::Temp, 1, 0xF, temp_src(0, {0, 0, 0, 0})),
      ins1(Opcode::RSQ, RegFile::Temp, 2, 0xF, temp_src(0, {1, 1, 1, 1})),
      ins1(Opcode::LG2, RegFile::Temp, 3, 0xF, temp_src(0, {3, 3, 3, 3})),
      ins1(Opcode::EX2, RegFile::Temp, 4, 0xF, temp_src(1, {1, 1, 1, 1})),
      ins2(Opcode::DP3, RegFile::Temp, 5, 0xF, temp_src(1), temp_src(2)),
      ins2(Opcode::DP4, RegFile::Temp, 6, 0x5, temp_src(3), temp_src(4)),
      ins2(Opcode::ADD, RegFile::Temp, 7, 0x5, temp_src(5), temp_src(6)),
      // Only the .xz lanes of R7 were written; consume just those.
      ins1(Opcode::MOV, RegFile::Output, 0, 0xF, temp_src(7, {0, 0, 2, 2})),
  });
  MiniPass::expect_identical(p);
}

TEST(CompiledEngine, SwizzledTexCoordTakesGenericPathAndMatches) {
  // coord .yx swaps s/t, so the fullscreen fast path must not engage --
  // on a non-square target the transposed fetch goes out of range and
  // exercises every address mode's wrap logic.
  const FragmentProgram p = make_program({
      tex_ins(0, [] {
        SrcOperand s = tc_src(0);
        s.swizzle.comp = {1, 0, 2, 3};
        return s;
      }(), 0),
      ins1(Opcode::MOV, RegFile::Output, 0, 0xF, temp_src(0)),
  });
  MiniPass::expect_identical(p, AddressMode::ClampToEdge);
  MiniPass::expect_identical(p, AddressMode::Repeat);
  MiniPass::expect_identical(p, AddressMode::ClampToBorder);
}

TEST(CompiledEngine, IdentityTexCoordFastPathMatches) {
  const FragmentProgram p = make_program({
      tex_ins(0, tc_src(0), 0),
      ins2(Opcode::MUL, RegFile::Output, 0, 0xF, temp_src(0),
           const_src(0)),
  });
  MiniPass::expect_identical(p, AddressMode::ClampToEdge);
  MiniPass::expect_identical(p, AddressMode::ClampToBorder);
}

TEST(CompiledEngine, DeviceCountersUnaffectedByDce) {
  // A program with a dead write still reports the interpreter's counters.
  DeviceProfile profile = geforce_7800_gtx();
  profile.fragment_pipes = 2;
  Device dev(profile);  // compiled engine is the default
  const TextureHandle out = dev.create_texture(8, 8, TextureFormat::RGBA32F);
  const FragmentProgram p = make_program({
      ins1(Opcode::MOV, RegFile::Temp, 0, 0xF, lit_src({1, 1, 1, 1})),  // dead
      ins1(Opcode::MOV, RegFile::Output, 0, 0xF, lit_src({2, 2, 2, 2})),
  });
  const TextureHandle outs[1] = {out};
  const PassStats stats = dev.draw(p, {}, {}, outs);
  EXPECT_EQ(stats.exec.alu_instructions, 64u * 2u);
  EXPECT_EQ(dev.texture(out).load(3, 3), float4(2.f, 2.f, 2.f, 2.f));
}

}  // namespace
}  // namespace hs::gpusim
