#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "util/rng.hpp"

namespace hs::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Matrix a(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  return a;
}

TEST(HouseholderQr, ExactSolveForSquareSystem) {
  Matrix a{{2, 1}, {1, 3}};
  const std::vector<double> x_true{1.0, -2.0};
  const auto b = a.multiply(x_true);
  HouseholderQr qr(a);
  const auto x = qr.solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
}

TEST(HouseholderQr, LeastSquaresMatchesNormalEquations) {
  const Matrix a = random_matrix(12, 5, 1);
  util::Xoshiro256 rng(2);
  std::vector<double> b(12);
  for (auto& v : b) v = rng.uniform(-1, 1);

  HouseholderQr qr(a);
  const auto x_qr = qr.solve(b);

  const auto chol = Cholesky::factor(a.gram());
  ASSERT_TRUE(chol.has_value());
  const auto x_ne = chol->solve(a.multiply_transposed(b));

  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x_qr[i], x_ne[i], 1e-9);
}

TEST(HouseholderQr, ResidualOrthogonalToColumnSpace) {
  const Matrix a = random_matrix(10, 4, 3);
  util::Xoshiro256 rng(4);
  std::vector<double> b(10);
  for (auto& v : b) v = rng.uniform(-1, 1);
  HouseholderQr qr(a);
  const auto x = qr.solve(b);
  const auto ax = a.multiply(x);
  std::vector<double> r(10);
  for (std::size_t i = 0; i < 10; ++i) r[i] = b[i] - ax[i];
  const auto atr = a.multiply_transposed(r);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(HouseholderQr, RFactorIsUpperTriangular) {
  const Matrix a = random_matrix(8, 4, 5);
  HouseholderQr qr(a);
  const Matrix r = qr.r();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(r(i, j), 0.0);
  }
}

TEST(HouseholderQr, RTransposeRReconstructsGram) {
  const Matrix a = random_matrix(9, 3, 6);
  HouseholderQr qr(a);
  const Matrix r = qr.r();
  const Matrix rtr = r.transposed() * r;
  EXPECT_LT(rtr.max_abs_diff(a.gram()), 1e-10);
}

TEST(HouseholderQr, RankDeficientColumnsYieldZeroCoefficient) {
  // Third column is a copy of the first: rank 2.
  Matrix a(6, 3);
  util::Xoshiro256 rng(7);
  for (std::size_t r = 0; r < 6; ++r) {
    a(r, 0) = rng.uniform(-1, 1);
    a(r, 1) = rng.uniform(-1, 1);
    a(r, 2) = a(r, 0);
  }
  HouseholderQr qr(a);
  EXPECT_LT(qr.min_diag_ratio(), 1e-12);
  std::vector<double> b(6);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto x = qr.solve(b);  // must not blow up
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(HouseholderQr, WellConditionedDiagRatioIsHealthy) {
  HouseholderQr qr(Matrix::identity(4));
  EXPECT_NEAR(qr.min_diag_ratio(), 1.0, 1e-12);
}

}  // namespace
}  // namespace hs::linalg
