#include "core/shaders.hpp"

#include <gtest/gtest.h>

#include "gpusim/assembler.hpp"

namespace hs::core {
namespace {

using gpusim::assemble;
using gpusim::AssembleError;
using gpusim::FragmentProgram;

FragmentProgram must_assemble(const std::string& name, const std::string& src) {
  auto result = assemble(name, src);
  auto* err = std::get_if<AssembleError>(&result);
  EXPECT_EQ(err, nullptr) << name << ": " << (err ? err->message : "");
  return std::get<FragmentProgram>(std::move(result));
}

TEST(Shaders, FixedKernelsAssemble) {
  must_assemble("clear", shaders::clear_source());
  must_assemble("band_sum", shaders::band_sum_source());
  must_assemble("normalize", shaders::normalize_source());
  must_assemble("log", shaders::log_source());
  must_assemble("cumdist_single", shaders::cumulative_distance_single_source());
  must_assemble("mei", shaders::mei_source());
}

class NeighborSweep : public ::testing::TestWithParam<int> {};

TEST_P(NeighborSweep, GeneratedKernelsAssembleForAnySeSize) {
  const int nb = GetParam();
  must_assemble("cumdist_fused", shaders::cumulative_distance_fused_source(nb));
  must_assemble("cumdist_inline",
                shaders::cumulative_distance_inline_log_source(nb));
  must_assemble("minmax_off", shaders::minmax_offsets_source(nb));
  must_assemble("minmax_idx", shaders::minmax_indices_source(nb));
}

INSTANTIATE_TEST_SUITE_P(SeSizes, NeighborSweep,
                         ::testing::Values(1, 5, 9, 13, 25, 49));

TEST(Shaders, InstructionBudgetsFitNv30Limits) {
  // Even a 7x7 SE must fit the era's 1024-instruction limit.
  const auto fused = must_assemble("f", shaders::cumulative_distance_fused_source(49));
  EXPECT_LE(fused.code.size(), 1024u);
  const auto inln =
      must_assemble("i", shaders::cumulative_distance_inline_log_source(49));
  EXPECT_LE(inln.code.size(), 1024u);
  const auto mm = must_assemble("m", shaders::minmax_offsets_source(49));
  EXPECT_LE(mm.code.size(), 1024u);
}

TEST(Shaders, FusedKernelCostScalesWithNeighbors) {
  const auto small = must_assemble("s", shaders::cumulative_distance_fused_source(9));
  const auto large = must_assemble("l", shaders::cumulative_distance_fused_source(25));
  EXPECT_GT(large.alu_instruction_count(), small.alu_instruction_count());
  // Two fetches per neighbor plus three fixed fetches.
  EXPECT_EQ(small.tex_instruction_count(), 2 * 9 + 3);
  EXPECT_EQ(large.tex_instruction_count(), 2 * 25 + 3);
}

TEST(Shaders, InlineLogTradesAluForFetches) {
  const auto fused = must_assemble("f", shaders::cumulative_distance_fused_source(9));
  const auto inln =
      must_assemble("i", shaders::cumulative_distance_inline_log_source(9));
  EXPECT_GT(inln.alu_instruction_count(), fused.alu_instruction_count());
  EXPECT_LT(inln.tex_instruction_count(), fused.tex_instruction_count());
}

TEST(Shaders, MinMaxReadsOnlyTheDbTexture) {
  const auto mm = must_assemble("m", shaders::minmax_offsets_source(9));
  EXPECT_EQ(mm.max_tex_unit(), 0);
  EXPECT_EQ(mm.tex_instruction_count(), 9);
  EXPECT_EQ(mm.max_constant(), 8);
}

TEST(Shaders, MeiUsesFourTextureUnits) {
  const auto mei = must_assemble("mei", shaders::mei_source());
  EXPECT_EQ(mei.max_tex_unit(), 3);
  // Five fetches: offsets, p/lp at both selected coordinates, accumulator.
  EXPECT_EQ(mei.tex_instruction_count(), 6);
}

TEST(Shaders, SingleOutputEverywhere) {
  // The AMC pipeline never relies on MRT, so it runs on NV3x-class parts.
  for (const auto& src :
       {shaders::clear_source(), shaders::band_sum_source(),
        shaders::normalize_source(), shaders::log_source(),
        shaders::cumulative_distance_fused_source(9),
        shaders::minmax_offsets_source(9), shaders::mei_source()}) {
    const auto p = must_assemble("p", src);
    EXPECT_EQ(p.max_output(), 0);
  }
}

}  // namespace
}  // namespace hs::core
