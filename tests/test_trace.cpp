#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <clocale>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "trace/histogram.hpp"
#include "trace/json_check.hpp"
#include "trace/snapshot.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace hs::trace {
namespace {

// gtest_discover_tests runs every TEST in its own process, so enabling /
// resetting the process-global recorder here cannot leak into other tests.

#if HS_TRACE_ENABLED

TEST(Trace, DisabledByDefaultRecordsNothing) {
  reset();
  ASSERT_FALSE(enabled());
  {
    Span span("outer", "test");
    EXPECT_FALSE(span.active());
    span.arg("k", 1.0);
  }
  EXPECT_EQ(event_count(), 0u);
}

TEST(Trace, SpanNestingDepths) {
  reset();
  set_enabled(true);
  {
    Span outer("outer", "test");
    {
      Span mid("mid", "test");
      Span inner("inner", "test");
      inner.end();
      mid.end();
    }
    outer.end();
  }
  set_enabled(false);

  const auto events = snapshot();
  ASSERT_EQ(events.size(), 3u);
  // snapshot() is sorted by start time: outer began first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "mid");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].depth, 2);
  for (const auto& e : events) {
    EXPECT_GE(e.dur_ns, 0);
    EXPECT_GE(e.start_ns, 0);
    // Children are contained in the outer span's interval.
    EXPECT_GE(e.start_ns, events[0].start_ns);
    EXPECT_LE(e.start_ns + e.dur_ns, events[0].start_ns + events[0].dur_ns);
  }
}

TEST(Trace, SpanArgsAreRecorded) {
  reset();
  set_enabled(true);
  {
    Span span("pass", "test");
    span.arg("fragments", 4096.0);
    span.arg("program", "band_sum");
  }
  set_enabled(false);

  const auto events = snapshot();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].arg_count, 2);
  EXPECT_STREQ(events[0].args[0].key, "fragments");
  EXPECT_TRUE(events[0].args[0].is_num);
  EXPECT_EQ(events[0].args[0].num, 4096.0);
  EXPECT_STREQ(events[0].args[1].key, "program");
  EXPECT_FALSE(events[0].args[1].is_num);
  EXPECT_EQ(events[0].args[1].str, "band_sum");
}

TEST(Trace, RuntimeDisableIsNoOp) {
  reset();
  set_enabled(true);
  { Span span("recorded", "test"); }
  set_enabled(false);
  { Span span("dropped", "test"); }
  EXPECT_EQ(event_count(), 1u);
}

TEST(Trace, ThreadSafetyUnderThreadPool) {
  reset();
  set_enabled(true);
  constexpr std::size_t kIters = 256;
  util::ThreadPool pool(4);
  pool.parallel_for(kIters, [](std::size_t) {
    Span outer("work", "mt");
    Span inner("inner", "mt");
    inner.arg("x", 1.0);
  });
  set_enabled(false);

  const auto events = snapshot();
  EXPECT_EQ(events.size(), 2 * kIters);
  std::size_t inner_count = 0;
  for (const auto& e : events) {
    if (e.name == "inner") {
      ++inner_count;
      EXPECT_EQ(e.depth, 1);
    } else {
      EXPECT_EQ(e.name, "work");
      EXPECT_EQ(e.depth, 0);
    }
  }
  EXPECT_EQ(inner_count, kIters);
}

TEST(Trace, ConcurrentCounterAndRegistryStress) {
  // N threads hammer registry lookups and counter increments for the same
  // names concurrently; totals must be exact and addresses stable.
  reset();
  constexpr std::size_t kThreads = 8;
  constexpr int kIters = 2000;
  Counter& shared = counter("stress.shared");
  Gauge& g = gauge("stress.gauge");
  util::ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](std::size_t t) {
    for (int i = 0; i < kIters; ++i) {
      // Registry lookup under contention must return the same instance.
      Counter& c = counter("stress.shared");
      ASSERT_EQ(&c, &shared);
      c.increment();
      counter("stress.thread." + std::to_string(t)).increment();
      g.set(static_cast<double>(i));
    }
  });
  EXPECT_EQ(shared.value(), static_cast<std::int64_t>(kThreads) * kIters);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(counter("stress.thread." + std::to_string(t)).value(), kIters);
  }
}

TEST(Trace, ConcurrentSpansFromTaskGroupAllRecorded) {
  // Spans opened and closed by fire-and-forget style tasks across a
  // TaskGroup: every span completes on its own thread and none is lost.
  reset();
  set_enabled(true);
  constexpr int kTasks = 300;
  util::ThreadPool pool(4);
  util::TaskGroup group(pool);
  for (int i = 0; i < kTasks; ++i) {
    group.submit([] {
      Span span("task", "group");
      span.arg("payload", 1.0);
    });
  }
  group.wait();
  set_enabled(false);
  const auto events = snapshot();
  std::size_t task_spans = 0;
  for (const auto& e : events) {
    if (e.name == "task" && e.cat == "group") ++task_spans;
  }
  EXPECT_EQ(task_spans, static_cast<std::size_t>(kTasks));
}

TEST(Trace, CounterAndGaugeRegistry) {
  reset();
  Counter& c = counter("test.counter");
  Gauge& g = gauge("test.gauge");
  c.increment();
  c.add(41);
  g.set(2.5);
  EXPECT_EQ(c.value(), 42);
  EXPECT_EQ(g.value(), 2.5);
  // Same name returns the same instance.
  EXPECT_EQ(&counter("test.counter"), &c);
  EXPECT_EQ(&gauge("test.gauge"), &g);

  const auto metrics = metrics_snapshot();
  const auto find = [&](const std::string& name) {
    const auto it = std::find_if(metrics.begin(), metrics.end(),
                                 [&](const auto& m) { return m.first == name; });
    return it == metrics.end() ? -1.0 : it->second;
  };
  EXPECT_EQ(find("test.counter"), 42.0);
  EXPECT_EQ(find("test.gauge"), 2.5);

  reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Trace, ResetClearsEventsAndRestartsClock) {
  reset();
  set_enabled(true);
  { Span span("before", "test"); }
  ASSERT_EQ(event_count(), 1u);
  reset();
  EXPECT_EQ(event_count(), 0u);
  { Span span("after", "test"); }
  set_enabled(false);
  const auto events = snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "after");
}

TEST(Trace, ChromeTraceRoundTripsThroughParser) {
  reset();
  set_enabled(true);
  counter("rt.counter").add(7);
  {
    Span outer("pipeline", "pipeline");
    Span stage("normalization", "stage");
    stage.arg("modeled_us", 12.5);
    stage.arg("label", "with \"quotes\" and \\ backslash\nnewline");
  }
  set_enabled(false);

  std::ostringstream os;
  write_chrome_trace(os);
  const std::string text = os.str();

  std::string error;
  const auto doc = json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(json::validate_chrome_trace(text, &error)) << error;

  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is(json::Value::Kind::Array));
  // 2 span events + at least one counter sample.
  ASSERT_GE(events->array.size(), 3u);

  std::size_t spans = 0;
  bool saw_stage = false;
  for (const auto& e : events->array) {
    const json::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      ++spans;
      const json::Value* name = e.find("name");
      ASSERT_NE(name, nullptr);
      if (name->string == "normalization") {
        saw_stage = true;
        const json::Value* args = e.find("args");
        ASSERT_NE(args, nullptr);
        const json::Value* us = args->find("modeled_us");
        ASSERT_NE(us, nullptr);
        EXPECT_EQ(us->number, 12.5);
        const json::Value* label = args->find("label");
        ASSERT_NE(label, nullptr);
        EXPECT_EQ(label->string, "with \"quotes\" and \\ backslash\nnewline");
      }
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_TRUE(saw_stage);
}

TEST(Trace, MetricsJsonMatchesBenchSchema) {
  reset();
  set_enabled(true);
  counter("m.hits").add(3);
  { Span span("stage_a", "stage"); }
  { Span span("stage_a", "stage"); }
  set_enabled(false);

  std::ostringstream os;
  write_metrics_json(os, "test_metrics");
  const std::string text = os.str();

  std::string error;
  ASSERT_TRUE(json::validate_metrics_json(text, &error)) << error << "\n" << text;

  const auto doc = json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const json::Value* name = doc->find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string, "test_metrics");
  const json::Value* results = doc->find("results");
  ASSERT_NE(results, nullptr);
  bool saw_span_row = false;
  for (const auto& row : results->array) {
    const json::Value* bench = row.find("bench");
    ASSERT_NE(bench, nullptr);
    if (bench->string == "span:stage:stage_a") {
      saw_span_row = true;
      const json::Value* count = row.find("count");
      ASSERT_NE(count, nullptr);
      EXPECT_EQ(count->number, 2.0);
    }
  }
  EXPECT_TRUE(saw_span_row);
}

TEST(Trace, SpansInheritTheThreadJobTag) {
  reset();
  set_enabled(true);
  {
    util::ScopedJobTag tag(17);
    Span span("serve.job", "serve");
  }
  { Span span("untagged", "serve"); }
  set_enabled(false);

  const auto events = snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].job, 17u);
  EXPECT_EQ(events[1].job, 0u);

  // The Chrome trace exports the tag as a "job" arg on tagged spans only.
  std::ostringstream os;
  write_chrome_trace(os);
  std::string error;
  const auto doc = json::parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  bool saw_tagged = false, saw_untagged = false;
  for (const auto& e : doc->find("traceEvents")->array) {
    const json::Value* name = e.find("name");
    if (name == nullptr) continue;
    if (name->string == "serve.job") {
      saw_tagged = true;
      const json::Value* args = e.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("job"), nullptr);
      EXPECT_EQ(args->find("job")->number, 17.0);
    } else if (name->string == "untagged") {
      saw_untagged = true;
      EXPECT_EQ(e.find("args"), nullptr);
    }
  }
  EXPECT_TRUE(saw_tagged);
  EXPECT_TRUE(saw_untagged);
}

TEST(Trace, SnapshotJsonValidatesAndCarriesRegistry) {
  reset();
  set_enabled(true);
  counter("snap.requests").add(5);
  gauge("snap.depth").set(3.0);
  histogram("snap.latency_s").record(0.010);
  histogram("snap.latency_s").record(0.020);
  set_enabled(false);

  std::ostringstream os;
  write_snapshot_json(os, "test-proc", 4);
  const std::string text = os.str();
  std::string error;
  ASSERT_TRUE(json::validate_snapshot_json(text, &error)) << error << "\n"
                                                          << text;

  const auto doc = json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("schema")->string, "hs.snapshot.v1");
  EXPECT_EQ(doc->find("name")->string, "test-proc");
  EXPECT_EQ(doc->find("sequence")->number, 4.0);
  bool saw_counter = false, saw_hist = false;
  for (const auto& m : doc->find("metrics")->array) {
    if (m.find("name")->string == "snap.requests") {
      saw_counter = true;
      EXPECT_EQ(m.find("value")->number, 5.0);
    }
  }
  for (const auto& h : doc->find("histograms")->array) {
    if (h.find("name")->string == "snap.latency_s") {
      saw_hist = true;
      EXPECT_EQ(h.find("count")->number, 2.0);
      EXPECT_NEAR(h.find("mean_ms")->number, 15.0, 1.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
}

TEST(Trace, SnapshotFileExportIsAtomicAndValid) {
  reset();
  counter("snap.file").add(1);
  const std::string path = ::testing::TempDir() + "/hs_snapshot_test.json";
  ASSERT_TRUE(write_snapshot_json_file(path, "file-test", 1));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  std::string error;
  EXPECT_TRUE(json::validate_snapshot_json(ss.str(), &error)) << error;
  // The tmp staging file must not linger after the rename.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(Trace, SummaryTablePrints) {
  reset();
  set_enabled(true);
  counter("s.count").increment();
  { Span span("stage_a", "stage"); }
  set_enabled(false);

  std::ostringstream os;
  print_summary(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("stage_a"), std::string::npos);
  EXPECT_NE(text.find("s.count"), std::string::npos);
}

#else  // HS_TRACE_ENABLED == 0

TEST(Trace, DisabledBuildEmitsValidEmptyDocuments) {
  set_enabled(true);  // no-op
  { Span span("dropped", "test"); }
  EXPECT_FALSE(enabled());
  EXPECT_EQ(event_count(), 0u);

  std::ostringstream os;
  write_chrome_trace(os);
  std::string error;
  EXPECT_TRUE(json::validate_chrome_trace(os.str(), &error)) << error;

  std::ostringstream ms;
  write_metrics_json(ms, "off");
  EXPECT_TRUE(json::validate_metrics_json(ms.str(), &error)) << error;

  // The snapshot document degrades to a valid empty registry, so hsi-top
  // and pollers keep working against an HS_TRACE=OFF process.
  std::ostringstream snap;
  write_snapshot_json(snap, "off", 1);
  EXPECT_TRUE(json::validate_snapshot_json(snap.str(), &error)) << error;
}

#endif  // HS_TRACE_ENABLED

TEST(TraceJson, ParserHandlesEscapesAndRejectsGarbage) {
  std::string error;
  const auto ok = json::parse(
      "{\"a\": [1, 2.5, -3e2], \"s\": \"q\\u0041\\n\", \"b\": true, "
      "\"n\": null}",
      &error);
  ASSERT_TRUE(ok.has_value()) << error;
  const json::Value* s = ok->find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->string, "qA\n");

  EXPECT_FALSE(json::parse("{", &error).has_value());
  EXPECT_FALSE(json::parse("{\"a\": 01}", &error).has_value());
  EXPECT_FALSE(json::parse("[1,]", &error).has_value());
  EXPECT_FALSE(json::parse("\"unterminated", &error).has_value());
  EXPECT_FALSE(json::parse("{} trailing", &error).has_value());
}

TEST(TraceJson, NumbersParseLocaleIndependently) {
  // Regression for strtod-based number parsing: under a comma-decimal
  // locale (de_DE style) "1.5" read back as 1, silently corrupting every
  // fractional value in a metrics document. The parser now uses
  // std::from_chars, which never consults the process locale. de_DE
  // locale data may not be installed; whatever subset of these names
  // installs (at minimum "C") must produce identical values.
  const char* const names[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                               "fr_FR.UTF-8", "C"};
  const std::string saved = std::setlocale(LC_NUMERIC, nullptr);
  int tried = 0;
  for (const char* name : names) {
    if (std::setlocale(LC_NUMERIC, name) == nullptr) continue;
    SCOPED_TRACE(std::string("LC_NUMERIC=") + name);
    ++tried;
    std::string error;
    const auto doc = json::parse(
        "{\"wall_seconds\": 1.5, \"speedup\": 2.25e-1, \"neg\": -0.125}",
        &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->find("wall_seconds")->number, 1.5);
    EXPECT_EQ(doc->find("speedup")->number, 0.225);
    EXPECT_EQ(doc->find("neg")->number, -0.125);
  }
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_GE(tried, 1);

  // Range extremes keep strtod's saturation semantics.
  std::string error;
  const auto doc = json::parse(
      "[1e999, -1e999, 1e-999, 12345678901234567890.5]", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->array[0].number, std::numeric_limits<double>::infinity());
  EXPECT_EQ(doc->array[1].number, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(doc->array[2].number, 0.0);
  EXPECT_EQ(doc->array[3].number, 12345678901234567890.5);
}

}  // namespace
}  // namespace hs::trace
