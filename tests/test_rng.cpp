#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace hs::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Xoshiro256, UniformMeanIsCentered) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformIntStaysBelowBound) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(7), 7u);
  }
}

TEST(Xoshiro256, UniformIntCoversAllResidues) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Xoshiro256, UniformIntOfOneIsZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Xoshiro256, NormalMomentsMatchStandardNormal) {
  Xoshiro256 rng(13);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoshiro256, NormalWithParametersScales) {
  Xoshiro256 rng(13);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  Xoshiro256 rng;
  (void)rng();  // callable
}

}  // namespace
}  // namespace hs::util
