#include "linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hs::linalg {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform(-1, 1);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

TEST(EigenSymmetric, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix d{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}};
  const auto eig = eigen_symmetric(d);
  ASSERT_TRUE(eig.converged);
  EXPECT_NEAR(eig.values[0], 3, 1e-12);
  EXPECT_NEAR(eig.values[1], 2, 1e-12);
  EXPECT_NEAR(eig.values[2], 1, 1e-12);
}

TEST(EigenSymmetric, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix m{{2, 1}, {1, 2}};
  const auto eig = eigen_symmetric(m);
  ASSERT_TRUE(eig.converged);
  EXPECT_NEAR(eig.values[0], 3, 1e-12);
  EXPECT_NEAR(eig.values[1], 1, 1e-12);
  // Leading eigenvector is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(eig.vectors(0, 0)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(std::fabs(eig.vectors(1, 0)), std::sqrt(0.5), 1e-10);
}

TEST(EigenSymmetric, ReconstructsTheMatrix) {
  const Matrix m = random_symmetric(8, 1);
  const auto eig = eigen_symmetric(m);
  ASSERT_TRUE(eig.converged);
  // A = V diag(L) V^T
  Matrix vl(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t k = 0; k < 8; ++k) {
      vl(i, k) = eig.vectors(i, k) * eig.values[k];
    }
  }
  const Matrix reconstructed = vl * eig.vectors.transposed();
  EXPECT_LT(reconstructed.max_abs_diff(m), 1e-9);
}

TEST(EigenSymmetric, VectorsAreOrthonormal) {
  const Matrix m = random_symmetric(10, 2);
  const auto eig = eigen_symmetric(m);
  ASSERT_TRUE(eig.converged);
  const Matrix vtv = eig.vectors.transposed() * eig.vectors;
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(10)), 1e-10);
}

TEST(EigenSymmetric, ValuesAreDescending) {
  const Matrix m = random_symmetric(12, 3);
  const auto eig = eigen_symmetric(m);
  for (std::size_t i = 1; i < eig.values.size(); ++i) {
    EXPECT_GE(eig.values[i - 1], eig.values[i]);
  }
}

TEST(EigenSymmetric, TraceEqualsEigenvalueSum) {
  const Matrix m = random_symmetric(9, 4);
  const auto eig = eigen_symmetric(m);
  double trace = 0, sum = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    trace += m(i, i);
    sum += eig.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-10);
}

TEST(EigenSymmetric, PsdMatrixHasNonNegativeValues) {
  util::Xoshiro256 rng(5);
  Matrix a(12, 6);
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 6; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  const auto eig = eigen_symmetric(a.gram());
  for (double v : eig.values) EXPECT_GE(v, -1e-10);
}

TEST(EigenSymmetric, OneByOne) {
  Matrix m{{7}};
  const auto eig = eigen_symmetric(m);
  ASSERT_TRUE(eig.converged);
  EXPECT_DOUBLE_EQ(eig.values[0], 7);
  EXPECT_NEAR(std::fabs(eig.vectors(0, 0)), 1.0, 1e-12);
}

}  // namespace
}  // namespace hs::linalg
