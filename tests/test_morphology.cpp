#include "core/morphology.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/distances.hpp"
#include "util/rng.hpp"

namespace hs::core {
namespace {

hsi::HyperCube random_cube(int w, int h, int n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  hsi::HyperCube cube(w, h, n);
  for (auto& v : cube.raw()) v = static_cast<float>(rng.uniform(0.05, 1.0));
  return cube;
}

/// Cube with one spectrally anomalous pixel in a homogeneous background.
hsi::HyperCube cube_with_anomaly(int w, int h, int n, int ax, int ay) {
  hsi::HyperCube cube(w, h, n);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int b = 0; b < n; ++b) {
        cube.at(x, y, b) = 0.5f;  // flat background spectrum
      }
    }
  }
  for (int b = 0; b < n; ++b) {
    // Strongly sloped anomaly spectrum.
    cube.at(ax, ay, b) = 0.05f + 0.9f * static_cast<float>(b) / static_cast<float>(n - 1);
  }
  return cube;
}

TEST(MorphologyReference, ConstantImageHasZeroMeiAndDb) {
  hsi::HyperCube cube(6, 6, 8);
  for (auto& v : cube.raw()) v = 0.3f;
  const MorphOutputs out = morphology_reference(cube, StructuringElement::square(1));
  for (float v : out.db) EXPECT_NEAR(v, 0.f, 1e-12f);
  for (float v : out.mei) EXPECT_NEAR(v, 0.f, 1e-12f);
}

TEST(MorphologyReference, OutputsAreNonNegative) {
  const auto cube = random_cube(10, 8, 12, 1);
  const MorphOutputs out = morphology_reference(cube, StructuringElement::square(1));
  for (float v : out.db) EXPECT_GE(v, 0.f);
  for (float v : out.mei) EXPECT_GE(v, -1e-6f);
}

TEST(MorphologyReference, AnomalyPeaksTheMei) {
  const auto cube = cube_with_anomaly(9, 9, 16, 4, 4);
  const MorphOutputs out = morphology_reference(cube, StructuringElement::square(1));
  // MEI is maximal somewhere in the anomaly's neighborhood (the SID between
  // the selected extreme pair is largest where the anomaly participates).
  float best = 0;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < out.mei.size(); ++i) {
    if (out.mei[i] > best) {
      best = out.mei[i];
      best_idx = i;
    }
  }
  const int bx = static_cast<int>(best_idx % 9);
  const int by = static_cast<int>(best_idx / 9);
  EXPECT_LE(std::abs(bx - 4), 1);
  EXPECT_LE(std::abs(by - 4), 1);
  EXPECT_GT(best, 0.01f);
  // Far corner is undisturbed background.
  EXPECT_NEAR(out.mei[0], 0.f, 1e-10f);
}

TEST(MorphologyReference, DilationSelectsTheAnomaly) {
  const auto cube = cube_with_anomaly(9, 9, 16, 4, 4);
  const StructuringElement se = StructuringElement::square(1);
  const MorphOutputs out = morphology_reference(cube, se);
  // At the anomaly pixel itself, the dilation (argmax of neighborhood D_B)
  // must select the anomaly: its D_B dominates its neighbors'.
  const std::size_t center = 4u * 9u + 4u;
  const auto [dx, dy] = se.offsets[out.dilation_index[center]];
  EXPECT_EQ(dx, 0);
  EXPECT_EQ(dy, 0);
  // And the erosion must select some *other* pixel.
  const auto [ex, ey] = se.offsets[out.erosion_index[center]];
  EXPECT_FALSE(ex == 0 && ey == 0);
}

TEST(MorphologyReference, DbMatchesDirectSidSum) {
  const auto cube = random_cube(5, 5, 8, 2);
  const StructuringElement se = StructuringElement::square(1);
  const MorphOutputs out = morphology_reference(cube, se);
  // Independent recomputation via the public sid() for an interior pixel.
  std::vector<float> a(8), b(8);
  const int x = 2, y = 2;
  cube.pixel(x, y, a);
  double expected = 0;
  for (const auto& [dx, dy] : se.offsets) {
    cube.pixel(x + dx, y + dy, b);
    expected += sid(a, b);
  }
  EXPECT_NEAR(out.db[2 * 5 + 2], expected, 1e-5 * expected + 1e-7);
}

TEST(MorphologyReference, BorderClampsToEdge) {
  // A 1x1-wide image exercises the clamp heavily: every neighbor is the
  // pixel itself, so D_B and MEI are exactly zero.
  hsi::HyperCube cube(1, 1, 8);
  for (int b = 0; b < 8; ++b) cube.at(0, 0, b) = 0.1f * static_cast<float>(b + 1);
  const MorphOutputs out = morphology_reference(cube, StructuringElement::square(1));
  EXPECT_NEAR(out.db[0], 0.f, 1e-12f);
  EXPECT_NEAR(out.mei[0], 0.f, 1e-12f);
}

TEST(MorphologyReference, ScaleInvariancePerPixelGains) {
  // Per-pixel brightness scaling leaves normalized spectra unchanged, so
  // the whole morphology output is (numerically) invariant.
  auto cube = random_cube(6, 6, 10, 3);
  const MorphOutputs base = morphology_reference(cube, StructuringElement::square(1));
  util::Xoshiro256 rng(4);
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 6; ++x) {
      const float gain = static_cast<float>(rng.uniform(0.5, 2.0));
      for (int b = 0; b < 10; ++b) cube.at(x, y, b) *= gain;
    }
  }
  const MorphOutputs scaled = morphology_reference(cube, StructuringElement::square(1));
  for (std::size_t i = 0; i < base.mei.size(); ++i) {
    EXPECT_NEAR(scaled.mei[i], base.mei[i], 1e-4f * std::max(1.f, base.mei[i]));
  }
}

TEST(MorphologyVectorized, MatchesReferenceClosely) {
  const auto cube = random_cube(12, 10, 18, 5);
  const StructuringElement se = StructuringElement::square(1);
  const MorphOutputs ref = morphology_reference(cube, se);
  const MorphOutputs vec = morphology_vectorized(cube, se);
  ASSERT_EQ(ref.mei.size(), vec.mei.size());
  std::size_t index_mismatches = 0;
  for (std::size_t i = 0; i < ref.mei.size(); ++i) {
    EXPECT_NEAR(vec.db[i], ref.db[i], 1e-3f * std::max(1.f, ref.db[i]) + 1e-4f);
    if (vec.erosion_index[i] != ref.erosion_index[i]) ++index_mismatches;
    if (vec.dilation_index[i] != ref.dilation_index[i]) ++index_mismatches;
  }
  // float-vs-double rounding can flip near-tie argmin/argmax decisions on
  // a few pixels; it must stay rare.
  EXPECT_LE(index_mismatches, ref.mei.size() / 20);
}

TEST(MorphologyVectorized, ConstantImageIsExactlyZero) {
  hsi::HyperCube cube(5, 5, 7);
  for (auto& v : cube.raw()) v = 0.25f;
  const MorphOutputs out = morphology_vectorized(cube, StructuringElement::square(1));
  for (float v : out.db) EXPECT_EQ(v, 0.f);
  for (float v : out.mei) EXPECT_EQ(v, 0.f);
}

TEST(MorphologyVectorized, PaddedBandsDoNotContribute) {
  // bands = 6 pads two zero lanes; results must match the same data with
  // bands = 8 where the extra bands are tiny-but-equal across pixels
  // (contributing ~0). Cheap proxy: 6-band run must be finite and
  // non-negative everywhere.
  const auto cube = random_cube(7, 7, 6, 6);
  const MorphOutputs out = morphology_vectorized(cube, StructuringElement::square(1));
  for (float v : out.db) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.f);
  }
}

class MorphologySeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MorphologySeSweep, LargerSeNeverShrinksDb) {
  // D_B sums SID over more neighbors as the SE grows, so per-pixel D_B is
  // monotone in SE inclusion.
  const auto cube = random_cube(9, 9, 8, 7);
  const MorphOutputs small =
      morphology_reference(cube, StructuringElement::square(1));
  const MorphOutputs large =
      morphology_reference(cube, StructuringElement::square(GetParam()));
  for (std::size_t i = 0; i < small.db.size(); ++i) {
    EXPECT_GE(large.db[i], small.db[i] - 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, MorphologySeSweep, ::testing::Values(2, 3));

TEST(Morphology, CrossSeIsSubsetOfSquare) {
  const auto cube = random_cube(8, 8, 8, 8);
  const MorphOutputs cross =
      morphology_reference(cube, StructuringElement::cross(1));
  const MorphOutputs square =
      morphology_reference(cube, StructuringElement::square(1));
  for (std::size_t i = 0; i < cross.db.size(); ++i) {
    EXPECT_LE(cross.db[i], square.db[i] + 1e-6f);
  }
}

}  // namespace
}  // namespace hs::core
