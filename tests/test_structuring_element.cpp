#include "core/structuring_element.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hs::core {
namespace {

TEST(StructuringElement, Square1IsThePapersThreeByThree) {
  const StructuringElement se = StructuringElement::square(1);
  EXPECT_EQ(se.size(), 9);
  EXPECT_EQ(se.radius, 1);
  // Fixed row-major scan order; (0,0) is offset index 4.
  EXPECT_EQ(se.offsets[0], std::make_pair(-1, -1));
  EXPECT_EQ(se.offsets[4], std::make_pair(0, 0));
  EXPECT_EQ(se.offsets[8], std::make_pair(1, 1));
}

TEST(StructuringElement, SquareSizesScaleQuadratically) {
  EXPECT_EQ(StructuringElement::square(0).size(), 1);
  EXPECT_EQ(StructuringElement::square(2).size(), 25);
  EXPECT_EQ(StructuringElement::square(3).size(), 49);
}

TEST(StructuringElement, CrossHasArmsOnly) {
  const StructuringElement se = StructuringElement::cross(2);
  EXPECT_EQ(se.size(), 9);  // 2*2*radius + 1
  for (const auto& [dx, dy] : se.offsets) {
    EXPECT_TRUE(dx == 0 || dy == 0);
  }
}

TEST(StructuringElement, DiskExcludesCorners) {
  const StructuringElement se = StructuringElement::disk(2);
  EXPECT_EQ(se.size(), 13);
  for (const auto& [dx, dy] : se.offsets) {
    EXPECT_LE(dx * dx + dy * dy, 4);
  }
}

TEST(StructuringElement, AllContainOrigin) {
  for (const auto& se :
       {StructuringElement::square(2), StructuringElement::cross(3),
        StructuringElement::disk(2)}) {
    EXPECT_NE(std::find(se.offsets.begin(), se.offsets.end(),
                        std::make_pair(0, 0)),
              se.offsets.end());
  }
}

TEST(StructuringElement, OffsetsAreUnique) {
  const StructuringElement se = StructuringElement::square(2);
  auto sorted = se.offsets;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

}  // namespace
}  // namespace hs::core
