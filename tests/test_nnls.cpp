#include "linalg/nnls.hpp"

#include <gtest/gtest.h>

#include "linalg/cholesky.hpp"
#include "util/rng.hpp"

namespace hs::linalg {
namespace {

TEST(Nnls, RecoversNonNegativeExactSolution) {
  Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const std::vector<double> x_true{2.0, 3.0};
  const auto b = a.multiply(x_true);
  const auto result = nnls(a, b);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 2.0, 1e-9);
  EXPECT_NEAR(result.x[1], 3.0, 1e-9);
  EXPECT_NEAR(result.residual_norm, 0.0, 1e-9);
}

TEST(Nnls, ClampsNegativeComponent) {
  // Unconstrained solution has a negative coefficient; NNLS must zero it.
  Matrix a{{1, 0}, {0, 1}};
  const std::vector<double> b{-1.0, 2.0};
  const auto result = nnls(a, b);
  EXPECT_DOUBLE_EQ(result.x[0], 0.0);
  EXPECT_NEAR(result.x[1], 2.0, 1e-12);
  EXPECT_NEAR(result.residual_norm, 1.0, 1e-12);
}

TEST(Nnls, AllComponentsNonNegativeOnRandomProblems) {
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix a(8, 4);
    std::vector<double> b(8);
    for (std::size_t r = 0; r < 8; ++r) {
      b[r] = rng.uniform(-1, 1);
      for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1, 1);
    }
    const auto result = nnls(a, b);
    for (double v : result.x) EXPECT_GE(v, 0.0);
  }
}

TEST(Nnls, MatchesUnconstrainedWhenInterior) {
  // Construct b = A x with strictly positive x; NNLS should match the
  // unconstrained least squares solution.
  util::Xoshiro256 rng(2);
  Matrix a(10, 3);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(0.1, 1.0);
  }
  const std::vector<double> x_true{0.5, 1.5, 0.7};
  const auto b = a.multiply(x_true);
  const auto result = nnls(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(result.x[i], x_true[i], 1e-7);
}

TEST(Nnls, KktConditionsHold) {
  util::Xoshiro256 rng(3);
  Matrix a(12, 5);
  std::vector<double> b(12);
  for (std::size_t r = 0; r < 12; ++r) {
    b[r] = rng.uniform(-1, 1);
    for (std::size_t c = 0; c < 5; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  const auto result = nnls(a, b);
  ASSERT_TRUE(result.converged);
  // Gradient w = A^T (b - A x): w <= 0 on the active set, ~0 on passive.
  const auto ax = a.multiply(result.x);
  std::vector<double> r(12);
  for (std::size_t i = 0; i < 12; ++i) r[i] = b[i] - ax[i];
  const auto w = a.multiply_transposed(r);
  for (std::size_t j = 0; j < 5; ++j) {
    if (result.x[j] > 1e-9) {
      EXPECT_NEAR(w[j], 0.0, 1e-7) << "passive component gradient";
    } else {
      EXPECT_LE(w[j], 1e-7) << "active component gradient must be <= 0";
    }
  }
}

TEST(Nnls, ResidualNeverWorseThanZeroVector) {
  util::Xoshiro256 rng(4);
  Matrix a(6, 3);
  std::vector<double> b(6);
  for (std::size_t r = 0; r < 6; ++r) {
    b[r] = rng.uniform(-1, 1);
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  const auto result = nnls(a, b);
  EXPECT_LE(result.residual_norm, norm2(b) + 1e-12);
}

}  // namespace
}  // namespace hs::linalg
