#include "stream/chunker.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace hs::stream {
namespace {

/// Property: the interiors of all chunks exactly partition the image.
void expect_partition(const ChunkPlan& plan, int width, int height) {
  std::vector<int> cover(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), 0);
  for (const auto& c : plan.chunks) {
    EXPECT_GE(c.x0, 0);
    EXPECT_GE(c.y0, 0);
    EXPECT_LE(c.x0 + c.width, width);
    EXPECT_LE(c.y0 + c.height, height);
    for (int y = c.y0; y < c.y0 + c.height; ++y) {
      for (int x = c.x0; x < c.x0 + c.width; ++x) {
        ++cover[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                static_cast<std::size_t>(x)];
      }
    }
  }
  for (int v : cover) EXPECT_EQ(v, 1);
}

TEST(Chunker, SingleChunkWhenBudgetIsLarge) {
  const ChunkPlan plan = plan_chunks(64, 64, 2, 1 << 20);
  ASSERT_EQ(plan.chunks.size(), 1u);
  const ChunkRect& c = plan.chunks[0];
  EXPECT_EQ(c.width, 64);
  EXPECT_EQ(c.height, 64);
  EXPECT_EQ(c.pwidth, 64);  // halo clipped at image borders
  EXPECT_EQ(c.pheight, 64);
}

TEST(Chunker, RowBandsWhenWidthFits) {
  const ChunkPlan plan = plan_chunks(64, 64, 2, 64 * 20);
  EXPECT_GT(plan.chunks.size(), 1u);
  for (const auto& c : plan.chunks) {
    EXPECT_EQ(c.width, 64) << "row bands span the full width";
    EXPECT_LE(static_cast<std::uint64_t>(c.pwidth) * static_cast<std::uint64_t>(c.pheight),
              64u * 20u);
  }
  expect_partition(plan, 64, 64);
}

TEST(Chunker, FallsBackTo2dTiles) {
  // A single padded row of width 1000 exceeds the budget: must tile in 2-D.
  const ChunkPlan plan = plan_chunks(1000, 100, 2, 900);
  EXPECT_GT(plan.chunks.size(), 1u);
  for (const auto& c : plan.chunks) {
    EXPECT_LE(static_cast<std::uint64_t>(c.pwidth) * static_cast<std::uint64_t>(c.pheight),
              900u);
  }
  expect_partition(plan, 1000, 100);
}

TEST(Chunker, HaloExtendsPaddedRegionInsideImage) {
  const ChunkPlan plan = plan_chunks(64, 64, 3, 64 * 24);
  ASSERT_GT(plan.chunks.size(), 1u);
  // An interior chunk (not first, not last) has halo on both sides.
  bool found_interior = false;
  for (const auto& c : plan.chunks) {
    if (c.y0 > 0 && c.y0 + c.height < 64) {
      found_interior = true;
      EXPECT_EQ(c.py0, c.y0 - 3);
      EXPECT_EQ(c.pheight, c.height + 6);
      EXPECT_EQ(c.interior_dy(), 3);
    }
  }
  EXPECT_TRUE(found_interior);
}

TEST(Chunker, HaloClippedAtImageBorders) {
  const ChunkPlan plan = plan_chunks(32, 32, 4, 32 * 12);
  const ChunkRect& first = plan.chunks.front();
  EXPECT_EQ(first.py0, 0);
  EXPECT_EQ(first.interior_dy(), 0);
  const ChunkRect& last = plan.chunks.back();
  EXPECT_EQ(last.py0 + last.pheight, 32);
}

TEST(Chunker, ZeroHaloWorks) {
  const ChunkPlan plan = plan_chunks(16, 16, 0, 40);
  for (const auto& c : plan.chunks) {
    EXPECT_EQ(c.pwidth, c.width);
    EXPECT_EQ(c.pheight, c.height);
  }
  expect_partition(plan, 16, 16);
}

class ChunkerPropertySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ChunkerPropertySweep, InteriorsPartitionAndBudgetsHold) {
  const auto [w, h, halo, budget] = GetParam();
  const ChunkPlan plan = plan_chunks(w, h, halo, static_cast<std::uint64_t>(budget));
  expect_partition(plan, w, h);
  for (const auto& c : plan.chunks) {
    EXPECT_LE(static_cast<std::uint64_t>(c.pwidth) * static_cast<std::uint64_t>(c.pheight),
              static_cast<std::uint64_t>(budget));
    // Padded region contains the interior.
    EXPECT_LE(c.px0, c.x0);
    EXPECT_LE(c.py0, c.y0);
    EXPECT_GE(c.px0 + c.pwidth, c.x0 + c.width);
    EXPECT_GE(c.py0 + c.pheight, c.y0 + c.height);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChunkerPropertySweep,
    ::testing::Values(std::make_tuple(31, 17, 2, 500),
                      std::make_tuple(128, 128, 2, 4096),
                      std::make_tuple(7, 200, 1, 100),
                      std::make_tuple(200, 7, 1, 100),
                      std::make_tuple(1, 1, 2, 25),
                      std::make_tuple(999, 3, 2, 5000),
                      std::make_tuple(64, 64, 0, 64),
                      std::make_tuple(50, 50, 5, 3000)));

// Regression: a generous budget (the request schema admits up to 1 << 62)
// used to overflow the `int` cast of budget / padded_width into a negative
// tile height and abort on the HS_ASSERT.
TEST(Chunker, HugeBudgetsDoNotOverflowTileSizing) {
  for (const std::uint64_t budget :
       {std::uint64_t{1} << 33, std::uint64_t{1} << 40,
        std::uint64_t{1} << 62}) {
    const ChunkPlan narrow = plan_chunks(3, 5, 1, budget);
    ASSERT_EQ(narrow.chunks.size(), 1u);
    expect_partition(narrow, 3, 5);
    const ChunkPlan wide = plan_chunks(1000, 2, 4, budget);
    ASSERT_EQ(wide.chunks.size(), 1u);
    expect_partition(wide, 1000, 2);
  }
}

// Property: every chunk's padded footprint respects the budget, swept from
// the tightest budget the precondition admits ((2*halo+1)^2) upward.
TEST(Chunker, TightBudgetSweepRespectsBudget) {
  for (const int halo : {0, 1, 2, 5}) {
    const std::uint64_t edge = static_cast<std::uint64_t>(2 * halo + 1);
    const std::uint64_t min_budget = edge * edge;
    for (const int w : {1, 3, 17, 64}) {
      for (const int h : {1, 5, 33}) {
        for (const std::uint64_t budget :
             {min_budget, min_budget + 1, min_budget + 7, min_budget * 3,
              std::uint64_t{4096}}) {
          const ChunkPlan plan = plan_chunks(w, h, halo, budget);
          expect_partition(plan, w, h);
          for (const auto& c : plan.chunks) {
            EXPECT_LE(static_cast<std::uint64_t>(c.pwidth) *
                          static_cast<std::uint64_t>(c.pheight),
                      budget)
                << "w=" << w << " h=" << h << " halo=" << halo
                << " budget=" << budget;
          }
        }
      }
    }
  }
}

TEST(Chunker, WorkingSetGrowsWithBands) {
  const auto a = amc_working_set_texels(1000, 8, true);
  const auto b = amc_working_set_texels(1000, 64, true);
  EXPECT_GT(b, a);
}

TEST(Chunker, WorkingSetSmallerWithoutLogStack) {
  EXPECT_LT(amc_working_set_texels(1000, 64, false),
            amc_working_set_texels(1000, 64, true));
}

}  // namespace
}  // namespace hs::stream
