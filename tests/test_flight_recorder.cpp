#include "trace/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "trace/json_check.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace hs::trace {
namespace {

// gtest_discover_tests runs every TEST in its own process, so mutating the
// process-global flight recorder here cannot leak into other tests.

#if HS_TRACE_ENABLED

TEST(FlightRecorder, RecordsEventsWithPayloadAndDetail) {
  reset_flight_recorder();
  flight_event("job.submit", 7, 2, "unmix-batch");
  flight_event("job.dequeue", 7);
  const auto events = flight_snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].kind, "job.submit");
  EXPECT_EQ(events[0].a, 7);
  EXPECT_EQ(events[0].b, 2);
  EXPECT_STREQ(events[0].detail, "unmix-batch");
  EXPECT_STREQ(events[1].kind, "job.dequeue");
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
  EXPECT_EQ(flight_recorded_total(), 2u);
}

TEST(FlightRecorder, DetailIsTruncatedNotOverrun) {
  reset_flight_recorder();
  const std::string longd(3 * kFlightDetailBytes, 'x');
  flight_event("k", 0, 0, longd);
  const auto events = flight_snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events[0].detail), kFlightDetailBytes - 1);
}

TEST(FlightRecorder, RingOverwritesOldestAndKeepsNewest) {
  reset_flight_recorder();
  // The ring holds ~budget/sizeof(FlightEvent) events; record well past
  // capacity and check the survivors are exactly the newest ones.
  const std::size_t capacity = flight_budget_bytes() / sizeof(FlightEvent);
  const std::int64_t total = static_cast<std::int64_t>(3 * capacity);
  for (std::int64_t i = 0; i < total; ++i) flight_event("seq", i);
  const auto events = flight_snapshot();
  ASSERT_EQ(events.size(), capacity);
  EXPECT_EQ(flight_recorded_total(), static_cast<std::uint64_t>(total));
  // Oldest-first order, ending at the last recorded sequence number.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, total - static_cast<std::int64_t>(capacity - i));
  }
}

TEST(FlightRecorder, EventsCarryTheCurrentJobTag) {
  reset_flight_recorder();
  {
    util::ScopedJobTag tag(42);
    flight_event("tagged");
  }
  flight_event("untagged");
  const auto events = flight_snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].job, 42u);
  EXPECT_EQ(events[1].job, 0u);
}

TEST(FlightRecorder, PerThreadRingsMergeTimeSorted) {
  reset_flight_recorder();
  constexpr std::size_t kThreads = 4;
  constexpr int kPer = 50;
  util::ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](std::size_t t) {
    for (int i = 0; i < kPer; ++i) {
      flight_event("mt", static_cast<std::int64_t>(t), i);
    }
  });
  const auto events = flight_snapshot();
  ASSERT_EQ(events.size(), kThreads * kPer);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_ns, events[i].t_ns) << i;
  }
}

TEST(FlightRecorder, DumpIsStrictValidJson) {
  reset_flight_recorder();
  flight_event("job.fault", 3, 1, "TransientFault: detail with \"quotes\"");
  std::ostringstream os;
  write_flight_json(os, "test failure");
  std::string error;
  ASSERT_TRUE(json::validate_flight_json(os.str(), &error))
      << error << "\n" << os.str();
  EXPECT_NE(os.str().find("hs.flight.v1"), std::string::npos);
  EXPECT_NE(os.str().find("test failure"), std::string::npos);
}

TEST(FlightRecorder, ResetDropsEventsButRecorderKeepsWorking) {
  reset_flight_recorder();
  flight_event("before");
  reset_flight_recorder();
  EXPECT_TRUE(flight_snapshot().empty());
  flight_event("after");
  const auto events = flight_snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].kind, "after");
}

#else  // HS_TRACE_ENABLED == 0

TEST(FlightRecorder, DisabledBuildStillWritesValidEmptyDump) {
  flight_event("dropped", 1, 2, "x");
  EXPECT_TRUE(flight_snapshot().empty());
  EXPECT_EQ(flight_recorded_total(), 0u);
  std::ostringstream os;
  write_flight_json(os, "off-build");
  std::string error;
  EXPECT_TRUE(json::validate_flight_json(os.str(), &error)) << error;
}

#endif  // HS_TRACE_ENABLED

}  // namespace
}  // namespace hs::trace
