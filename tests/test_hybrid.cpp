#include "core/hybrid.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hs::core {
namespace {

hsi::HyperCube random_cube(int w, int h, int n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  hsi::HyperCube cube(w, h, n);
  for (auto& v : cube.raw()) v = static_cast<float>(rng.uniform(0.05, 1.0));
  return cube;
}

HybridOptions fast_options(double fraction) {
  HybridOptions opt;
  opt.cpu_fraction = fraction;
  opt.gpu.profile.fragment_pipes = 4;
  return opt;
}

TEST(Hybrid, StitchedResultMatchesFullVectorizedRun) {
  const auto cube = random_cube(16, 20, 10, 1);
  const StructuringElement se = StructuringElement::square(1);
  const MorphOutputs full = morphology_vectorized(cube, se);
  for (double fraction : {0.0, 0.3, 0.5, 0.8, 1.0}) {
    const HybridReport hybrid = morphology_hybrid(cube, se, fast_options(fraction));
    ASSERT_EQ(hybrid.morph.mei.size(), full.mei.size());
    for (std::size_t i = 0; i < full.mei.size(); ++i) {
      EXPECT_EQ(hybrid.morph.mei[i], full.mei[i]) << "fraction " << fraction << " px " << i;
      EXPECT_EQ(hybrid.morph.db[i], full.db[i]) << i;
      EXPECT_EQ(hybrid.morph.erosion_index[i], full.erosion_index[i]) << i;
      EXPECT_EQ(hybrid.morph.dilation_index[i], full.dilation_index[i]) << i;
    }
  }
}

TEST(Hybrid, RowSplitMatchesFraction) {
  const auto cube = random_cube(10, 40, 8, 2);
  const HybridReport r =
      morphology_hybrid(cube, StructuringElement::square(1), fast_options(0.25));
  EXPECT_EQ(r.cpu_rows, 10);
  EXPECT_EQ(r.gpu_rows, 30);
  EXPECT_DOUBLE_EQ(r.cpu_fraction, 0.25);
  EXPECT_GT(r.cpu_seconds, 0.0);
  EXPECT_GT(r.gpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan_seconds,
                   std::max(r.cpu_seconds, r.gpu_seconds));
}

TEST(Hybrid, AllCpuAndAllGpuDegenerateCleanly) {
  const auto cube = random_cube(12, 12, 8, 3);
  const HybridReport cpu_only =
      morphology_hybrid(cube, StructuringElement::square(1), fast_options(1.0));
  EXPECT_EQ(cpu_only.gpu_rows, 0);
  EXPECT_DOUBLE_EQ(cpu_only.gpu_seconds, 0.0);
  const HybridReport gpu_only =
      morphology_hybrid(cube, StructuringElement::square(1), fast_options(0.0));
  EXPECT_EQ(gpu_only.cpu_rows, 0);
  EXPECT_DOUBLE_EQ(gpu_only.cpu_seconds, 0.0);
  EXPECT_GT(gpu_only.gpu_chunks, 0u);
}

TEST(Hybrid, AutoFractionIsBalanced) {
  const auto cube = random_cube(24, 24, 16, 4);
  HybridOptions opt = fast_options(-1.0);
  const HybridReport r = morphology_hybrid(cube, StructuringElement::square(1), opt);
  EXPECT_GE(r.cpu_fraction, 0.0);
  EXPECT_LE(r.cpu_fraction, 1.0);
  // The balanced split should not be worse than giving everything to one
  // side (under the same models).
  const double all_cpu = analytic_cpu_morphology_seconds(
      opt.cpu, opt.cpu_vectorized, cube.pixel_count(),
      StructuringElement::square(1), cube.bands());
  const double all_gpu = analytic_gpu_morphology_seconds(
      opt.gpu.profile, cube.width(), cube.height(), cube.bands(),
      StructuringElement::square(1));
  EXPECT_LE(r.makespan_seconds, std::max(all_cpu, all_gpu) * 1.25);
}

TEST(Hybrid, BalancedFractionFavorsFasterSide) {
  const StructuringElement se = StructuringElement::square(1);
  // A huge GPU gets most of the work -> small CPU fraction.
  gpusim::DeviceProfile big_gpu = gpusim::geforce_7800_gtx();
  const double f_big = balanced_cpu_fraction(
      gpusim::pentium4_northwood(), false, big_gpu, 200, 200, 64, se);
  // A tiny GPU pushes work to the CPU.
  gpusim::DeviceProfile small_gpu = big_gpu;
  small_gpu.fragment_pipes = 1;
  small_gpu.core_clock_hz /= 8;
  small_gpu.mem_bandwidth_bps /= 8;
  small_gpu.tex_fill_rate /= 8;
  const double f_small = balanced_cpu_fraction(
      gpusim::pentium4_northwood(), false, small_gpu, 200, 200, 64, se);
  EXPECT_LT(f_big, 0.5);
  EXPECT_GT(f_small, f_big);
}

TEST(AnalyticGpuModel, TracksTheSimulatorWithinFactorTwo) {
  // The analytic estimate skips L1 simulation; it must still land within
  // 2x of the full simulator's modeled time.
  const auto cube = random_cube(32, 32, 32, 5);
  AmcGpuOptions opt;
  const AmcGpuReport sim = morphology_gpu(cube, StructuringElement::square(1), opt);
  const double analytic = analytic_gpu_morphology_seconds(
      opt.profile, 32, 32, 32, StructuringElement::square(1));
  EXPECT_GT(analytic, sim.modeled_seconds / 2);
  EXPECT_LT(analytic, sim.modeled_seconds * 2);
}

TEST(AnalyticGpuModel, ScalesWithImageAndSe) {
  // Sizes large enough that per-pass overhead is amortized; at small sizes
  // the fixed ~270 passes/chunk dominate and scaling is sublinear.
  const auto profile = gpusim::geforce_7800_gtx();
  const double small = analytic_gpu_morphology_seconds(
      profile, 512, 512, 64, StructuringElement::square(1));
  const double big = analytic_gpu_morphology_seconds(
      profile, 1024, 1024, 64, StructuringElement::square(1));
  EXPECT_GT(big, 3 * small);
  EXPECT_LT(big, 5 * small);
  const double big_se = analytic_gpu_morphology_seconds(
      profile, 512, 512, 64, StructuringElement::square(2));
  EXPECT_GT(big_se, small);
}

}  // namespace
}  // namespace hs::core
