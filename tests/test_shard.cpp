// The sharded serving tier battery: consistent-hash ring properties
// (distribution, bounded remap on growth, dead-shard fallback), request
// serialization round-trips (to_request_line inverts the parsers and
// preserves the job fingerprint), ENVI content-hash fingerprinting, and
// Router end-to-end runs against real hsi-served --worker processes
// (witness parity with the in-process server, kill-mid-job reroute,
// all-shards-down 429s, graceful drain). The e2e suite fork/execs the
// hsi-served binary baked in via HSI_SERVED_BIN; tests/CMakeLists.txt
// labels the whole binary `shard`.
#include "shard/router.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "serve/server.hpp"
#include "shard/ring.hpp"
#include "util/rng.hpp"

namespace hs::shard {
namespace {

// ---------------------------------------------------------------------------
// HashRing

TEST(ShardRing, EveryShardGetsAFairShare) {
  HashRing ring(64);
  for (std::uint32_t s = 0; s < 4; ++s) ring.add(s);
  std::map<std::uint32_t, int> counts;
  util::SplitMix64 keys(42);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const auto shard = ring.pick(keys.next());
    ASSERT_TRUE(shard.has_value());
    ++counts[*shard];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, n / 20) << "shard " << shard << " starved";
  }
}

TEST(ShardRing, StablePicksForEqualKeys) {
  HashRing ring(64);
  for (std::uint32_t s = 0; s < 3; ++s) ring.add(s);
  util::SplitMix64 keys(7);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t key = keys.next();
    EXPECT_EQ(ring.pick(key), ring.pick(key));
  }
}

TEST(ShardRing, GrowthRemapsBoundedFractionAndOnlyToNewShard) {
  HashRing ring(64);
  ring.add(0);
  ring.add(1);
  std::vector<std::uint64_t> keys;
  util::SplitMix64 gen(9);
  for (int i = 0; i < 10000; ++i) keys.push_back(gen.next());
  std::vector<std::uint32_t> before;
  before.reserve(keys.size());
  for (const std::uint64_t key : keys) before.push_back(*ring.pick(key));
  ring.add(2);
  int moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint32_t now = *ring.pick(keys[i]);
    if (now != before[i]) {
      ++moved;
      // Consistent hashing's defining property: a new shard only steals
      // keys for itself; nothing shuffles between the survivors.
      EXPECT_EQ(now, 2u);
    }
  }
  // Expected ~1/3; a full reshuffle would move ~2/3.
  EXPECT_LT(moved, static_cast<int>(keys.size()) / 2);
  EXPECT_GT(moved, static_cast<int>(keys.size()) / 10);
}

TEST(ShardRing, DeadShardFallsToNextAndComesBack) {
  HashRing ring(64);
  for (std::uint32_t s = 0; s < 3; ++s) ring.add(s);
  util::SplitMix64 gen(11);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = gen.next();
    const std::uint32_t home = *ring.pick(key);
    const auto fallback =
        ring.pick(key, [home](std::uint32_t s) { return s != home; });
    ASSERT_TRUE(fallback.has_value());
    EXPECT_NE(*fallback, home);
    // Deterministic fallback, and the key returns home once it is alive.
    EXPECT_EQ(fallback,
              ring.pick(key, [home](std::uint32_t s) { return s != home; }));
    EXPECT_EQ(*ring.pick(key), home);
  }
}

TEST(ShardRing, EmptyOrFullyDeadRingPicksNothing) {
  HashRing ring(8);
  EXPECT_FALSE(ring.pick(123).has_value());
  ring.add(0);
  ring.add(1);
  EXPECT_FALSE(ring.pick(123, [](std::uint32_t) { return false; }).has_value());
  ring.remove(0);
  ring.remove(1);
  EXPECT_FALSE(ring.pick(123).has_value());
}

// ---------------------------------------------------------------------------
// to_request_line round trips

serve::JobSpec varied_spec(int i) {
  serve::JobSpec s;
  s.name = "job \"q\" #" + std::to_string(i);  // exercises escaping
  s.kind = i % 3 == 0   ? serve::JobKind::Morphology
           : i % 3 == 1 ? serve::JobKind::Classify
                        : serve::JobKind::Unmix;
  s.priority = i % 2 == 0 ? serve::Priority::High : serve::Priority::Low;
  s.deadline_seconds = i % 4 == 0 ? 0.25 * (i + 1) : 0;
  s.max_retries = i % 5;
  s.scene.width = 16 + i;
  s.scene.height = 12 + i;
  s.scene.bands = 8 + (i % 3);
  s.scene.seed = 100 + i;
  s.se_radius = 1 + (i % 2);
  s.endmembers = 3 + (i % 4);
  s.workers = 1 + (i % 3);
  s.chunk_texel_budget = i % 2 == 0 ? 256 : 0;
  s.half_precision = i % 2 == 1;
  return s;
}

TEST(ShardRequest, RoundTripPreservesEveryFieldAndTheFingerprint) {
  for (int i = 0; i < 12; ++i) {
    const serve::JobSpec spec = varied_spec(i);
    const std::string line = serve::to_request_line(spec);
    std::string error;
    const auto parsed = serve::parse_request_line(line, &error);
    ASSERT_TRUE(parsed.has_value()) << line << " -- " << error;
    EXPECT_EQ(parsed->name, spec.name);
    EXPECT_EQ(parsed->kind, spec.kind);
    EXPECT_EQ(parsed->priority, spec.priority);
    EXPECT_DOUBLE_EQ(parsed->deadline_seconds, spec.deadline_seconds);
    EXPECT_EQ(parsed->max_retries, spec.max_retries);
    EXPECT_EQ(parsed->scene.width, spec.scene.width);
    EXPECT_EQ(parsed->scene.height, spec.scene.height);
    EXPECT_EQ(parsed->scene.bands, spec.scene.bands);
    EXPECT_EQ(parsed->scene.seed, spec.scene.seed);
    EXPECT_EQ(parsed->half_precision, spec.half_precision);
    EXPECT_EQ(serve::job_fingerprint(*parsed), serve::job_fingerprint(spec))
        << line;
  }
}

TEST(ShardRequest, FrameModeCarriesTheClientId) {
  const serve::JobSpec spec = varied_spec(3);
  const std::string line = serve::to_request_line(spec, 777);
  std::string error;
  const auto parsed = serve::parse_request_frame(line, &error);
  ASSERT_TRUE(parsed.has_value()) << line << " -- " << error;
  EXPECT_TRUE(parsed->has_client_id);
  EXPECT_EQ(parsed->client_id, 777u);
  EXPECT_EQ(serve::job_fingerprint(parsed->spec), serve::job_fingerprint(spec));
  // File mode must keep rejecting "id" lines.
  EXPECT_FALSE(serve::parse_request_line(line).has_value());
}

TEST(ShardRequest, ParseJobStateInvertsToString) {
  for (serve::JobState s :
       {serve::JobState::Queued, serve::JobState::Running,
        serve::JobState::Done, serve::JobState::Failed,
        serve::JobState::Rejected, serve::JobState::TimedOut,
        serve::JobState::Cancelled}) {
    const auto parsed = serve::parse_job_state(serve::to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(serve::parse_job_state("sleeping").has_value());
  EXPECT_FALSE(serve::parse_job_state("").has_value());
}

// ---------------------------------------------------------------------------
// ENVI content-hash fingerprints

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/hs_shard_test_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
  ASSERT_TRUE(out.good()) << path;
}

serve::JobSpec envi_spec(const std::string& hdr) {
  serve::JobSpec s;
  s.name = "envi";
  s.kind = serve::JobKind::Morphology;
  s.scene.envi_path = hdr;
  return s;
}

TEST(ShardEnviFingerprint, EqualContentHashesEqualAcrossPaths) {
  TempDir a, b;
  const std::string hdr = "ENVI\nsamples = 2\nlines = 2\nbands = 1\n";
  const std::string dat = "payload-bytes-0123";
  write_file(a.path() + "/cube.hdr", hdr);
  write_file(a.path() + "/cube.dat", dat);
  write_file(b.path() + "/other.hdr", hdr);
  write_file(b.path() + "/other.dat", dat);

  const serve::JobSpec sa = envi_spec(a.path() + "/cube.hdr");
  const serve::JobSpec sb = envi_spec(b.path() + "/other.hdr");
  EXPECT_TRUE(serve::is_cacheable(sa));
  EXPECT_TRUE(serve::is_cacheable(sb));
  // Identical bytes under different names: one fingerprint, one cache
  // entry, one home shard.
  EXPECT_EQ(serve::job_fingerprint(sa), serve::job_fingerprint(sb));
}

TEST(ShardEnviFingerprint, ContentChangeChangesTheFingerprint) {
  TempDir dir;
  const std::string hdr_path = dir.path() + "/cube.hdr";
  write_file(hdr_path, "ENVI\nsamples = 2\nlines = 2\nbands = 1\n");
  write_file(dir.path() + "/cube.dat", "payload-v1");
  const auto fp1 = serve::job_fingerprint(envi_spec(hdr_path));
  write_file(dir.path() + "/cube.dat", "payload-v2");
  const auto fp2 = serve::job_fingerprint(envi_spec(hdr_path));
  EXPECT_NE(fp1, fp2);
  // Same total length, different bytes -- the hash is content, not size.
  EXPECT_EQ(std::string("payload-v1").size(), std::string("payload-v2").size());
}

TEST(ShardEnviFingerprint, HeaderAndPayloadBoundaryIsUnambiguous) {
  // hdr="ab", dat="c" must not collide with hdr="a", dat="bc": the length
  // separator between the two streams keeps concatenations distinct.
  TempDir a, b;
  write_file(a.path() + "/c.hdr", "ab");
  write_file(a.path() + "/c.dat", "c");
  write_file(b.path() + "/c.hdr", "a");
  write_file(b.path() + "/c.dat", "bc");
  EXPECT_NE(serve::job_fingerprint(envi_spec(a.path() + "/c.hdr")),
            serve::job_fingerprint(envi_spec(b.path() + "/c.hdr")));
}

TEST(ShardEnviFingerprint, UnreadableFallsBackToPathIdentity) {
  const serve::JobSpec s1 = envi_spec("/no/such/a.hdr");
  const serve::JobSpec s2 = envi_spec("/no/such/b.hdr");
  EXPECT_FALSE(serve::is_cacheable(s1));
  EXPECT_FALSE(serve::scene_content_hash(s1.scene).has_value());
  EXPECT_NE(serve::job_fingerprint(s1), serve::job_fingerprint(s2));
  EXPECT_EQ(serve::job_fingerprint(s1), serve::job_fingerprint(s1));
}

// ---------------------------------------------------------------------------
// Router end-to-end (real hsi-served --worker processes)

serve::JobSpec work_spec(int i) {
  serve::JobSpec s;
  s.name = "e2e-" + std::to_string(i);
  s.kind = i % 3 == 0   ? serve::JobKind::Morphology
           : i % 3 == 1 ? serve::JobKind::Classify
                        : serve::JobKind::Unmix;
  s.scene.width = 24 + (i % 4) * 4;
  s.scene.height = 20 + (i % 3) * 4;
  s.scene.bands = 8;
  s.scene.seed = 100 + i;
  s.se_radius = 1;
  s.endmembers = 3;
  s.workers = 1;
  return s;
}

/// name -> output_hash from an in-process serve::Server run of the same
/// specs: the single-process witness the sharded tier must reproduce.
std::map<std::string, std::uint64_t> baseline_hashes(
    const std::vector<serve::JobSpec>& specs) {
  serve::ServerOptions opt;
  opt.workers = 1;
  serve::Server server(opt);
  for (const serve::JobSpec& s : specs) server.submit(s);
  server.shutdown(/*drain=*/true);
  std::map<std::string, std::uint64_t> hashes;
  for (const serve::JobResult& r : server.results()) {
    EXPECT_EQ(r.state, serve::JobState::Done) << r.name << ": " << r.detail;
    hashes[r.name] = r.output_hash;
  }
  return hashes;
}

RouterOptions e2e_options(const TempDir& dir, std::size_t shards) {
  RouterOptions opt;
  opt.shards = shards;
  opt.worker_cmd = HSI_SERVED_BIN;
  opt.state_dir = dir.path() + "/state";
  opt.worker_cache_mb = 16;
  return opt;
}

TEST(ShardRouterE2E, TwoShardsMatchTheSingleProcessWitness) {
  std::vector<serve::JobSpec> specs;
  for (int i = 0; i < 18; ++i) specs.push_back(work_spec(i));
  const auto expected = baseline_hashes(specs);

  TempDir dir;
  Router router(e2e_options(dir, 2));
  router.start();
  std::vector<std::uint64_t> ids;
  for (const serve::JobSpec& s : specs) {
    const serve::Submitted sub = router.submit(s);
    EXPECT_TRUE(sub.admitted) << sub.detail;
    ids.push_back(sub.id);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const serve::JobResult r = router.wait(ids[i]);
    ASSERT_EQ(r.state, serve::JobState::Done) << r.name << ": " << r.detail;
    EXPECT_EQ(r.output_hash, expected.at(r.name)) << r.name;
  }
  router.shutdown(/*drain=*/true);

  // Both shards did real work, and the stats add up.
  const Router::Stats st = router.stats();
  EXPECT_EQ(st.submitted, specs.size());
  EXPECT_EQ(st.completed, specs.size());
  EXPECT_EQ(st.deaths, 0u);
  std::size_t shards_used = 0;
  for (const Router::ShardStats& s : router.shard_stats()) {
    if (s.done > 0) ++shards_used;
  }
  EXPECT_EQ(shards_used, 2u);
}

TEST(ShardRouterE2E, EqualFingerprintsRouteToOneShardAndHitItsCache) {
  // 4 distinct specs, submitted 4 times each: affinity sends repeats to
  // their home shard, whose result cache serves them.
  std::vector<serve::JobSpec> pool;
  for (int i = 0; i < 4; ++i) {
    serve::JobSpec s = work_spec(i);
    s.name = "repeat-" + std::to_string(i);  // name is not in the digest
    pool.push_back(s);
  }
  TempDir dir;
  Router router(e2e_options(dir, 2));
  router.start();
  std::vector<std::uint64_t> ids;
  for (int round = 0; round < 4; ++round) {
    for (const serve::JobSpec& s : pool) ids.push_back(router.submit(s).id);
  }
  std::map<std::string, std::set<std::uint64_t>> hashes;
  std::uint64_t cached = 0;
  for (const std::uint64_t id : ids) {
    const serve::JobResult r = router.wait(id);
    ASSERT_EQ(r.state, serve::JobState::Done) << r.name << ": " << r.detail;
    hashes[r.name].insert(r.output_hash);
    if (r.cached) ++cached;
  }
  router.shutdown(/*drain=*/true);
  for (const auto& [name, set] : hashes) {
    EXPECT_EQ(set.size(), 1u) << "witness drift for " << name;
  }
  // Every repeat beyond a spec's first serve can hit its home shard's
  // cache; demand at least half of them to allow for in-flight overlap.
  EXPECT_GE(cached, 6u);
  for (const serve::JobSpec& s : pool) {
    EXPECT_EQ(router.shard_for(s), router.shard_for(s));
  }
}

TEST(ShardRouterE2E, KilledShardReroutesWithoutDroppingJobs) {
  std::vector<serve::JobSpec> specs;
  for (int i = 0; i < 24; ++i) specs.push_back(work_spec(i));
  const auto expected = baseline_hashes(specs);

  TempDir dir;
  RouterOptions opt = e2e_options(dir, 2);
  opt.flight_dump_dir = dir.path() + "/flight";
  std::filesystem::create_directories(opt.flight_dump_dir);
  Router router(opt);
  router.start();

  // SIGKILL shard 0, then submit immediately: the router has not yet seen
  // the death, so jobs homed on shard 0 are written into a dead socket and
  // must come back through the requeue path -- the deterministic
  // kill-mid-job scenario.
  ASSERT_TRUE(router.kill_shard(0));
  std::vector<std::uint64_t> ids;
  for (const serve::JobSpec& s : specs) ids.push_back(router.submit(s).id);
  for (const std::uint64_t id : ids) {
    const serve::JobResult r = router.wait(id);
    ASSERT_EQ(r.state, serve::JobState::Done) << r.name << ": " << r.detail;
    EXPECT_EQ(r.output_hash, expected.at(r.name)) << r.name;
  }
  router.shutdown(/*drain=*/true);
  const Router::Stats st = router.stats();
  EXPECT_EQ(st.completed, specs.size());
  EXPECT_GE(st.deaths, 1u);
  EXPECT_GE(st.restarts, 1u);
}

TEST(ShardRouterE2E, AllShardsDownYieldsCleanRejectsNotHangs) {
  TempDir dir;
  RouterOptions opt = e2e_options(dir, 2);
  opt.max_restarts = 0;  // killed shards stay dead
  Router router(opt);
  router.start();

  ASSERT_TRUE(router.kill_shard(0));
  ASSERT_TRUE(router.kill_shard(1));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (router.alive_shards() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    ::usleep(10000);
  }
  ASSERT_EQ(router.alive_shards(), 0u);

  const serve::Submitted sub = router.submit(work_spec(0));
  EXPECT_FALSE(sub.admitted);
  EXPECT_EQ(sub.state, serve::JobState::Rejected);
  const serve::JobResult r = router.wait(sub.id);
  EXPECT_EQ(r.state, serve::JobState::Rejected);
  EXPECT_EQ(r.detail, "no live shards");
  router.shutdown(/*drain=*/false);
  EXPECT_GE(router.stats().rejected, 1u);
}

TEST(ShardRouterE2E, GracefulDrainRestartsWithoutDeathsOrDrops) {
  std::vector<serve::JobSpec> specs;
  for (int i = 0; i < 20; ++i) specs.push_back(work_spec(i));
  const auto expected = baseline_hashes(specs);

  TempDir dir;
  Router router(e2e_options(dir, 2));
  router.start();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(router.submit(specs[i]).id);
  ASSERT_TRUE(router.restart_shard(0));
  for (int i = 10; i < 20; ++i) ids.push_back(router.submit(specs[i]).id);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const serve::JobResult r = router.wait(ids[i]);
    ASSERT_EQ(r.state, serve::JobState::Done) << r.name << ": " << r.detail;
    EXPECT_EQ(r.output_hash, expected.at(r.name)) << r.name;
  }
  router.shutdown(/*drain=*/true);
  const Router::Stats st = router.stats();
  EXPECT_EQ(st.completed, specs.size());
  EXPECT_EQ(st.deaths, 0u) << "graceful drain must not count as a death";
  EXPECT_GE(st.restarts, 1u);
}

TEST(ShardRouterE2E, ShutdownWithoutDrainCancelsOutstanding) {
  TempDir dir;
  Router router(e2e_options(dir, 1));
  router.start();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(router.submit(work_spec(i)).id);
  router.shutdown(/*drain=*/false);
  for (const std::uint64_t id : ids) {
    const serve::JobResult r = router.wait(id);
    EXPECT_TRUE(serve::is_terminal(r.state)) << r.name;
  }
  // Post-shutdown submissions terminalize instantly instead of queueing.
  const serve::Submitted late = router.submit(work_spec(9));
  EXPECT_FALSE(late.admitted);
  EXPECT_EQ(late.state, serve::JobState::Rejected);
}

}  // namespace
}  // namespace hs::shard
