#include "core/sam_classifier.hpp"

#include <gtest/gtest.h>

#include "hsi/metrics.hpp"
#include "hsi/synthetic.hpp"

namespace hs::core {
namespace {

TEST(LibraryClassifier, PureSignaturesClassifyAsThemselves) {
  const hsi::SpectralLibrary lib = hsi::indian_pines_library(64, 1);
  hsi::HyperCube cube(8, 4, 64);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 8; ++x) {
      const int c = (y * 8 + x) % lib.num_classes();
      std::vector<float> spec(lib.signature(c).begin(), lib.signature(c).end());
      cube.set_pixel(x, y, spec);
    }
  }
  const auto labels = classify_by_library(cube, lib);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_EQ(labels[static_cast<std::size_t>(y * 8 + x)],
                (y * 8 + x) % lib.num_classes());
    }
  }
}

TEST(LibraryClassifier, SamIsInvariantToBrightness) {
  const hsi::SpectralLibrary lib = hsi::indian_pines_library(32, 2);
  hsi::HyperCube cube(2, 1, 32);
  std::vector<float> spec(lib.signature(5).begin(), lib.signature(5).end());
  cube.set_pixel(0, 0, spec);
  for (auto& v : spec) v *= 0.35f;  // shadowed copy
  cube.set_pixel(1, 0, spec);
  const auto labels = classify_by_library(cube, lib);
  EXPECT_EQ(labels[0], 5);
  EXPECT_EQ(labels[1], 5);
}

TEST(LibraryClassifier, RejectThresholdLabelsOutliers) {
  const hsi::SpectralLibrary lib = hsi::indian_pines_library(32, 3);
  hsi::HyperCube cube(2, 1, 32);
  std::vector<float> spec(lib.signature(0).begin(), lib.signature(0).end());
  cube.set_pixel(0, 0, spec);
  // A sawtooth matches nothing in the library.
  for (int b = 0; b < 32; ++b) spec[static_cast<std::size_t>(b)] = (b % 2) ? 0.9f : 0.05f;
  cube.set_pixel(1, 0, spec);

  LibraryClassifierConfig cfg;
  cfg.reject_threshold = 0.05;  // radians of spectral angle
  const auto labels = classify_by_library(cube, lib, cfg);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], -1);
}

TEST(LibraryClassifier, MetricsAgreeOnEasyScenes) {
  hsi::SceneConfig cfg;
  cfg.width = 24;
  cfg.height = 24;
  cfg.bands = 48;
  cfg.snr_db = 50;
  const hsi::SyntheticScene scene = hsi::generate_indian_pines_scene(cfg);
  for (Distance metric : {Distance::Sam, Distance::Sid, Distance::Euclidean}) {
    LibraryClassifierConfig ccfg;
    ccfg.metric = metric;
    const auto labels = classify_by_library(scene.cube, scene.library, ccfg);
    std::size_t correct = 0, labeled = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (scene.truth.labels()[i] < 0) continue;
      ++labeled;
      if (labels[i] == scene.truth.labels()[i]) ++correct;
    }
    // Supervised with the generating library. Even so, accuracy is bounded
    // well below 1: the generator mixes each class's signature with its
    // background (early-season corn is ~half soil), so the nearest *pure*
    // signature is often a related class. Beating 32-class chance by a
    // wide margin is the meaningful bar.
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(labeled), 0.25)
        << "metric " << static_cast<int>(metric);
  }
}

TEST(LibraryClassifier, SupervisedMatchingBeatsChanceByFar) {
  hsi::SceneConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.bands = 64;
  const hsi::SyntheticScene scene = hsi::generate_indian_pines_scene(cfg);
  const auto labels = classify_by_library(scene.cube, scene.library);
  hsi::ConfusionMatrix cm(scene.truth.num_classes(), scene.truth.num_classes());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (scene.truth.labels()[i] >= 0 && labels[i] >= 0) {
      cm.add(scene.truth.labels()[i], labels[i]);
    }
  }
  // 32-class chance is ~3-12% (largest-class share); intrinsic sub-pixel
  // mixing keeps pure-library matching well below AMC's image-derived
  // endmembers, but far above chance.
  EXPECT_GT(cm.overall_accuracy(), 0.25);
}

}  // namespace
}  // namespace hs::core
