#include "hsi/band_math.hpp"

#include <gtest/gtest.h>

#include "hsi/spectral_library.hpp"
#include "util/rng.hpp"

namespace hs::hsi {
namespace {

HyperCube random_cube(int w, int h, int n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  HyperCube cube(w, h, n);
  for (auto& v : cube.raw()) v = static_cast<float>(rng.uniform(0.0, 1.0));
  return cube;
}

TEST(BandMath, SelectBandsExtractsAndReorders) {
  const HyperCube cube = random_cube(3, 2, 6, 1);
  const HyperCube sub = select_bands(cube, {5, 0, 2});
  EXPECT_EQ(sub.bands(), 3);
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 3; ++x) {
      EXPECT_EQ(sub.at(x, y, 0), cube.at(x, y, 5));
      EXPECT_EQ(sub.at(x, y, 1), cube.at(x, y, 0));
      EXPECT_EQ(sub.at(x, y, 2), cube.at(x, y, 2));
    }
  }
}

TEST(BandMath, WaterBandsFallInAbsorptionWindows) {
  const auto drop = water_absorption_band_indices(216);
  EXPECT_FALSE(drop.empty());
  for (int b : drop) {
    const double um = aviris_wavelength_um(b, 216);
    const bool in_window = (um >= 1.34 && um <= 1.45) ||
                           (um >= 1.79 && um <= 1.97) || um >= 2.45;
    EXPECT_TRUE(in_window) << "band " << b << " at " << um;
  }
}

TEST(BandMath, UsableBandsComplementWaterBands) {
  const auto drop = water_absorption_band_indices(216);
  const auto keep = usable_band_indices(216);
  EXPECT_EQ(drop.size() + keep.size(), 216u);
  // Canonical AVIRIS preprocessing drops roughly 10% of the bands.
  EXPECT_GT(drop.size(), 15u);
  EXPECT_LT(drop.size(), 50u);
}

TEST(BandMath, BandMeansMatchHandComputation) {
  HyperCube cube(2, 1, 2);
  cube.at(0, 0, 0) = 1.f;
  cube.at(1, 0, 0) = 3.f;
  cube.at(0, 0, 1) = 10.f;
  cube.at(1, 0, 1) = 20.f;
  const auto mean = band_means(cube);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 15.0);
}

TEST(BandMath, CovarianceOfConstantCubeIsZero) {
  HyperCube cube(4, 4, 3);
  for (auto& v : cube.raw()) v = 0.5f;
  const auto cov = band_covariance(cube);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(cov(i, j), 0.0, 1e-12);
  }
}

TEST(BandMath, CovarianceIsSymmetricPsd) {
  const HyperCube cube = random_cube(8, 8, 5, 2);
  const auto cov = band_covariance(cube);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(cov(i, j), cov(j, i));
    }
    EXPECT_GE(cov(i, i), 0.0);
  }
}

TEST(BandMath, PerfectlyCorrelatedBands) {
  HyperCube cube(4, 1, 2);
  for (int x = 0; x < 4; ++x) {
    cube.at(x, 0, 0) = static_cast<float>(x);
    cube.at(x, 0, 1) = static_cast<float>(2 * x);
  }
  const auto cov = band_covariance(cube);
  // cov(0,1) = 2 * var(band0)
  EXPECT_NEAR(cov(0, 1), 2.0 * cov(0, 0), 1e-9);
}

}  // namespace
}  // namespace hs::hsi
