#include "hsi/metrics.hpp"

#include <gtest/gtest.h>

namespace hs::hsi {
namespace {

TEST(ConfusionMatrix, AccumulatesCells) {
  ConfusionMatrix cm(3, 3);
  cm.add(0, 0, 5);
  cm.add(0, 1, 2);
  cm.add(2, 2);
  EXPECT_EQ(cm.at(0, 0), 5u);
  EXPECT_EQ(cm.at(0, 1), 2u);
  EXPECT_EQ(cm.at(2, 2), 1u);
  EXPECT_EQ(cm.total(), 8u);
}

TEST(ConfusionMatrix, PerfectClassifierScoresOne) {
  ConfusionMatrix cm(3, 3);
  for (int c = 0; c < 3; ++c) cm.add(c, c, 10);
  EXPECT_DOUBLE_EQ(cm.overall_accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.kappa(), 1.0);
  for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(cm.class_accuracy(c), 1.0);
}

TEST(ConfusionMatrix, OverallAccuracyIsDiagonalFraction) {
  ConfusionMatrix cm(2, 2);
  cm.add(0, 0, 6);
  cm.add(0, 1, 2);
  cm.add(1, 0, 2);
  cm.add(1, 1, 10);
  EXPECT_DOUBLE_EQ(cm.overall_accuracy(), 16.0 / 20.0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(0), 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(1), 10.0 / 12.0);
}

TEST(ConfusionMatrix, KappaMatchesHandComputation) {
  // Classic example: po = 0.7, pe = (0.5*0.6 + 0.5*0.4) = 0.5 -> kappa 0.4.
  ConfusionMatrix cm(2, 2);
  cm.add(0, 0, 40);
  cm.add(0, 1, 10);
  cm.add(1, 0, 20);
  cm.add(1, 1, 30);
  EXPECT_NEAR(cm.kappa(), (0.7 - 0.5) / 0.5, 1e-12);
}

TEST(ConfusionMatrix, RandomAssignmentHasNearZeroKappa) {
  // Exactly proportional rows: po == pe -> kappa 0.
  ConfusionMatrix cm(2, 2);
  cm.add(0, 0, 25);
  cm.add(0, 1, 25);
  cm.add(1, 0, 25);
  cm.add(1, 1, 25);
  EXPECT_NEAR(cm.kappa(), 0.0, 1e-12);
}

TEST(ConfusionMatrix, EmptyClassAccuracyIsZero) {
  ConfusionMatrix cm(3, 3);
  cm.add(0, 0, 5);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(1), 0.0);
}

TEST(ConfusionMatrix, EmptyMatrixIsZero) {
  ConfusionMatrix cm(2, 2);
  EXPECT_DOUBLE_EQ(cm.overall_accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.kappa(), 0.0);
}

TEST(MajorityMapping, MapsClustersToDominantClass) {
  // Truth:      0 0 0 1 1 1
  // Predicted:  2 2 2 0 0 2
  const std::vector<std::int16_t> truth{0, 0, 0, 1, 1, 1};
  const std::vector<int> pred{2, 2, 2, 0, 0, 2};
  const auto mapping = majority_mapping(truth, pred, 2, 3);
  ASSERT_EQ(mapping.size(), 3u);
  EXPECT_EQ(mapping[0], 1);   // cluster 0 mostly truth 1
  EXPECT_EQ(mapping[1], -1);  // cluster 1 unused
  EXPECT_EQ(mapping[2], 0);   // cluster 2 mostly truth 0
}

TEST(MajorityMapping, SkipsUnlabeledPixels) {
  const std::vector<std::int16_t> truth{kUnlabeled, 0, kUnlabeled, 1};
  const std::vector<int> pred{0, 0, 0, 1};
  const auto mapping = majority_mapping(truth, pred, 2, 2);
  EXPECT_EQ(mapping[0], 0);
  EXPECT_EQ(mapping[1], 1);
}

TEST(RemappedConfusion, ScoresAfterMapping) {
  const std::vector<std::int16_t> truth{0, 0, 0, 1, 1, 1};
  const std::vector<int> pred{2, 2, 2, 0, 0, 2};
  const auto mapping = majority_mapping(truth, pred, 2, 3);
  const ConfusionMatrix cm = remapped_confusion(truth, pred, mapping, 2);
  // Cluster 2 -> class 0, cluster 0 -> class 1: five of six correct.
  EXPECT_DOUBLE_EQ(cm.overall_accuracy(), 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(1), 2.0 / 3.0);
}

TEST(RemappedConfusion, UnmappedClustersGoToOverflowColumn) {
  const std::vector<std::int16_t> truth{0, 0};
  const std::vector<int> pred{0, 1};
  const std::vector<int> mapping{0, -1};  // cluster 1 maps nowhere
  const ConfusionMatrix cm = remapped_confusion(truth, pred, mapping, 2);
  EXPECT_EQ(cm.at(0, 0), 1u);
  EXPECT_EQ(cm.at(0, 2), 1u);  // overflow column
  EXPECT_DOUBLE_EQ(cm.overall_accuracy(), 0.5);
}

TEST(ClassMap, CountsLabels) {
  ClassMap map(4, 3, {"a", "b"});
  EXPECT_EQ(map.labeled_count(), 0u);
  map.at(0, 0) = 0;
  map.at(1, 0) = 1;
  map.at(2, 2) = 1;
  EXPECT_EQ(map.labeled_count(), 3u);
  EXPECT_EQ(map.class_count(0), 1u);
  EXPECT_EQ(map.class_count(1), 2u);
  EXPECT_EQ(map.num_classes(), 2);
}

}  // namespace
}  // namespace hs::hsi
