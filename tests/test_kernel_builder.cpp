#include "gpusim/kernel_builder.hpp"

#include <gtest/gtest.h>

#include "gpusim/interpreter.hpp"

namespace hs::gpusim {
namespace {

FragmentResult run(const FragmentProgram& program, const FragmentContext& ctx) {
  ExecCounters counters;
  return execute_fragment(program, ctx, counters);
}

TEST(KernelBuilder, ArithmeticExpression) {
  KernelBuilder kb("arith");
  auto a = kb.literal({1, 2, 3, 4});
  auto b = kb.literal({10, 20, 30, 40});
  kb.output(a + b * kb.literal(2.f));
  const auto program = kb.build();
  const auto result = run(program, {});
  EXPECT_EQ(result.color[0], float4(21, 42, 63, 84));
}

TEST(KernelBuilder, SubtractNegateAndSwizzle) {
  KernelBuilder kb("swz");
  auto v = kb.literal({1, 2, 3, 4});
  auto neg = -v;
  auto diff = v - neg;  // 2v
  kb.output(diff.swizzle("wzyx"));
  const auto result = run(kb.build(), {});
  EXPECT_EQ(result.color[0], float4(8, 6, 4, 2));
}

TEST(KernelBuilder, ComponentAccessorsBroadcast) {
  KernelBuilder kb("bcast");
  auto v = kb.literal({1, 2, 3, 4});
  kb.output(v.y() + v.w());
  const auto result = run(kb.build(), {});
  EXPECT_EQ(result.color[0], float4(6.f));
}

TEST(KernelBuilder, DotProductsAndScalarOps) {
  KernelBuilder kb("dots");
  auto v = kb.literal({1, 2, 3, 4});
  auto d = kb.dot4(v, v);          // 30
  kb.output(kb.rcp(d) * kb.literal(30.f));
  const auto result = run(kb.build(), {});
  EXPECT_FLOAT_EQ(result.color[0].x, 1.f);
}

TEST(KernelBuilder, TexcoordAndConstants) {
  KernelBuilder kb("inputs");
  kb.output(kb.texcoord(1) + kb.constant(2));
  const auto program = kb.build();
  FragmentContext ctx;
  ctx.texcoord[1] = {1, 2, 3, 4};
  const float4 constants[3] = {{}, {}, {10, 20, 30, 40}};
  ctx.constants = constants;
  const auto result = run(program, ctx);
  EXPECT_EQ(result.color[0], float4(11, 22, 33, 44));
}

TEST(KernelBuilder, TextureFetch) {
  Texture2D tex(4, 4, TextureFormat::RGBA32F);
  tex.store(2, 1, {5, 6, 7, 8});
  KernelBuilder kb("fetch");
  kb.output(kb.tex(0, kb.texcoord(0)));
  const auto program = kb.build();
  const Texture2D* textures[1] = {&tex};
  FragmentContext ctx;
  ctx.texcoord[0] = {2.5f, 1.5f, 0, 1};
  ctx.textures = textures;
  const auto result = run(program, ctx);
  EXPECT_EQ(result.color[0], float4(5, 6, 7, 8));
}

TEST(KernelBuilder, DependentFetchWithOffset) {
  Texture2D tex(4, 4, TextureFormat::R32F);
  tex.store(3, 2, float4(9.f));
  KernelBuilder kb("dep");
  auto coord = kb.texcoord(0) + kb.constant(0);
  kb.output(kb.tex(0, coord));
  const auto program = kb.build();
  const Texture2D* textures[1] = {&tex};
  const float4 constants[1] = {{1, 1, 0, 0}};
  FragmentContext ctx;
  ctx.texcoord[0] = {2.5f, 1.5f, 0, 1};
  ctx.constants = constants;
  ctx.textures = textures;
  const auto result = run(program, ctx);
  EXPECT_EQ(result.color[0].x, 9.f);
}

TEST(KernelBuilder, CmpMinMaxLerp) {
  KernelBuilder kb("select");
  auto cond = kb.literal({-1, 1, -1, 1});
  auto sel = kb.cmp(cond, kb.literal(10.f), kb.literal(20.f));
  auto clamped = kb.min(kb.max(sel, kb.literal(12.f)), kb.literal(18.f));
  kb.output(kb.lerp(kb.literal(0.5f), clamped, kb.literal(0.f)));
  const auto result = run(kb.build(), {});
  EXPECT_EQ(result.color[0], float4(6, 9, 6, 9));
}

TEST(KernelBuilder, MadAbsFloorFract) {
  KernelBuilder kb("misc");
  auto v = kb.literal({-1.5f, 2.25f, 0.f, 3.75f});
  auto combined = kb.mad(kb.abs(v), kb.literal(2.f), kb.floor(v));
  kb.output(combined + kb.fract(v));
  const auto result = run(kb.build(), {});
  // abs*2 + floor + fract = (3-2+0.5, 4.5+2+0.25, 0, 7.5+3+0.75)
  EXPECT_EQ(result.color[0], float4(1.5f, 6.75f, 0.f, 11.25f));
}

TEST(KernelBuilder, Log2Exp2RoundTrip) {
  KernelBuilder kb("logexp");
  auto v = kb.literal(8.f);
  kb.output(kb.exp2(kb.log2(v)));
  const auto result = run(kb.build(), {});
  EXPECT_FLOAT_EQ(result.color[0].x, 8.f);
}

TEST(KernelBuilder, MultipleRenderTargets) {
  KernelBuilder kb("mrt");
  kb.output(kb.literal(1.f), 0);
  kb.output(kb.literal(2.f), 2);
  const auto program = kb.build();
  EXPECT_EQ(program.max_output(), 2);
  const auto result = run(program, {});
  EXPECT_EQ(result.color[0], float4(1.f));
  EXPECT_EQ(result.color[2], float4(2.f));
}

TEST(KernelBuilder, BuildValidatesProgram) {
  // SID-style kernel: its structure must pass the validator and count ops.
  KernelBuilder kb("sid_group");
  auto coord = kb.texcoord(0);
  auto p = kb.tex(0, coord);
  auto lp = kb.tex(1, coord);
  auto q = kb.tex(0, coord + kb.constant(0));
  auto lq = kb.tex(1, coord + kb.constant(0));
  auto contribution = kb.dot4(p - q, lp - lq);
  auto accum = kb.tex(2, coord);
  kb.output(accum.x() + contribution.x());
  const auto program = kb.build();
  EXPECT_TRUE(validate(program).empty());
  EXPECT_EQ(program.tex_instruction_count(), 5);
  EXPECT_EQ(program.max_tex_unit(), 2);
}

TEST(KernelBuilder, SwizzleComposes) {
  KernelBuilder kb("compose");
  auto v = kb.literal({1, 2, 3, 4});
  kb.output(v.swizzle("wzyx").swizzle("wzyx"));  // identity
  const auto result = run(kb.build(), {});
  EXPECT_EQ(result.color[0], float4(1, 2, 3, 4));
}

}  // namespace
}  // namespace hs::gpusim
