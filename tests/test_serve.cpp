#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/amc_gpu.hpp"
#include "core/structuring_element.hpp"
#include "core/unmix_gpu.hpp"
#include "hsi/envi_io.hpp"
#include "hsi/synthetic.hpp"
#include "serve/job_queue.hpp"
#include "serve/request.hpp"
#include "serve/timeline.hpp"
#include "trace/json_check.hpp"
#include "trace/trace.hpp"

namespace hs::serve {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// JobQueue (single-threaded unit tests; the server serializes real access).

JobQueue::Entry entry(std::uint64_t id, Priority p, std::uint64_t seq) {
  return JobQueue::Entry{id, p, seq};
}

TEST(ServeJobQueue, PopsByPriorityThenFifoWithinClass) {
  JobQueue q(8);
  q.push(entry(1, Priority::Low, 1));
  q.push(entry(2, Priority::Normal, 2));
  q.push(entry(3, Priority::High, 3));
  q.push(entry(4, Priority::Normal, 4));
  q.push(entry(5, Priority::High, 5));

  std::vector<std::uint64_t> order;
  while (const auto e = q.pop()) order.push_back(e->id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 5, 2, 4, 1}));
}

TEST(ServeJobQueue, ShedVictimIsLowestPriorityYoungest) {
  JobQueue q(8);
  q.push(entry(1, Priority::Low, 1));
  q.push(entry(2, Priority::Low, 2));
  q.push(entry(3, Priority::Normal, 3));

  const auto victim = q.shed_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->id, 2u);  // youngest of the Low class, not the oldest

  ASSERT_TRUE(q.remove(2));
  EXPECT_FALSE(q.remove(2));  // already gone
  const auto next = q.shed_victim();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->id, 1u);
}

TEST(ServeJobQueue, CapacityAndEmptyBehaviour) {
  JobQueue q(2);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.shed_victim(), std::nullopt);
  q.push(entry(1, Priority::Normal, 1));
  q.push(entry(2, Priority::Normal, 2));
  EXPECT_TRUE(q.full());

  JobQueue clamped(0);  // capacity is clamped up to 1
  EXPECT_EQ(clamped.capacity(), 1u);
}

// ---------------------------------------------------------------------------
// Request parsing.

TEST(ServeRequest, ParsesFullRequestLine) {
  std::string err;
  const auto spec = parse_request_line(
      R"({"name":"j1","kind":"classify","priority":"high","deadline_ms":500,)"
      R"("retries":2,"size":24,"bands":12,"seed":9,"se":2,"endmembers":3,)"
      R"("workers":2,"chunk_texel_budget":256,"half":true})",
      &err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_EQ(spec->name, "j1");
  EXPECT_EQ(spec->kind, JobKind::Classify);
  EXPECT_EQ(spec->priority, Priority::High);
  EXPECT_DOUBLE_EQ(spec->deadline_seconds, 0.5);
  EXPECT_EQ(spec->max_retries, 2);
  EXPECT_EQ(spec->scene.width, 24);
  EXPECT_EQ(spec->scene.height, 24);
  EXPECT_EQ(spec->scene.bands, 12);
  EXPECT_EQ(spec->scene.seed, 9u);
  EXPECT_EQ(spec->se_radius, 2);
  EXPECT_EQ(spec->endmembers, 3);
  EXPECT_EQ(spec->workers, 2u);
  EXPECT_EQ(spec->chunk_texel_budget, 256u);
  EXPECT_TRUE(spec->half_precision);
}

TEST(ServeRequest, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parse_request_line("not json", &err).has_value());
  EXPECT_FALSE(err.empty());

  EXPECT_FALSE(parse_request_line(R"({"name":"x"})", &err).has_value())
      << "kind is required";
  EXPECT_FALSE(
      parse_request_line(R"({"kind":"teleport"})", &err).has_value());
  EXPECT_FALSE(
      parse_request_line(R"({"kind":"unmix","wat":1})", &err).has_value())
      << "unknown keys are errors";
  EXPECT_FALSE(
      parse_request_line(R"({"kind":"unmix","bands":0})", &err).has_value());
  EXPECT_FALSE(
      parse_request_line(R"({"kind":"unmix","workers":1.5})", &err)
          .has_value())
      << "integer fields must be integral";
}

TEST(ServeRequest, RejectsNonFiniteNumbers) {
  // The JSON layer parses 1e999 to +inf with strtod, which slips past a
  // bare `< 0` range check and later overflows the steady_clock duration
  // cast when the deadline is armed.
  std::string err;
  EXPECT_FALSE(
      parse_request_line(R"({"kind":"unmix","deadline_ms":1e999})", &err)
          .has_value());
  EXPECT_NE(err.find("deadline_ms"), std::string::npos) << err;
  EXPECT_FALSE(parse_request_line(R"({"kind":"unmix","retries":1e999})", &err)
                   .has_value());
  EXPECT_FALSE(parse_request_line(R"({"kind":"unmix","size":1e999})", &err)
                   .has_value());
}

TEST(ServeRequest, ReadsBatchSkippingCommentsAndCollectingErrors) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "{\"name\":\"a\",\"kind\":\"morphology\"}\n"
      "{\"kind\":\"nope\"}\n"
      "{\"name\":\"b\",\"kind\":\"unmix\",\"priority\":\"low\"}\n");
  const RequestBatch batch = read_requests(in);
  ASSERT_EQ(batch.jobs.size(), 2u);
  EXPECT_EQ(batch.jobs[0].name, "a");
  EXPECT_EQ(batch.jobs[1].priority, Priority::Low);
  ASSERT_EQ(batch.errors.size(), 1u);
  EXPECT_EQ(batch.errors[0].first, 4);  // 1-based line number
}

TEST(ServeRequest, FaultSpecContract) {
  // `--fault substr[:n]` (hsi-served). The suffix after the last ':' is a
  // count only when it is a complete digit string; stoi used to truncate
  // "5x" to 5 and accept "-3" and " 7".
  std::string error;

  auto ok = parse_fault_spec("mei");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->substr, "mei");
  EXPECT_EQ(ok->attempts, INT32_MAX);  // default: every attempt fails

  ok = parse_fault_spec("mei:3");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->substr, "mei");
  EXPECT_EQ(ok->attempts, 3);

  // Only the LAST ':' can introduce a count; earlier ones stay literal.
  ok = parse_fault_spec("ns:job:2");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->substr, "ns:job");
  EXPECT_EQ(ok->attempts, 2);

  // Non-numeric suffixes are part of the substring, not a count.
  for (const char* arg : {"mei:5x", "mei:-3", "mei: 7", "a:b", "mei:"}) {
    SCOPED_TRACE(arg);
    ok = parse_fault_spec(arg);
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->substr, arg);
    EXPECT_EQ(ok->attempts, INT32_MAX);
  }

  // Hard errors: empty argument, empty substring, zero or overflowing count.
  for (const char* arg : {"", ":3", "mei:0", "mei:99999999999"}) {
    SCOPED_TRACE(arg);
    error.clear();
    EXPECT_FALSE(parse_fault_spec(arg, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

// ---------------------------------------------------------------------------
// Helpers for server tests.

JobSpec small_spec(JobKind kind, const std::string& name,
                   Priority priority = Priority::Normal) {
  JobSpec spec;
  spec.name = name;
  spec.kind = kind;
  spec.priority = priority;
  spec.scene.width = 12;
  spec.scene.height = 10;
  spec.scene.bands = 8;
  spec.scene.seed = 21;
  spec.se_radius = 1;
  spec.endmembers = 3;
  return spec;
}

hsi::HyperCube scene_cube(const JobSpec& spec) {
  hsi::SceneConfig cfg;
  cfg.width = spec.scene.width;
  cfg.height = spec.scene.height;
  cfg.bands = spec.scene.bands;
  cfg.seed = spec.scene.seed;
  return hsi::generate_indian_pines_scene(cfg).cube;
}

/// The hash chain the server computes, recomputed from direct pipeline
/// calls: fnv1a over mei, db, then labels, in that order.
std::uint64_t direct_output_hash(const JobSpec& spec) {
  const hsi::HyperCube cube = scene_cube(spec);
  core::AmcGpuOptions opt;
  opt.workers = spec.workers;
  opt.chunk_texel_budget = spec.chunk_texel_budget;
  opt.half_precision = spec.half_precision;
  std::uint64_t hash = fnv1a(nullptr, 0);
  if (spec.kind != JobKind::Unmix) {
    const auto report = core::morphology_gpu(
        cube, core::StructuringElement::square(spec.se_radius), opt);
    hash = fnv1a(report.morph.mei.data(),
                 report.morph.mei.size() * sizeof(float), hash);
    hash = fnv1a(report.morph.db.data(),
                 report.morph.db.size() * sizeof(float), hash);
  }
  if (spec.kind != JobKind::Morphology) {
    const auto endmembers = synthetic_endmembers(
        spec.endmembers, cube.bands(), spec.scene.seed);
    const auto report = core::unmix_gpu(cube, endmembers, opt);
    hash = fnv1a(report.labels.data(), report.labels.size() * sizeof(int),
                 hash);
  }
  return hash;
}

/// Blocking fault-injector gate: holds every attempt that reaches it until
/// open()ed, without injecting a fault. Lets tests keep a job "running"
/// (or a worker busy) deterministically.
class Gate {
 public:
  bool hold(std::uint64_t /*id*/, int /*attempt*/) {
    std::unique_lock<std::mutex> lk(mu_);
    ++arrived_;
    cv_.notify_all();
    cv_.wait(lk, [&] { return open_; });
    return false;
  }

  /// Blocks until `n` attempts have reached the gate.
  void wait_arrived(int n) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return arrived_ >= n; });
  }

  void open() {
    std::unique_lock<std::mutex> lk(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;
  bool open_ = false;
};

// ---------------------------------------------------------------------------
// Determinism: served outputs bit-equal direct pipeline calls.

TEST(ServeServer, MorphologyJobBitIdenticalToDirectCall) {
  const JobSpec spec = small_spec(JobKind::Morphology, "morph");
  ServerOptions options;
  Server server(options);
  const auto sub = server.submit(spec);
  ASSERT_TRUE(sub.admitted);
  const JobResult res = server.wait(sub.id);
  server.shutdown(/*drain=*/true);

  ASSERT_EQ(res.state, JobState::Done) << res.detail;
  EXPECT_EQ(res.attempts, 1);
  EXPECT_GT(res.modeled_seconds, 0.0);
  EXPECT_GE(res.chunk_count, 1u);
  EXPECT_EQ(res.output_hash, direct_output_hash(spec));

  // keep_payloads defaults on: the MEI itself must match the direct run.
  const hsi::HyperCube cube = scene_cube(spec);
  core::AmcGpuOptions opt;
  const auto direct = core::morphology_gpu(
      cube, core::StructuringElement::square(spec.se_radius), opt);
  ASSERT_EQ(res.mei.size(), direct.morph.mei.size());
  for (std::size_t i = 0; i < res.mei.size(); ++i) {
    EXPECT_EQ(res.mei[i], direct.morph.mei[i]) << "pixel " << i;
  }
}

TEST(ServeServer, UnmixAndClassifyJobsBitIdenticalToDirectCalls) {
  JobSpec unmix = small_spec(JobKind::Unmix, "unmix");
  JobSpec classify = small_spec(JobKind::Classify, "classify");

  ServerOptions options;
  options.workers = 2;
  Server server(options);
  const auto su = server.submit(unmix);
  const auto sc = server.submit(classify);
  ASSERT_TRUE(su.admitted);
  ASSERT_TRUE(sc.admitted);
  const JobResult ru = server.wait(su.id);
  const JobResult rc = server.wait(sc.id);
  server.shutdown(/*drain=*/true);

  ASSERT_EQ(ru.state, JobState::Done) << ru.detail;
  ASSERT_EQ(rc.state, JobState::Done) << rc.detail;
  EXPECT_EQ(ru.output_hash, direct_output_hash(unmix));
  EXPECT_EQ(rc.output_hash, direct_output_hash(classify));

  const hsi::HyperCube cube = scene_cube(unmix);
  core::AmcGpuOptions opt;
  const auto direct = core::unmix_gpu(
      cube, synthetic_endmembers(unmix.endmembers, cube.bands(),
                                 unmix.scene.seed),
      opt);
  EXPECT_EQ(ru.labels, direct.labels);
}

TEST(ServeServer, ChunkParallelJobMatchesSequentialDirectCall) {
  // Serve with workers=3 inside the pipeline and a budget forcing several
  // chunks; the hash must equal the sequential direct run (workers=1) --
  // the PR 3 determinism contract carried through the serving layer.
  JobSpec spec = small_spec(JobKind::Morphology, "par");
  spec.scene.width = 20;
  spec.scene.height = 18;
  spec.workers = 3;
  spec.chunk_texel_budget = 20 * 6;

  JobSpec sequential = spec;
  sequential.workers = 1;

  ServerOptions options;
  Server server(options);
  const auto sub = server.submit(spec);
  ASSERT_TRUE(sub.admitted);
  const JobResult res = server.wait(sub.id);
  server.shutdown(/*drain=*/true);

  ASSERT_EQ(res.state, JobState::Done) << res.detail;
  EXPECT_GT(res.chunk_count, 1u);
  EXPECT_GT(res.pipeline_workers, 1u);
  EXPECT_EQ(res.output_hash, direct_output_hash(sequential));
}

TEST(ServeServer, EnviSceneJobMatchesDirectCallOnTheSameFile) {
  const std::string base = testing::TempDir() + "hs_serve_scene";
  hsi::SceneConfig cfg;
  cfg.width = 12;
  cfg.height = 10;
  cfg.bands = 8;
  cfg.seed = 3;
  const hsi::HyperCube cube = hsi::generate_indian_pines_scene(cfg).cube;
  hsi::write_envi(cube, base);

  JobSpec spec = small_spec(JobKind::Morphology, "envi");
  spec.scene.envi_path = base + ".hdr";

  ServerOptions options;
  Server server(options);
  const auto sub = server.submit(spec);
  ASSERT_TRUE(sub.admitted);
  const JobResult res = server.wait(sub.id);
  server.shutdown(/*drain=*/true);

  ASSERT_EQ(res.state, JobState::Done) << res.detail;
  core::AmcGpuOptions opt;
  const auto direct = core::morphology_gpu(
      hsi::read_envi(spec.scene.envi_path),
      core::StructuringElement::square(spec.se_radius), opt);
  std::uint64_t hash = fnv1a(nullptr, 0);
  hash = fnv1a(direct.morph.mei.data(),
               direct.morph.mei.size() * sizeof(float), hash);
  hash = fnv1a(direct.morph.db.data(),
               direct.morph.db.size() * sizeof(float), hash);
  EXPECT_EQ(res.output_hash, hash);
}

// ---------------------------------------------------------------------------
// Admission control.

TEST(ServeServer, RejectsOverBudgetAndBadScenes) {
  ServerOptions options;
  options.admission.max_estimated_bytes = 1024;  // tiny: everything over
  Server server(options);

  const auto big = server.submit(small_spec(JobKind::Morphology, "big"));
  EXPECT_FALSE(big.admitted);
  EXPECT_EQ(big.state, JobState::Rejected);
  EXPECT_NE(big.detail.find("over budget"), std::string::npos) << big.detail;

  JobSpec bad = small_spec(JobKind::Morphology, "bad");
  bad.scene.envi_path = testing::TempDir() + "hs_serve_missing.hdr";
  const auto missing = server.submit(bad);
  EXPECT_FALSE(missing.admitted);
  EXPECT_NE(missing.detail.find("bad scene"), std::string::npos)
      << missing.detail;

  // Both rejections are tracked, terminal, and visible via wait().
  EXPECT_EQ(server.wait(big.id).state, JobState::Rejected);
  EXPECT_EQ(server.wait(missing.id).state, JobState::Rejected);
  EXPECT_EQ(server.results().size(), 2u);
  server.shutdown(/*drain=*/true);
}

TEST(ServeServer, RejectsOverSecondsBudget) {
  ServerOptions options;
  options.admission.max_estimated_seconds = 1e-12;
  Server server(options);
  const auto sub = server.submit(small_spec(JobKind::Morphology, "slow"));
  EXPECT_FALSE(sub.admitted);
  EXPECT_NE(sub.detail.find("over budget"), std::string::npos) << sub.detail;
  server.shutdown(/*drain=*/true);
}

TEST(ServeServer, SaturationShedsLowestPriorityYoungestFirst) {
  Gate gate;
  ServerOptions options;
  options.workers = 1;
  options.admission.max_queue_depth = 3;
  options.inject_fault = [&](std::uint64_t id, int attempt) {
    return gate.hold(id, attempt);
  };
  Server server(options);

  // One job occupies the worker (held at the gate), three fill the queue.
  const auto running = server.submit(small_spec(JobKind::Morphology, "run"));
  gate.wait_arrived(1);
  const auto low_old =
      server.submit(small_spec(JobKind::Morphology, "low-old", Priority::Low));
  const auto low_young =
      server.submit(small_spec(JobKind::Morphology, "low-yng", Priority::Low));
  const auto normal = server.submit(
      small_spec(JobKind::Morphology, "normal", Priority::Normal));
  ASSERT_EQ(server.queue_depth(), 3u);

  // Equal-priority arrival cannot shed: it is the one rejected.
  const auto low_late =
      server.submit(small_spec(JobKind::Morphology, "low-late", Priority::Low));
  EXPECT_FALSE(low_late.admitted);
  EXPECT_EQ(low_late.detail, "queue full");

  // A high-priority arrival sheds the lowest-priority *youngest* entry.
  const auto high = server.submit(
      small_spec(JobKind::Morphology, "high", Priority::High));
  EXPECT_TRUE(high.admitted);
  const JobResult shed = server.wait(low_young.id);
  EXPECT_EQ(shed.state, JobState::Rejected);
  EXPECT_NE(shed.detail.find("shed by higher-priority"), std::string::npos)
      << shed.detail;
  EXPECT_EQ(server.queue_depth(), 3u);

  // The older Low job survived the shed and every admitted job completes.
  gate.open();
  server.shutdown(/*drain=*/true);
  EXPECT_EQ(server.wait(running.id).state, JobState::Done);
  EXPECT_EQ(server.wait(low_old.id).state, JobState::Done);
  EXPECT_EQ(server.wait(normal.id).state, JobState::Done);
  EXPECT_EQ(server.wait(high.id).state, JobState::Done);
}

TEST(ServeServer, NoSheddingWhenPolicyDisablesIt) {
  Gate gate;
  ServerOptions options;
  options.workers = 1;
  options.admission.max_queue_depth = 1;
  options.admission.shed_low_priority = false;
  options.inject_fault = [&](std::uint64_t id, int attempt) {
    return gate.hold(id, attempt);
  };
  Server server(options);

  const auto running = server.submit(small_spec(JobKind::Morphology, "run"));
  gate.wait_arrived(1);
  const auto queued =
      server.submit(small_spec(JobKind::Morphology, "q", Priority::Low));
  const auto high = server.submit(
      small_spec(JobKind::Morphology, "high", Priority::High));
  EXPECT_TRUE(queued.admitted);
  EXPECT_FALSE(high.admitted);
  EXPECT_EQ(high.detail, "queue full");

  gate.open();
  server.shutdown(/*drain=*/true);
  EXPECT_EQ(server.wait(running.id).state, JobState::Done);
  EXPECT_EQ(server.wait(queued.id).state, JobState::Done);
}

// ---------------------------------------------------------------------------
// Deadlines.

TEST(ServeServer, DeadlineExpiryWhileQueued) {
  Gate gate;
  ServerOptions options;
  options.workers = 1;
  options.inject_fault = [&](std::uint64_t id, int attempt) {
    return gate.hold(id, attempt);
  };
  Server server(options);

  const auto blocker = server.submit(small_spec(JobKind::Morphology, "blk"));
  gate.wait_arrived(1);

  JobSpec impatient = small_spec(JobKind::Morphology, "ddl");
  impatient.deadline_seconds = 1e-4;
  const auto sub = server.submit(impatient);
  ASSERT_TRUE(sub.admitted);

  std::this_thread::sleep_for(5ms);  // let the deadline lapse while queued
  gate.open();
  const JobResult res = server.wait(sub.id);
  server.shutdown(/*drain=*/true);

  EXPECT_EQ(res.state, JobState::TimedOut);
  EXPECT_EQ(res.detail, "deadline expired while queued");
  EXPECT_EQ(res.attempts, 0);
  EXPECT_EQ(res.run_seconds, 0.0);
  EXPECT_EQ(server.wait(blocker.id).state, JobState::Done);
}

TEST(ServeServer, DeadlineExpiryWhileRunningStopsAtChunkBoundary) {
  // The gate holds the attempt *after* admission and the queued-deadline
  // check; once released past its deadline, the pipeline's per-chunk
  // cancel_check fires before the first chunk. The deadline must be long
  // enough for the worker to dequeue the job in time on a loaded machine:
  // if it lapses while still queued, the fault injector never runs and
  // wait_arrived blocks forever.
  Gate gate;
  ServerOptions options;
  options.inject_fault = [&](std::uint64_t id, int attempt) {
    return gate.hold(id, attempt);
  };
  Server server(options);

  JobSpec spec = small_spec(JobKind::Morphology, "ddl-run");
  spec.deadline_seconds = 0.25;
  const auto sub = server.submit(spec);
  ASSERT_TRUE(sub.admitted);
  gate.wait_arrived(1);
  std::this_thread::sleep_for(300ms);  // let the deadline lapse at the gate
  gate.open();
  const JobResult res = server.wait(sub.id);
  server.shutdown(/*drain=*/true);

  EXPECT_EQ(res.state, JobState::TimedOut);
  EXPECT_NE(res.detail.find("deadline expired while running"),
            std::string::npos)
      << res.detail;
  EXPECT_EQ(res.attempts, 1);
}

// ---------------------------------------------------------------------------
// Retries.

TEST(ServeServer, TransientFaultsRetriedUntilDone) {
  std::atomic<int> calls{0};
  ServerOptions options;
  options.inject_fault = [&](std::uint64_t, int attempt) {
    calls.fetch_add(1);
    return attempt <= 2;  // first two attempts fault
  };
  Server server(options);

  JobSpec spec = small_spec(JobKind::Morphology, "retry");
  spec.max_retries = 2;
  const auto sub = server.submit(spec);
  const JobResult res = server.wait(sub.id);
  server.shutdown(/*drain=*/true);

  EXPECT_EQ(res.state, JobState::Done) << res.detail;
  EXPECT_EQ(res.attempts, 3);
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(res.output_hash, direct_output_hash(spec));
}

TEST(ServeServer, RetryBudgetExhaustionFails) {
  ServerOptions options;
  options.inject_fault = [](std::uint64_t, int) { return true; };
  Server server(options);

  JobSpec spec = small_spec(JobKind::Morphology, "doomed");
  spec.max_retries = 1;
  const auto sub = server.submit(spec);
  const JobResult res = server.wait(sub.id);
  server.shutdown(/*drain=*/true);

  EXPECT_EQ(res.state, JobState::Failed);
  EXPECT_EQ(res.attempts, 2);  // original + one retry
  EXPECT_NE(res.detail.find("transient fault"), std::string::npos)
      << res.detail;
}

// ---------------------------------------------------------------------------
// Cancellation and shutdown.

TEST(ServeServer, CancelQueuedAndRunningJobs) {
  Gate gate;
  ServerOptions options;
  options.workers = 1;
  options.inject_fault = [&](std::uint64_t id, int attempt) {
    return gate.hold(id, attempt);
  };
  Server server(options);

  const auto running = server.submit(small_spec(JobKind::Morphology, "run"));
  gate.wait_arrived(1);
  const auto queued = server.submit(small_spec(JobKind::Morphology, "q"));

  EXPECT_TRUE(server.cancel(queued.id));
  const JobResult qres = server.wait(queued.id);
  EXPECT_EQ(qres.state, JobState::Cancelled);
  EXPECT_EQ(qres.detail, "cancelled while queued");
  EXPECT_FALSE(server.cancel(queued.id)) << "already terminal";

  EXPECT_TRUE(server.cancel(running.id));
  gate.open();
  const JobResult rres = server.wait(running.id);
  server.shutdown(/*drain=*/true);
  EXPECT_EQ(rres.state, JobState::Cancelled);
  EXPECT_NE(rres.detail.find("cancelled while running"), std::string::npos)
      << rres.detail;

  EXPECT_FALSE(server.cancel(9999)) << "unknown id";
}

TEST(ServeServer, DrainShutdownCompletesEverythingDeterministically) {
  // Two identical request sequences against two single-worker servers must
  // finish with identical per-job terminal states and output hashes.
  auto run_batch = [] {
    ServerOptions options;
    options.workers = 1;
    Server server(options);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 3; ++i) {
      JobSpec spec = small_spec(
          i == 1 ? JobKind::Unmix : JobKind::Morphology, "job",
          i == 2 ? Priority::High : Priority::Normal);
      spec.scene.seed = 100 + static_cast<std::uint64_t>(i);
      ids.push_back(server.submit(spec).id);
    }
    server.shutdown(/*drain=*/true);
    std::vector<std::pair<JobState, std::uint64_t>> out;
    for (const std::uint64_t id : ids) {
      const JobResult r = server.wait(id);
      out.emplace_back(r.state, r.output_hash);
    }
    return out;
  };

  const auto first = run_batch();
  const auto second = run_batch();
  ASSERT_EQ(first.size(), 3u);
  for (const auto& [state, hash] : first) {
    EXPECT_EQ(state, JobState::Done);
    EXPECT_NE(hash, 0u);
  }
  EXPECT_EQ(first, second);
}

TEST(ServeServer, NonDrainShutdownCancelsQueuedJobs) {
  Gate gate;
  ServerOptions options;
  options.workers = 1;
  options.inject_fault = [&](std::uint64_t id, int attempt) {
    return gate.hold(id, attempt);
  };
  Server server(options);

  const auto running = server.submit(small_spec(JobKind::Morphology, "run"));
  gate.wait_arrived(1);
  const auto q1 = server.submit(small_spec(JobKind::Morphology, "q1"));
  const auto q2 = server.submit(small_spec(JobKind::Morphology, "q2"));

  std::thread closer([&] { server.shutdown(/*drain=*/false); });
  // shutdown(false) cancels the queued jobs and requests cooperative
  // cancellation of the running one; release the gate so it can react.
  std::this_thread::sleep_for(1ms);
  gate.open();
  closer.join();

  EXPECT_EQ(server.wait(q1.id).state, JobState::Cancelled);
  EXPECT_EQ(server.wait(q2.id).state, JobState::Cancelled);
  const JobResult rres = server.wait(running.id);
  EXPECT_TRUE(rres.state == JobState::Cancelled ||
              rres.state == JobState::Done)
      << to_string(rres.state);

  // Post-shutdown submissions are rejected, not enqueued.
  const auto late = server.submit(small_spec(JobKind::Morphology, "late"));
  EXPECT_FALSE(late.admitted);
  EXPECT_EQ(late.detail, "server is shutting down");
}

TEST(ServeServer, DestructorActsAsNonDrainShutdown) {
  Gate gate;
  std::uint64_t queued_id = 0;
  {
    ServerOptions options;
    options.workers = 1;
    options.inject_fault = [&](std::uint64_t id, int attempt) {
      return gate.hold(id, attempt);
    };
    Server server(options);
    server.submit(small_spec(JobKind::Morphology, "run"));
    gate.wait_arrived(1);
    queued_id = server.submit(small_spec(JobKind::Morphology, "q")).id;
    gate.open();
    // ~Server must terminalize everything and join without deadlocking.
  }
  EXPECT_GT(queued_id, 0u);
}

TEST(ServeServer, ConcurrentSubmittersAndWorkersStayConsistent) {
  // Thread-safety smoke for the TSan stage: several client threads hammer
  // submit/cancel/result while two workers drain. Every job must reach a
  // terminal state with a coherent result.
  ServerOptions options;
  options.workers = 2;
  options.admission.max_queue_depth = 8;
  options.keep_payloads = false;
  Server server(options);

  constexpr int kClients = 3;
  constexpr int kPerClient = 4;
  std::vector<std::thread> clients;
  std::mutex ids_mu;
  std::vector<std::uint64_t> ids;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        JobSpec spec = small_spec(
            JobKind::Morphology, "c" + std::to_string(c),
            static_cast<Priority>((c + i) % 3));
        spec.scene.width = 10;
        spec.scene.height = 10;
        spec.scene.bands = 8;
        const auto sub = server.submit(spec);
        if (i % 3 == 0) server.cancel(sub.id);
        (void)server.result(sub.id);
        std::lock_guard<std::mutex> lk(ids_mu);
        ids.push_back(sub.id);
      }
    });
  }
  for (auto& t : clients) t.join();
  server.shutdown(/*drain=*/true);

  ASSERT_EQ(ids.size(), static_cast<std::size_t>(kClients * kPerClient));
  for (const std::uint64_t id : ids) {
    const JobResult r = server.wait(id);
    EXPECT_TRUE(is_terminal(r.state)) << to_string(r.state);
    if (r.state == JobState::Done) {
      EXPECT_NE(r.output_hash, 0u);
      EXPECT_TRUE(r.mei.empty()) << "keep_payloads=false drops payloads";
    }
  }
}

// ---------------------------------------------------------------------------
// Estimation.

TEST(ServeEstimate, ScalesWithSceneAndReadsEnviHeaders) {
  const JobSpec small = small_spec(JobKind::Morphology, "s");
  JobSpec big = small;
  big.scene.width *= 4;
  big.scene.height *= 4;
  const JobEstimate es = estimate_job(small);
  const JobEstimate eb = estimate_job(big);
  EXPECT_EQ(es.pixels, 12u * 10u);
  EXPECT_GT(eb.bytes, es.bytes);
  EXPECT_GT(eb.seconds, es.seconds);

  // Classify adds the unmixing term on top of morphology.
  JobSpec classify = small;
  classify.kind = JobKind::Classify;
  EXPECT_GT(estimate_job(classify).seconds, es.seconds);

  // ENVI scenes are estimated from the header, overriding the synthetic
  // dimensions in the spec.
  const std::string base = testing::TempDir() + "hs_serve_est";
  hsi::SceneConfig cfg;
  cfg.width = 9;
  cfg.height = 9;
  cfg.bands = 8;
  hsi::write_envi(hsi::generate_indian_pines_scene(cfg).cube, base);
  JobSpec envi = small;
  envi.scene.envi_path = base + ".hdr";
  EXPECT_EQ(estimate_job(envi).pixels, 81u);

  JobSpec bad = small;
  bad.scene.width = 0;
  bad.scene.envi_path.clear();
  EXPECT_THROW(estimate_job(bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Observability (counters exist only in HS_TRACE=ON builds).

#if HS_TRACE_ENABLED

TEST(ServeTraceIntegration, CountersGaugesAndSpansTrackOutcomes) {
  trace::reset();
  trace::set_enabled(true);
  {
    ServerOptions options;
    options.admission.max_estimated_bytes = 1024;
    Server server(options);
    const auto rejected = server.submit(small_spec(JobKind::Morphology, "r"));
    EXPECT_FALSE(rejected.admitted);

    ServerOptions ok;
    Server worker(ok);
    const auto done = worker.submit(small_spec(JobKind::Morphology, "d"));
    worker.wait(done.id);
    worker.shutdown(/*drain=*/true);
    server.shutdown(/*drain=*/true);
  }
  trace::set_enabled(false);

  EXPECT_EQ(trace::counter("serve.jobs.submitted").value(), 2u);
  EXPECT_EQ(trace::counter("serve.jobs.rejected").value(), 1u);
  EXPECT_EQ(trace::counter("serve.jobs.done").value(), 1u);
  EXPECT_EQ(trace::gauge("serve.queue_depth").value(), 0.0);
  EXPECT_EQ(trace::gauge("serve.in_flight").value(), 0.0);

  const auto events = trace::snapshot();
  bool saw_job_span = false;
  for (const auto& e : events) {
    if (e.name == "serve.job" && e.cat == "serve") saw_job_span = true;
  }
  EXPECT_TRUE(saw_job_span);
}

#endif  // HS_TRACE_ENABLED

// ---------------------------------------------------------------------------
// Per-job timelines, exec accounting, retry backoff, flight dumps. These
// are plain serve-layer behaviour, exact in every build (independent of
// whether HS_TRACE instrumentation is compiled in).

std::vector<std::string> timeline_whats(const JobResult& r) {
  std::vector<std::string> whats;
  for (const auto& ev : r.timeline) whats.push_back(ev.what);
  return whats;
}

bool timeline_has(const JobResult& r, std::string_view what) {
  for (const auto& ev : r.timeline) {
    if (ev.what == what) return true;
  }
  return false;
}

TEST(ServeTimeline, DoneJobRecordsLifecycleInOrder) {
  ServerOptions options;
  Server server(options);
  const auto sub = server.submit(small_spec(JobKind::Morphology, "tl"));
  const JobResult res = server.wait(sub.id);
  server.shutdown(/*drain=*/true);

  ASSERT_EQ(res.state, JobState::Done) << res.detail;
  const auto whats = timeline_whats(res);
  ASSERT_GE(whats.size(), 4u);
  EXPECT_EQ(whats.front(), "submitted");
  EXPECT_TRUE(timeline_has(res, "dequeued"));
  EXPECT_TRUE(timeline_has(res, "attempt"));
  EXPECT_EQ(whats.back(), "terminal");
  EXPECT_EQ(res.timeline.back().detail, "done");
  // Submission-relative and monotonic.
  EXPECT_EQ(res.timeline.front().t_seconds, 0.0);
  for (std::size_t i = 1; i < res.timeline.size(); ++i) {
    EXPECT_LE(res.timeline[i - 1].t_seconds, res.timeline[i].t_seconds) << i;
  }
  // Without backoff sleeps, exec time is the whole run.
  EXPECT_GT(res.exec_seconds, 0.0);
  EXPECT_LE(res.exec_seconds, res.run_seconds + 1e-9);

  // The timeline exports as a valid hs.timeline.v1 document.
  std::ostringstream os;
  write_timeline_json(os, res);
  std::string error;
  EXPECT_TRUE(trace::json::validate_timeline_json(os.str(), &error))
      << error << "\n" << os.str();
}

TEST(ServeTimeline, RejectedJobTerminalizesWithValidTimeline) {
  ServerOptions options;
  options.admission.max_estimated_bytes = 1024;
  Server server(options);
  const auto sub = server.submit(small_spec(JobKind::Morphology, "rej"));
  EXPECT_FALSE(sub.admitted);
  const JobResult res = server.wait(sub.id);
  server.shutdown(/*drain=*/true);

  EXPECT_EQ(res.state, JobState::Rejected);
  EXPECT_TRUE(timeline_has(res, "terminal"));
  std::ostringstream os;
  write_timeline_json(os, res);
  std::string error;
  EXPECT_TRUE(trace::json::validate_timeline_json(os.str(), &error)) << error;
}

TEST(ServeTimeline, RetryMarksFaultsAndBackoffExcludedFromExec) {
  ServerOptions options;
  options.retry_backoff_seconds = 0.005;
  options.inject_fault = [](std::uint64_t, int attempt) {
    return attempt <= 2;  // two faults, done on the third attempt
  };
  Server server(options);
  JobSpec spec = small_spec(JobKind::Morphology, "backoff");
  spec.max_retries = 2;
  const auto sub = server.submit(spec);
  const JobResult res = server.wait(sub.id);
  server.shutdown(/*drain=*/true);

  ASSERT_EQ(res.state, JobState::Done) << res.detail;
  EXPECT_EQ(res.attempts, 3);
  // Timeline: one fault + one backoff mark per consumed retry, and one
  // attempt mark per attempt.
  int faults = 0, backoffs = 0, attempts = 0;
  for (const auto& ev : res.timeline) {
    if (ev.what == "fault") ++faults;
    if (ev.what == "backoff") ++backoffs;
    if (ev.what == "attempt") ++attempts;
  }
  EXPECT_EQ(faults, 2);
  EXPECT_EQ(backoffs, 2);
  EXPECT_EQ(attempts, 3);
  // Exponential schedule: 5 ms + 10 ms of sleeps excluded from exec time.
  EXPECT_GE(res.run_seconds - res.exec_seconds, 0.012);
  EXPECT_GT(res.exec_seconds, 0.0);
}

TEST(ServeFlightDump, FailedJobDumpsAndDoneJobDoesNot) {
  const std::string dir = ::testing::TempDir() + "/hs_flight_dump_test";
  std::filesystem::create_directories(dir);
  ServerOptions options;
  options.flight_dump_dir = dir;
  options.inject_fault = [](std::uint64_t id, int) { return id == 1; };
  Server server(options);
  const auto doomed = server.submit(small_spec(JobKind::Morphology, "boom"));
  const auto fine = server.submit(small_spec(JobKind::Morphology, "ok"));
  const JobResult doomed_res = server.wait(doomed.id);
  const JobResult fine_res = server.wait(fine.id);
  server.shutdown(/*drain=*/true);

  ASSERT_EQ(doomed_res.state, JobState::Failed);
  ASSERT_EQ(fine_res.state, JobState::Done) << fine_res.detail;

  const std::string doomed_path =
      dir + "/flight_job" + std::to_string(doomed.id) + ".json";
  const std::string fine_path =
      dir + "/flight_job" + std::to_string(fine.id) + ".json";
  std::ifstream in(doomed_path);
  ASSERT_TRUE(in.good()) << doomed_path;
  std::stringstream ss;
  ss << in.rdbuf();
  std::string error;
  EXPECT_TRUE(trace::json::validate_flight_json(ss.str(), &error))
      << error << "\n" << ss.str();
  EXPECT_FALSE(std::ifstream(fine_path).good());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hs::serve
