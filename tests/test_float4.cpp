#include "gpusim/float4.hpp"

#include <gtest/gtest.h>

namespace hs::gpusim {
namespace {

TEST(Float4, BroadcastConstructor) {
  const float4 v(2.5f);
  EXPECT_EQ(v, float4(2.5f, 2.5f, 2.5f, 2.5f));
}

TEST(Float4, IndexingMatchesMembers) {
  float4 v{1, 2, 3, 4};
  EXPECT_EQ(v[0], 1.f);
  EXPECT_EQ(v[1], 2.f);
  EXPECT_EQ(v[2], 3.f);
  EXPECT_EQ(v[3], 4.f);
  v[2] = 9.f;
  EXPECT_EQ(v.z, 9.f);
}

TEST(Float4, Arithmetic) {
  const float4 a{1, 2, 3, 4};
  const float4 b{4, 3, 2, 1};
  EXPECT_EQ(a + b, float4(5, 5, 5, 5));
  EXPECT_EQ(a - b, float4(-3, -1, 1, 3));
  EXPECT_EQ(a * b, float4(4, 6, 6, 4));
  EXPECT_EQ(a * 2.f, float4(2, 4, 6, 8));
  EXPECT_EQ(-a, float4(-1, -2, -3, -4));
}

TEST(Float4, CompoundAdd) {
  float4 a{1, 1, 1, 1};
  a += float4{1, 2, 3, 4};
  EXPECT_EQ(a, float4(2, 3, 4, 5));
}

TEST(Float4, Dots) {
  const float4 a{1, 2, 3, 4};
  const float4 b{2, 2, 2, 2};
  EXPECT_EQ(dot3(a, b), 12.f);
  EXPECT_EQ(dot4(a, b), 20.f);
}

TEST(Float4, MinMaxAbs) {
  const float4 a{1, -5, 3, -1};
  const float4 b{2, -6, 2, 0};
  EXPECT_EQ(min4(a, b), float4(1, -6, 2, -1));
  EXPECT_EQ(max4(a, b), float4(2, -5, 3, 0));
  EXPECT_EQ(abs4(a), float4(1, 5, 3, 1));
}

}  // namespace
}  // namespace hs::gpusim
