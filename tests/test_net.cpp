// The TCP front door battery: frame parser torture tests, request/wire
// protocol round-trips, and socket-level NetServer behavior (streaming,
// flow control, 429 shedding, disconnects, drains) over real loopback
// connections. The NetSlow suite at the bottom holds the multi-client
// concurrency stress and the cross-worker-count witness sweep; it is
// labeled `net;slow` by tests/CMakeLists.txt.
#include "net/net_server.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/io.hpp"
#include "net/protocol.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "trace/json_check.hpp"

namespace hs::net {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// FrameReader

std::vector<FrameEvent> drain(FrameReader& r) {
  std::vector<FrameEvent> out;
  while (auto ev = r.next()) out.push_back(*ev);
  return out;
}

TEST(NetFrame, SingleFrameStripsNewlineAndCr) {
  FrameReader r(1024);
  r.feed("{\"a\":1}\r\n");
  const auto events = drain(r);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FrameEvent::Kind::Frame);
  EXPECT_EQ(events[0].text, "{\"a\":1}");
  EXPECT_EQ(r.pending_bytes(), 0u);
}

TEST(NetFrame, CoalescedFramesSplitCorrectly) {
  FrameReader r(1024);
  r.feed("one\ntwo\nthree\n");
  const auto events = drain(r);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].text, "one");
  EXPECT_EQ(events[1].text, "two");
  EXPECT_EQ(events[2].text, "three");
}

TEST(NetFrame, ByteAtATime) {
  FrameReader r(1024);
  const std::string wire = "alpha\nbeta\n";
  std::vector<std::string> frames;
  for (const char c : wire) {
    r.feed(&c, 1);
    while (auto ev = r.next()) {
      ASSERT_EQ(ev->kind, FrameEvent::Kind::Frame);
      frames.push_back(ev->text);
    }
  }
  EXPECT_EQ(frames, (std::vector<std::string>{"alpha", "beta"}));
}

TEST(NetFrame, EverySplitPointOfTwoFrames) {
  const std::string wire = "{\"k\":\"morphology\"}\n{\"k\":\"unmix\"}\n";
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    FrameReader r(1024);
    r.feed(wire.substr(0, cut));
    r.feed(wire.substr(cut));
    const auto events = drain(r);
    ASSERT_EQ(events.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(events[0].text, "{\"k\":\"morphology\"}");
    EXPECT_EQ(events[1].text, "{\"k\":\"unmix\"}");
  }
}

TEST(NetFrame, BlankLineIsAnEmptyFrame) {
  FrameReader r(64);
  r.feed("\n\r\n");
  const auto events = drain(r);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].text, "");
  EXPECT_EQ(events[1].text, "");
}

TEST(NetFrame, OversizedFrameReportsOnceAndResyncs) {
  FrameReader r(8);
  r.feed("0123456789ABCDEF\nok\n");
  const auto events = drain(r);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FrameEvent::Kind::Oversized);
  EXPECT_GT(events[0].bytes, 8u);
  EXPECT_EQ(events[1].kind, FrameEvent::Kind::Frame);
  EXPECT_EQ(events[1].text, "ok");
}

TEST(NetFrame, OversizedAcrossManyFeedsEmitsOneEvent) {
  FrameReader r(4);
  r.feed("abcd");   // exactly at the limit: still pending
  EXPECT_TRUE(drain(r).empty());
  r.feed("e");      // crosses the limit
  auto events = drain(r);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FrameEvent::Kind::Oversized);
  r.feed("fghijklmnop");  // still the same doomed line: no new events
  EXPECT_TRUE(drain(r).empty());
  r.feed("q\nfine\n");
  events = drain(r);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FrameEvent::Kind::Frame);
  EXPECT_EQ(events[0].text, "fine");
}

TEST(NetFrame, FrameExactlyAtLimitIsAccepted) {
  FrameReader r(4);
  r.feed("abcd\n");
  const auto events = drain(r);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FrameEvent::Kind::Frame);
  EXPECT_EQ(events[0].text, "abcd");
}

TEST(NetFrame, MidFrameDisconnectIsTruncated) {
  FrameReader r(64);
  r.feed("complete\npart");
  r.finish();
  const auto events = drain(r);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].text, "complete");
  EXPECT_EQ(events[1].kind, FrameEvent::Kind::Truncated);
  EXPECT_EQ(events[1].text, "part");
}

TEST(NetFrame, FinishOnCleanBoundaryEmitsNothing) {
  FrameReader r(64);
  r.feed("done\n");
  r.finish();
  const auto events = drain(r);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FrameEvent::Kind::Frame);
}

TEST(NetFrame, ZeroLimitClampsToOne) {
  FrameReader r(0);
  EXPECT_EQ(r.max_frame_bytes(), 1u);
  r.feed("x\nyy\n");
  const auto events = drain(r);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FrameEvent::Kind::Frame);
  EXPECT_EQ(events[0].text, "x");
  EXPECT_EQ(events[1].kind, FrameEvent::Kind::Oversized);
}

TEST(NetFrame, RandomSplitFuzzMatchesReference) {
  // Deterministic fuzz: random printable lines (some blank, some with
  // '\r'), serialized once, then fed in random-sized chunks. The reader
  // must reproduce the exact line sequence regardless of chunking.
  std::mt19937 rng(20260808u);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::string> expected;
    std::string wire;
    const int n_lines = 1 + static_cast<int>(rng() % 20);
    for (int i = 0; i < n_lines; ++i) {
      std::string line;
      const std::size_t len = rng() % 40;
      for (std::size_t j = 0; j < len; ++j) {
        line += static_cast<char>('!' + rng() % 93);  // printable, no \r\n
      }
      expected.push_back(line);
      wire += line;
      if (rng() % 4 == 0) wire += '\r';
      wire += '\n';
    }
    FrameReader r(4096);
    std::vector<std::string> got;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 7, wire.size() - pos);
      r.feed(wire.data() + pos, chunk);
      pos += chunk;
      while (auto ev = r.next()) {
        ASSERT_EQ(ev->kind, FrameEvent::Kind::Frame);
        got.push_back(ev->text);
      }
    }
    EXPECT_EQ(got, expected) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Request frames (the "id" key + source labels)

TEST(NetRequest, FrameParserCapturesClientId) {
  std::string error;
  const auto req = serve::parse_request_frame(
      "{\"id\":41,\"kind\":\"morphology\",\"size\":8,\"bands\":4}", &error);
  ASSERT_TRUE(req.has_value()) << error;
  EXPECT_TRUE(req->has_client_id);
  EXPECT_EQ(req->client_id, 41u);
}

TEST(NetRequest, FrameParserWithoutIdLeavesFlagClear) {
  const auto req = serve::parse_request_frame(
      "{\"kind\":\"morphology\",\"size\":8,\"bands\":4}");
  ASSERT_TRUE(req.has_value());
  EXPECT_FALSE(req->has_client_id);
}

TEST(NetRequest, FileParserRejectsIdKey) {
  std::string error;
  const auto spec = serve::parse_request_line(
      "{\"id\":1,\"kind\":\"morphology\",\"size\":8,\"bands\":4}", &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("id"), std::string::npos) << error;
}

TEST(NetRequest, NegativeClientIdRejected) {
  std::string error;
  EXPECT_FALSE(serve::parse_request_frame(
      "{\"id\":-1,\"kind\":\"morphology\",\"size\":8,\"bands\":4}", &error));
  EXPECT_FALSE(error.empty());
}

TEST(NetRequest, SourceLabelPrefixesParseErrors) {
  std::string error;
  EXPECT_FALSE(serve::parse_request_frame("{not json", &error, "conn 3"));
  EXPECT_EQ(error.rfind("conn 3: ", 0), 0u) << error;

  error.clear();
  EXPECT_FALSE(serve::parse_request_line("{not json", &error));
  EXPECT_EQ(error.find("conn"), std::string::npos) << error;
}

TEST(NetRequest, ReadRequestsLabelsSourceAndLine) {
  std::istringstream in(
      "# comment\n"
      "{\"kind\":\"morphology\",\"size\":8,\"bands\":4}\n"
      "{broken\n");
  const auto batch = serve::read_requests(in, "req.jsonl");
  EXPECT_EQ(batch.jobs.size(), 1u);
  ASSERT_EQ(batch.errors.size(), 1u);
  EXPECT_EQ(batch.errors[0].first, 3);
  EXPECT_EQ(batch.errors[0].second.rfind("req.jsonl:3: ", 0), 0u)
      << batch.errors[0].second;
}

TEST(NetRequest, ClientIdNeverReachesTheFingerprint) {
  const char* with_id =
      "{\"id\":99,\"kind\":\"unmix\",\"size\":8,\"bands\":4,\"endmembers\":3}";
  const char* without_id =
      "{\"kind\":\"unmix\",\"size\":8,\"bands\":4,\"endmembers\":3}";
  const auto a = serve::parse_request_frame(with_id);
  const auto b = serve::parse_request_frame(without_id);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(serve::job_fingerprint(a->spec), serve::job_fingerprint(b->spec));
}

// ---------------------------------------------------------------------------
// Wire protocol

TEST(NetProtocol, BuildersEmitOneStrictJsonLine) {
  serve::JobResult result;
  result.id = 3;
  result.name = "j";
  result.state = serve::JobState::Done;
  const std::string frames[] = {
      hello_frame(1 << 20),
      result_frame(result, true, 7),
      reject_frame(9, false, 0, "big", "queue full", 125.5),
      error_frame("bad \"frame\"\nhere", true),
      progress_frame(4, true, 2, 11),
  };
  for (const std::string& f : frames) {
    ASSERT_FALSE(f.empty());
    EXPECT_EQ(f.back(), '\n');
    EXPECT_EQ(f.find('\n'), f.size() - 1) << f;  // exactly one line
    std::string error;
    EXPECT_TRUE(trace::json::parse(f, &error)) << f << " -- " << error;
  }
}

TEST(NetProtocol, ResultFrameRoundTrips) {
  serve::JobResult result;
  result.id = 12;
  result.name = "quoted \"name\"";
  result.state = serve::JobState::Done;
  result.detail = "ok";
  result.attempts = 2;
  result.cached = true;
  result.queue_seconds = 0.25;
  result.exec_seconds = 0.5;
  result.chunk_count = 6;
  result.output_hash = 0xdeadbeef01ull;

  const auto r = parse_response_frame(result_frame(result, true, 77));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, "result");
  EXPECT_TRUE(r->terminal());
  EXPECT_EQ(r->job, 12u);
  EXPECT_TRUE(r->has_client_id);
  EXPECT_EQ(r->client_id, 77u);
  EXPECT_EQ(r->name, "quoted \"name\"");
  EXPECT_EQ(r->state, "done");
  EXPECT_EQ(r->attempts, 2);
  EXPECT_TRUE(r->cached);
  EXPECT_NEAR(r->queue_ms, 250.0, 1e-6);
  EXPECT_NEAR(r->exec_ms, 500.0, 1e-6);
  EXPECT_EQ(r->chunks, 6u);
  EXPECT_EQ(r->output_hash, "deadbeef01");
}

TEST(NetProtocol, RejectFrameCarries429AndRetryAfter) {
  const auto r = parse_response_frame(
      reject_frame(5, true, 3, "victim", "queue full: shed", 210.25));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, "reject");
  EXPECT_TRUE(r->terminal());
  EXPECT_EQ(r->code, 429);
  EXPECT_EQ(r->state, "rejected");
  EXPECT_EQ(r->error, "queue full: shed");
  EXPECT_NEAR(r->retry_after_ms, 210.25, 1e-6);
  EXPECT_EQ(r->client_id, 3u);
}

TEST(NetProtocol, ErrorAndProgressRoundTrip) {
  const auto err = parse_response_frame(error_frame("conn 1: bad", true));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->type, "error");
  EXPECT_FALSE(err->terminal());
  EXPECT_TRUE(err->fatal);
  EXPECT_EQ(err->error, "conn 1: bad");

  const auto prog = parse_response_frame(progress_frame(8, true, 4, 19));
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->type, "progress");
  EXPECT_FALSE(prog->terminal());
  EXPECT_EQ(prog->job, 8u);
  EXPECT_EQ(prog->chunks, 19u);
}

TEST(NetProtocol, UnknownKeysAreSkippedForForwardCompat) {
  const auto r = parse_response_frame(
      "{\"type\":\"result\",\"job\":1,\"state\":\"done\","
      "\"new_field\":[1,2,3],\"another\":{\"x\":true}}");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, "result");
  EXPECT_EQ(r->job, 1u);
}

TEST(NetProtocol, FramesWithoutTypeOrBadJsonRejected) {
  std::string error;
  EXPECT_FALSE(parse_response_frame("{\"job\":1}", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_response_frame("nonsense", &error));
  EXPECT_FALSE(parse_response_frame("[1,2]", &error));
}

TEST(NetProtocol, ParsePortIsStrict) {
  EXPECT_EQ(parse_port("0"), 0);
  EXPECT_EQ(parse_port("80"), 80);
  EXPECT_EQ(parse_port("65535"), 65535);
  EXPECT_FALSE(parse_port(""));
  EXPECT_FALSE(parse_port("65536"));
  EXPECT_FALSE(parse_port("-1"));
  EXPECT_FALSE(parse_port("80x"));
  EXPECT_FALSE(parse_port("http"));
  EXPECT_FALSE(parse_port(" 80"));
  EXPECT_FALSE(parse_port("8 0"));
  EXPECT_FALSE(parse_port("123456"));
}

// ---------------------------------------------------------------------------
// NetServer over real loopback sockets

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Small always-Done synthetic jobs; the same lines are reused for the
/// direct (in-process) witness runs.
const std::vector<std::string>& request_lines() {
  static const std::vector<std::string> lines = {
      R"({"name":"t-mei","kind":"morphology","size":16,"bands":8,"se":1})",
      R"({"name":"t-classify","kind":"classify","size":12,"bands":8,"endmembers":3})",
      R"({"name":"t-unmix","kind":"unmix","size":16,"bands":8,"endmembers":3,"workers":2})",
      R"({"name":"t-chunked","kind":"morphology","size":24,"bands":8,"se":1,"workers":2,"chunk_texel_budget":256})",
  };
  return lines;
}

std::string with_id(const std::string& line, std::uint64_t id) {
  std::string out = line;
  out.insert(1, "\"id\":" + std::to_string(id) + ",");
  return out;
}

/// A gate for holding jobs "running" deterministically from inside the
/// fault injector (which blocks, then reports no fault).
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  void release() {
    std::lock_guard<std::mutex> lk(mu);
    open = true;
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return open; });
  }
};

template <typename Predicate>
bool eventually(Predicate pred, double timeout_s = 10.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

serve::ServerOptions base_server_options(std::size_t workers) {
  serve::ServerOptions options;
  options.workers = workers;
  options.keep_payloads = false;
  return options;
}

/// Reads and checks the mandatory hello greeting.
void expect_hello(Client& client) {
  std::string error;
  const auto hello = client.read_frame(10.0, &error);
  ASSERT_TRUE(hello.has_value()) << error;
  const auto r = parse_response_frame(*hello);
  ASSERT_TRUE(r.has_value()) << *hello;
  ASSERT_EQ(r->type, "hello");
}

TEST(NetServerLoop, HelloGreetingAdvertisesProtocol) {
  serve::Server server(base_server_options(1));
  NetServerOptions nopt;
  nopt.max_frame_bytes = 4096;
  NetServer ns(server, nopt);
  ns.start();
  ASSERT_GT(ns.port(), 0);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  const auto hello = client.read_frame(10.0, &error);
  ASSERT_TRUE(hello.has_value()) << error;
  EXPECT_NE(hello->find("hs.net.v1"), std::string::npos);
  EXPECT_NE(hello->find("4096"), std::string::npos);
  client.close();
  ns.stop(/*drain=*/true);
  server.shutdown(true);
}

TEST(NetServerLoop, SubmitStreamsTaggedResult) {
  serve::Server server(base_server_options(2));
  NetServer ns(server, NetServerOptions{});
  ns.start();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);
  ASSERT_TRUE(client.send_line(with_id(request_lines()[0], 42), &error))
      << error;
  const auto frame = client.read_frame(30.0, &error);
  ASSERT_TRUE(frame.has_value()) << error;
  const auto r = parse_response_frame(*frame);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, "result");
  EXPECT_EQ(r->state, "done");
  ASSERT_TRUE(r->has_client_id);
  EXPECT_EQ(r->client_id, 42u);
  EXPECT_FALSE(r->output_hash.empty());

  client.close();
  ns.stop(true);
  server.shutdown(true);
  const auto stats = ns.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.results_sent, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(NetServerLoop, OutOfOrderCompletionsRouteByClientId) {
  // Job tagged id 1 blocks on the gate; job tagged id 2 completes first.
  auto gate = std::make_shared<Gate>();
  auto options = base_server_options(2);
  std::atomic<std::uint64_t> gated_id{0};
  options.inject_fault = [gate, &gated_id](std::uint64_t id, int) {
    if (id == gated_id.load()) gate->wait();
    return false;
  };
  serve::Server server(options);
  NetServer ns(server, NetServerOptions{});
  ns.start();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);
  gated_id.store(1);  // the first submitted job gets server id 1
  ASSERT_TRUE(client.send_line(with_id(request_lines()[0], 1), &error));
  ASSERT_TRUE(client.send_line(with_id(request_lines()[1], 2), &error));

  const auto first = client.read_frame(30.0, &error);
  ASSERT_TRUE(first.has_value()) << error;
  const auto r1 = parse_response_frame(*first);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->client_id, 2u) << "fast job should finish first";

  gate->release();
  const auto second = client.read_frame(30.0, &error);
  ASSERT_TRUE(second.has_value()) << error;
  const auto r2 = parse_response_frame(*second);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->client_id, 1u);
  EXPECT_EQ(r2->state, "done");

  client.close();
  ns.stop(true);
  server.shutdown(true);
}

TEST(NetServerLoop, MalformedFrameGetsErrorAndConnectionSurvives) {
  serve::Server server(base_server_options(1));
  NetServer ns(server, NetServerOptions{});
  ns.start();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);
  ASSERT_TRUE(client.send_line("{this is not json", &error));
  const auto err_frame = client.read_frame(10.0, &error);
  ASSERT_TRUE(err_frame.has_value()) << error;
  const auto e = parse_response_frame(*err_frame);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->type, "error");
  EXPECT_FALSE(e->fatal);
  // The error names the connection as the source of the bad line.
  EXPECT_NE(e->error.find("conn "), std::string::npos) << e->error;

  // Same connection still serves requests.
  ASSERT_TRUE(client.send_line(with_id(request_lines()[0], 5), &error));
  const auto result = client.read_frame(30.0, &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(parse_response_frame(*result)->state, "done");

  client.close();
  ns.stop(true);
  server.shutdown(true);
  EXPECT_EQ(ns.stats().bad_frames, 1u);
}

TEST(NetServerLoop, OversizedFrameIsFatalForTheConnection) {
  serve::Server server(base_server_options(1));
  NetServerOptions nopt;
  nopt.max_frame_bytes = 64;
  NetServer ns(server, nopt);
  ns.start();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);
  ASSERT_TRUE(client.send_line(std::string(300, 'x'), &error));
  const auto err_frame = client.read_frame(10.0, &error);
  ASSERT_TRUE(err_frame.has_value()) << error;
  const auto e = parse_response_frame(*err_frame);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->type, "error");
  EXPECT_TRUE(e->fatal);
  // Server closes after flushing the error.
  EXPECT_FALSE(client.read_frame(10.0, &error).has_value());
  EXPECT_EQ(error, "eof");

  // A fresh connection is unaffected.
  Client second;
  ASSERT_TRUE(second.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(second);
  second.close();

  ns.stop(true);
  server.shutdown(true);
  EXPECT_EQ(ns.stats().oversized_frames, 1u);
}

TEST(NetIo, SendAllBoundedSurvivesFullSocketBufferAndPartialWrites) {
  // Regression for the accept-time busy reject, which used to be a single
  // fire-and-forget ::send on a SOCK_NONBLOCK socket: with the buffer
  // full the frame was silently dropped or truncated. Shrink the kernel
  // buffers, stuff the pipe until ::send reports EAGAIN, then ask
  // send_all_bounded for a frame much larger than the remaining room --
  // every byte must come out the other end, in order, while a slow reader
  // drains.
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  for (int fd : sv) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ASSERT_EQ(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0);
    const int small = 4096;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  }

  // Fill until the kernel pushes back.
  std::string plug(1024, 'p');
  std::size_t plugged = 0;
  for (;;) {
    const ssize_t n = ::send(sv[0], plug.data(), plug.size(), MSG_NOSIGNAL);
    if (n < 0) {
      ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
      break;
    }
    plugged += static_cast<std::size_t>(n);
  }

  std::string frame(64 * 1024, 'x');
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame[i] = static_cast<char>('a' + (i % 26));
  }

  std::string received;
  std::thread reader([&] {
    std::this_thread::sleep_for(20ms);  // let the writer hit EAGAIN first
    char buf[512];                      // small reads force partial writes
    const std::size_t want = plugged + frame.size();
    while (received.size() < want) {
      const ssize_t n = ::recv(sv[1], buf, sizeof(buf), 0);
      if (n > 0) {
        received.append(buf, static_cast<std::size_t>(n));
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        std::this_thread::sleep_for(1ms);
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        break;
      }
    }
  });

  EXPECT_TRUE(send_all_bounded(sv[0], frame, /*timeout_ms=*/10000));
  reader.join();
  ASSERT_EQ(received.size(), plugged + frame.size());
  EXPECT_EQ(received.substr(plugged), frame);

  // With nobody draining, the bounded wait gives up instead of wedging.
  std::size_t refill = 0;
  for (;;) {
    const ssize_t n = ::send(sv[0], plug.data(), plug.size(), MSG_NOSIGNAL);
    if (n < 0) break;
    refill += static_cast<std::size_t>(n);
  }
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(send_all_bounded(sv[0], frame, /*timeout_ms=*/50));
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited, 5.0);
  (void)refill;

  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(NetServerLoop, BusyRejectFrameArrivesIntactOverConnectionLimit) {
  serve::Server server(base_server_options(1));
  NetServerOptions nopt;
  nopt.max_connections = 1;
  NetServer ns(server, nopt);
  ns.start();

  Client first;
  std::string error;
  ASSERT_TRUE(first.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(first);

  // Over the limit: the server must deliver one complete, parseable
  // fatal error frame and close.
  Client second;
  ASSERT_TRUE(second.connect("127.0.0.1", ns.port(), &error)) << error;
  const auto frame = second.read_frame(10.0, &error);
  ASSERT_TRUE(frame.has_value()) << error;
  const auto r = parse_response_frame(*frame);
  ASSERT_TRUE(r.has_value()) << *frame;
  EXPECT_EQ(r->type, "error");
  EXPECT_TRUE(r->fatal);
  EXPECT_NE(r->error.find("busy"), std::string::npos);
  EXPECT_FALSE(second.read_frame(1.0, &error).has_value());  // then EOF

  second.close();
  first.close();
  ns.stop(true);
  server.shutdown(true);
}

TEST(NetServerLoop, SynchronousRejectStreams429WithRetryAfter) {
  auto options = base_server_options(1);
  options.admission.max_estimated_bytes = 1;  // nothing fits
  serve::Server server(options);
  NetServer ns(server, NetServerOptions{});
  ns.start();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);
  ASSERT_TRUE(client.send_line(with_id(request_lines()[0], 9), &error));
  const auto frame = client.read_frame(10.0, &error);
  ASSERT_TRUE(frame.has_value()) << error;
  const auto r = parse_response_frame(*frame);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, "reject");
  EXPECT_EQ(r->code, 429);
  EXPECT_EQ(r->client_id, 9u);
  EXPECT_GE(r->retry_after_ms, 25.0);  // the configured floor
  EXPECT_FALSE(r->error.empty());

  // Exactly one terminal frame: the on_terminal duplicate for a
  // synchronously-answered id must not produce a second response.
  EXPECT_FALSE(client.read_frame(0.3, &error).has_value());
  EXPECT_EQ(error, "timeout");

  client.close();
  ns.stop(true);
  server.shutdown(true);
  EXPECT_EQ(ns.stats().rejected, 1u);
  EXPECT_EQ(ns.stats().results_sent, 0u);
}

TEST(NetServerLoop, ShedQueuedJobStreams429) {
  auto gate = std::make_shared<Gate>();
  auto options = base_server_options(1);
  options.admission.max_queue_depth = 1;
  options.admission.shed_low_priority = true;
  options.inject_fault = [gate](std::uint64_t, int) {
    gate->wait();
    return false;
  };
  serve::Server server(options);
  NetServer ns(server, NetServerOptions{});
  ns.start();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);

  // id 1 occupies the worker (gated); id 2 (low) fills the queue; id 3
  // (high) sheds it.
  std::string running = with_id(request_lines()[0], 1);
  ASSERT_TRUE(client.send_line(running, &error));
  ASSERT_TRUE(eventually([&] { return server.in_flight() == 1; })) <<
      "gated job never started";
  std::string low = with_id(
      R"({"name":"victim","kind":"classify","priority":"low","size":12,"bands":8})",
      2);
  std::string high = with_id(
      R"({"name":"vip","kind":"classify","priority":"high","size":12,"bands":8})",
      3);
  ASSERT_TRUE(client.send_line(low, &error));
  ASSERT_TRUE(eventually([&] { return server.queue_depth() == 1; }));
  ASSERT_TRUE(client.send_line(high, &error));

  // The shed victim's 429 arrives while the worker is still gated.
  const auto shed = client.read_frame(10.0, &error);
  ASSERT_TRUE(shed.has_value()) << error;
  const auto r = parse_response_frame(*shed);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, "reject");
  EXPECT_EQ(r->code, 429);
  EXPECT_EQ(r->client_id, 2u);
  EXPECT_GT(r->retry_after_ms, 0.0);

  gate->release();
  std::set<std::uint64_t> finished;
  for (int i = 0; i < 2; ++i) {
    const auto frame = client.read_frame(30.0, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    const auto done = parse_response_frame(*frame);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->state, "done");
    finished.insert(done->client_id);
  }
  EXPECT_EQ(finished, (std::set<std::uint64_t>{1, 3}));

  client.close();
  ns.stop(true);
  server.shutdown(true);
}

TEST(NetServerLoop, PortInUseThrowsWithErrnoText) {
  serve::Server server_a(base_server_options(1));
  NetServer a(server_a, NetServerOptions{});
  NetServerOptions taken;
  taken.port = a.port();
  serve::Server server_b(base_server_options(1));
  EXPECT_THROW(
      { NetServer b(server_b, taken); }, std::runtime_error);
}

TEST(NetServerLoop, FlowControlPausesAndRecovers) {
  auto gate = std::make_shared<Gate>();
  auto options = base_server_options(2);
  options.inject_fault = [gate](std::uint64_t, int) {
    gate->wait();
    return false;
  };
  serve::Server server(options);
  NetServerOptions nopt;
  nopt.max_inflight_per_conn = 2;
  NetServer ns(server, nopt);
  ns.start();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);
  // One send() carrying all six frames: TCP delivers them as a single
  // recv batch, so the in-flight cap must be enforced frame by frame
  // inside the batch, not once per read.
  const int kJobs = 6;
  std::string burst;
  for (int i = 0; i < kJobs; ++i) {
    burst += with_id(request_lines()[0], i) + "\n";
  }
  ASSERT_TRUE(client.send_line(burst, &error));
  // With every worker gated and the per-connection cap at 2, the loop
  // must stop reading this connection at least once, with at most the
  // two capped jobs inside the Server; the other four wait, parsed but
  // unsubmitted, in the connection's frame buffer.
  ASSERT_TRUE(eventually([&] { return ns.stats().flow_pauses >= 1; }))
      << "flow control never paused";
  EXPECT_LE(server.in_flight() + server.queue_depth(), 2u);
  EXPECT_EQ(ns.stats().submitted, 2u);

  gate->release();
  std::set<std::uint64_t> finished;
  for (int i = 0; i < kJobs; ++i) {
    const auto frame = client.read_frame(30.0, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    const auto r = parse_response_frame(*frame);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->terminal());
    finished.insert(r->client_id);
  }
  EXPECT_EQ(finished.size(), static_cast<std::size_t>(kJobs));

  client.close();
  ns.stop(true);
  server.shutdown(true);
  EXPECT_EQ(ns.stats().submitted, static_cast<std::uint64_t>(kJobs));
}

TEST(NetServerLoop, AbruptResetOrphansInflightJobs) {
  auto gate = std::make_shared<Gate>();
  auto options = base_server_options(1);
  options.inject_fault = [gate](std::uint64_t, int) {
    gate->wait();
    return false;
  };
  serve::Server server(options);
  NetServer ns(server, NetServerOptions{});
  ns.start();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);
  ASSERT_TRUE(client.send_line(with_id(request_lines()[0], 1), &error));
  ASSERT_TRUE(eventually([&] { return ns.stats().submitted == 1; }));

  // SO_LINGER(0) turns close() into a hard RST: the loop sees an error
  // (not a half-close) while the job is still gated.
  struct linger hard {};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(client.fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  client.close();
  ASSERT_TRUE(eventually([&] { return ns.open_connections() == 0; }))
      << "reset connection never closed";

  gate->release();
  // The job still reaches its terminal state; the result is accounted as
  // orphaned, never silently lost.
  ASSERT_TRUE(eventually([&] { return ns.stats().orphaned_results == 1; }));
  EXPECT_EQ(ns.stats().results_sent, 0u);

  // The front door keeps serving new clients afterwards.
  Client second;
  ASSERT_TRUE(second.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(second);
  ASSERT_TRUE(second.send_line(with_id(request_lines()[1], 2), &error));
  const auto frame = second.read_frame(30.0, &error);
  ASSERT_TRUE(frame.has_value()) << error;
  EXPECT_EQ(parse_response_frame(*frame)->state, "done");
  second.close();

  ns.stop(true);
  server.shutdown(true);
}

TEST(NetServerLoop, HalfCloseStillFlushesResults) {
  serve::Server server(base_server_options(2));
  NetServer ns(server, NetServerOptions{});
  ns.start();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);
  ASSERT_TRUE(client.send_line(with_id(request_lines()[0], 1), &error));
  ASSERT_TRUE(client.send_line(with_id(request_lines()[1], 2), &error));
  client.shutdown_writes();

  std::set<std::uint64_t> finished;
  for (int i = 0; i < 2; ++i) {
    const auto frame = client.read_frame(30.0, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    finished.insert(parse_response_frame(*frame)->client_id);
  }
  EXPECT_EQ(finished, (std::set<std::uint64_t>{1, 2}));
  // After the owed results, the server closes its half too.
  EXPECT_FALSE(client.read_frame(10.0, &error).has_value());
  EXPECT_EQ(error, "eof");

  ns.stop(true);
  server.shutdown(true);
}

TEST(NetServerLoop, DrainStopDeliversEveryPendingResult) {
  serve::Server server(base_server_options(2));
  NetServer ns(server, NetServerOptions{});
  ns.start();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);
  const int kJobs = 4;
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(client.send_line(with_id(request_lines()[i % 4], i), &error));
  }
  ASSERT_TRUE(eventually(
      [&] { return ns.stats().submitted == static_cast<std::uint64_t>(kJobs); }));

  std::thread stopper([&] { ns.stop(/*drain=*/true); });
  std::set<std::uint64_t> finished;
  for (int i = 0; i < kJobs; ++i) {
    const auto frame = client.read_frame(30.0, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    finished.insert(parse_response_frame(*frame)->client_id);
  }
  EXPECT_EQ(finished.size(), static_cast<std::size_t>(kJobs));
  EXPECT_FALSE(client.read_frame(10.0, &error).has_value());
  EXPECT_EQ(error, "eof");
  stopper.join();
  server.shutdown(true);
}

TEST(NetServerLoop, ProgressFramesStreamAtChunkBoundaries) {
  serve::Server server(base_server_options(1));
  NetServerOptions nopt;
  nopt.progress_events = true;
  NetServer ns(server, nopt);
  ns.start();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);
  ASSERT_TRUE(client.send_line(with_id(request_lines()[3], 1), &error));

  std::uint64_t progress = 0;
  for (;;) {
    const auto frame = client.read_frame(30.0, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    const auto r = parse_response_frame(*frame);
    ASSERT_TRUE(r.has_value());
    if (r->type == "progress") {
      EXPECT_EQ(r->client_id, 1u);
      ++progress;
      continue;
    }
    EXPECT_EQ(r->state, "done");
    break;
  }
  EXPECT_GE(progress, 1u);
  client.close();
  ns.stop(true);
  server.shutdown(true);
}

TEST(NetServerLoop, WireWitnessMatchesInProcessPath) {
  // The acceptance contract: hashes over the wire are bit-identical to a
  // direct in-process serve of the same specs.
  std::map<std::string, std::string> direct;
  {
    serve::Server server(base_server_options(2));
    for (const std::string& line : request_lines()) {
      const auto spec = serve::parse_request_line(line);
      ASSERT_TRUE(spec.has_value());
      server.submit(*spec);
    }
    server.shutdown(true);
    for (const auto& r : server.results()) {
      ASSERT_EQ(r.state, serve::JobState::Done) << r.detail;
      direct[r.name] = hex64(r.output_hash);
    }
  }

  serve::Server server(base_server_options(2));
  NetServer ns(server, NetServerOptions{});
  ns.start();
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);
  for (std::size_t i = 0; i < request_lines().size(); ++i) {
    ASSERT_TRUE(client.send_line(with_id(request_lines()[i], i), &error));
  }
  client.shutdown_writes();
  std::map<std::string, std::string> wire;
  for (std::size_t i = 0; i < request_lines().size(); ++i) {
    const auto frame = client.read_frame(30.0, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    const auto r = parse_response_frame(*frame);
    ASSERT_TRUE(r.has_value());
    ASSERT_EQ(r->state, "done") << r->detail;
    wire[r->name] = r->output_hash;
  }
  EXPECT_EQ(wire, direct);
  ns.stop(true);
  server.shutdown(true);
}

// ---------------------------------------------------------------------------
// NetSlow: concurrency stress + the cross-worker-count witness sweep.
// Labeled `net;slow` by tests/CMakeLists.txt; the TSan stage runs these.

TEST(NetSlow, WitnessIdenticalAcrossWorkerCounts) {
  std::map<std::string, std::string> reference;
  for (const std::size_t workers : {1u, 2u, 4u, 7u}) {
    serve::Server server(base_server_options(workers));
    NetServer ns(server, NetServerOptions{});
    ns.start();
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
    expect_hello(client);
    for (std::size_t i = 0; i < request_lines().size(); ++i) {
      ASSERT_TRUE(client.send_line(with_id(request_lines()[i], i), &error));
    }
    client.shutdown_writes();
    std::map<std::string, std::string> wire;
    for (std::size_t i = 0; i < request_lines().size(); ++i) {
      const auto frame = client.read_frame(60.0, &error);
      ASSERT_TRUE(frame.has_value()) << error << " (workers " << workers << ")";
      const auto r = parse_response_frame(*frame);
      ASSERT_TRUE(r.has_value());
      ASSERT_EQ(r->state, "done") << r->detail;
      wire[r->name] = r->output_hash;
    }
    ns.stop(true);
    server.shutdown(true);
    if (reference.empty()) {
      reference = wire;
    } else {
      EXPECT_EQ(wire, reference) << "workers " << workers;
    }
  }
  EXPECT_EQ(reference.size(), request_lines().size());
}

TEST(NetSlow, ManyConcurrentClientsAllAccounted) {
  serve::Server server(base_server_options(4));
  NetServer ns(server, NetServerOptions{});
  ns.start();
  const int kClients = 6;
  const int kPerClient = 12;

  std::mutex mu;
  std::map<std::string, std::set<std::string>> hashes_by_name;
  std::atomic<int> terminals{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      std::string error;
      if (!client.connect("127.0.0.1", ns.port(), &error)) {
        ++failures;
        return;
      }
      const auto hello = client.read_frame(30.0, &error);
      if (!hello) {
        ++failures;
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const auto& line = request_lines()[(c + i) % request_lines().size()];
        if (!client.send_line(with_id(line, i), &error)) {
          ++failures;
          return;
        }
        // Closed loop: wait for this request's terminal before the next.
        for (;;) {
          const auto frame = client.read_frame(60.0, &error);
          if (!frame) {
            ++failures;
            return;
          }
          const auto r = parse_response_frame(*frame);
          if (!r || !r->terminal()) continue;
          ++terminals;
          if (r->state == "done") {
            std::lock_guard<std::mutex> lk(mu);
            hashes_by_name[r->name].insert(r->output_hash);
          }
          break;
        }
      }
      client.close();
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(terminals.load(), kClients * kPerClient);
  for (const auto& [name, hashes] : hashes_by_name) {
    EXPECT_EQ(hashes.size(), 1u) << "witness drift for " << name;
  }
  ns.stop(true);
  server.shutdown(true);
  const auto stats = ns.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.results_sent + stats.rejected,
            static_cast<std::uint64_t>(kClients * kPerClient));
}

TEST(NetSlow, FrameFuzzThroughRealSockets) {
  // Random garbage interleaved with valid requests: every valid request
  // terminalizes, every invalid line gets an error frame, the connection
  // survives it all.
  serve::Server server(base_server_options(2));
  NetServer ns(server, NetServerOptions{});
  ns.start();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", ns.port(), &error)) << error;
  expect_hello(client);

  std::mt19937 rng(7u);
  int valid = 0, invalid = 0;
  for (int i = 0; i < 40; ++i) {
    if (rng() % 2 == 0) {
      ASSERT_TRUE(client.send_line(
          with_id(request_lines()[rng() % request_lines().size()],
                  static_cast<std::uint64_t>(i)),
          &error));
      ++valid;
    } else {
      std::string junk;
      const std::size_t len = rng() % 30;
      for (std::size_t j = 0; j < len; ++j) {
        char c = static_cast<char>('!' + rng() % 93);
        if (c == '#') c = '!';  // comment lines are silently skipped
        junk += c;
      }
      if (!junk.empty() && junk[0] == '{') junk[0] = '(';
      if (junk.empty()) continue;  // blank frames are silently skipped
      ASSERT_TRUE(client.send_line(junk, &error));
      ++invalid;
    }
  }
  int terminals = 0, errors = 0;
  while (terminals < valid || errors < invalid) {
    const auto frame = client.read_frame(60.0, &error);
    ASSERT_TRUE(frame.has_value())
        << error << " after " << terminals << "/" << valid << " terminals, "
        << errors << "/" << invalid << " errors";
    const auto r = parse_response_frame(*frame);
    ASSERT_TRUE(r.has_value());
    if (r->terminal()) ++terminals;
    if (r->type == "error") ++errors;
  }
  EXPECT_EQ(terminals, valid);
  EXPECT_EQ(errors, invalid);

  client.close();
  ns.stop(true);
  server.shutdown(true);
}

}  // namespace
}  // namespace hs::net
