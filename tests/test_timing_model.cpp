#include "gpusim/timing_model.hpp"

#include <gtest/gtest.h>

namespace hs::gpusim {
namespace {

DeviceProfile flat_profile() {
  DeviceProfile d;
  d.name = "test";
  d.fragment_pipes = 10;
  d.core_clock_hz = 1e9;
  d.alu_ipc = 1.0;
  d.tex_fill_rate = 1e9;
  d.mem_bandwidth_bps = 1e9;
  d.pass_overhead_s = 0.0;
  return d;
}

TEST(TimingModel, AluBoundPass) {
  PassCounts c;
  c.alu_instructions = 10'000'000'000ull;  // 10 G instr / 10 Ginstr/s = 1 s
  EXPECT_DOUBLE_EQ(model_pass_time(flat_profile(), c), 1.0);
}

TEST(TimingModel, TexBoundPass) {
  PassCounts c;
  c.tex_fetches = 2'000'000'000ull;  // 2 G fetches / 1 G/s = 2 s
  c.alu_instructions = 1000;
  EXPECT_DOUBLE_EQ(model_pass_time(flat_profile(), c), 2.0);
}

TEST(TimingModel, MemoryBoundPassUsesUniqueTileBytes) {
  PassCounts c;
  c.unique_tile_bytes = 3'000'000'000ull;
  c.cache_miss_bytes = 100;  // absorbed by L2 (flat profile has no L2 term)
  c.cache_enabled = true;
  EXPECT_DOUBLE_EQ(model_pass_time(flat_profile(), c), 3.0);
}

TEST(TimingModel, L2BandwidthBindsWhenMissesAreHeavy) {
  DeviceProfile d = flat_profile();
  d.l2_bandwidth_bps = 2e9;
  PassCounts c;
  c.cache_miss_bytes = 8'000'000'000ull;   // 4 s through L2
  c.unique_tile_bytes = 1'000'000'000ull;  // 1 s of DRAM
  c.cache_enabled = true;
  EXPECT_DOUBLE_EQ(model_pass_time(d, c), 4.0);
}

TEST(TimingModel, CacheDisabledUsesRawFetchBytes) {
  PassCounts c;
  c.tex_fetch_bytes = 4'000'000'000ull;
  c.cache_miss_bytes = 1;  // would be cheaper; must be ignored
  c.cache_enabled = false;
  EXPECT_DOUBLE_EQ(model_pass_time(flat_profile(), c), 4.0);
}

TEST(TimingModel, BottleneckIsMaxNotSum) {
  PassCounts c;
  c.alu_instructions = 10'000'000'000ull;  // 1 s
  c.tex_fetches = 500'000'000ull;          // 0.5 s
  c.bytes_written = 100'000'000ull;        // 0.1 s
  EXPECT_DOUBLE_EQ(model_pass_time(flat_profile(), c), 1.0);
}

TEST(TimingModel, PassOverheadAdds) {
  DeviceProfile d = flat_profile();
  d.pass_overhead_s = 0.25;
  PassCounts c;
  c.alu_instructions = 10'000'000'000ull;
  EXPECT_DOUBLE_EQ(model_pass_time(d, c), 1.25);
}

TEST(TimingModel, MorePipesScaleAluRate) {
  DeviceProfile d = flat_profile();
  PassCounts c;
  c.alu_instructions = 10'000'000'000ull;
  const double t10 = model_pass_time(d, c);
  d.fragment_pipes = 20;
  EXPECT_DOUBLE_EQ(model_pass_time(d, c), t10 / 2);
}

TEST(TimingModel, UploadAndDownloadUseBusDirections) {
  BusProfile bus;
  bus.upload_bandwidth_bps = 2e9;
  bus.download_bandwidth_bps = 1e9;
  bus.latency_s = 0.001;
  EXPECT_DOUBLE_EQ(model_upload_time(bus, 2'000'000'000ull), 1.001);
  EXPECT_DOUBLE_EQ(model_download_time(bus, 2'000'000'000ull), 2.001);
}

TEST(TimingModel, CpuComputeBound) {
  CpuProfile cpu;
  cpu.clock_hz = 2e9;
  cpu.scalar_flops_per_cycle = 0.5;  // 1 Gflops
  cpu.vector_flops_per_cycle = 2.0;  // 4 Gflops
  cpu.mem_bandwidth_bps = 1e12;      // effectively unbounded
  EXPECT_DOUBLE_EQ(model_cpu_time(cpu, 2'000'000'000ull, 0, false), 2.0);
  EXPECT_DOUBLE_EQ(model_cpu_time(cpu, 2'000'000'000ull, 0, true), 0.5);
}

TEST(TimingModel, CpuMemoryBound) {
  CpuProfile cpu;
  cpu.clock_hz = 2e9;
  cpu.scalar_flops_per_cycle = 1000;  // compute is free
  cpu.vector_flops_per_cycle = 1000;
  cpu.mem_bandwidth_bps = 1e9;
  EXPECT_DOUBLE_EQ(model_cpu_time(cpu, 1000, 3'000'000'000ull, false), 3.0);
}

TEST(TimingModel, PaperProfilesAreOrdered) {
  // Sanity on the Table 1 / Table 2 data: the 2005 parts outrun the 2003
  // parts, and the GPUs outrun the CPUs on raw vec4 throughput.
  const DeviceProfile nv38 = geforce_fx5950_ultra();
  const DeviceProfile g70 = geforce_7800_gtx();
  EXPECT_GT(g70.fragment_pipes, nv38.fragment_pipes);
  EXPECT_GT(g70.mem_bandwidth_bps, nv38.mem_bandwidth_bps);
  EXPECT_GT(g70.tex_fill_rate, nv38.tex_fill_rate);

  PassCounts c;
  c.alu_instructions = 1'000'000'000ull;
  EXPECT_LT(model_pass_time(g70, c), model_pass_time(nv38, c));

  const CpuProfile p4 = pentium4_northwood();
  const CpuProfile prescott = pentium4_prescott();
  const double t_p4 = model_cpu_time(p4, 1'000'000'000ull, 0, false);
  const double t_pr = model_cpu_time(prescott, 1'000'000'000ull, 0, false);
  EXPECT_LT(t_pr, t_p4);
  // Generation gain below 10%, as in the paper's Tables 4/5.
  EXPECT_GT(t_pr / t_p4, 0.90);
}

}  // namespace
}  // namespace hs::gpusim
