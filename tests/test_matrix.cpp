#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hs::linalg {
namespace {

TEST(Matrix, InitializerListConstruction) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, MultiplicationMatchesHandComputation) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const Matrix r = a * Matrix::identity(2);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(r), 0.0);
}

TEST(Matrix, TransposeRoundTrips) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(t.transposed()), 0.0);
}

TEST(Matrix, AdditionAndSubtraction) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  const Matrix s = a + b;
  EXPECT_DOUBLE_EQ(s(0, 0), 5);
  EXPECT_DOUBLE_EQ(s(1, 1), 5);
  const Matrix d = s - b;
  EXPECT_DOUBLE_EQ(d.max_abs_diff(a), 0.0);
}

TEST(Matrix, ScalarScaling) {
  Matrix a{{1, 2}, {3, 4}};
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(1, 1), 8);
}

TEST(Matrix, MatVecMatchesMatMat) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  const std::vector<double> v{1, 0, -1};
  const auto r = a.multiply(v);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], -2);
  EXPECT_DOUBLE_EQ(r[1], -2);
}

TEST(Matrix, MultiplyTransposedAvoidsMaterialization) {
  util::Xoshiro256 rng(1);
  Matrix a(5, 3);
  std::vector<double> v(5);
  for (std::size_t r = 0; r < 5; ++r) {
    v[r] = rng.uniform(-1, 1);
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  const auto fast = a.multiply_transposed(v);
  const auto slow = a.transposed().multiply(v);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-12);
  }
}

TEST(Matrix, GramMatchesExplicitProduct) {
  util::Xoshiro256 rng(2);
  Matrix a(6, 4);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  const Matrix g = a.gram();
  const Matrix explicit_g = a.transposed() * a;
  EXPECT_LT(g.max_abs_diff(explicit_g), 1e-12);
}

TEST(Matrix, GramIsSymmetric) {
  util::Xoshiro256 rng(3);
  Matrix a(8, 5);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 5; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  const Matrix g = a.gram();
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
  }
}

TEST(VectorOps, DotAndNorm) {
  const std::vector<double> a{3, 4};
  const std::vector<double> b{1, 2};
  EXPECT_DOUBLE_EQ(dot(a, b), 11);
  EXPECT_DOUBLE_EQ(norm2(a), 5);
}

}  // namespace
}  // namespace hs::linalg
