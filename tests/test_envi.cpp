#include "hsi/envi_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

#include "util/rng.hpp"

namespace hs::hsi {
namespace {

class EnviTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) {
    return testing::TempDir() + "hs_envi_" + name;
  }
};

HyperCube make_cube(Interleave il) {
  util::Xoshiro256 rng(7);
  HyperCube cube(5, 4, 6, il);
  for (auto& v : cube.raw()) v = static_cast<float>(rng.uniform(0.0, 1.0));
  return cube;
}

TEST_F(EnviTest, Float32RoundTrip) {
  const HyperCube cube = make_cube(Interleave::BIP);
  write_envi(cube, path("f32"), "round trip test");
  const HyperCube back = read_envi(path("f32") + ".hdr");
  EXPECT_EQ(back.width(), 5);
  EXPECT_EQ(back.height(), 4);
  EXPECT_EQ(back.bands(), 6);
  EXPECT_EQ(back.interleave(), Interleave::BIP);
  for (std::size_t i = 0; i < cube.raw().size(); ++i) {
    EXPECT_EQ(back.raw()[i], cube.raw()[i]);
  }
}

TEST_F(EnviTest, AllInterleavesRoundTrip) {
  for (Interleave il : {Interleave::BSQ, Interleave::BIL, Interleave::BIP}) {
    const HyperCube cube = make_cube(il);
    const std::string base = path(std::string("il_") + interleave_name(il));
    write_envi(cube, base);
    const HyperCube back = read_envi(base + ".hdr");
    EXPECT_EQ(back.interleave(), il);
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 5; ++x) {
        for (int b = 0; b < 6; ++b) {
          EXPECT_EQ(back.at(x, y, b), cube.at(x, y, b));
        }
      }
    }
  }
}

TEST_F(EnviTest, Int16RoundTripWithinQuantization) {
  const HyperCube cube = make_cube(Interleave::BSQ);
  write_envi_int16(cube, path("i16"), 10000.0f);
  const HyperCube back = read_envi(path("i16") + ".hdr");
  for (std::size_t i = 0; i < cube.raw().size(); ++i) {
    EXPECT_NEAR(back.raw()[i] / 10000.0f, cube.raw()[i], 1.0f / 10000.0f);
  }
}

TEST_F(EnviTest, HeaderFieldsParsed) {
  const HyperCube cube = make_cube(Interleave::BIL);
  write_envi(cube, path("hdr"), "a description with spaces");
  const EnviHeader hdr = read_envi_header(path("hdr") + ".hdr");
  EXPECT_EQ(hdr.samples, 5);
  EXPECT_EQ(hdr.lines, 4);
  EXPECT_EQ(hdr.bands, 6);
  EXPECT_EQ(hdr.data_type, 4);
  EXPECT_EQ(hdr.interleave, Interleave::BIL);
  EXPECT_EQ(hdr.description, "a description with spaces");
}

TEST_F(EnviTest, MissingFileThrows) {
  EXPECT_THROW(read_envi_header(path("nonexistent") + ".hdr"), EnviError);
}

TEST_F(EnviTest, MissingMagicThrows) {
  const std::string p = path("nomagic") + ".hdr";
  std::ofstream(p) << "samples = 4\nlines = 4\nbands = 2\n";
  EXPECT_THROW(read_envi_header(p), EnviError);
}

TEST_F(EnviTest, MissingDimensionsThrows) {
  const std::string p = path("nodims") + ".hdr";
  std::ofstream(p) << "ENVI\nsamples = 4\n";
  EXPECT_THROW(read_envi_header(p), EnviError);
}

TEST_F(EnviTest, UnsupportedDataTypeThrows) {
  const std::string p = path("badtype") + ".hdr";
  std::ofstream(p) << "ENVI\nsamples = 2\nlines = 2\nbands = 1\ndata type = 5\n";
  EXPECT_THROW(read_envi_header(p), EnviError);
}

// Rewrites a little-endian ENVI pair as its big-endian twin: every
// `word_bytes`-wide payload word is byte-swapped and the header gains
// `byte order = 1`. read_envi must undo the swap exactly.
void make_big_endian_copy(const std::string& src_base,
                          const std::string& dst_base, std::size_t word_bytes) {
  std::ifstream hdr_in(src_base + ".hdr");
  std::ofstream hdr_out(dst_base + ".hdr");
  std::string line;
  while (std::getline(hdr_in, line)) {
    if (line.rfind("byte order", 0) == 0) line = "byte order = 1";
    hdr_out << line << "\n";
  }

  std::ifstream dat_in(src_base + ".dat", std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(dat_in)),
                          std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size() % word_bytes, 0u);
  for (std::size_t i = 0; i < bytes.size(); i += word_bytes) {
    std::reverse(bytes.begin() + static_cast<std::ptrdiff_t>(i),
                 bytes.begin() + static_cast<std::ptrdiff_t>(i + word_bytes));
  }
  std::ofstream(dst_base + ".dat", std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(EnviTest, BigEndianFloat32RoundTrip) {
  const HyperCube cube = make_cube(Interleave::BIP);
  write_envi(cube, path("be_f32"));
  make_big_endian_copy(path("be_f32"), path("be_f32_swapped"), sizeof(float));

  const EnviHeader hdr = read_envi_header(path("be_f32_swapped") + ".hdr");
  EXPECT_EQ(hdr.byte_order, 1);
  const HyperCube back = read_envi(path("be_f32_swapped") + ".hdr");
  ASSERT_EQ(back.raw().size(), cube.raw().size());
  for (std::size_t i = 0; i < cube.raw().size(); ++i) {
    EXPECT_EQ(back.raw()[i], cube.raw()[i]) << "texel " << i;
  }
}

TEST_F(EnviTest, BigEndianInt16RoundTrip) {
  const HyperCube cube = make_cube(Interleave::BSQ);
  write_envi_int16(cube, path("be_i16"), 10000.0f);
  make_big_endian_copy(path("be_i16"), path("be_i16_swapped"),
                       sizeof(std::int16_t));

  const HyperCube little = read_envi(path("be_i16") + ".hdr");
  const HyperCube big = read_envi(path("be_i16_swapped") + ".hdr");
  ASSERT_EQ(big.raw().size(), little.raw().size());
  for (std::size_t i = 0; i < little.raw().size(); ++i) {
    EXPECT_EQ(big.raw()[i], little.raw()[i]) << "texel " << i;
  }
}

TEST_F(EnviTest, BadByteOrderRejected) {
  const std::string p = path("badorder") + ".hdr";
  std::ofstream(p) << "ENVI\nsamples = 2\nlines = 2\nbands = 1\n"
                   << "data type = 4\nbyte order = 2\n";
  EXPECT_THROW(read_envi_header(p), EnviError);
}

TEST_F(EnviTest, UnknownInterleaveRejected) {
  const std::string p = path("badil") + ".hdr";
  std::ofstream(p) << "ENVI\nsamples = 2\nlines = 2\nbands = 1\n"
                   << "data type = 4\ninterleave = xyz\n";
  EXPECT_THROW(read_envi_header(p), EnviError);
}

TEST_F(EnviTest, TrailingGarbageIntegerRejectedWithFieldName) {
  // std::stoi("12abc") silently returned 12; the strict parser rejects
  // the value and names the offending field.
  const std::string p = path("badint") + ".hdr";
  std::ofstream(p) << "ENVI\nsamples = 12abc\nlines = 2\nbands = 1\n"
                   << "data type = 4\n";
  try {
    read_envi_header(p);
    FAIL() << "expected EnviError";
  } catch (const EnviError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("samples"), std::string::npos) << what;
    EXPECT_NE(what.find("12abc"), std::string::npos) << what;
  }
}

TEST_F(EnviTest, NonNumericIntegerRejected) {
  const std::string p = path("badnum") + ".hdr";
  std::ofstream(p) << "ENVI\nsamples = 2\nlines = two\nbands = 1\n"
                   << "data type = 4\n";
  EXPECT_THROW(read_envi_header(p), EnviError);
}

TEST_F(EnviTest, OverflowingIntegerRejected) {
  // std::stoi threw std::out_of_range (not an EnviError, so it escaped
  // the typed error contract) without saying which field overflowed.
  const std::string p = path("bigint") + ".hdr";
  std::ofstream(p) << "ENVI\nsamples = 2\nlines = 2\n"
                   << "bands = 99999999999999999999\ndata type = 4\n";
  try {
    read_envi_header(p);
    FAIL() << "expected EnviError";
  } catch (const EnviError& e) {
    EXPECT_NE(std::string(e.what()).find("bands"), std::string::npos)
        << e.what();
  }
}

TEST_F(EnviTest, TruncatedPayloadThrows) {
  const HyperCube cube = make_cube(Interleave::BIP);
  write_envi(cube, path("trunc"));
  // Truncate the payload.
  std::ofstream(path("trunc") + ".dat", std::ios::binary | std::ios::trunc)
      << "short";
  EXPECT_THROW(read_envi(path("trunc") + ".hdr"), EnviError);
}

}  // namespace
}  // namespace hs::hsi
