#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hs::util {
namespace {

TEST(ThreadPool, SerialModeRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<int> hits(10, 0);
  pool.parallel_for(10, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleIterationRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, MoreIterationsThanThreads) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 100u * 99u / 2u);
}

TEST(ThreadPool, FewerIterationsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [&](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(4, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, SequentialCallsCompose) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(16, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 320);
}

TEST(ThreadPool, ClampToHardwareIsAtLeastOne) {
  EXPECT_GE(ThreadPool::clamp_to_hardware(16), 1u);
  EXPECT_LE(ThreadPool::clamp_to_hardware(1), 1u);
  EXPECT_EQ(ThreadPool::clamp_to_hardware(0), 0u);
}

// ---- concurrency stress ----------------------------------------------------

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Every worker is occupied by an outer iteration that itself calls
  // parallel_for on the same pool; helping waits must execute the inner
  // work instead of deadlocking.
  ThreadPool pool(4);
  std::atomic<int> inner{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 64);
}

TEST(ThreadPool, SubmitRunsQueuedWorkBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
    // Destructor must drain the queue: nothing may be dropped.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, SerialPoolDrainsQueueOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(0);
    for (int i = 0; i < 5; ++i) pool.submit([&] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 5);
}

TEST(ThreadPool, SubmitSwallowsTaskExceptions) {
  ThreadPool pool(2);
  std::atomic<int> after{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([] { throw std::runtime_error("fire and forget"); });
    pool.submit([&] { after.fetch_add(1); });
  }
  // Pool must stay functional; wait for the queue via a tracked batch.
  pool.parallel_for(4, [](std::size_t) {});
  TaskGroup group(pool);
  group.submit([] {});
  group.wait();
  EXPECT_EQ(after.load(), 20);
}

TEST(TaskGroup, WaitsForAllTasks) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    group.submit([&] { done.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(TaskGroup, NestedSubmitFromInsideTasks) {
  // Tasks submit further tasks into the same group while it is waited on.
  ThreadPool pool(3);
  TaskGroup group(pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    group.submit([&] {
      done.fetch_add(1);
      group.submit([&] { done.fetch_add(1); });
    });
  }
  group.wait();
  EXPECT_EQ(done.load(), 32);
}

TEST(TaskGroup, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.submit([i] {
      if (i % 2 == 0) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // Reusable after the error was consumed.
  std::atomic<int> done{0};
  group.submit([&] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 1);
}

TEST(TaskGroup, SerialPoolRunsInline) {
  ThreadPool pool(0);
  TaskGroup group(pool);
  int done = 0;
  group.submit([&] { ++done; });
  EXPECT_EQ(done, 1);  // ran inline, before wait
  group.wait();
  EXPECT_EQ(done, 1);
}

TEST(TaskGroup, DestructorWaitsAndSwallows) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 32; ++i) {
      group.submit([&] {
        done.fetch_add(1);
        if (done.load() % 3 == 0) throw std::runtime_error("ignored");
      });
    }
    // No wait(): the destructor must block until all 32 ran and must not
    // let the stored exception escape.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, HammerMixedSubmitAndParallelFor) {
  // Interleave every API from multiple client threads at once.
  ThreadPool pool(4);
  ThreadPool clients(4);
  std::atomic<std::uint64_t> work{0};
  clients.parallel_for(4, [&](std::size_t client) {
    for (int round = 0; round < 25; ++round) {
      if (client % 2 == 0) {
        pool.parallel_for(16, [&](std::size_t) { work.fetch_add(1); });
      } else {
        TaskGroup group(pool);
        for (int i = 0; i < 16; ++i) {
          group.submit([&] { work.fetch_add(1); });
        }
        group.wait();
      }
    }
  });
  EXPECT_EQ(work.load(), 4u * 25u * 16u);
}

}  // namespace
}  // namespace hs::util
