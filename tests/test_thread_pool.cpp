#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hs::util {
namespace {

TEST(ThreadPool, SerialModeRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<int> hits(10, 0);
  pool.parallel_for(10, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleIterationRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, MoreIterationsThanThreads) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 100u * 99u / 2u);
}

TEST(ThreadPool, FewerIterationsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [&](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(4, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, SequentialCallsCompose) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(16, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 320);
}

TEST(ThreadPool, ClampToHardwareIsAtLeastOne) {
  EXPECT_GE(ThreadPool::clamp_to_hardware(16), 1u);
  EXPECT_LE(ThreadPool::clamp_to_hardware(1), 1u);
  EXPECT_EQ(ThreadPool::clamp_to_hardware(0), 0u);
}

}  // namespace
}  // namespace hs::util
