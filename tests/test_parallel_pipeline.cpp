// Chunk-parallel determinism suite: the scheduler may execute chunks in
// any order on any worker, yet every functional output, counter and
// modeled time must be bit-identical to the sequential (workers = 1) run.
// Worker counts include 7 -- deliberately not a divisor of the chunk
// count -- so ragged final waves are covered.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/amc.hpp"
#include "core/amc_gpu.hpp"
#include "core/unmix_gpu.hpp"
#include "stream/scheduler.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace hs::core {
namespace {

hsi::HyperCube random_cube(int w, int h, int n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  hsi::HyperCube cube(w, h, n);
  for (auto& v : cube.raw()) v = static_cast<float>(rng.uniform(0.05, 1.0));
  return cube;
}

/// Fast simulated device, forced into many chunks so the scheduler has
/// real parallelism to exploit (and 7 workers get a ragged last wave).
AmcGpuOptions chunked_options(std::size_t workers) {
  AmcGpuOptions opt;
  opt.profile = gpusim::geforce_7800_gtx();
  opt.profile.fragment_pipes = 4;
  opt.chunk_texel_budget = 20 * 8;
  opt.workers = workers;
  return opt;
}

void expect_same_morph(const MorphOutputs& a, const MorphOutputs& b) {
  ASSERT_EQ(a.mei.size(), b.mei.size());
  for (std::size_t i = 0; i < a.mei.size(); ++i) {
    ASSERT_EQ(a.mei[i], b.mei[i]) << "mei at " << i;
    ASSERT_EQ(a.db[i], b.db[i]) << "db at " << i;
    ASSERT_EQ(a.erosion_index[i], b.erosion_index[i]) << "erosion at " << i;
    ASSERT_EQ(a.dilation_index[i], b.dilation_index[i]) << "dilation at " << i;
  }
}

void expect_same_totals(const gpusim::DeviceTotals& a,
                        const gpusim::DeviceTotals& b) {
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.fragments, b.fragments);
  EXPECT_EQ(a.exec.alu_instructions, b.exec.alu_instructions);
  EXPECT_EQ(a.exec.tex_fetches, b.exec.tex_fetches);
  EXPECT_EQ(a.exec.tex_fetch_bytes, b.exec.tex_fetch_bytes);
  EXPECT_EQ(a.cache.accesses, b.cache.accesses);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.transfer.upload_bytes, b.transfer.upload_bytes);
  EXPECT_EQ(a.transfer.download_bytes, b.transfer.download_bytes);
  EXPECT_EQ(a.transfer.uploads, b.transfer.uploads);
  EXPECT_EQ(a.transfer.downloads, b.transfer.downloads);
  // Bit-equality of the double sums, not just closeness: per-chunk totals
  // start from zero and merge in chunk-index order for every worker count.
  EXPECT_EQ(a.modeled_pass_seconds, b.modeled_pass_seconds);
  EXPECT_EQ(a.transfer.modeled_upload_seconds, b.transfer.modeled_upload_seconds);
  EXPECT_EQ(a.transfer.modeled_download_seconds,
            b.transfer.modeled_download_seconds);
  EXPECT_EQ(a.modeled_total_seconds(), b.modeled_total_seconds());
}

TEST(ParallelPipeline, MorphologyBitIdenticalAcrossWorkerCounts) {
  const auto cube = random_cube(24, 18, 8, 11);
  const StructuringElement se = StructuringElement::square(1);

  const AmcGpuReport base = morphology_gpu(cube, se, chunked_options(1));
  ASSERT_GE(base.chunk_count, 5u) << "scene must split into several chunks";
  EXPECT_EQ(base.workers_used, 1u);

  for (std::size_t workers : {2u, 4u, 7u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const AmcGpuReport par = morphology_gpu(cube, se, chunked_options(workers));
    EXPECT_EQ(par.workers_used, std::min(workers, base.chunk_count));
    EXPECT_EQ(par.chunk_count, base.chunk_count);

    expect_same_morph(base.morph, par.morph);
    expect_same_totals(base.totals, par.totals);
    EXPECT_EQ(base.modeled_seconds, par.modeled_seconds);

    // Stage table: same stages in the same pipeline order with identical
    // aggregates, including the modeled double sums.
    ASSERT_EQ(base.stages.size(), par.stages.size());
    for (std::size_t s = 0; s < base.stages.size(); ++s) {
      EXPECT_EQ(base.stages[s].first, par.stages[s].first);
      EXPECT_EQ(base.stages[s].second.passes, par.stages[s].second.passes);
      EXPECT_EQ(base.stages[s].second.fragments, par.stages[s].second.fragments);
      EXPECT_EQ(base.stages[s].second.alu_instructions,
                par.stages[s].second.alu_instructions);
      EXPECT_EQ(base.stages[s].second.tex_fetches,
                par.stages[s].second.tex_fetches);
      EXPECT_EQ(base.stages[s].second.bytes_written,
                par.stages[s].second.bytes_written);
      EXPECT_EQ(base.stages[s].second.modeled_seconds,
                par.stages[s].second.modeled_seconds);
    }

    // Per-chunk costs line up chunk for chunk.
    ASSERT_EQ(base.chunk_costs.size(), par.chunk_costs.size());
    for (std::size_t ci = 0; ci < base.chunk_costs.size(); ++ci) {
      EXPECT_EQ(base.chunk_costs[ci].upload_seconds,
                par.chunk_costs[ci].upload_seconds);
      EXPECT_EQ(base.chunk_costs[ci].pass_seconds,
                par.chunk_costs[ci].pass_seconds);
      EXPECT_EQ(base.chunk_costs[ci].download_seconds,
                par.chunk_costs[ci].download_seconds);
    }
  }
}

TEST(ParallelPipeline, IndexStreamIdenticalAcrossWorkers) {
  const auto cube = random_cube(20, 16, 6, 12);
  const StructuringElement se = StructuringElement::square(1);
  AmcGpuOptions seq = chunked_options(1);
  seq.emit_index_stream = true;
  AmcGpuOptions par = chunked_options(4);
  par.emit_index_stream = true;
  const AmcGpuReport a = morphology_gpu(cube, se, seq);
  const AmcGpuReport b = morphology_gpu(cube, se, par);
  ASSERT_GT(a.chunk_count, 1u);
  ASSERT_EQ(a.index_stream.size(), b.index_stream.size());
  for (std::size_t i = 0; i < a.index_stream.size(); ++i) {
    ASSERT_EQ(a.index_stream[i], b.index_stream[i]) << i;
  }
}

TEST(ParallelPipeline, HalfPrecisionIdenticalAcrossWorkers) {
  const auto cube = random_cube(20, 16, 6, 13);
  const StructuringElement se = StructuringElement::square(1);
  AmcGpuOptions seq = chunked_options(1);
  seq.half_precision = true;
  AmcGpuOptions par = chunked_options(4);
  par.half_precision = true;
  const AmcGpuReport a = morphology_gpu(cube, se, seq);
  const AmcGpuReport b = morphology_gpu(cube, se, par);
  expect_same_morph(a.morph, b.morph);
  expect_same_totals(a.totals, b.totals);
}

TEST(ParallelPipeline, FullAmcClassificationIdenticalAcrossWorkers) {
  // End to end through run_amc: endmember extraction and the GPU-resident
  // classification both consume the parallel morphology output.
  const auto cube = random_cube(24, 18, 8, 14);
  AmcConfig config;
  config.backend = Backend::GpuStream;
  config.num_classes = 4;
  config.endmember_min_separation = 2;
  config.gpu = chunked_options(1);
  config.gpu_classification = true;
  const AmcResult base = run_amc(cube, config);

  for (std::size_t workers : {2u, 4u, 7u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    AmcConfig par_config = config;
    par_config.gpu = chunked_options(workers);
    const AmcResult par = run_amc(cube, par_config);

    // Endmember sets: same pixels in the same order, same raw spectra.
    ASSERT_EQ(base.endmember_pixels, par.endmember_pixels);
    ASSERT_EQ(base.endmember_spectra.size(), par.endmember_spectra.size());
    for (std::size_t k = 0; k < base.endmember_spectra.size(); ++k) {
      ASSERT_EQ(base.endmember_spectra[k], par.endmember_spectra[k]) << k;
    }
    // Classification map stitch.
    ASSERT_EQ(base.labels, par.labels);
    // MEI texture.
    expect_same_morph(base.morph, par.morph);
    // Aggregated GPU telemetry.
    ASSERT_TRUE(base.gpu.has_value());
    ASSERT_TRUE(par.gpu.has_value());
    expect_same_totals(base.gpu->totals, par.gpu->totals);
    EXPECT_EQ(base.gpu->modeled_seconds, par.gpu->modeled_seconds);
    EXPECT_EQ(base.gpu->classification_modeled_seconds,
              par.gpu->classification_modeled_seconds);
  }
}

TEST(ParallelPipeline, UnmixBitIdenticalAcrossWorkerCounts) {
  const auto cube = random_cube(22, 16, 8, 15);
  std::vector<std::vector<float>> endmembers;
  for (int k = 0; k < 5; ++k) {
    const auto spectrum = random_cube(1, 1, 8, 100 + static_cast<std::uint64_t>(k));
    endmembers.emplace_back(spectrum.raw().begin(), spectrum.raw().end());
  }
  const GpuUnmixReport base =
      unmix_gpu(cube, endmembers, chunked_options(1), /*download_abundances=*/true);
  ASSERT_GT(base.chunk_count, 1u);

  for (std::size_t workers : {2u, 4u, 7u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const GpuUnmixReport par = unmix_gpu(cube, endmembers,
                                         chunked_options(workers),
                                         /*download_abundances=*/true);
    ASSERT_EQ(base.labels, par.labels);
    ASSERT_EQ(base.abundances, par.abundances);
    expect_same_totals(base.totals, par.totals);
    EXPECT_EQ(base.modeled_seconds, par.modeled_seconds);
    ASSERT_EQ(base.chunk_costs.size(), par.chunk_costs.size());
  }
}

TEST(ParallelPipeline, SoaEngineBitIdenticalAcrossWorkerCounts) {
  // The SoA engine must reproduce the default (compiled) engine bit for
  // bit at every worker count: engine choice and chunk parallelism are
  // both invisible to outputs, counters, cache statistics and modeled
  // time. workers = 1 pins the sequential SoA run itself to the compiled
  // baseline; 7 covers the ragged final wave.
  const auto cube = random_cube(24, 18, 8, 11);
  const StructuringElement se = StructuringElement::square(1);

  const AmcGpuReport base = morphology_gpu(cube, se, chunked_options(1));
  ASSERT_GE(base.chunk_count, 5u) << "scene must split into several chunks";

  for (std::size_t workers : {1u, 2u, 4u, 7u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    AmcGpuOptions opt = chunked_options(workers);
    opt.sim.exec_engine = gpusim::ExecEngine::Soa;
    const AmcGpuReport soa = morphology_gpu(cube, se, opt);
    EXPECT_EQ(soa.chunk_count, base.chunk_count);
    expect_same_morph(base.morph, soa.morph);
    expect_same_totals(base.totals, soa.totals);
    EXPECT_EQ(base.modeled_seconds, soa.modeled_seconds);
  }
}

TEST(ParallelPipeline, SoaUnmixBitIdenticalAcrossWorkerCounts) {
  const auto cube = random_cube(22, 16, 8, 15);
  std::vector<std::vector<float>> endmembers;
  for (int k = 0; k < 5; ++k) {
    const auto spectrum = random_cube(1, 1, 8, 100 + static_cast<std::uint64_t>(k));
    endmembers.emplace_back(spectrum.raw().begin(), spectrum.raw().end());
  }
  const GpuUnmixReport base =
      unmix_gpu(cube, endmembers, chunked_options(1), /*download_abundances=*/true);
  ASSERT_GT(base.chunk_count, 1u);

  for (std::size_t workers : {1u, 2u, 4u, 7u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    AmcGpuOptions opt = chunked_options(workers);
    opt.sim.exec_engine = gpusim::ExecEngine::Soa;
    const GpuUnmixReport soa = unmix_gpu(cube, endmembers, opt,
                                         /*download_abundances=*/true);
    ASSERT_EQ(base.labels, soa.labels);
    ASSERT_EQ(base.abundances, soa.abundances);
    expect_same_totals(base.totals, soa.totals);
    EXPECT_EQ(base.modeled_seconds, soa.modeled_seconds);
  }
}

// Reads the process-global trace counter registry, which the HS_TRACE=OFF
// configuration compiles down to inert stubs.
#if HS_TRACE_ENABLED

TEST(ParallelPipeline, ExecutorPassCounterInvariantAcrossWorkers) {
  // The process-global stream.executor.passes counter must advance by the
  // same amount whatever the worker count: passes are counted per chunk
  // and chunks are invariant.
  const auto cube = random_cube(20, 16, 6, 16);
  const StructuringElement se = StructuringElement::square(1);
  trace::Counter& passes = trace::counter("stream.executor.passes");

  const std::int64_t before_seq = passes.value();
  morphology_gpu(cube, se, chunked_options(1));
  const std::int64_t seq_delta = passes.value() - before_seq;
  EXPECT_GT(seq_delta, 0);

  const std::int64_t before_par = passes.value();
  morphology_gpu(cube, se, chunked_options(4));
  const std::int64_t par_delta = passes.value() - before_par;
  EXPECT_EQ(seq_delta, par_delta);
}

#endif  // HS_TRACE_ENABLED

TEST(ParallelPipeline, ModeledParallelScheduleProperties) {
  const auto cube = random_cube(24, 18, 8, 17);
  const StructuringElement se = StructuringElement::square(1);
  const AmcGpuReport report = morphology_gpu(cube, se, chunked_options(1));
  ASSERT_GE(report.chunk_count, 5u);

  // workers = 1 is exactly the serialized modeled time (same bits).
  EXPECT_EQ(report.modeled_parallel_seconds(1), report.modeled_seconds);

  // More workers never slow the schedule down, and the serialized bus plus
  // the single slowest chunk bound it from below.
  double bus = 0, max_pass = 0;
  for (const ChunkCost& c : report.chunk_costs) {
    bus += c.upload_seconds + c.download_seconds;
    max_pass = std::max(max_pass, c.pass_seconds);
  }
  double prev = report.modeled_parallel_seconds(1);
  for (std::size_t w = 2; w <= report.chunk_count + 1; ++w) {
    const double t = report.modeled_parallel_seconds(w);
    EXPECT_LE(t, prev) << "workers=" << w;
    EXPECT_GE(t, bus + max_pass) << "workers=" << w;
    prev = t;
  }
  // With >= 5 similar chunks, 4 devices genuinely shrink compute.
  EXPECT_LT(report.modeled_parallel_seconds(4), report.modeled_seconds);
  // Beyond one device per chunk nothing is left to parallelize.
  EXPECT_EQ(report.modeled_parallel_seconds(report.chunk_count),
            report.modeled_parallel_seconds(report.chunk_count + 10));
}

// Needs the span recorder, stubbed out under HS_TRACE=OFF.
#if HS_TRACE_ENABLED

TEST(ParallelPipeline, TraceSpansCompleteUnderParallelRun) {
  // gtest_discover_tests runs each TEST in its own process, so enabling
  // tracing here cannot leak into other tests.
  trace::set_enabled(true);
  trace::reset();
  const auto cube = random_cube(24, 18, 6, 18);
  const StructuringElement se = StructuringElement::square(1);
  const AmcGpuReport report = morphology_gpu(cube, se, chunked_options(4));
  ASSERT_GT(report.chunk_count, 1u);

  std::size_t pipeline_spans = 0, chunk_spans = 0;
  std::size_t stage_spans = 0, stage_pass_spans = 0;
  for (const auto& ev : trace::snapshot()) {
    if (ev.cat == "pipeline") ++pipeline_spans;
    if (ev.cat == "chunk") ++chunk_spans;
    if (ev.cat == "stage") ++stage_spans;
    if (ev.cat == "stage_pass") ++stage_pass_spans;
  }
  EXPECT_EQ(pipeline_spans, 1u);
  EXPECT_EQ(chunk_spans, report.chunk_count);
  // Six stage spans per chunk, none lost or duplicated under concurrency.
  EXPECT_EQ(stage_spans, 6 * report.chunk_count);
  EXPECT_EQ(stage_pass_spans, report.totals.passes);
  trace::set_enabled(false);
}

#endif  // HS_TRACE_ENABLED

TEST(ParallelPipeline, WorkersClampAndAutoResolve) {
  // A single-chunk scene cannot use more than one worker.
  const auto cube = random_cube(12, 10, 6, 19);
  const StructuringElement se = StructuringElement::square(1);
  AmcGpuOptions opt;
  opt.profile = gpusim::geforce_7800_gtx();
  opt.profile.fragment_pipes = 4;
  opt.workers = 7;
  const AmcGpuReport report = morphology_gpu(cube, se, opt);
  EXPECT_EQ(report.chunk_count, 1u);
  EXPECT_EQ(report.workers_used, 1u);

  EXPECT_GE(stream::resolve_workers(0), 1u);
  EXPECT_EQ(stream::resolve_workers(3), 3u);
  EXPECT_EQ(stream::per_worker_device_threads(8, 4), 2u);
  EXPECT_EQ(stream::per_worker_device_threads(2, 8), 1u);
  EXPECT_EQ(stream::per_worker_device_threads(0, 0), 1u);
}

// ---- scheduler unit behavior ----------------------------------------------

TEST(ChunkScheduler, RunsEveryChunkExactlyOnceWithValidWorkerIds) {
  stream::ChunkScheduler scheduler(4);
  EXPECT_EQ(scheduler.workers(), 4u);
  constexpr std::size_t kChunks = 103;
  std::vector<std::atomic<int>> seen(kChunks);
  scheduler.run(kChunks, [&](std::size_t worker, std::size_t chunk) {
    ASSERT_LT(worker, 4u);
    ASSERT_LT(chunk, kChunks);
    seen[chunk].fetch_add(1);
  });
  for (std::size_t i = 0; i < kChunks; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "chunk " << i;
  }
}

TEST(ChunkScheduler, SingleWorkerRunsInIndexOrderInline) {
  stream::ChunkScheduler scheduler(1);
  std::vector<std::size_t> order;
  scheduler.run(9, [&](std::size_t worker, std::size_t chunk) {
    EXPECT_EQ(worker, 0u);
    order.push_back(chunk);
  });
  ASSERT_EQ(order.size(), 9u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ChunkScheduler, PropagatesJobExceptionAndStopsIssuingChunks) {
  stream::ChunkScheduler scheduler(3);
  std::atomic<int> started{0};
  EXPECT_THROW(
      scheduler.run(1000,
                    [&](std::size_t, std::size_t chunk) {
                      started.fetch_add(1);
                      if (chunk == 5) throw std::runtime_error("chunk blew up");
                    }),
      std::runtime_error);
  // The failure flag stops new chunks; far fewer than all 1000 ran.
  EXPECT_LT(started.load(), 1000);
}

TEST(ChunkScheduler, ZeroChunksIsANoOp) {
  stream::ChunkScheduler scheduler(4);
  bool ran = false;
  scheduler.run(0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ChunkScheduler, MoreWorkersThanChunks) {
  stream::ChunkScheduler scheduler(8);
  std::vector<std::atomic<int>> seen(3);
  scheduler.run(3, [&](std::size_t worker, std::size_t chunk) {
    ASSERT_LT(worker, 8u);
    seen[chunk].fetch_add(1);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ChunkScheduler, ZeroChunksIsANoOpForEveryWorkerCount) {
  for (std::size_t workers : {1u, 2u, 16u}) {
    stream::ChunkScheduler scheduler(workers);
    bool ran = false;
    scheduler.run(0, [&](std::size_t, std::size_t) { ran = true; });
    EXPECT_FALSE(ran) << workers << " workers";
  }
}

TEST(ChunkScheduler, ReusableAcrossRunsIncludingAfterAnException) {
  stream::ChunkScheduler scheduler(3);
  std::atomic<int> count{0};
  scheduler.run(5, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 5);

  EXPECT_THROW(scheduler.run(4,
                             [&](std::size_t, std::size_t chunk) {
                               if (chunk == 0) throw std::runtime_error("boom");
                             }),
               std::runtime_error);

  // The pool survives a failed run: the next run still covers every chunk.
  count.store(0);
  scheduler.run(7, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 7);
}

TEST(ChunkScheduler, WorkersFarBeyondHardwareStillCoverEveryChunkOnce) {
  // More workers than any host has cores: the pool multiplexes the worker
  // slots onto fewer OS threads, but slot-exclusivity (at most one thread
  // per worker id at a time) and exactly-once chunk coverage must hold.
  stream::ChunkScheduler scheduler(32);
  constexpr std::size_t kChunks = 19;
  std::vector<std::atomic<int>> seen(kChunks);
  std::vector<std::atomic<int>> active(32);
  scheduler.run(kChunks, [&](std::size_t worker, std::size_t chunk) {
    EXPECT_EQ(active[worker].fetch_add(1), 0) << "worker slot shared";
    seen[chunk].fetch_add(1);
    active[worker].fetch_sub(1);
  });
  for (std::size_t i = 0; i < kChunks; ++i) EXPECT_EQ(seen[i].load(), 1);
}

TEST(ParallelPipeline, MoreWorkersThanChunksBitIdenticalToSequential) {
  // Multi-chunk scene (not the single-chunk clamp case above) with a
  // worker request far above the chunk count: workers are clamped to the
  // chunks and the outputs still bit-equal the sequential run.
  const auto cube = random_cube(20, 18, 8, 23);
  const StructuringElement se = StructuringElement::square(1);
  const AmcGpuReport base = morphology_gpu(cube, se, chunked_options(1));
  ASSERT_GT(base.chunk_count, 1u);

  AmcGpuOptions opt = chunked_options(base.chunk_count + 13);
  const AmcGpuReport report = morphology_gpu(cube, se, opt);
  EXPECT_EQ(report.workers_used, base.chunk_count);
  expect_same_morph(base.morph, report.morph);
  expect_same_totals(base.totals, report.totals);
  EXPECT_EQ(base.modeled_seconds, report.modeled_seconds);
}

}  // namespace
}  // namespace hs::core
