#include "gpusim/texture.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace hs::gpusim {
namespace {

TEST(Texture, BytesPerTexel) {
  EXPECT_EQ(bytes_per_texel(TextureFormat::RGBA32F), 16u);
  EXPECT_EQ(bytes_per_texel(TextureFormat::R32F), 4u);
}

TEST(Texture, SizeBytes) {
  Texture2D t(8, 4, TextureFormat::RGBA32F);
  EXPECT_EQ(t.size_bytes(), 8u * 4u * 16u);
  Texture2D s(8, 4, TextureFormat::R32F);
  EXPECT_EQ(s.size_bytes(), 8u * 4u * 4u);
}

TEST(Texture, StoreLoadRoundTripRgba) {
  Texture2D t(4, 4, TextureFormat::RGBA32F);
  t.store(2, 3, {1, 2, 3, 4});
  EXPECT_EQ(t.load(2, 3), float4(1, 2, 3, 4));
  EXPECT_EQ(t.load(0, 0), float4(0, 0, 0, 0));
}

TEST(Texture, ScalarFormatKeepsOnlyX) {
  Texture2D t(4, 4, TextureFormat::R32F);
  t.store(1, 1, {7, 8, 9, 10});
  EXPECT_EQ(t.load(1, 1), float4(7, 0, 0, 0));
}

TEST(Texture, FetchUsesFloorOfCoordinate) {
  Texture2D t(4, 4, TextureFormat::R32F);
  t.store(2, 1, float4(5.f));
  // Texel centers are at x + 0.5; any coordinate in [2,3)x[1,2) hits (2,1).
  EXPECT_EQ(t.fetch(2.0f, 1.0f).x, 5.f);
  EXPECT_EQ(t.fetch(2.5f, 1.5f).x, 5.f);
  EXPECT_EQ(t.fetch(2.999f, 1.999f).x, 5.f);
  EXPECT_EQ(t.fetch(3.0f, 1.5f).x, 0.f);
}

TEST(Texture, ClampToEdgeAddressing) {
  Texture2D t(3, 3, TextureFormat::R32F, AddressMode::ClampToEdge);
  t.store(0, 0, float4(1.f));
  t.store(2, 2, float4(9.f));
  EXPECT_EQ(t.fetch(-5.f, -5.f).x, 1.f);
  EXPECT_EQ(t.fetch(10.f, 10.f).x, 9.f);
  EXPECT_EQ(t.fetch(-0.5f, 1.5f).x, t.load(0, 1).x);
}

TEST(Texture, RepeatAddressing) {
  Texture2D t(4, 2, TextureFormat::R32F, AddressMode::Repeat);
  t.store(1, 0, float4(3.f));
  EXPECT_EQ(t.fetch(5.5f, 2.5f).x, 3.f);   // (5 mod 4, 2 mod 2) = (1, 0)
  EXPECT_EQ(t.fetch(-2.5f, 0.5f).x, 3.f);  // floor(-2.5) = -3 -> mod 4 = 1
}

TEST(Texture, RepeatAddressingNegativeWrapsPositive) {
  Texture2D t(4, 4, TextureFormat::R32F, AddressMode::Repeat);
  t.store(3, 3, float4(2.f));
  EXPECT_EQ(t.fetch(-0.5f, -0.5f).x, 2.f);  // floor(-0.5) = -1 -> 3
}

TEST(Texture, ClampToBorderReturnsBorderColor) {
  Texture2D t(2, 2, TextureFormat::RGBA32F, AddressMode::ClampToBorder);
  t.set_border_color({9, 9, 9, 9});
  t.store(0, 0, {1, 1, 1, 1});
  EXPECT_EQ(t.fetch(-1.f, 0.5f), float4(9, 9, 9, 9));
  EXPECT_EQ(t.fetch(0.5f, 0.5f), float4(1, 1, 1, 1));
  EXPECT_EQ(t.fetch(2.5f, 0.5f), float4(9, 9, 9, 9));
}

TEST(Texture, ResolveReportsBorderMisses) {
  Texture2D t(2, 2, TextureFormat::R32F, AddressMode::ClampToBorder);
  int x, y;
  EXPECT_FALSE(t.resolve(-1.f, 0.f, x, y));
  EXPECT_TRUE(t.resolve(1.5f, 1.5f, x, y));
  EXPECT_EQ(x, 1);
  EXPECT_EQ(y, 1);
}

TEST(Texture, RawLayoutIsRowMajor) {
  Texture2D t(2, 2, TextureFormat::R32F);
  t.store(1, 0, float4(5.f));
  t.store(0, 1, float4(7.f));
  EXPECT_EQ(t.raw()[1], 5.f);
  EXPECT_EQ(t.raw()[2], 7.f);
}


TEST(HalfFloat, ExactValuesRoundTrip) {
  for (float v : {0.f, 1.f, -1.f, 0.5f, 2.f, 1024.f, -0.25f, 65504.f}) {
    EXPECT_EQ(quantize_half(v), v) << v;
  }
}

TEST(HalfFloat, QuantizesToElevenBitsOfMantissa) {
  // 1 + 2^-11 is exactly representable in float but not in half.
  const float v = 1.0f + 1.0f / 2048.0f;
  const float q = quantize_half(v);
  EXPECT_NE(q, v);
  EXPECT_NEAR(q, v, 1.0f / 1024.0f);
}

TEST(HalfFloat, RoundsToNearestEven) {
  // Halfway between 1.0 and 1.0 + 2^-10 rounds to even (1.0).
  EXPECT_EQ(quantize_half(1.0f + 1.0f / 2048.0f), 1.0f);
  // Halfway between 1+2^-10 and 1+2^-9 rounds to even (1+2^-9).
  EXPECT_EQ(quantize_half(1.0f + 3.0f / 2048.0f), 1.0f + 2.0f / 1024.0f);
}

TEST(HalfFloat, OverflowsToInfinity) {
  EXPECT_TRUE(std::isinf(quantize_half(1e6f)));
  EXPECT_TRUE(std::isinf(quantize_half(-1e6f)));
  EXPECT_LT(quantize_half(-1e6f), 0.f);
}

TEST(HalfFloat, SubnormalsSurvive) {
  // Smallest positive half subnormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(quantize_half(tiny), tiny);
  // Below half's subnormal range flushes to zero.
  EXPECT_EQ(quantize_half(std::ldexp(1.0f, -26)), 0.0f);
}

TEST(HalfFloat, InfAndNanPropagate) {
  EXPECT_TRUE(std::isinf(quantize_half(std::numeric_limits<float>::infinity())));
  EXPECT_TRUE(std::isnan(quantize_half(std::numeric_limits<float>::quiet_NaN())));
}

TEST(Texture, HalfFormatQuantizesOnStore) {
  Texture2D t(2, 2, TextureFormat::RGBA16F);
  const float v = 1.0f + 1.0f / 2048.0f;  // not half-representable
  t.store(0, 0, {v, 1.f, 2.f, 3.f});
  EXPECT_NE(t.load(0, 0).x, v);
  EXPECT_EQ(t.load(0, 0).y, 1.f);
  EXPECT_EQ(t.size_bytes(), 2u * 2 * 8);
}

TEST(Texture, R16FStoresScalarHalf) {
  Texture2D t(2, 1, TextureFormat::R16F);
  t.store(1, 0, float4(0.333333f));
  EXPECT_NEAR(t.load(1, 0).x, 0.333333f, 1e-3f);
  EXPECT_EQ(t.size_bytes(), 2u * 1 * 2);
}

TEST(Texture, FormatMetadata) {
  EXPECT_EQ(channels_of(TextureFormat::RGBA16F), 4);
  EXPECT_EQ(channels_of(TextureFormat::R16F), 1);
  EXPECT_TRUE(is_half_format(TextureFormat::RGBA16F));
  EXPECT_TRUE(is_half_format(TextureFormat::R16F));
  EXPECT_FALSE(is_half_format(TextureFormat::RGBA32F));
  EXPECT_EQ(bytes_per_texel(TextureFormat::RGBA16F), 8u);
  EXPECT_EQ(bytes_per_texel(TextureFormat::R16F), 2u);
}

}  // namespace
}  // namespace hs::gpusim
