#include "core/distances.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace hs::core {
namespace {

std::vector<float> random_spectrum(int n, util::Xoshiro256& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(0.01, 1.0));
  return v;
}

TEST(Sid, ZeroForIdenticalSpectra) {
  const std::vector<float> a{0.1f, 0.5f, 0.2f, 0.7f};
  EXPECT_NEAR(sid(a, a), 0.0, 1e-15);
}

TEST(Sid, ZeroForScaledSpectra) {
  // SID compares *normalized* spectra: scaling is invisible (the property
  // that makes it robust to illumination differences).
  const std::vector<float> a{0.1f, 0.5f, 0.2f, 0.7f};
  std::vector<float> b = a;
  for (auto& v : b) v *= 3.25f;
  EXPECT_NEAR(sid(a, b), 0.0, 1e-9);
}

TEST(Sid, PositiveForDistinctSpectra) {
  const std::vector<float> a{0.9f, 0.1f, 0.1f, 0.1f};
  const std::vector<float> b{0.1f, 0.1f, 0.1f, 0.9f};
  EXPECT_GT(sid(a, b), 0.1);
}

TEST(Sid, HandComputedTwoBandCase) {
  // p = (0.75, 0.25), q = (0.25, 0.75):
  // SID = (0.75-0.25)(ln 0.75 - ln 0.25) + (0.25-0.75)(ln 0.25 - ln 0.75)
  //     = 2 * 0.5 * ln 3
  const std::vector<float> a{3.f, 1.f};
  const std::vector<float> b{1.f, 3.f};
  EXPECT_NEAR(sid(a, b), std::log(3.0), 1e-6);
}

TEST(Sid, SurvivesZeroBands) {
  const std::vector<float> a{0.f, 0.5f, 0.5f};
  const std::vector<float> b{0.5f, 0.5f, 0.f};
  const double d = sid(a, b);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GT(d, 0.0);
}

TEST(Sid, SurvivesAllZeroSpectrum) {
  const std::vector<float> a{0.f, 0.f, 0.f};
  const std::vector<float> b{0.3f, 0.3f, 0.4f};
  EXPECT_TRUE(std::isfinite(sid(a, b)));
}

class SidPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(SidPropertySweep, SymmetricNonNegativeAndScaleInvariant) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = random_spectrum(GetParam(), rng);
    const auto b = random_spectrum(GetParam(), rng);
    const double dab = sid(a, b);
    const double dba = sid(b, a);
    EXPECT_GE(dab, 0.0);
    EXPECT_NEAR(dab, dba, 1e-12 + 1e-9 * dab);
    auto scaled = a;
    for (auto& v : scaled) v *= 2.f;
    EXPECT_NEAR(sid(scaled, b), dab, 1e-9 + 1e-6 * dab);
  }
}

INSTANTIATE_TEST_SUITE_P(Bands, SidPropertySweep,
                         ::testing::Values(2, 4, 16, 216));

TEST(Sam, ZeroForParallelSpectra) {
  const std::vector<float> a{1.f, 2.f, 3.f};
  std::vector<float> b = a;
  for (auto& v : b) v *= 2.f;
  EXPECT_NEAR(sam(a, b), 0.0, 1e-6);
}

TEST(Sam, OrthogonalSpectraAreHalfPi) {
  const std::vector<float> a{1.f, 0.f};
  const std::vector<float> b{0.f, 1.f};
  EXPECT_NEAR(sam(a, b), M_PI / 2, 1e-6);
}

TEST(Sam, KnownAngle) {
  const std::vector<float> a{1.f, 0.f};
  const std::vector<float> b{1.f, 1.f};
  EXPECT_NEAR(sam(a, b), M_PI / 4, 1e-6);
}

TEST(Euclidean, MatchesHandComputation) {
  const std::vector<float> a{1.f, 2.f};
  const std::vector<float> b{4.f, 6.f};
  EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
}

TEST(SpectralDistance, DispatchesOnMetric) {
  const std::vector<float> a{1.f, 2.f};
  const std::vector<float> b{2.f, 1.f};
  EXPECT_DOUBLE_EQ(spectral_distance(Distance::Euclidean, a, b),
                   euclidean(a, b));
  EXPECT_DOUBLE_EQ(spectral_distance(Distance::Sam, a, b), sam(a, b));
  EXPECT_DOUBLE_EQ(spectral_distance(Distance::Sid, a, b), sid(a, b));
}

}  // namespace
}  // namespace hs::core
