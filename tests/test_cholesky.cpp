#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hs::linalg {
namespace {

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Matrix a(n + 2, n);
  for (std::size_t r = 0; r < n + 2; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  Matrix g = a.gram();
  for (std::size_t i = 0; i < n; ++i) g(i, i) += 0.5;  // ensure PD
  return g;
}

TEST(Cholesky, FactorReconstructsInput) {
  const Matrix spd = random_spd(5, 1);
  const auto chol = Cholesky::factor(spd);
  ASSERT_TRUE(chol.has_value());
  const Matrix l = chol->lower();
  const Matrix reconstructed = l * l.transposed();
  EXPECT_LT(reconstructed.max_abs_diff(spd), 1e-10);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const Matrix spd = random_spd(6, 2);
  util::Xoshiro256 rng(3);
  std::vector<double> x_true(6);
  for (auto& v : x_true) v = rng.uniform(-2, 2);
  const auto b = spd.multiply(x_true);
  const auto chol = Cholesky::factor(spd);
  ASSERT_TRUE(chol.has_value());
  const auto x = chol->solve(b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Cholesky, IdentitySolveIsIdentity) {
  const auto chol = Cholesky::factor(Matrix::identity(4));
  ASSERT_TRUE(chol.has_value());
  const std::vector<double> b{1, 2, 3, 4};
  const auto x = chol->solve(b);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix m{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::factor(m).has_value());
}

TEST(Cholesky, RejectsNegativeDefinite) {
  Matrix m{{-1, 0}, {0, -1}};
  EXPECT_FALSE(Cholesky::factor(m).has_value());
}

TEST(Cholesky, RejectsSingular) {
  Matrix m{{1, 1}, {1, 1}};
  EXPECT_FALSE(Cholesky::factor(m).has_value());
}

TEST(Cholesky, MultipleRightHandSides) {
  const Matrix spd = random_spd(4, 5);
  const auto chol = Cholesky::factor(spd);
  ASSERT_TRUE(chol.has_value());
  const Matrix b{{1, 0}, {0, 1}, {2, 2}, {-1, 3}};
  const Matrix x = chol->solve(b);
  const Matrix reconstructed = spd * x;
  EXPECT_LT(reconstructed.max_abs_diff(b), 1e-9);
}

class CholeskySizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizeSweep, SolveResidualIsTiny) {
  const std::size_t n = GetParam();
  const Matrix spd = random_spd(n, 10 + n);
  util::Xoshiro256 rng(20 + n);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto chol = Cholesky::factor(spd);
  ASSERT_TRUE(chol.has_value());
  const auto x = chol->solve(b);
  const auto ax = spd.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace hs::linalg
