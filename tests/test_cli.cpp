#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <string>

namespace hs::util {
namespace {

Cli make_cli() {
  Cli cli;
  cli.add_flag("size", "image size", "64");
  cli.add_flag("ratio", "a ratio", "0.5");
  cli.add_flag("verbose", "verbosity");
  cli.add_flag("name", "a name");
  return cli;
}

TEST(Cli, ParsesSpaceSeparatedValues) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--size", "128"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("size", 0), 128);
}

TEST(Cli, ParsesEqualsSeparatedValues) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--size=256", "--ratio=0.25"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("size", 0), 256);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0), 0.25);
}

TEST(Cli, BooleanFlagWithoutValue) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, FallbacksWhenAbsent) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("size", 64), 64);
  EXPECT_FALSE(cli.has("size"));
  EXPECT_EQ(cli.get("name", "dflt"), "dflt");
}

TEST(Cli, UnknownFlagFailsParse) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, CollectsPositionalArguments) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "input.hdr", "--size", "8", "output.hdr"};
  ASSERT_TRUE(cli.parse(5, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.hdr");
  EXPECT_EQ(cli.positional()[1], "output.hdr");
}

TEST(Cli, NumericParsingIsLocaleIndependent) {
  // Regression for strtod-based parsing: a comma-decimal locale (de_DE
  // style) made `--deadline 1.5` read as 1 because strtod stopped at the
  // '.'. Parsing now goes through std::from_chars, which never consults
  // the process locale. The container may not ship de_DE locale data, so
  // try a few comma-decimal names and fall through to C -- the value must
  // be the same under every locale that installs.
  Cli cli;
  cli.add_flag("deadline", "seconds until abort", "0");
  const char* argv[] = {"prog", "--deadline", "1.5"};
  ASSERT_TRUE(cli.parse(3, argv));

  const char* const names[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                               "fr_FR.UTF-8", "C"};
  const std::string saved = std::setlocale(LC_NUMERIC, nullptr);
  int tried = 0;
  for (const char* name : names) {
    if (std::setlocale(LC_NUMERIC, name) == nullptr) continue;
    SCOPED_TRACE(std::string("LC_NUMERIC=") + name);
    ++tried;
    EXPECT_EQ(cli.get_double("deadline", 0.0), 1.5);
    // get_int keeps strtoll's longest-prefix semantics in every locale.
    EXPECT_EQ(cli.get_int("deadline", -1), 1);
  }
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_GE(tried, 1);  // "C" always exists
}

TEST(Cli, NumericFallbacksOnGarbage) {
  Cli cli;
  cli.add_flag("deadline", "seconds until abort", "0");
  cli.add_flag("count", "an int", "0");
  const char* argv[] = {"prog", "--deadline", "soon", "--count=many"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_double("deadline", 2.5), 2.5);
  EXPECT_EQ(cli.get_int("count", 7), 7);
}

TEST(Cli, BoolParsingVariants) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose=yes"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose", false));

  Cli cli2 = make_cli();
  const char* argv2[] = {"prog", "--verbose=0"};
  ASSERT_TRUE(cli2.parse(2, argv2));
  EXPECT_FALSE(cli2.get_bool("verbose", true));
}

}  // namespace
}  // namespace hs::util
