#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hs::core {
namespace {

TEST(CpuCost, ScalesLinearlyInPixels) {
  const CpuCost a = cpu_morphology_cost(1000, 9, 216);
  const CpuCost b = cpu_morphology_cost(2000, 9, 216);
  EXPECT_DOUBLE_EQ(b.flops, 2 * a.flops);
  EXPECT_DOUBLE_EQ(b.transcendentals, 2 * a.transcendentals);
  EXPECT_DOUBLE_EQ(b.bytes, 2 * a.bytes);
}

TEST(CpuCost, DominatedByCumulativeDistance) {
  const CpuCost c = cpu_morphology_cost(1000, 9, 216);
  // |B| * N * 4 = 7776 flops/pixel dominate the ~2N normalization terms.
  EXPECT_GT(c.flops, 1000.0 * 9 * 216 * 4);
  EXPECT_LT(c.flops, 1000.0 * 9 * 216 * 5);
}

TEST(CpuCost, GrowsWithSeSize) {
  EXPECT_GT(cpu_morphology_cost(1000, 25, 216).flops,
            cpu_morphology_cost(1000, 9, 216).flops);
}

TEST(CpuModel, VectorizedIsFasterAndGenerationsAreClose) {
  const CpuCost cost = cpu_morphology_cost(1'000'000, 9, 216);
  const double p4_gcc = model_cpu_morphology_seconds(
      gpusim::pentium4_northwood(), cost, /*vectorized=*/false);
  const double p4_icc = model_cpu_morphology_seconds(
      gpusim::pentium4_northwood(), cost, /*vectorized=*/true);
  const double pr_gcc = model_cpu_morphology_seconds(
      gpusim::pentium4_prescott(), cost, /*vectorized=*/false);

  EXPECT_LT(p4_icc, p4_gcc);
  // gcc/icc ratio in the paper's Tables 4/5 range (1.5-2x).
  EXPECT_GT(p4_gcc / p4_icc, 1.3);
  EXPECT_LT(p4_gcc / p4_icc, 2.2);
  // CPU generation gain below ~10% (paper Section 4.3).
  EXPECT_LT(pr_gcc, p4_gcc);
  EXPECT_GT(pr_gcc / p4_gcc, 0.88);
}

TEST(AutoBudget, FitsInVideoMemory) {
  const auto profile = gpusim::geforce_7800_gtx();
  const std::uint64_t texels = amc_auto_texel_budget(profile, 216, true);
  // Working-set bytes for that many texels must fit in video memory.
  const std::uint64_t groups = 54;
  const std::uint64_t per_texel = groups * 3 * 16 + 16 + 24;
  EXPECT_LE(texels * per_texel, profile.video_memory_bytes);
  EXPECT_GT(texels, 10'000u);  // sane magnitude for 256 MB
}

class ExtrapolationTest : public ::testing::Test {
 protected:
  static AmcGpuReport calibrate(int w, int h, int bands,
                                const AmcGpuOptions& opt) {
    util::Xoshiro256 rng(31);
    hsi::HyperCube cube(w, h, bands);
    for (auto& v : cube.raw()) v = static_cast<float>(rng.uniform(0.05, 1.0));
    return morphology_gpu(cube, StructuringElement::square(1), opt);
  }
};

TEST_F(ExtrapolationTest, SelfExtrapolationReproducesModeledTime) {
  AmcGpuOptions opt;
  opt.profile.fragment_pipes = 4;
  const AmcGpuReport report = calibrate(24, 24, 16, opt);
  const GpuExtrapolation ext = extrapolate_gpu_morphology(
      report, opt.profile, 24, 24, 16, 1, opt.precompute_log);
  // Extrapolating to the calibration's own size must land on the measured
  // modeled time (small slack for integer truncation in the scaling).
  EXPECT_NEAR(ext.total_seconds(), report.modeled_seconds,
              0.05 * report.modeled_seconds);
  EXPECT_EQ(ext.chunks, report.chunk_count);
}

TEST_F(ExtrapolationTest, TimeScalesRoughlyLinearlyInPixels) {
  AmcGpuOptions opt;
  opt.profile.fragment_pipes = 4;
  const AmcGpuReport report = calibrate(24, 24, 16, opt);
  const GpuExtrapolation x1 = extrapolate_gpu_morphology(
      report, opt.profile, 100, 100, 16, 1, true);
  const GpuExtrapolation x4 = extrapolate_gpu_morphology(
      report, opt.profile, 200, 200, 16, 1, true);
  EXPECT_GT(x4.total_seconds(), 3.2 * x1.total_seconds());
  EXPECT_LT(x4.total_seconds(), 4.8 * x1.total_seconds());
}

TEST_F(ExtrapolationTest, FasterDeviceExtrapolatesFaster) {
  AmcGpuOptions opt;
  opt.profile = gpusim::geforce_fx5950_ultra();
  opt.profile.fragment_pipes = 4;
  const AmcGpuReport report = calibrate(24, 24, 16, opt);
  const GpuExtrapolation nv38 = extrapolate_gpu_morphology(
      report, gpusim::geforce_fx5950_ultra(), 500, 500, 16, 1, true);
  const GpuExtrapolation g70 = extrapolate_gpu_morphology(
      report, gpusim::geforce_7800_gtx(), 500, 500, 16, 1, true);
  EXPECT_LT(g70.total_seconds(), nv38.total_seconds());
}

}  // namespace
}  // namespace hs::core
