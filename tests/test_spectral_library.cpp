#include "hsi/spectral_library.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/distances.hpp"

namespace hs::hsi {
namespace {

TEST(Wavelength, CoversAvirisRange) {
  EXPECT_DOUBLE_EQ(aviris_wavelength_um(0, 216), 0.4);
  EXPECT_DOUBLE_EQ(aviris_wavelength_um(215, 216), 2.5);
  EXPECT_GT(aviris_wavelength_um(100, 216), aviris_wavelength_um(99, 216));
}

TEST(Archetypes, VegetationHasRedEdge) {
  // NIR reflectance (0.85 um) far above red (0.67 um) for green vegetation.
  EXPECT_GT(archetype::green_vegetation(0.85),
            3.0 * archetype::green_vegetation(0.67));
}

TEST(Archetypes, VegetationHasWaterAbsorptionDips) {
  EXPECT_LT(archetype::green_vegetation(1.4), archetype::green_vegetation(1.25));
  EXPECT_LT(archetype::green_vegetation(1.9), archetype::green_vegetation(1.75));
}

TEST(Archetypes, WaterIsDarkInInfrared) {
  EXPECT_LT(archetype::water(1.5), 0.03);
  EXPECT_GT(archetype::water(0.45), archetype::water(1.5));
}

TEST(Archetypes, SoilRisesGently) {
  EXPECT_GT(archetype::soil(2.0), archetype::soil(0.5));
}

TEST(Archetypes, ConcreteBrighterThanAsphalt) {
  for (double um : {0.5, 1.0, 1.5, 2.0}) {
    EXPECT_GT(archetype::concrete(um), archetype::asphalt(um)) << um;
  }
}

TEST(Archetypes, AllBoundedToReflectanceRange) {
  for (int i = 0; i <= 100; ++i) {
    const double um = 0.4 + 2.1 * i / 100.0;
    for (double v : {archetype::green_vegetation(um), archetype::soil(um),
                     archetype::water(um), archetype::concrete(um),
                     archetype::asphalt(um), archetype::dry_vegetation(um),
                     archetype::forest(um)}) {
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(IndianPinesLibrary, Has32Table3Classes) {
  const SpectralLibrary lib = indian_pines_library(216, 1);
  EXPECT_EQ(lib.num_classes(), 32);
  EXPECT_EQ(lib.bands, 216);
  EXPECT_GE(lib.find("BareSoil"), 0);
  EXPECT_GE(lib.find("Corn-NoTill"), 0);
  EXPECT_GE(lib.find("Woods"), 0);
  EXPECT_EQ(lib.find("NotAClass"), -1);
  for (const auto& sig : lib.signatures) {
    EXPECT_EQ(sig.size(), 216u);
    for (float v : sig) {
      EXPECT_GT(v, 0.f);
      EXPECT_LE(v, 1.f);
    }
  }
}

TEST(IndianPinesLibrary, DeterministicInSeed) {
  const SpectralLibrary a = indian_pines_library(64, 9);
  const SpectralLibrary b = indian_pines_library(64, 9);
  for (int c = 0; c < a.num_classes(); ++c) {
    for (int l = 0; l < 64; ++l) {
      EXPECT_EQ(a.signatures[static_cast<std::size_t>(c)][static_cast<std::size_t>(l)],
                b.signatures[static_cast<std::size_t>(c)][static_cast<std::size_t>(l)]);
    }
  }
}

TEST(IndianPinesLibrary, SeedsChangePerturbations) {
  const SpectralLibrary a = indian_pines_library(64, 1);
  const SpectralLibrary b = indian_pines_library(64, 2);
  bool any_diff = false;
  for (int l = 0; l < 64 && !any_diff; ++l) {
    any_diff = a.signatures[0][static_cast<std::size_t>(l)] !=
               b.signatures[0][static_cast<std::size_t>(l)];
  }
  EXPECT_TRUE(any_diff);
}

TEST(IndianPinesLibrary, CornVariantsAreSpectrallyEntangled) {
  // The within-group SID between corn variants must be far smaller than
  // the SID between corn and lake/woods -- the structure behind Table 3's
  // low corn accuracies.
  const SpectralLibrary lib = indian_pines_library(216, 1);
  const int corn_a = lib.find("Corn-NoTill");
  const int corn_b = lib.find("Corn-MinTill");
  const int lake = lib.find("Lake");
  ASSERT_GE(corn_a, 0);
  ASSERT_GE(corn_b, 0);
  ASSERT_GE(lake, 0);
  const double within =
      core::sid(lib.signature(corn_a), lib.signature(corn_b));
  const double across = core::sid(lib.signature(corn_a), lib.signature(lake));
  EXPECT_LT(within * 10, across);
}

TEST(IndianPinesLibrary, PureClassesAreDistinct) {
  const SpectralLibrary lib = indian_pines_library(216, 1);
  const char* pure[] = {"BareSoil", "Lake", "Woods", "Concrete/Asphalt"};
  for (const char* a : pure) {
    for (const char* b : pure) {
      if (std::string(a) == b) continue;
      EXPECT_GT(core::sid(lib.signature(lib.find(a)), lib.signature(lib.find(b))),
                0.01)
          << a << " vs " << b;
    }
  }
}

}  // namespace
}  // namespace hs::hsi
