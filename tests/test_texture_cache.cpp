#include "gpusim/texture_cache.hpp"

#include <gtest/gtest.h>

namespace hs::gpusim {
namespace {

TextureCacheConfig small_config() {
  TextureCacheConfig cfg;
  cfg.total_bytes = 4 * 1024;
  cfg.tile_size = 4;
  cfg.associativity = 2;
  cfg.bytes_per_texel = 16;
  return cfg;
}

TEST(TextureCache, FirstAccessMissesSecondHits) {
  TextureCache cache(small_config());
  EXPECT_FALSE(cache.access(0, 5, 5));
  EXPECT_TRUE(cache.access(0, 5, 5));
  EXPECT_EQ(cache.stats().accesses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TextureCache, SameTileHitsAcrossTexels) {
  TextureCache cache(small_config());
  EXPECT_FALSE(cache.access(0, 0, 0));
  // All texels of the 4x4 tile share the line.
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      if (x == 0 && y == 0) continue;
      EXPECT_TRUE(cache.access(0, x, y)) << x << "," << y;
    }
  }
}

TEST(TextureCache, DifferentTilesMiss) {
  TextureCache cache(small_config());
  EXPECT_FALSE(cache.access(0, 0, 0));
  EXPECT_FALSE(cache.access(0, 4, 0));  // next tile over
  EXPECT_FALSE(cache.access(0, 0, 4));
}

TEST(TextureCache, DifferentTexturesDoNotAlias) {
  TextureCache cache(small_config());
  EXPECT_FALSE(cache.access(1, 0, 0));
  EXPECT_FALSE(cache.access(2, 0, 0));
  EXPECT_TRUE(cache.access(1, 0, 0));
  EXPECT_TRUE(cache.access(2, 0, 0));
}

TEST(TextureCache, FlushInvalidatesEverything) {
  TextureCache cache(small_config());
  cache.access(0, 0, 0);
  cache.flush();
  EXPECT_FALSE(cache.access(0, 0, 0));
}

TEST(TextureCache, ResetStatsKeepsContents) {
  TextureCache cache(small_config());
  cache.access(0, 0, 0);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_TRUE(cache.access(0, 0, 0));  // still cached
}

TEST(TextureCache, MissBytesCountTileTraffic) {
  const TextureCacheConfig cfg = small_config();
  TextureCache cache(cfg);
  cache.access(0, 0, 0);
  cache.access(0, 10, 10);
  EXPECT_EQ(cache.stats().miss_bytes(cfg), 2ull * 4 * 4 * 16);
}

TEST(TextureCache, LruEvictionWithinSet) {
  // One set total: capacity = 2 lines exactly.
  TextureCacheConfig cfg;
  cfg.total_bytes = 2 * 4 * 4 * 16;
  cfg.tile_size = 4;
  cfg.associativity = 2;
  cfg.bytes_per_texel = 16;
  TextureCache cache(cfg);
  ASSERT_EQ(cache.num_sets(), 1);

  cache.access(0, 0, 0);   // A miss
  cache.access(0, 4, 0);   // B miss
  EXPECT_TRUE(cache.access(0, 0, 0));   // A hit (B becomes LRU)
  cache.access(0, 8, 0);   // C miss, evicts B
  EXPECT_TRUE(cache.access(0, 0, 0));   // A still resident
  EXPECT_FALSE(cache.access(0, 4, 0));  // B was evicted
}

TEST(TextureCache, CapacitySweepNeverLosesAccessCount) {
  for (std::uint64_t kb : {1, 2, 8, 64}) {
    TextureCacheConfig cfg;
    cfg.total_bytes = kb * 1024;
    TextureCache cache(cfg);
    for (int i = 0; i < 100; ++i) cache.access(0, i * 3, i * 7);
    EXPECT_EQ(cache.stats().accesses, 100u);
    EXPECT_EQ(cache.stats().hits + cache.stats().misses, 100u);
  }
}

TEST(TextureCache, LargerCacheHitsAtLeastAsOften) {
  auto run = [](std::uint64_t bytes) {
    TextureCacheConfig cfg;
    cfg.total_bytes = bytes;
    TextureCache cache(cfg);
    // Two sweeps over a 32x32 region: the second sweep hits if resident.
    for (int pass = 0; pass < 2; ++pass) {
      for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) cache.access(0, x, y);
      }
    }
    return cache.stats().hits;
  };
  EXPECT_LE(run(1024), run(64 * 1024));
}

TEST(TextureCacheStats, Accumulate) {
  TextureCacheStats a{10, 7, 3};
  TextureCacheStats b{4, 2, 2};
  a += b;
  EXPECT_EQ(a.accesses, 14u);
  EXPECT_EQ(a.hits, 9u);
  EXPECT_EQ(a.misses, 5u);
}

}  // namespace
}  // namespace hs::gpusim
