#include "gpusim/gpu_device.hpp"

#include <gtest/gtest.h>

#include "gpusim/assembler.hpp"

namespace hs::gpusim {
namespace {

DeviceProfile tiny_profile() {
  DeviceProfile p = geforce_7800_gtx();
  p.fragment_pipes = 4;
  p.video_memory_bytes = 1 * 1024 * 1024;
  return p;
}

TEST(Device, TextureLifecycleAndMemoryAccounting) {
  Device dev(tiny_profile());
  EXPECT_EQ(dev.video_memory_used(), 0u);
  const TextureHandle t = dev.create_texture(16, 16, TextureFormat::RGBA32F);
  EXPECT_EQ(dev.video_memory_used(), 16u * 16 * 16);
  const TextureHandle s = dev.create_texture(16, 16, TextureFormat::R32F);
  EXPECT_EQ(dev.video_memory_used(), 16u * 16 * 16 + 16u * 16 * 4);
  dev.destroy_texture(t);
  EXPECT_EQ(dev.video_memory_used(), 16u * 16 * 4);
  dev.destroy_texture(s);
  EXPECT_EQ(dev.video_memory_used(), 0u);
}

TEST(Device, HandleSlotsAreReused) {
  Device dev(tiny_profile());
  const TextureHandle a = dev.create_texture(4, 4, TextureFormat::R32F);
  dev.destroy_texture(a);
  const TextureHandle b = dev.create_texture(4, 4, TextureFormat::R32F);
  EXPECT_EQ(a, b);
}

TEST(Device, ThrowsOnVideoMemoryExhaustion) {
  Device dev(tiny_profile());  // 1 MB
  // 256x256 RGBA32F = 1 MB exactly; a second one must fail.
  const TextureHandle t = dev.create_texture(256, 256, TextureFormat::RGBA32F);
  EXPECT_THROW(dev.create_texture(16, 16, TextureFormat::R32F), GpuOutOfMemory);
  dev.destroy_texture(t);
  EXPECT_NO_THROW(dev.create_texture(16, 16, TextureFormat::R32F));
}

TEST(Device, MemoryLimitCanBeDisabled) {
  SimConfig cfg;
  cfg.enforce_memory_limit = false;
  Device dev(tiny_profile(), cfg);
  EXPECT_NO_THROW(dev.create_texture(512, 512, TextureFormat::RGBA32F));  // 4 MB
}

TEST(Device, UploadDownloadRoundTripRgba) {
  Device dev(tiny_profile());
  const TextureHandle t = dev.create_texture(3, 2, TextureFormat::RGBA32F);
  std::vector<float4> data(6);
  for (std::size_t i = 0; i < 6; ++i) {
    data[i] = {static_cast<float>(i), 1, 2, 3};
  }
  dev.upload(t, std::span<const float4>(data));
  const auto back = dev.download(t);
  ASSERT_EQ(back.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(back[i], data[i]);
  EXPECT_EQ(dev.totals().transfer.uploads, 1u);
  EXPECT_EQ(dev.totals().transfer.downloads, 1u);
  EXPECT_EQ(dev.totals().transfer.upload_bytes, 3u * 2 * 16);
  EXPECT_GT(dev.totals().transfer.modeled_upload_seconds, 0.0);
}

TEST(Device, UploadDownloadRoundTripScalar) {
  Device dev(tiny_profile());
  const TextureHandle t = dev.create_texture(4, 1, TextureFormat::R32F);
  const std::vector<float> data{1, 2, 3, 4};
  dev.upload(t, std::span<const float>(data));
  EXPECT_EQ(dev.download_scalar(t), data);
}

TEST(Device, DrawExecutesProgramPerTexel) {
  Device dev(tiny_profile());
  const TextureHandle out = dev.create_texture(8, 8, TextureFormat::RGBA32F);
  // Writes the fragment's own texcoord: texel (x, y) -> (x+0.5, y+0.5).
  const auto program = assemble_or_die(
      "coords", "!!HSFP1.0\nMOV result.color, fragment.texcoord[0];\nEND\n");
  const TextureHandle outs[1] = {out};
  const PassStats stats = dev.draw(program, {}, {}, outs);
  EXPECT_EQ(stats.fragments, 64u);
  EXPECT_EQ(stats.exec.alu_instructions, 64u);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const float4 v = dev.texture(out).load(x, y);
      EXPECT_EQ(v.x, static_cast<float>(x) + 0.5f);
      EXPECT_EQ(v.y, static_cast<float>(y) + 0.5f);
    }
  }
}

TEST(Device, DrawWithInputTextureAndConstants) {
  Device dev(tiny_profile());
  const TextureHandle in = dev.create_texture(4, 4, TextureFormat::RGBA32F);
  const TextureHandle out = dev.create_texture(4, 4, TextureFormat::RGBA32F);
  std::vector<float4> data(16, float4(2.f));
  dev.upload(in, std::span<const float4>(data));
  const auto program = assemble_or_die("scale",
                                       "!!HSFP1.0\n"
                                       "TEX R0, fragment.texcoord[0], texture[0];\n"
                                       "MUL result.color, R0, c[0];\n"
                                       "END\n");
  const TextureHandle ins[1] = {in};
  const TextureHandle outs[1] = {out};
  const float4 consts[1] = {float4(3.f)};
  dev.draw(program, ins, consts, outs);
  EXPECT_EQ(dev.texture(out).load(2, 2), float4(6.f));
}

TEST(Device, FeedbackBindingIsFatal) {
  Device dev(tiny_profile());
  const TextureHandle t = dev.create_texture(4, 4, TextureFormat::RGBA32F);
  const auto program = assemble_or_die("id",
                                       "!!HSFP1.0\n"
                                       "TEX R0, fragment.texcoord[0], texture[0];\n"
                                       "MOV result.color, R0;\n"
                                       "END\n");
  const TextureHandle ins[1] = {t};
  const TextureHandle outs[1] = {t};
  EXPECT_DEATH(dev.draw(program, ins, {}, outs), "ping-pong");
}

TEST(Device, MismatchedTargetSizesAreFatal) {
  Device dev(tiny_profile());
  const TextureHandle a = dev.create_texture(4, 4, TextureFormat::R32F);
  const TextureHandle b = dev.create_texture(8, 8, TextureFormat::R32F);
  const auto program = assemble_or_die("two",
                                       "!!HSFP1.0\n"
                                       "MOV result.color[0], {1.0};\n"
                                       "MOV result.color[1], {2.0};\n"
                                       "END\n");
  const TextureHandle outs[2] = {a, b};
  EXPECT_DEATH(dev.draw(program, {}, {}, outs), "dimensions");
}

TEST(Device, UnboundTextureUnitIsFatal) {
  Device dev(tiny_profile());
  const TextureHandle out = dev.create_texture(4, 4, TextureFormat::RGBA32F);
  const auto program = assemble_or_die("tex",
                                       "!!HSFP1.0\n"
                                       "TEX R0, fragment.texcoord[0], texture[0];\n"
                                       "MOV result.color, R0;\n"
                                       "END\n");
  const TextureHandle outs[1] = {out};
  EXPECT_DEATH(dev.draw(program, {}, {}, outs), "texture unit");
}

TEST(Device, MrtWritesAllTargets) {
  Device dev(tiny_profile());
  const TextureHandle a = dev.create_texture(4, 4, TextureFormat::R32F);
  const TextureHandle b = dev.create_texture(4, 4, TextureFormat::R32F);
  const auto program = assemble_or_die("mrt",
                                       "!!HSFP1.0\n"
                                       "MOV result.color[0], {1.0};\n"
                                       "MOV result.color[1], {2.0};\n"
                                       "END\n");
  const TextureHandle outs[2] = {a, b};
  const PassStats stats = dev.draw(program, {}, {}, outs);
  EXPECT_EQ(dev.texture(a).load(3, 3).x, 1.f);
  EXPECT_EQ(dev.texture(b).load(0, 0).x, 2.f);
  EXPECT_EQ(stats.bytes_written, 16u * 4 * 2);
}

TEST(Device, ResultsIndependentOfWorkerThreads) {
  auto render = [](std::size_t threads) {
    SimConfig cfg;
    cfg.worker_threads = threads;
    Device dev(tiny_profile(), cfg);
    const TextureHandle in = dev.create_texture(16, 16, TextureFormat::RGBA32F);
    const TextureHandle out = dev.create_texture(16, 16, TextureFormat::RGBA32F);
    std::vector<float4> data(256);
    for (std::size_t i = 0; i < 256; ++i) {
      data[i] = {static_cast<float>(i), static_cast<float>(i % 7), 0, 1};
    }
    dev.upload(in, std::span<const float4>(data));
    const auto program = assemble_or_die("sq",
                                         "!!HSFP1.0\n"
                                         "TEX R0, fragment.texcoord[0], texture[0];\n"
                                         "MUL result.color, R0, R0;\n"
                                         "END\n");
    const TextureHandle ins[1] = {in};
    const TextureHandle outs[1] = {out};
    const PassStats stats = dev.draw(program, ins, {}, outs);
    return std::make_pair(dev.download(out), stats);
  };
  const auto [img1, stats1] = render(1);
  const auto [img4, stats4] = render(4);
  EXPECT_EQ(img1, img4);
  // Cache statistics are per *logical pipe*, so they match too.
  EXPECT_EQ(stats1.cache.misses, stats4.cache.misses);
  EXPECT_EQ(stats1.exec.alu_instructions, stats4.exec.alu_instructions);
  EXPECT_DOUBLE_EQ(stats1.modeled_seconds, stats4.modeled_seconds);
}

TEST(Device, PassStatsAccumulateIntoTotals) {
  Device dev(tiny_profile());
  const TextureHandle out = dev.create_texture(8, 8, TextureFormat::R32F);
  const auto program =
      assemble_or_die("c", "!!HSFP1.0\nMOV result.color, {0.0};\nEND\n");
  const TextureHandle outs[1] = {out};
  dev.draw(program, {}, {}, outs);
  dev.draw(program, {}, {}, outs);
  EXPECT_EQ(dev.totals().passes, 2u);
  EXPECT_EQ(dev.totals().fragments, 128u);
  EXPECT_GT(dev.totals().modeled_pass_seconds, 0.0);
  dev.reset_totals();
  EXPECT_EQ(dev.totals().passes, 0u);
}

TEST(Device, CacheDisabledStillRenders) {
  SimConfig cfg;
  cfg.texture_cache = false;
  Device dev(tiny_profile(), cfg);
  const TextureHandle in = dev.create_texture(4, 4, TextureFormat::RGBA32F);
  const TextureHandle out = dev.create_texture(4, 4, TextureFormat::RGBA32F);
  const auto program = assemble_or_die("id",
                                       "!!HSFP1.0\n"
                                       "TEX R0, fragment.texcoord[0], texture[0];\n"
                                       "MOV result.color, R0;\n"
                                       "END\n");
  const TextureHandle ins[1] = {in};
  const TextureHandle outs[1] = {out};
  const PassStats stats = dev.draw(program, ins, {}, outs);
  EXPECT_EQ(stats.cache.accesses, 0u);
  EXPECT_GT(stats.modeled_seconds, 0.0);
}

}  // namespace
}  // namespace hs::gpusim
