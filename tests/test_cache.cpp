// Tests for the content-addressed caching layer (hs::cache) and its
// serve/gpusim integrations: canonical fingerprints, the byte-budgeted
// LRU, the scene memo cache, the server result cache (bit-identity of
// hits), and the cross-device SharedProgramStore. Suites are prefixed
// "Cache" so tools/check.sh runs them under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "cache/fingerprint.hpp"
#include "cache/lru.hpp"
#include "cache/result_cache.hpp"
#include "cache/scene_cache.hpp"
#include "core/amc_gpu.hpp"
#include "core/structuring_element.hpp"
#include "core/unmix_gpu.hpp"
#include "gpusim/assembler.hpp"
#include "gpusim/compiled_program.hpp"
#include "gpusim/device_profile.hpp"
#include "gpusim/gpu_device.hpp"
#include "hsi/synthetic.hpp"
#include "serve/job.hpp"
#include "serve/server.hpp"

namespace hs {
namespace {

// ---------------------------------------------------------------------------
// Fingerprints.

cache::Fingerprint fp_of_one(std::string_view name, std::string_view value) {
  return cache::Fingerprinter{}.field(name, value).finish();
}

TEST(CacheFingerprint, FieldBoundariesMatter) {
  // Length-prefixed encoding: moving a byte between the name and the
  // value must change the key.
  EXPECT_NE(fp_of_one("ab", "c"), fp_of_one("a", "bc"));
  EXPECT_NE(fp_of_one("a", ""), fp_of_one("", "a"));
}

TEST(CacheFingerprint, TypesAreTagged) {
  const auto as_int =
      cache::Fingerprinter{}.field("v", std::int64_t{1}).finish();
  const auto as_bool = cache::Fingerprinter{}.field("v", true).finish();
  const auto as_uint =
      cache::Fingerprinter{}.field("v", std::uint64_t{1}).finish();
  EXPECT_NE(as_int, as_bool);
  EXPECT_NE(as_int, as_uint);
}

TEST(CacheFingerprint, DigestIsFnv1aOverKey) {
  const auto fp = cache::Fingerprinter{}
                      .field("a", std::uint64_t{7})
                      .field("b", std::string_view("x"))
                      .finish();
  EXPECT_EQ(fp.digest, cache::fnv1a(fp.key.data(), fp.key.size()));
}

TEST(CacheFingerprint, NegativeZeroNormalized) {
  const auto pos = cache::Fingerprinter{}.field("d", 0.0).finish();
  const auto neg = cache::Fingerprinter{}.field("d", -0.0).finish();
  EXPECT_EQ(pos, neg);
}

serve::JobSpec cacheable_spec() {
  serve::JobSpec spec;
  spec.name = "job";
  spec.kind = serve::JobKind::Morphology;
  spec.scene.width = 12;
  spec.scene.height = 10;
  spec.scene.bands = 8;
  spec.scene.seed = 21;
  spec.se_radius = 1;
  spec.endmembers = 3;
  return spec;
}

TEST(CacheFingerprint, JobFingerprintIgnoresNonFunctionalFields) {
  const serve::JobSpec base = cacheable_spec();
  serve::JobSpec other = base;
  other.name = "different-name";
  other.priority = serve::Priority::High;
  other.deadline_seconds = 30;
  other.max_retries = 5;
  other.workers = 4;  // chunk-parallel determinism: outputs invariant
  EXPECT_EQ(serve::job_fingerprint(base), serve::job_fingerprint(other));
}

TEST(CacheFingerprint, JobFingerprintCoversFunctionalFields) {
  const serve::JobSpec base = cacheable_spec();
  const auto base_fp = serve::job_fingerprint(base);

  serve::JobSpec v = base;
  v.kind = serve::JobKind::Unmix;
  EXPECT_NE(serve::job_fingerprint(v), base_fp);
  v = base;
  v.scene.seed = 22;
  EXPECT_NE(serve::job_fingerprint(v), base_fp);
  v = base;
  v.scene.width = 13;
  EXPECT_NE(serve::job_fingerprint(v), base_fp);
  v = base;
  v.se_radius = 2;
  EXPECT_NE(serve::job_fingerprint(v), base_fp);
  v = base;
  v.endmembers = 4;
  EXPECT_NE(serve::job_fingerprint(v), base_fp);
  v = base;
  v.chunk_texel_budget = 256;
  EXPECT_NE(serve::job_fingerprint(v), base_fp);
  v = base;
  v.half_precision = true;
  EXPECT_NE(serve::job_fingerprint(v), base_fp);
}

TEST(CacheFingerprint, UnreadableEnviJobsAreNotCacheable) {
  // ENVI-backed jobs are cacheable when the whole file can be content-
  // hashed into the fingerprint (tests/test_shard.cpp covers that path);
  // an unreadable path falls back to path identity and stays uncacheable.
  serve::JobSpec spec = cacheable_spec();
  EXPECT_TRUE(serve::is_cacheable(spec));
  spec.scene.envi_path = "/no/such/cube.hdr";
  EXPECT_FALSE(serve::is_cacheable(spec));
}

// ---------------------------------------------------------------------------
// Byte-budgeted LRU.

cache::Fingerprint key_of(std::uint64_t n) {
  return cache::Fingerprinter{}.field("k", n).finish();
}

TEST(CacheLru, HitMissEvictionAndRecency) {
  // Entry cost = 100 (value) + 18 (key) + 64 (overhead) = 182.
  cache::ByteBudgetLru<int> lru("cache.test", 400);
  ASSERT_TRUE(lru.enabled());
  lru.put(key_of(1), 10, 100);
  lru.put(key_of(2), 20, 100);
  EXPECT_EQ(lru.stats().entries, 2u);

  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_EQ(lru.get(key_of(1)).value_or(-1), 10);
  lru.put(key_of(3), 30, 100);

  EXPECT_EQ(lru.get(key_of(1)).value_or(-1), 10);
  EXPECT_EQ(lru.get(key_of(3)).value_or(-1), 30);
  EXPECT_FALSE(lru.get(key_of(2)).has_value()) << "LRU entry evicted";

  const cache::CacheStats s = lru.stats();
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_LE(s.bytes, s.max_bytes);
}

TEST(CacheLru, ZeroBudgetDisablesEverything) {
  cache::ByteBudgetLru<int> lru("cache.test", 0);
  EXPECT_FALSE(lru.enabled());
  lru.put(key_of(1), 10, 1);
  EXPECT_FALSE(lru.get(key_of(1)).has_value());
  const cache::CacheStats s = lru.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.insertions, 0u);
}

TEST(CacheLru, OversizeEntriesAreDropped) {
  cache::ByteBudgetLru<int> lru("cache.test", 200);
  lru.put(key_of(1), 10, 100);
  lru.put(key_of(2), 20, 10'000);  // alone exceeds the whole budget
  EXPECT_FALSE(lru.get(key_of(2)).has_value());
  EXPECT_EQ(lru.get(key_of(1)).value_or(-1), 10) << "resident entry kept";
  const cache::CacheStats s = lru.stats();
  EXPECT_EQ(s.oversize, 1u);
  EXPECT_EQ(s.insertions, 1u);
}

TEST(CacheLru, DuplicatePutRefreshesInsteadOfDuplicating) {
  cache::ByteBudgetLru<int> lru("cache.test", 1000);
  lru.put(key_of(1), 10, 10);
  lru.put(key_of(1), 10, 10);
  const cache::CacheStats s = lru.stats();
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(CacheContention, EvictionUnderContentionStaysConsistent) {
  // A budget small enough that concurrent inserts constantly evict: the
  // invariant under ThreadSanitizer is no race and exact accounting.
  cache::ByteBudgetLru<int> lru("cache.test", 1200);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  std::atomic<int> observed_wrong{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lru, &observed_wrong, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k =
            static_cast<std::uint64_t>((t * kOpsPerThread + i) % 13);
        if (const auto hit = lru.get(key_of(k))) {
          if (*hit != static_cast<int>(k)) observed_wrong.fetch_add(1);
        } else {
          lru.put(key_of(k), static_cast<int>(k), 150);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(observed_wrong.load(), 0);
  const cache::CacheStats s = lru.stats();
  EXPECT_LE(s.bytes, s.max_bytes);
  EXPECT_EQ(s.insertions - s.evictions, s.entries);
  EXPECT_GT(s.evictions, 0u) << "budget chosen to force eviction";
}

// ---------------------------------------------------------------------------
// Scene memo cache.

TEST(CacheScene, MemoizedCubeIsBitIdenticalToFreshGeneration) {
  cache::SceneCache scenes(16 << 20);
  const cache::SceneKey key{12, 10, 8, 21};
  const auto first = scenes.get_or_generate(key);
  const auto second = scenes.get_or_generate(key);
  EXPECT_EQ(first.get(), second.get()) << "second call is a memo hit";
  EXPECT_EQ(scenes.stats().hits, 1u);
  EXPECT_EQ(scenes.stats().misses, 1u);

  hsi::SceneConfig cfg;
  cfg.width = key.width;
  cfg.height = key.height;
  cfg.bands = key.bands;
  cfg.seed = key.seed;
  const hsi::HyperCube fresh = hsi::generate_indian_pines_scene(cfg).cube;
  ASSERT_EQ(first->raw().size(), fresh.raw().size());
  for (std::size_t i = 0; i < fresh.raw().size(); ++i) {
    ASSERT_EQ(first->raw()[i], fresh.raw()[i]) << "texel " << i;
  }
}

TEST(CacheScene, DistinctKeysYieldDistinctCubes) {
  cache::SceneCache scenes(16 << 20);
  const auto a = scenes.get_or_generate(cache::SceneKey{12, 10, 8, 21});
  const auto b = scenes.get_or_generate(cache::SceneKey{12, 10, 8, 22});
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(serve::fnv1a(a->raw().data(), a->raw().size() * sizeof(float)),
            serve::fnv1a(b->raw().data(), b->raw().size() * sizeof(float)));
}

// ---------------------------------------------------------------------------
// Server result cache.

/// The hash chain the server computes, recomputed from direct pipeline
/// calls (fnv1a over mei, db, then labels).
std::uint64_t direct_hash(const serve::JobSpec& spec) {
  hsi::SceneConfig cfg;
  cfg.width = spec.scene.width;
  cfg.height = spec.scene.height;
  cfg.bands = spec.scene.bands;
  cfg.seed = spec.scene.seed;
  const hsi::HyperCube cube = hsi::generate_indian_pines_scene(cfg).cube;
  core::AmcGpuOptions opt;
  opt.workers = spec.workers;
  opt.chunk_texel_budget = spec.chunk_texel_budget;
  opt.half_precision = spec.half_precision;
  std::uint64_t hash = serve::fnv1a(nullptr, 0);
  if (spec.kind != serve::JobKind::Unmix) {
    const auto report = core::morphology_gpu(
        cube, core::StructuringElement::square(spec.se_radius), opt);
    hash = serve::fnv1a(report.morph.mei.data(),
                        report.morph.mei.size() * sizeof(float), hash);
    hash = serve::fnv1a(report.morph.db.data(),
                        report.morph.db.size() * sizeof(float), hash);
  }
  if (spec.kind != serve::JobKind::Morphology) {
    const auto endmembers = serve::synthetic_endmembers(
        spec.endmembers, cube.bands(), spec.scene.seed);
    const auto report = core::unmix_gpu(cube, endmembers, opt);
    hash = serve::fnv1a(report.labels.data(),
                        report.labels.size() * sizeof(int), hash);
  }
  return hash;
}

TEST(CacheServer, SecondSubmissionIsServedFromCacheBitIdentical) {
  serve::ServerOptions options;
  options.result_cache_bytes = 8 << 20;
  options.scene_cache_bytes = 8 << 20;
  serve::Server server(options);

  const serve::JobSpec spec = cacheable_spec();
  const auto first = server.submit(spec);
  ASSERT_TRUE(first.admitted);
  const serve::JobResult live = server.wait(first.id);
  ASSERT_EQ(live.state, serve::JobState::Done) << live.detail;
  EXPECT_FALSE(live.cached);
  EXPECT_EQ(live.attempts, 1);

  const auto second = server.submit(spec);
  ASSERT_TRUE(second.admitted);
  const serve::JobResult hit = server.wait(second.id);
  server.shutdown(/*drain=*/true);

  ASSERT_EQ(hit.state, serve::JobState::Done) << hit.detail;
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.attempts, 0);
  EXPECT_EQ(hit.output_hash, live.output_hash);
  EXPECT_EQ(hit.output_hash, direct_hash(spec)) << "bit-identity witness";
  EXPECT_EQ(hit.modeled_seconds, live.modeled_seconds);
  EXPECT_EQ(hit.chunk_count, live.chunk_count);
  // keep_payloads defaults on: the cached payload is the live payload.
  ASSERT_EQ(hit.mei.size(), live.mei.size());
  for (std::size_t i = 0; i < live.mei.size(); ++i) {
    ASSERT_EQ(hit.mei[i], live.mei[i]) << "pixel " << i;
  }

  const cache::CacheStats rs = server.result_cache_stats();
  EXPECT_EQ(rs.hits, 1u);
  EXPECT_EQ(rs.misses, 1u);
}

TEST(CacheServer, CacheIsOffByDefault) {
  serve::ServerOptions options;
  serve::Server server(options);
  const serve::JobSpec spec = cacheable_spec();
  const auto a = server.submit(spec);
  const serve::JobResult ra = server.wait(a.id);
  const auto b = server.submit(spec);
  const serve::JobResult rb = server.wait(b.id);
  server.shutdown(/*drain=*/true);
  ASSERT_EQ(ra.state, serve::JobState::Done) << ra.detail;
  ASSERT_EQ(rb.state, serve::JobState::Done) << rb.detail;
  EXPECT_FALSE(ra.cached);
  EXPECT_FALSE(rb.cached);
  EXPECT_EQ(rb.attempts, 1);
  EXPECT_EQ(ra.output_hash, rb.output_hash);
}

TEST(CacheServer, HitsSpanNamesPrioritiesRetriesAndWorkerCounts) {
  serve::ServerOptions options;
  options.result_cache_bytes = 8 << 20;
  serve::Server server(options);

  serve::JobSpec first = cacheable_spec();
  first.kind = serve::JobKind::Classify;
  const auto a = server.submit(first);
  const serve::JobResult live = server.wait(a.id);
  ASSERT_EQ(live.state, serve::JobState::Done) << live.detail;

  serve::JobSpec variant = first;
  variant.name = "other-name";
  variant.priority = serve::Priority::High;
  variant.max_retries = 3;
  variant.workers = 2;
  const auto b = server.submit(variant);
  const serve::JobResult hit = server.wait(b.id);
  server.shutdown(/*drain=*/true);

  ASSERT_EQ(hit.state, serve::JobState::Done) << hit.detail;
  EXPECT_TRUE(hit.cached) << "non-functional fields share one entry";
  EXPECT_EQ(hit.output_hash, live.output_hash);
}

TEST(CacheServer, EnviJobsBypassTheCache) {
  serve::ServerOptions options;
  options.result_cache_bytes = 8 << 20;
  serve::Server server(options);
  serve::JobSpec spec = cacheable_spec();
  spec.scene.envi_path = "/nonexistent/cube.hdr";
  const auto sub = server.submit(spec);
  const serve::JobResult res =
      sub.admitted ? server.wait(sub.id) : *server.result(sub.id);
  server.shutdown(/*drain=*/true);
  EXPECT_NE(res.state, serve::JobState::Done);
  EXPECT_EQ(server.result_cache_stats().hits, 0u);
  EXPECT_EQ(server.result_cache_stats().misses, 0u)
      << "ENVI-backed jobs never consult the result cache";
}

// ---------------------------------------------------------------------------
// Cross-device shared program store.

TEST(CacheProgramStore, CompilesEachBindingOnce) {
  gpusim::SharedProgramStore store;
  const auto program = gpusim::assemble_or_die(
      "p", "!!HSFP1.0\nMOV result.color, c[0];\nEND\n");
  const std::vector<gpusim::float4> constants{{1, 2, 3, 4}};
  const auto a = store.get_or_compile(program, constants, {});
  const auto b = store.get_or_compile(program, constants, {});
  EXPECT_EQ(a.get(), b.get()) << "one lowering per distinct binding";
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().misses, 1u);

  // A different constant binding is a different specialization.
  const std::vector<gpusim::float4> other{{5, 6, 7, 8}};
  const auto c = store.get_or_compile(program, other, {});
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(store.stats().misses, 2u);
}

TEST(CacheProgramStore, ConcurrentLookupsShareOneCompilation) {
  gpusim::SharedProgramStore store;
  const auto p0 = gpusim::assemble_or_die(
      "p0", "!!HSFP1.0\nMOV result.color, c[0];\nEND\n");
  const auto p1 = gpusim::assemble_or_die(
      "p1", "!!HSFP1.0\nADD result.color, c[0], c[1];\nEND\n");
  const std::vector<gpusim::float4> constants{{1, 2, 3, 4}, {5, 6, 7, 8}};

  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::shared_ptr<const gpusim::CompiledProgram>> seen0(kThreads);
  std::vector<std::shared_ptr<const gpusim::CompiledProgram>> seen1(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        seen0[static_cast<std::size_t>(t)] =
            store.get_or_compile(p0, constants, {});
        seen1[static_cast<std::size_t>(t)] =
            store.get_or_compile(p1, constants, {});
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen0[0].get(), seen0[static_cast<std::size_t>(t)].get());
    EXPECT_EQ(seen1[0].get(), seen1[static_cast<std::size_t>(t)].get());
  }
  EXPECT_EQ(store.stats().misses, 2u) << "each binding compiled exactly once";
  EXPECT_EQ(store.stats().entries, 2u);
}

TEST(CacheProgramStore, SharedStoreKeepsDeviceResultsBitIdentical) {
  // Two blank devices, one with a shared store and one without, must
  // produce identical pass results and counters for the same draw.
  const auto run = [](std::shared_ptr<gpusim::SharedProgramStore> store) {
    gpusim::SimConfig config;
    config.worker_threads = 1;
    config.shared_programs = std::move(store);
    gpusim::Device device(gpusim::geforce_7800_gtx(), config);
    const auto tex = device.create_texture(8, 8, gpusim::TextureFormat::R32F);
    std::vector<float> texels(64);
    for (std::size_t i = 0; i < texels.size(); ++i) {
      texels[i] = static_cast<float>(i) * 0.25f;
    }
    device.upload(tex, std::span<const float>(texels));
    const auto out = device.create_texture(8, 8, gpusim::TextureFormat::R32F);
    const auto program = gpusim::assemble_or_die(
        "scale",
        "!!HSFP1.0\nTEX R0, fragment.texcoord[0], texture[0];\n"
        "MUL result.color, R0, c[0];\nEND\n");
    const std::vector<gpusim::float4> constants{{2, 2, 2, 2}};
    const gpusim::TextureHandle inputs[] = {tex};
    const gpusim::TextureHandle outputs[] = {out};
    device.draw(program, inputs, constants, outputs);
    return device.download_scalar(out);
  };

  const auto store = std::make_shared<gpusim::SharedProgramStore>();
  const std::vector<float> shared_result = run(store);
  const std::vector<float> local_result = run(nullptr);
  ASSERT_EQ(shared_result.size(), local_result.size());
  for (std::size_t i = 0; i < shared_result.size(); ++i) {
    ASSERT_EQ(shared_result[i], local_result[i]) << "texel " << i;
  }
  EXPECT_EQ(store->stats().misses, 1u);
}

}  // namespace
}  // namespace hs
