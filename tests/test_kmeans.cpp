#include "core/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>

#include "hsi/metrics.hpp"
#include "hsi/synthetic.hpp"
#include "util/rng.hpp"

namespace hs::core {
namespace {

/// Cube with `k` well-separated spectral blobs.
hsi::HyperCube blob_cube(int w, int h, int bands, int k, std::uint64_t seed,
                         std::vector<int>* truth = nullptr) {
  util::Xoshiro256 rng(seed);
  hsi::HyperCube cube(w, h, bands);
  if (truth) truth->assign(cube.pixel_count(), 0);
  std::vector<std::vector<float>> centers(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    centers[static_cast<std::size_t>(c)].resize(static_cast<std::size_t>(bands));
    for (int b = 0; b < bands; ++b) {
      centers[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)] =
          static_cast<float>(0.2 + 0.6 * rng.uniform());
    }
  }
  std::vector<float> spec(static_cast<std::size_t>(bands));
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int c = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(k)));
      for (int b = 0; b < bands; ++b) {
        spec[static_cast<std::size_t>(b)] = static_cast<float>(
            centers[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)] +
            0.01 * rng.normal());
      }
      cube.set_pixel(x, y, spec);
      if (truth) {
        (*truth)[static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
                 static_cast<std::size_t>(x)] = c;
      }
    }
  }
  return cube;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  std::vector<int> truth;
  const auto cube = blob_cube(20, 20, 12, 4, 1, &truth);
  KMeansConfig cfg;
  cfg.clusters = 4;
  const KMeansResult result = kmeans_spectral(cube, cfg);
  EXPECT_TRUE(result.converged);

  // Majority-map clusters to blobs; accuracy must be near-perfect.
  std::vector<std::int16_t> t16(truth.begin(), truth.end());
  const auto mapping = hsi::majority_mapping(t16, result.labels, 4, 4);
  const auto cm = hsi::remapped_confusion(t16, result.labels, mapping, 4);
  EXPECT_GT(cm.overall_accuracy(), 0.98);
}

TEST(KMeans, DistortionDecreasesToConvergence) {
  const auto cube = blob_cube(16, 16, 8, 3, 2);
  KMeansConfig a;
  a.clusters = 3;
  a.max_iterations = 1;
  KMeansConfig b = a;
  b.max_iterations = 20;
  const double d1 = kmeans_spectral(cube, a).distortion;
  const double d20 = kmeans_spectral(cube, b).distortion;
  EXPECT_LE(d20, d1 + 1e-9);
}

TEST(KMeans, DeterministicInSeed) {
  const auto cube = blob_cube(12, 12, 8, 3, 3);
  const KMeansResult a = kmeans_spectral(cube, {});
  const KMeansResult b = kmeans_spectral(cube, {});
  EXPECT_EQ(a.labels, b.labels);
}

TEST(KMeans, LabelsInRangeAndAllClustersExist) {
  const auto cube = blob_cube(24, 24, 8, 6, 4);
  KMeansConfig cfg;
  cfg.clusters = 6;
  const KMeansResult result = kmeans_spectral(cube, cfg);
  std::set<int> used;
  for (int v : result.labels) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 6);
    used.insert(v);
  }
  EXPECT_GE(used.size(), 5u);  // seeding may rarely strand one cluster
  EXPECT_EQ(result.centroids.size(), 6u);
}

TEST(KMeans, SamMetricClustersByShapeNotBrightness) {
  // Two spectral shapes, each at two brightness levels: SAM k-means with
  // k=2 must group by shape.
  hsi::HyperCube cube(4, 1, 8);
  std::vector<float> up{0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f, 0.7f, 0.8f};
  std::vector<float> down{0.8f, 0.7f, 0.6f, 0.5f, 0.4f, 0.3f, 0.2f, 0.1f};
  auto scaled = [](const std::vector<float>& v, float s) {
    std::vector<float> out = v;
    for (auto& x : out) x *= s;
    return out;
  };
  cube.set_pixel(0, 0, up);
  cube.set_pixel(1, 0, scaled(up, 0.3f));
  cube.set_pixel(2, 0, down);
  cube.set_pixel(3, 0, scaled(down, 0.3f));

  KMeansConfig cfg;
  cfg.clusters = 2;
  cfg.metric = Distance::Sam;
  const KMeansResult result = kmeans_spectral(cube, cfg);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[2], result.labels[3]);
  EXPECT_NE(result.labels[0], result.labels[2]);
}

TEST(KMeans, SingleClusterDegenerates) {
  const auto cube = blob_cube(8, 8, 4, 2, 5);
  KMeansConfig cfg;
  cfg.clusters = 1;
  const KMeansResult result = kmeans_spectral(cube, cfg);
  for (int v : result.labels) EXPECT_EQ(v, 0);
}

}  // namespace
}  // namespace hs::core
