#include "hsi/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hsi/synthetic.hpp"
#include "util/rng.hpp"

namespace hs::hsi {
namespace {

/// Cube whose spectra live on a 2-D affine subspace plus small noise.
HyperCube low_rank_cube(int w, int h, int n, std::uint64_t seed, double noise) {
  util::Xoshiro256 rng(seed);
  std::vector<double> base(static_cast<std::size_t>(n)), dir1(base.size()),
      dir2(base.size());
  for (int b = 0; b < n; ++b) {
    base[static_cast<std::size_t>(b)] = 0.5 + 0.1 * std::sin(0.2 * b);
    dir1[static_cast<std::size_t>(b)] = std::cos(0.15 * b);
    dir2[static_cast<std::size_t>(b)] = std::sin(0.4 * b);
  }
  HyperCube cube(w, h, n);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double a = rng.uniform(-1, 1);
      const double b2 = rng.uniform(-1, 1);
      for (int b = 0; b < n; ++b) {
        cube.at(x, y, b) = static_cast<float>(
            base[static_cast<std::size_t>(b)] + a * 0.1 * dir1[static_cast<std::size_t>(b)] +
            b2 * 0.05 * dir2[static_cast<std::size_t>(b)] + noise * rng.normal());
      }
    }
  }
  return cube;
}

TEST(Pca, TwoComponentsExplainLowRankData) {
  const HyperCube cube = low_rank_cube(12, 12, 24, 1, 1e-4);
  const PcaModel model = pca_fit(cube, 2);
  EXPECT_EQ(model.kept, 2);
  EXPECT_GT(model.explained_variance(), 0.999);
}

TEST(Pca, EigenvaluesDescending) {
  const HyperCube cube = low_rank_cube(10, 10, 16, 2, 0.01);
  const PcaModel model = pca_fit(cube, 4);
  for (std::size_t i = 1; i < model.eigenvalues.size(); ++i) {
    EXPECT_GE(model.eigenvalues[i - 1], model.eigenvalues[i] - 1e-12);
  }
}

TEST(Pca, TransformShapesAndCentering) {
  const HyperCube cube = low_rank_cube(8, 6, 12, 3, 0.01);
  const PcaModel model = pca_fit(cube, 3);
  const HyperCube scores = pca_transform(cube, model);
  EXPECT_EQ(scores.width(), 8);
  EXPECT_EQ(scores.height(), 6);
  EXPECT_EQ(scores.bands(), 3);
  // Scores are centered: mean ~ 0 per component.
  for (int k = 0; k < 3; ++k) {
    double sum = 0;
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 8; ++x) sum += scores.at(x, y, k);
    }
    EXPECT_NEAR(sum / 48.0, 0.0, 1e-4);
  }
}

TEST(Pca, ScoresAreDecorrelated) {
  const HyperCube cube = low_rank_cube(16, 16, 20, 4, 0.02);
  const PcaModel model = pca_fit(cube, 3);
  const HyperCube scores = pca_transform(cube, model);
  // Empirical cross-correlation of distinct components is ~0.
  double c01 = 0, c0 = 0, c1 = 0;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      const double a = scores.at(x, y, 0);
      const double b = scores.at(x, y, 1);
      c01 += a * b;
      c0 += a * a;
      c1 += b * b;
    }
  }
  EXPECT_LT(std::fabs(c01) / std::sqrt(c0 * c1 + 1e-30), 0.02);
}

TEST(Pca, InverseReconstructsLowRankDataClosely) {
  const HyperCube cube = low_rank_cube(10, 10, 18, 5, 1e-5);
  const PcaModel model = pca_fit(cube, 2);
  const HyperCube scores = pca_transform(cube, model);
  const HyperCube back = pca_inverse(scores, model);
  double max_err = 0;
  for (std::size_t i = 0; i < cube.raw().size(); ++i) {
    max_err = std::max(max_err,
                       std::fabs(static_cast<double>(cube.raw()[i]) -
                                 static_cast<double>(back.raw()[i])));
  }
  EXPECT_LT(max_err, 1e-2);
}

TEST(Pca, FullRankReconstructionIsNearExact) {
  const HyperCube cube = low_rank_cube(6, 6, 8, 6, 0.05);
  const PcaModel model = pca_fit(cube, 8);
  const HyperCube back = pca_inverse(pca_transform(cube, model), model);
  for (std::size_t i = 0; i < cube.raw().size(); ++i) {
    EXPECT_NEAR(back.raw()[i], cube.raw()[i], 1e-3f);
  }
}

TEST(Pca, SyntheticSceneCompressesWell) {
  SceneConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.bands = 64;
  const SyntheticScene scene = generate_indian_pines_scene(cfg);
  const PcaModel model = pca_fit(scene.cube, 8);
  // A mosaic of ~10 materials plus noise: 8 components capture nearly all
  // variance.
  EXPECT_GT(model.explained_variance(), 0.98);
}

}  // namespace
}  // namespace hs::hsi
