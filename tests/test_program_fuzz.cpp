// Property tests over randomly generated (valid) fragment programs:
//   * the disassemble -> assemble round trip preserves the IR;
//   * the interpreter executes any valid program without faulting and its
//     counters always reconcile with the program's static instruction mix;
//   * device passes never write outside their render targets;
//   * differential: the compiled and SoA engines reproduce the
//     interpreter bit-for-bit -- outputs, counters, cache statistics,
//     modeled time -- on fullscreen and geometry passes alike.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <utility>

#include "gpusim/assembler.hpp"
#include "gpusim/gpu_device.hpp"
#include "gpusim/interpreter.hpp"
#include "util/rng.hpp"

namespace hs::gpusim {
namespace {

/// Builds a random but always-valid program: every temp is fully written
/// before any read, sources draw from initialized temps / constants /
/// texcoords / literals, and the last instruction writes the output.
/// With `partial_masks`, extra partially-masked overwrites of live temps
/// and of the output are interleaved (always valid: the overwritten temp
/// is already fully initialized) -- these exercise the compiled engine's
/// write-mask handling and dead-write elimination.
FragmentProgram random_program(util::Xoshiro256& rng, int max_ops,
                               int bound_textures,
                               bool partial_masks = false) {
  FragmentProgram program;
  program.name = "fuzz";
  int live_temps = 0;

  auto random_source = [&](bool allow_temp) {
    SrcOperand src;
    const std::uint64_t kind = rng.uniform_int(allow_temp && live_temps > 0 ? 4 : 3);
    switch (kind) {
      case 0:
        src.file = RegFile::Literal;
        src.literal = {static_cast<float>(rng.uniform(-2, 2)),
                       static_cast<float>(rng.uniform(-2, 2)),
                       static_cast<float>(rng.uniform(0.1, 2)),
                       static_cast<float>(rng.uniform(0.1, 2))};
        break;
      case 1:
        src.file = RegFile::Const;
        src.index = static_cast<std::uint8_t>(rng.uniform_int(4));
        break;
      case 2:
        src.file = RegFile::TexCoord;
        src.index = static_cast<std::uint8_t>(rng.uniform_int(2));
        break;
      default:
        src.file = RegFile::Temp;
        src.index = static_cast<std::uint8_t>(rng.uniform_int(
            static_cast<std::uint64_t>(live_temps)));
        break;
    }
    if (rng.uniform() < 0.3) {
      for (auto& c : src.swizzle.comp) {
        c = static_cast<std::uint8_t>(rng.uniform_int(4));
      }
    }
    if (rng.uniform() < 0.2) src.negate = true;
    return src;
  };

  const Opcode ops[] = {Opcode::MOV, Opcode::ABS, Opcode::FLR, Opcode::FRC,
                        Opcode::RCP, Opcode::RSQ, Opcode::LG2, Opcode::EX2,
                        Opcode::ADD, Opcode::SUB, Opcode::MUL, Opcode::MIN,
                        Opcode::MAX, Opcode::SLT, Opcode::SGE, Opcode::DP3,
                        Opcode::DP4, Opcode::MAD, Opcode::CMP, Opcode::LRP,
                        Opcode::TEX};
  const int n_ops = static_cast<int>(1 + rng.uniform_int(static_cast<std::uint64_t>(max_ops)));
  for (int i = 0; i < n_ops && live_temps < kMaxTemps; ++i) {
    Instruction ins;
    ins.op = ops[rng.uniform_int(bound_textures > 0 ? 21 : 20)];
    ins.dst.file = RegFile::Temp;
    ins.dst.index = static_cast<std::uint8_t>(live_temps);
    ins.dst.write_mask = 0xF;  // full writes keep init tracking trivial
    if (ins.op == Opcode::TEX) {
      ins.src[0] = random_source(true);
      ins.src_count = 1;
      ins.tex_unit = static_cast<std::uint8_t>(
          rng.uniform_int(static_cast<std::uint64_t>(bound_textures)));
    } else {
      const int arity = opcode_arity(ins.op);
      for (int s = 0; s < arity; ++s) {
        ins.src[static_cast<std::size_t>(s)] = random_source(true);
      }
      ins.src_count = static_cast<std::uint8_t>(arity);
    }
    program.code.push_back(ins);
    ++live_temps;

    if (partial_masks && rng.uniform() < 0.35) {
      Instruction extra;
      extra.op = rng.uniform() < 0.5 ? Opcode::MOV : Opcode::ADD;
      if (rng.uniform() < 0.3) {
        extra.dst.file = RegFile::Output;
        extra.dst.index = 0;
      } else {
        extra.dst.file = RegFile::Temp;
        extra.dst.index = static_cast<std::uint8_t>(
            rng.uniform_int(static_cast<std::uint64_t>(live_temps)));
      }
      extra.dst.write_mask =
          static_cast<std::uint8_t>(1 + rng.uniform_int(15));  // nonzero
      const int arity = opcode_arity(extra.op);
      for (int s = 0; s < arity; ++s) {
        extra.src[static_cast<std::size_t>(s)] = random_source(true);
      }
      extra.src_count = static_cast<std::uint8_t>(arity);
      program.code.push_back(extra);
    }
  }

  Instruction out;
  out.op = Opcode::MOV;
  out.dst.file = RegFile::Output;
  out.dst.index = 0;
  out.src[0] = random_source(true);
  out.src_count = 1;
  program.code.push_back(out);
  return program;
}

class ProgramFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProgramFuzz, GeneratedProgramsAreValid) {
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const FragmentProgram p = random_program(rng, 24, 2);
    const auto errors = validate(p);
    EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  }
}

TEST_P(ProgramFuzz, DisassembleAssembleRoundTrips) {
  util::Xoshiro256 rng(GetParam() ^ 0xD15A55ULL);
  for (int trial = 0; trial < 20; ++trial) {
    const FragmentProgram p = random_program(rng, 16, 2);
    auto reassembled = assemble("fuzz", disassemble(p));
    auto* err = std::get_if<AssembleError>(&reassembled);
    ASSERT_EQ(err, nullptr) << err->message << "\n" << disassemble(p);
    const FragmentProgram& q = std::get<FragmentProgram>(reassembled);
    ASSERT_EQ(p.code.size(), q.code.size());
    for (std::size_t i = 0; i < p.code.size(); ++i) {
      EXPECT_EQ(p.code[i].op, q.code[i].op) << i;
      EXPECT_EQ(p.code[i].dst.file, q.code[i].dst.file) << i;
      EXPECT_EQ(p.code[i].dst.index, q.code[i].dst.index) << i;
      EXPECT_EQ(p.code[i].dst.write_mask, q.code[i].dst.write_mask) << i;
      EXPECT_EQ(p.code[i].src_count, q.code[i].src_count) << i;
      EXPECT_EQ(p.code[i].tex_unit, q.code[i].tex_unit) << i;
      for (int s = 0; s < p.code[i].src_count; ++s) {
        const auto& ps = p.code[i].src[static_cast<std::size_t>(s)];
        const auto& qs = q.code[i].src[static_cast<std::size_t>(s)];
        EXPECT_EQ(ps.file, qs.file) << i << ":" << s;
        EXPECT_EQ(ps.negate, qs.negate) << i << ":" << s;
        if (ps.file == RegFile::Literal) {
          for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_FLOAT_EQ(ps.literal[c], qs.literal[c]) << i << ":" << s;
          }
        } else {
          EXPECT_EQ(ps.index, qs.index) << i << ":" << s;
        }
        EXPECT_EQ(ps.swizzle.comp, qs.swizzle.comp) << i << ":" << s;
      }
    }
  }
}

TEST_P(ProgramFuzz, InterpreterCountersMatchStaticMix) {
  util::Xoshiro256 rng(GetParam() ^ 0xC0FFEEULL);
  Texture2D tex_a(8, 8, TextureFormat::RGBA32F);
  Texture2D tex_b(8, 8, TextureFormat::R32F);
  const Texture2D* textures[2] = {&tex_a, &tex_b};
  for (int trial = 0; trial < 20; ++trial) {
    const FragmentProgram p = random_program(rng, 24, 2);
    FragmentContext ctx;
    ctx.texcoord[0] = {1.5f, 2.5f, 0, 1};
    ctx.texcoord[1] = {0.5f, 0.5f, 0, 1};
    const float4 constants[4] = {{1, 2, 3, 4}, {0.5, 0.5, 0.5, 0.5},
                                 {-1, 0, 1, 2}, {4, 3, 2, 1}};
    ctx.constants = constants;
    ctx.textures = textures;
    ExecCounters counters;
    const FragmentResult result = execute_fragment(p, ctx, counters);
    EXPECT_TRUE(result.outputs_written & 1u);
    EXPECT_EQ(counters.alu_instructions,
              static_cast<std::uint64_t>(p.alu_instruction_count()));
    EXPECT_EQ(counters.tex_fetches,
              static_cast<std::uint64_t>(p.tex_instruction_count()));
  }
}

TEST_P(ProgramFuzz, DevicePassesRunToCompletion) {
  util::Xoshiro256 rng(GetParam() ^ 0xBEEFULL);
  DeviceProfile profile = geforce_7800_gtx();
  profile.fragment_pipes = 2;
  Device dev(profile);
  const TextureHandle in_a = dev.create_texture(8, 8, TextureFormat::RGBA32F);
  const TextureHandle in_b = dev.create_texture(8, 8, TextureFormat::R32F);
  const TextureHandle out = dev.create_texture(8, 8, TextureFormat::RGBA32F);
  const TextureHandle ins[2] = {in_a, in_b};
  const TextureHandle outs[1] = {out};
  const float4 constants[4] = {{1, 1, 0, 0}, {2, 2, 2, 2}, {}, {}};
  for (int trial = 0; trial < 10; ++trial) {
    const FragmentProgram p = random_program(rng, 16, 2);
    const PassStats stats = dev.draw(p, ins, constants, outs);
    EXPECT_EQ(stats.fragments, 64u);
    EXPECT_EQ(stats.exec.alu_instructions,
              64u * static_cast<std::uint64_t>(p.alu_instruction_count()));
  }
}

// ---- engine differential --------------------------------------------------
//
// Three devices, identical in everything but the execution engine, are
// fed identical programs, constants and texture contents. The compiled
// and SoA engines must each reproduce the interpreter *bit for bit*: raw
// output texels (memcmp, so NaNs compare too), execution counters,
// texture-cache hit/miss statistics (LRU-order sensitive), unique-tile
// traffic and modeled time.

struct EngineTrio {
  Device interp;
  Device compiled;
  Device soa;

  explicit EngineTrio(int pipes)
      : interp(profile_for(pipes), config_for(ExecEngine::Interpreter)),
        compiled(profile_for(pipes), config_for(ExecEngine::Compiled)),
        soa(profile_for(pipes), config_for(ExecEngine::Soa)) {}

  static DeviceProfile profile_for(int pipes) {
    DeviceProfile profile = geforce_7800_gtx();
    profile.fragment_pipes = pipes;
    return profile;
  }
  static SimConfig config_for(ExecEngine engine) {
    SimConfig config;
    config.exec_engine = engine;
    return config;
  }
};

void expect_identical_stats(const PassStats& a, const PassStats& b) {
  EXPECT_EQ(a.fragments, b.fragments);
  EXPECT_EQ(a.exec.alu_instructions, b.exec.alu_instructions);
  EXPECT_EQ(a.exec.tex_fetches, b.exec.tex_fetches);
  EXPECT_EQ(a.exec.tex_fetch_bytes, b.exec.tex_fetch_bytes);
  EXPECT_EQ(a.cache.accesses, b.cache.accesses);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
  EXPECT_EQ(a.cache_miss_bytes, b.cache_miss_bytes);
  EXPECT_EQ(a.unique_tile_bytes, b.unique_tile_bytes);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.modeled_seconds, b.modeled_seconds);
}

void expect_identical_texels(Device& da, TextureHandle ha, Device& db,
                             TextureHandle hb) {
  const auto& ra = da.texture(ha).raw();
  const auto& rb = db.texture(hb).raw();
  ASSERT_EQ(ra.size(), rb.size());
  EXPECT_EQ(0, std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(float)));
}

TEST_P(ProgramFuzz, EnginesBitIdenticalOnFullscreenPasses) {
  util::Xoshiro256 rng(GetParam() ^ 0xD1FFULL);
  const AddressMode modes[] = {AddressMode::ClampToEdge, AddressMode::Repeat,
                               AddressMode::ClampToBorder};
  // Widths beyond kExecTileWidth exercise multi-tile rows; odd shapes
  // exercise the partial final tile and uneven pipe partitions.
  const std::pair<int, int> shapes[] = {{8, 8}, {70, 9}, {5, 3}, {64, 4}};
  for (int trial = 0; trial < 8; ++trial) {
    const int pipes = 1 + static_cast<int>(rng.uniform_int(4));
    EngineTrio trio(pipes);
    const auto [w, h] = shapes[trial % 4];
    const AddressMode mode_a = modes[rng.uniform_int(3)];
    const AddressMode mode_b = modes[rng.uniform_int(3)];

    std::vector<float4> data_a(static_cast<std::size_t>(w) * h);
    std::vector<float> data_b(static_cast<std::size_t>(w) * h);
    for (auto& v : data_a) {
      v = {static_cast<float>(rng.uniform(-4, 4)),
           static_cast<float>(rng.uniform(-4, 4)),
           static_cast<float>(rng.uniform(-4, 4)),
           static_cast<float>(rng.uniform(-4, 4))};
    }
    for (auto& v : data_b) v = static_cast<float>(rng.uniform(-4, 4));

    TextureHandle in_a[3], in_b[3], out[3];
    Device* devs[3] = {&trio.interp, &trio.compiled, &trio.soa};
    for (int d = 0; d < 3; ++d) {
      in_a[d] = devs[d]->create_texture(w, h, TextureFormat::RGBA32F, mode_a);
      in_b[d] = devs[d]->create_texture(w, h, TextureFormat::R32F, mode_b);
      out[d] = devs[d]->create_texture(w, h, TextureFormat::RGBA32F);
      if (mode_a == AddressMode::ClampToBorder) {
        devs[d]->texture(in_a[d]).set_border_color({0.25f, -1.f, 2.f, 0.f});
      }
      devs[d]->upload(in_a[d], data_a);
      devs[d]->upload(in_b[d], data_b);
    }

    const FragmentProgram p =
        random_program(rng, 20, 2, /*partial_masks=*/true);
    const float4 constants[4] = {{1, 2, 3, 4}, {0.5, -0.5, 0.5, -0.5},
                                 {-1, 0, 1, 2}, {4, 3, 2, 1}};
    for (int repeat = 0; repeat < 2; ++repeat) {  // second draw hits the cache
      PassStats stats[3];
      for (int d = 0; d < 3; ++d) {
        const TextureHandle ins[2] = {in_a[d], in_b[d]};
        const TextureHandle outs[1] = {out[d]};
        stats[d] = devs[d]->draw(p, ins, constants, outs);
      }
      for (int d = 1; d < 3; ++d) {
        expect_identical_stats(stats[0], stats[d]);
        expect_identical_texels(trio.interp, out[0], *devs[d], out[d]);
      }
    }
    EXPECT_GE(trio.compiled.program_cache().hits(), 1u);
    EXPECT_GE(trio.soa.program_cache().hits(), 1u);
  }
}

TEST_P(ProgramFuzz, EnginesBitIdenticalOnGeometryPasses) {
  util::Xoshiro256 rng(GetParam() ^ 0x6E0ULL);
  for (int trial = 0; trial < 6; ++trial) {
    const int pipes = 1 + static_cast<int>(rng.uniform_int(4));
    EngineTrio trio(pipes);
    const int w = 17, h = 11;

    std::vector<float4> data(static_cast<std::size_t>(w) * h);
    for (auto& v : data) {
      v = {static_cast<float>(rng.uniform(-4, 4)),
           static_cast<float>(rng.uniform(-4, 4)),
           static_cast<float>(rng.uniform(-4, 4)),
           static_cast<float>(rng.uniform(-4, 4))};
    }

    TextureHandle in[3], out[3];
    Device* devs[3] = {&trio.interp, &trio.compiled, &trio.soa};
    for (int d = 0; d < 3; ++d) {
      in[d] = devs[d]->create_texture(w, h, TextureFormat::RGBA32F,
                                      AddressMode::Repeat);
      out[d] = devs[d]->create_texture(w, h, TextureFormat::RGBA32F);
      devs[d]->upload(in[d], data);
    }

    std::vector<Device::GeomFragment> frags(37);
    for (auto& f : frags) {
      f.x = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(w)));
      f.y = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(h)));
      f.texcoord0 = {static_cast<float>(rng.uniform(-2, w + 2)),
                     static_cast<float>(rng.uniform(-2, h + 2)), 0.f, 1.f};
      f.texcoord1 = {static_cast<float>(rng.uniform(0, 1)),
                     static_cast<float>(rng.uniform(0, 1)), 0.f, 0.f};
    }

    const FragmentProgram p =
        random_program(rng, 16, 1, /*partial_masks=*/true);
    const float4 constants[4] = {{1, 2, 3, 4}, {0.5, -0.5, 0.5, -0.5},
                                 {-1, 0, 1, 2}, {4, 3, 2, 1}};
    PassStats stats[3];
    for (int d = 0; d < 3; ++d) {
      const TextureHandle ins[1] = {in[d]};
      const TextureHandle outs[1] = {out[d]};
      stats[d] = devs[d]->draw_fragments(p, frags, ins, constants, outs);
    }
    for (int d = 1; d < 3; ++d) {
      expect_identical_stats(stats[0], stats[d]);
      expect_identical_texels(trio.interp, out[0], *devs[d], out[d]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace hs::gpusim
