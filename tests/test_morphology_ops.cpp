#include "core/morphology_ops.hpp"

#include <gtest/gtest.h>

#include "core/distances.hpp"
#include "util/rng.hpp"

namespace hs::core {
namespace {

hsi::HyperCube random_cube(int w, int h, int n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  hsi::HyperCube cube(w, h, n);
  for (auto& v : cube.raw()) v = static_cast<float>(rng.uniform(0.05, 1.0));
  return cube;
}

/// Cube with one anomalous pixel in a flat background.
hsi::HyperCube anomaly_cube(int w, int h, int n) {
  hsi::HyperCube cube(w, h, n);
  for (auto& v : cube.raw()) v = 0.5f;
  for (int b = 0; b < n; ++b) {
    cube.at(w / 2, h / 2, b) =
        0.05f + 0.9f * static_cast<float>(b) / static_cast<float>(n - 1);
  }
  return cube;
}

TEST(MorphologyOps, ConstantImageIsFixedPoint) {
  hsi::HyperCube cube(5, 5, 6);
  for (auto& v : cube.raw()) v = 0.3f;
  const StructuringElement se = StructuringElement::square(1);
  for (const auto& out : {extended_erode(cube, se), extended_dilate(cube, se),
                          extended_open(cube, se), extended_close(cube, se)}) {
    for (std::size_t i = 0; i < cube.raw().size(); ++i) {
      EXPECT_EQ(out.raw()[i], cube.raw()[i]);
    }
  }
}

TEST(MorphologyOps, OutputPixelsComeFromTheInput) {
  // Every output pixel vector must be one of the input neighborhood's
  // vectors (these are selection operators, not averages).
  const auto cube = random_cube(6, 6, 8, 1);
  const StructuringElement se = StructuringElement::square(1);
  const auto eroded = extended_erode(cube, se);
  std::vector<float> out_spec(8), in_spec(8);
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 6; ++x) {
      eroded.pixel(x, y, out_spec);
      bool found = false;
      for (const auto& [dx, dy] : se.offsets) {
        const int nx = std::clamp(x + dx, 0, 5);
        const int ny = std::clamp(y + dy, 0, 5);
        cube.pixel(nx, ny, in_spec);
        if (in_spec == out_spec) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << x << "," << y;
    }
  }
}

TEST(MorphologyOps, ErosionRemovesTheAnomaly) {
  const auto cube = anomaly_cube(9, 9, 12);
  const auto eroded = extended_erode(cube, StructuringElement::square(1));
  // The anomalous vector is spectrally extreme, so erosion (argmin of
  // cumulative SID) never selects it: the anomaly disappears.
  std::vector<float> spec(12);
  for (int y = 0; y < 9; ++y) {
    for (int x = 0; x < 9; ++x) {
      eroded.pixel(x, y, spec);
      for (float v : spec) EXPECT_EQ(v, 0.5f) << x << "," << y;
    }
  }
}

TEST(MorphologyOps, DilationGrowsTheAnomaly) {
  const auto cube = anomaly_cube(9, 9, 12);
  const auto dilated = extended_dilate(cube, StructuringElement::square(1));
  // Every pixel whose 3x3 window contains the anomaly now carries it.
  std::vector<float> spec(12), anom(12);
  cube.pixel(4, 4, anom);
  int grown = 0;
  for (int y = 3; y <= 5; ++y) {
    for (int x = 3; x <= 5; ++x) {
      dilated.pixel(x, y, spec);
      if (spec == anom) ++grown;
    }
  }
  EXPECT_EQ(grown, 9);
}

TEST(MorphologyOps, OpeningRemovesSmallAnomalyPermanently) {
  const auto cube = anomaly_cube(9, 9, 12);
  const auto opened = extended_open(cube, StructuringElement::square(1));
  std::vector<float> spec(12);
  for (int y = 0; y < 9; ++y) {
    for (int x = 0; x < 9; ++x) {
      opened.pixel(x, y, spec);
      for (float v : spec) EXPECT_EQ(v, 0.5f);
    }
  }
}

TEST(MorphologyOps, ProfileShapeAndAnomalyResponse) {
  const auto cube = anomaly_cube(9, 9, 12);
  const auto profile = morphological_profile(cube, 2);
  ASSERT_EQ(profile.size(), 4u);  // 2 openings + 2 closings
  for (const auto& level : profile) {
    EXPECT_EQ(level.size(), 81u);
    for (float v : level) EXPECT_GE(v, -1e-6f);
  }
  // The opening profile peaks at the anomaly (it was removed there).
  const std::size_t center = 4u * 9u + 4u;
  float max_level0 = 0;
  std::size_t argmax = 0;
  for (std::size_t i = 0; i < 81; ++i) {
    if (profile[0][i] > max_level0) {
      max_level0 = profile[0][i];
      argmax = i;
    }
  }
  EXPECT_EQ(argmax, center);
  EXPECT_GT(max_level0, 0.01f);
}

TEST(MorphologyOps, RandomImageDeterminism) {
  const auto cube = random_cube(7, 7, 6, 2);
  const StructuringElement se = StructuringElement::square(1);
  const auto a = extended_open(cube, se);
  const auto b = extended_open(cube, se);
  for (std::size_t i = 0; i < a.raw().size(); ++i) {
    EXPECT_EQ(a.raw()[i], b.raw()[i]);
  }
}

}  // namespace
}  // namespace hs::core
