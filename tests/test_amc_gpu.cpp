#include "core/amc_gpu.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace hs::core {
namespace {

hsi::HyperCube random_cube(int w, int h, int n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  hsi::HyperCube cube(w, h, n);
  for (auto& v : cube.raw()) v = static_cast<float>(rng.uniform(0.05, 1.0));
  return cube;
}

AmcGpuOptions fast_options() {
  AmcGpuOptions opt;
  opt.profile = gpusim::geforce_7800_gtx();
  opt.profile.fragment_pipes = 4;  // fewer simulated pipes = faster tests
  return opt;
}

TEST(AmcGpu, BitIdenticalToVectorizedCpuMirror) {
  const auto cube = random_cube(14, 11, 10, 1);
  const StructuringElement se = StructuringElement::square(1);
  const MorphOutputs cpu = morphology_vectorized(cube, se);
  const AmcGpuReport gpu = morphology_gpu(cube, se, fast_options());

  ASSERT_EQ(gpu.morph.mei.size(), cpu.mei.size());
  for (std::size_t i = 0; i < cpu.mei.size(); ++i) {
    EXPECT_EQ(gpu.morph.db[i], cpu.db[i]) << "db at " << i;
    EXPECT_EQ(gpu.morph.mei[i], cpu.mei[i]) << "mei at " << i;
    EXPECT_EQ(gpu.morph.erosion_index[i], cpu.erosion_index[i]) << i;
    EXPECT_EQ(gpu.morph.dilation_index[i], cpu.dilation_index[i]) << i;
  }
}

TEST(AmcGpu, ChunkedRunMatchesUnchunked) {
  const auto cube = random_cube(20, 16, 8, 2);
  const StructuringElement se = StructuringElement::square(1);

  AmcGpuOptions whole = fast_options();
  const AmcGpuReport a = morphology_gpu(cube, se, whole);
  EXPECT_EQ(a.chunk_count, 1u);

  AmcGpuOptions chunked = fast_options();
  chunked.chunk_texel_budget = 20 * 8;  // force several chunks
  const AmcGpuReport b = morphology_gpu(cube, se, chunked);
  EXPECT_GT(b.chunk_count, 1u);

  for (std::size_t i = 0; i < a.morph.mei.size(); ++i) {
    EXPECT_EQ(a.morph.mei[i], b.morph.mei[i]) << i;
    EXPECT_EQ(a.morph.db[i], b.morph.db[i]) << i;
    EXPECT_EQ(a.morph.erosion_index[i], b.morph.erosion_index[i]) << i;
    EXPECT_EQ(a.morph.dilation_index[i], b.morph.dilation_index[i]) << i;
  }
}

TEST(AmcGpu, ExecutionEnginesAreBitIdentical) {
  // The full pipeline -- every shader, chunking, ping-pong loops -- must
  // produce identical outputs AND identical modeled statistics under the
  // interpreter and the compiled engine.
  const auto cube = random_cube(14, 11, 10, 6);
  const StructuringElement se = StructuringElement::square(1);
  AmcGpuOptions interp = fast_options();
  interp.sim.exec_engine = gpusim::ExecEngine::Interpreter;
  AmcGpuOptions compiled = fast_options();
  compiled.sim.exec_engine = gpusim::ExecEngine::Compiled;
  const AmcGpuReport a = morphology_gpu(cube, se, interp);
  const AmcGpuReport b = morphology_gpu(cube, se, compiled);

  ASSERT_EQ(a.morph.mei.size(), b.morph.mei.size());
  for (std::size_t i = 0; i < a.morph.mei.size(); ++i) {
    EXPECT_EQ(a.morph.mei[i], b.morph.mei[i]) << i;
    EXPECT_EQ(a.morph.db[i], b.morph.db[i]) << i;
    EXPECT_EQ(a.morph.erosion_index[i], b.morph.erosion_index[i]) << i;
    EXPECT_EQ(a.morph.dilation_index[i], b.morph.dilation_index[i]) << i;
  }
  EXPECT_EQ(a.totals.passes, b.totals.passes);
  EXPECT_EQ(a.totals.fragments, b.totals.fragments);
  EXPECT_EQ(a.totals.exec.alu_instructions, b.totals.exec.alu_instructions);
  EXPECT_EQ(a.totals.exec.tex_fetches, b.totals.exec.tex_fetches);
  EXPECT_EQ(a.totals.exec.tex_fetch_bytes, b.totals.exec.tex_fetch_bytes);
  EXPECT_EQ(a.totals.cache.accesses, b.totals.cache.accesses);
  EXPECT_EQ(a.totals.cache.hits, b.totals.cache.hits);
  EXPECT_EQ(a.totals.cache.misses, b.totals.cache.misses);
  EXPECT_EQ(a.totals.modeled_pass_seconds, b.totals.modeled_pass_seconds);
  EXPECT_EQ(a.modeled_seconds, b.modeled_seconds);
}

TEST(AmcGpu, InlineLogVariantIsBitIdentical) {
  const auto cube = random_cube(10, 10, 9, 3);
  const StructuringElement se = StructuringElement::square(1);
  AmcGpuOptions with_log = fast_options();
  AmcGpuOptions inline_log = fast_options();
  inline_log.precompute_log = false;
  const AmcGpuReport a = morphology_gpu(cube, se, with_log);
  const AmcGpuReport b = morphology_gpu(cube, se, inline_log);
  for (std::size_t i = 0; i < a.morph.mei.size(); ++i) {
    EXPECT_EQ(a.morph.mei[i], b.morph.mei[i]) << i;
    EXPECT_EQ(a.morph.db[i], b.morph.db[i]) << i;
  }
}

TEST(AmcGpu, UnfusedNeighborsMatchWithinAccumulationTolerance) {
  const auto cube = random_cube(10, 8, 8, 4);
  const StructuringElement se = StructuringElement::square(1);
  AmcGpuOptions fused = fast_options();
  AmcGpuOptions unfused = fast_options();
  unfused.fuse_neighbors = false;
  const AmcGpuReport a = morphology_gpu(cube, se, fused);
  const AmcGpuReport b = morphology_gpu(cube, se, unfused);
  // Different float accumulation order: close but not bitwise.
  for (std::size_t i = 0; i < a.morph.db.size(); ++i) {
    EXPECT_NEAR(b.morph.db[i], a.morph.db[i],
                1e-4f * std::max(1.f, a.morph.db[i]));
  }
}

TEST(AmcGpu, UnfusedUsesManyMorePasses) {
  const auto cube = random_cube(8, 8, 8, 5);
  const StructuringElement se = StructuringElement::square(1);
  AmcGpuOptions fused = fast_options();
  AmcGpuOptions unfused = fast_options();
  unfused.fuse_neighbors = false;
  const AmcGpuReport a = morphology_gpu(cube, se, fused);
  const AmcGpuReport b = morphology_gpu(cube, se, unfused);
  auto cumdist_passes = [](const AmcGpuReport& r) {
    for (const auto& [name, stats] : r.stages) {
      if (name == kStageCumulativeDistance) return stats.passes;
    }
    return std::uint64_t{0};
  };
  // Per band group: one fused pass vs one pass per SE neighbor (9), plus
  // the shared clear pass.
  EXPECT_EQ(cumdist_passes(a), 1u + 2u);       // clear + 2 groups
  EXPECT_EQ(cumdist_passes(b), 1u + 2u * 9u);  // clear + 2 groups x 9 neighbors
}

TEST(AmcGpu, ReportsAllSixStagesInPipelineOrder) {
  const auto cube = random_cube(8, 8, 8, 6);
  const AmcGpuReport report =
      morphology_gpu(cube, StructuringElement::square(1), fast_options());
  ASSERT_EQ(report.stages.size(), 6u);
  EXPECT_EQ(report.stages[0].first, kStageUpload);
  EXPECT_EQ(report.stages[1].first, kStageNormalization);
  EXPECT_EQ(report.stages[2].first, kStageCumulativeDistance);
  EXPECT_EQ(report.stages[3].first, kStageMaxMin);
  EXPECT_EQ(report.stages[4].first, kStageSid);
  EXPECT_EQ(report.stages[5].first, kStageDownload);
  for (const auto& [name, stats] : report.stages) {
    EXPECT_GT(stats.modeled_seconds, 0.0) << name;
  }
  EXPECT_GT(report.modeled_seconds, 0.0);
}

TEST(AmcGpu, PassCountMatchesPipelineStructure) {
  const auto cube = random_cube(8, 8, 16, 7);  // 4 band groups
  const AmcGpuReport report =
      morphology_gpu(cube, StructuringElement::square(1), fast_options());
  const int groups = 4;
  // normalization: clear + sum x groups + normalize x groups + log x groups
  std::uint64_t expected_norm = 1 + 3 * groups;
  // cumdist: clear + groups fused passes; minmax: 1; mei: clear + groups.
  std::uint64_t expected_total = expected_norm + (1 + groups) + 1 + (1 + groups);
  EXPECT_EQ(report.totals.passes, expected_total);
}

TEST(AmcGpu, VideoMemoryFullyReleasedAfterRun) {
  const auto cube = random_cube(12, 12, 8, 8);
  AmcGpuOptions opt = fast_options();
  const AmcGpuReport report =
      morphology_gpu(cube, StructuringElement::square(1), opt);
  (void)report;
  // The device is internal; memory hygiene is observable through a second
  // run with a budget that only fits if everything was released.
  AmcGpuOptions tight = fast_options();
  tight.profile.video_memory_bytes = 2 * 1024 * 1024;
  EXPECT_NO_THROW(morphology_gpu(cube, StructuringElement::square(1), tight));
}

TEST(AmcGpu, LargerSeWorksEndToEnd) {
  const auto cube = random_cube(14, 14, 8, 9);
  const StructuringElement se = StructuringElement::square(2);  // 5x5
  const MorphOutputs cpu = morphology_vectorized(cube, se);
  const AmcGpuReport gpu = morphology_gpu(cube, se, fast_options());
  for (std::size_t i = 0; i < cpu.mei.size(); ++i) {
    EXPECT_EQ(gpu.morph.mei[i], cpu.mei[i]) << i;
  }
}

TEST(AmcGpu, ChunkedLargerSeMatchesUnchunked) {
  const auto cube = random_cube(18, 18, 8, 10);
  const StructuringElement se = StructuringElement::square(2);
  AmcGpuOptions chunked = fast_options();
  chunked.chunk_texel_budget = 18 * 12;
  const AmcGpuReport a = morphology_gpu(cube, se, fast_options());
  const AmcGpuReport b = morphology_gpu(cube, se, chunked);
  EXPECT_GT(b.chunk_count, 1u);
  for (std::size_t i = 0; i < a.morph.mei.size(); ++i) {
    EXPECT_EQ(a.morph.mei[i], b.morph.mei[i]) << i;
  }
}

TEST(AmcGpu, TransferTotalsMatchStageTimes) {
  const auto cube = random_cube(8, 8, 8, 11);
  const AmcGpuReport report =
      morphology_gpu(cube, StructuringElement::square(1), fast_options());
  double upload = 0, download = 0;
  for (const auto& [name, stats] : report.stages) {
    if (name == kStageUpload) upload = stats.modeled_seconds;
    if (name == kStageDownload) download = stats.modeled_seconds;
  }
  EXPECT_DOUBLE_EQ(upload, report.totals.transfer.modeled_upload_seconds);
  EXPECT_DOUBLE_EQ(download, report.totals.transfer.modeled_download_seconds);
}


TEST(AmcGpu, IndexStreamMatchesOffsetDerivedIndices) {
  const auto cube = random_cube(12, 12, 8, 20);
  const StructuringElement se = StructuringElement::square(1);
  AmcGpuOptions opt = fast_options();
  opt.emit_index_stream = true;
  const AmcGpuReport report = morphology_gpu(cube, se, opt);
  ASSERT_EQ(report.index_stream.size(), cube.pixel_count());
  for (std::size_t i = 0; i < report.index_stream.size(); ++i) {
    EXPECT_EQ(report.index_stream[i].first, report.morph.erosion_index[i]) << i;
    EXPECT_EQ(report.index_stream[i].second, report.morph.dilation_index[i]) << i;
  }
}

TEST(AmcGpu, IndexStreamOffByDefault) {
  const auto cube = random_cube(8, 8, 8, 21);
  const AmcGpuReport report =
      morphology_gpu(cube, StructuringElement::square(1), fast_options());
  EXPECT_TRUE(report.index_stream.empty());
}

TEST(AmcGpu, ChunkCostsCoverEveryChunk) {
  const auto cube = random_cube(20, 20, 8, 22);
  AmcGpuOptions opt = fast_options();
  opt.chunk_texel_budget = 20 * 9;
  const AmcGpuReport report =
      morphology_gpu(cube, StructuringElement::square(1), opt);
  ASSERT_EQ(report.chunk_costs.size(), report.chunk_count);
  double total = 0;
  for (const auto& c : report.chunk_costs) {
    EXPECT_GT(c.upload_seconds, 0.0);
    EXPECT_GT(c.pass_seconds, 0.0);
    EXPECT_GT(c.download_seconds, 0.0);
    total += c.upload_seconds + c.pass_seconds + c.download_seconds;
  }
  EXPECT_NEAR(total, report.modeled_seconds, 1e-12);
}

TEST(AmcGpu, OverlappedScheduleNeverSlower) {
  const auto cube = random_cube(24, 24, 8, 23);
  AmcGpuOptions opt = fast_options();
  opt.chunk_texel_budget = 24 * 9;
  const AmcGpuReport report =
      morphology_gpu(cube, StructuringElement::square(1), opt);
  EXPECT_GT(report.chunk_count, 1u);
  const double overlapped = report.modeled_overlapped_seconds();
  EXPECT_LE(overlapped, report.modeled_seconds + 1e-12);
  // With several chunks the pipeline must actually help.
  EXPECT_LT(overlapped, report.modeled_seconds);
  // And it cannot beat the slowest stage's total.
  double upload = 0;
  for (const auto& c : report.chunk_costs) upload += c.upload_seconds;
  EXPECT_GE(overlapped, upload);
}

TEST(AmcGpu, SingleChunkOverlapEqualsSerial) {
  const auto cube = random_cube(10, 10, 8, 24);
  const AmcGpuReport report =
      morphology_gpu(cube, StructuringElement::square(1), fast_options());
  ASSERT_EQ(report.chunk_count, 1u);
  EXPECT_NEAR(report.modeled_overlapped_seconds(), report.modeled_seconds, 1e-12);
}


#if HS_TRACE_ENABLED
TEST(AmcGpu, TraceEmitsSixStageSpansOncePerChunk) {
  trace::reset();
  trace::set_enabled(true);
  const auto cube = random_cube(20, 16, 8, 40);
  AmcGpuOptions opt = fast_options();
  opt.chunk_texel_budget = 20 * 8;  // force several chunks
  const AmcGpuReport report =
      morphology_gpu(cube, StructuringElement::square(1), opt);
  trace::set_enabled(false);
  ASSERT_GT(report.chunk_count, 1u);

  std::map<std::string, std::size_t> stage_spans;
  std::size_t chunk_spans = 0, pipeline_spans = 0;
  for (const auto& e : trace::snapshot()) {
    EXPECT_GE(e.dur_ns, 0) << e.name;
    if (e.cat == "stage") ++stage_spans[e.name];
    if (e.cat == "chunk") ++chunk_spans;
    if (e.cat == "pipeline") ++pipeline_spans;
  }

  EXPECT_EQ(pipeline_spans, 1u);
  EXPECT_EQ(chunk_spans, report.chunk_count);
  const char* const kStages[] = {kStageUpload,  kStageNormalization,
                                 kStageCumulativeDistance, kStageMaxMin,
                                 kStageSid,     kStageDownload};
  ASSERT_EQ(stage_spans.size(), 6u);
  for (const char* stage : kStages) {
    EXPECT_EQ(stage_spans[stage], report.chunk_count)
        << "stage span count for " << stage;
  }
}
#endif  // HS_TRACE_ENABLED

TEST(AmcGpu, HalfPrecisionCloseToFp32AndCheaper) {
  const auto cube = random_cube(16, 16, 12, 30);
  const StructuringElement se = StructuringElement::square(1);
  const AmcGpuReport fp32 = morphology_gpu(cube, se, fast_options());
  AmcGpuOptions half = fast_options();
  half.half_precision = true;
  const AmcGpuReport fp16 = morphology_gpu(cube, se, half);

  // Halved stream texture traffic.
  EXPECT_LT(fp16.totals.transfer.upload_bytes,
            fp32.totals.transfer.upload_bytes);
  // Where fp16 keeps the same erosion/dilation selections, the MEI is
  // within quantization error; where a near-tie flips the selection, the
  // MEI legitimately changes (a different pixel pair is compared). Flips
  // must stay rare.
  std::size_t flips = 0;
  for (std::size_t i = 0; i < fp32.morph.mei.size(); ++i) {
    if (fp16.morph.erosion_index[i] != fp32.morph.erosion_index[i] ||
        fp16.morph.dilation_index[i] != fp32.morph.dilation_index[i]) {
      ++flips;
      continue;
    }
    EXPECT_NEAR(fp16.morph.mei[i], fp32.morph.mei[i],
                2e-2f * std::max(1.f, fp32.morph.mei[i]) + 2e-3f)
        << i;
  }
  EXPECT_LE(flips, fp32.morph.mei.size() / 20);
}

}  // namespace
}  // namespace hs::core
