#include "core/endmember.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace hs::core {
namespace {

TEST(Endmembers, PicksHighestScoresInOrder) {
  const std::vector<float> mei{0.1f, 0.9f, 0.3f, 0.7f};
  const auto sel = select_endmembers(mei, 4, 1, 2, 0);
  ASSERT_EQ(sel.pixels.size(), 2u);
  EXPECT_EQ(sel.pixels[0], 1u);
  EXPECT_EQ(sel.pixels[1], 3u);
}

TEST(Endmembers, TiesBreakByPixelIndex) {
  const std::vector<float> mei{0.5f, 0.5f, 0.5f, 0.5f};
  const auto sel = select_endmembers(mei, 2, 2, 3, 0);
  EXPECT_EQ(sel.pixels, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Endmembers, SeparationSkipsNeighbors) {
  // 4x4 grid, scores descending along the first row: without separation
  // the top-2 are adjacent; with separation 2 the second pick must jump.
  std::vector<float> mei(16, 0.f);
  mei[0] = 1.0f;   // (0, 0)
  mei[1] = 0.9f;   // (1, 0) -- within Chebyshev 2 of (0, 0)
  mei[10] = 0.8f;  // (2, 2)
  const auto unconstrained = select_endmembers(mei, 4, 4, 2, 0);
  EXPECT_EQ(unconstrained.pixels, (std::vector<std::size_t>{0, 1}));
  const auto separated = select_endmembers(mei, 4, 4, 2, 2);
  EXPECT_EQ(separated.pixels, (std::vector<std::size_t>{0, 10}));
}

TEST(Endmembers, ReturnsFewerWhenSeparationExhaustsCandidates) {
  std::vector<float> mei(9, 0.f);
  mei[4] = 1.0f;
  // Separation larger than the image: only one pick possible.
  const auto sel = select_endmembers(mei, 3, 3, 5, 10);
  EXPECT_EQ(sel.pixels.size(), 1u);
}

TEST(Endmembers, SeparationIsChebyshev) {
  std::vector<float> mei(25, 0.f);
  mei[0] = 1.0f;                 // (0, 0)
  mei[4 * 5 + 4] = 0.9f;         // (4, 4), Chebyshev distance 4
  mei[3] = 0.8f;                 // (3, 0), Chebyshev distance 3
  const auto sel = select_endmembers(mei, 5, 5, 2, 4);
  ASSERT_EQ(sel.pixels.size(), 2u);
  EXPECT_EQ(sel.pixels[0], 0u);
  EXPECT_EQ(sel.pixels[1], 24u);  // (3,0) rejected, (4,4) accepted
}

TEST(Endmembers, SelectionIsDeterministic) {
  std::vector<float> mei(100);
  for (std::size_t i = 0; i < 100; ++i) {
    mei[i] = static_cast<float>((i * 37) % 100) / 100.f;
  }
  const auto a = select_endmembers(mei, 10, 10, 8, 3);
  const auto b = select_endmembers(mei, 10, 10, 8, 3);
  EXPECT_EQ(a.pixels, b.pixels);
}

TEST(Endmembers, AllSelectedRespectSeparation) {
  std::vector<float> mei(400);
  for (std::size_t i = 0; i < 400; ++i) {
    mei[i] = static_cast<float>((i * 131) % 397) / 397.f;
  }
  const int separation = 4;
  const auto sel = select_endmembers(mei, 20, 20, 12, separation);
  for (std::size_t i = 0; i < sel.pixels.size(); ++i) {
    for (std::size_t j = i + 1; j < sel.pixels.size(); ++j) {
      const int xi = static_cast<int>(sel.pixels[i] % 20);
      const int yi = static_cast<int>(sel.pixels[i] / 20);
      const int xj = static_cast<int>(sel.pixels[j] % 20);
      const int yj = static_cast<int>(sel.pixels[j] / 20);
      const int cheb = std::max(std::abs(xi - xj), std::abs(yi - yj));
      EXPECT_GE(cheb, separation);
    }
  }
}

}  // namespace
}  // namespace hs::core
