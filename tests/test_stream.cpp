#include "stream/stream.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "gpusim/assembler.hpp"
#include "stream/executor.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace hs::stream {
namespace {

using gpusim::Device;
using gpusim::DeviceProfile;
using gpusim::float4;
using gpusim::TextureFormat;
using gpusim::TextureHandle;

DeviceProfile test_profile() {
  DeviceProfile p = gpusim::geforce_7800_gtx();
  p.fragment_pipes = 2;
  return p;
}

TEST(BandStack, GroupCountRoundsUp) {
  EXPECT_EQ(band_group_count(1), 1);
  EXPECT_EQ(band_group_count(4), 1);
  EXPECT_EQ(band_group_count(5), 2);
  EXPECT_EQ(band_group_count(216), 54);
}

TEST(BandStack, PacksFourBandsPerTexel) {
  Device dev(test_profile());
  BandStack stack(dev, 2, 2, 6);
  EXPECT_EQ(stack.groups(), 2);
  stack.upload([](int x, int y, int b) {
    return static_cast<float>(100 * b + 10 * y + x);
  });
  // Band group 0 holds bands 0-3.
  const float4 t0 = dev.texture(stack.group(0)).load(1, 0);
  EXPECT_EQ(t0, float4(1, 101, 201, 301));
  // Band group 1 holds bands 4-5 and zero padding.
  const float4 t1 = dev.texture(stack.group(1)).load(0, 1);
  EXPECT_EQ(t1, float4(410, 510, 0, 0));
}

TEST(BandStack, ReleasesVideoMemoryOnDestruction) {
  Device dev(test_profile());
  {
    BandStack stack(dev, 8, 8, 16);
    EXPECT_EQ(dev.video_memory_used(), 4u * 8 * 8 * 16);
  }
  EXPECT_EQ(dev.video_memory_used(), 0u);
}

TEST(BandStack, MoveTransfersOwnership) {
  Device dev(test_profile());
  BandStack a(dev, 4, 4, 8);
  const std::uint64_t used = dev.video_memory_used();
  BandStack b(std::move(a));
  EXPECT_EQ(dev.video_memory_used(), used);
  EXPECT_EQ(b.groups(), 2);
}

TEST(BandStack, UploadCountsBusTransfersPerGroup) {
  Device dev(test_profile());
  BandStack stack(dev, 4, 4, 12);
  stack.upload([](int, int, int) { return 1.0f; });
  EXPECT_EQ(dev.totals().transfer.uploads, 3u);
}

TEST(PingPong, SwapAlternatesRoles) {
  Device dev(test_profile());
  PingPong pp(dev, 4, 4, TextureFormat::R32F);
  const TextureHandle f = pp.front();
  const TextureHandle b = pp.back();
  EXPECT_NE(f, b);
  pp.swap();
  EXPECT_EQ(pp.front(), b);
  EXPECT_EQ(pp.back(), f);
}

TEST(StreamExecutor, AggregatesByStage) {
  Device dev(test_profile());
  StreamExecutor exec(dev);
  const TextureHandle out = dev.create_texture(8, 8, TextureFormat::R32F);
  const auto clear =
      gpusim::assemble_or_die("clear", "!!HSFP1.0\nMOV result.color, {0.0};\nEND\n");
  const TextureHandle outs[1] = {out};
  exec.run("stage_a", clear, {}, {}, outs);
  exec.run("stage_a", clear, {}, {}, outs);
  exec.run("stage_b", clear, {}, {}, outs);

  ASSERT_EQ(exec.stages().size(), 2u);
  EXPECT_EQ(exec.stages().at("stage_a").passes, 2u);
  EXPECT_EQ(exec.stages().at("stage_a").fragments, 128u);
  EXPECT_EQ(exec.stages().at("stage_b").passes, 1u);
  EXPECT_GT(exec.stages().at("stage_a").modeled_seconds, 0.0);
}

TEST(StreamExecutor, StageOrderIsFirstUse) {
  Device dev(test_profile());
  StreamExecutor exec(dev);
  exec.add_stage_time("zz_first", 0.1);
  exec.add_stage_time("aa_second", 0.2);
  exec.add_stage_time("zz_first", 0.3);
  ASSERT_EQ(exec.stage_order().size(), 2u);
  EXPECT_EQ(exec.stage_order()[0], "zz_first");
  EXPECT_EQ(exec.stage_order()[1], "aa_second");
  EXPECT_DOUBLE_EQ(exec.stages().at("zz_first").modeled_seconds, 0.4);
}

TEST(StreamExecutor, ResetClearsEverything) {
  Device dev(test_profile());
  StreamExecutor exec(dev);
  exec.add_stage_time("s", 1.0);
  exec.reset();
  EXPECT_TRUE(exec.stages().empty());
  EXPECT_TRUE(exec.stage_order().empty());
}

// Reads the process-global trace counter registry, which the HS_TRACE=OFF
// configuration compiles down to inert stubs.
#if HS_TRACE_ENABLED

TEST(StreamExecutor, ResetRetractsOnlyOwnPassesFromGlobalCounter) {
  // Two executors share the process-global stream.executor.passes counter.
  // Resetting one must subtract only its own contribution, never another
  // executor's (reset() used to zero the counter outright).
  trace::Counter& passes = trace::counter("stream.executor.passes");
  const auto clear =
      gpusim::assemble_or_die("clear", "!!HSFP1.0\nMOV result.color, {0.0};\nEND\n");

  Device dev_a(test_profile());
  Device dev_b(test_profile());
  StreamExecutor exec_a(dev_a);
  StreamExecutor exec_b(dev_b);
  const TextureHandle out_a = dev_a.create_texture(4, 4, TextureFormat::R32F);
  const TextureHandle out_b = dev_b.create_texture(4, 4, TextureFormat::R32F);
  const TextureHandle outs_a[1] = {out_a};
  const TextureHandle outs_b[1] = {out_b};

  const std::int64_t start = passes.value();
  exec_a.run("s", clear, {}, {}, outs_a);
  exec_a.run("s", clear, {}, {}, outs_a);
  exec_b.run("s", clear, {}, {}, outs_b);
  EXPECT_EQ(passes.value() - start, 3);

  exec_a.reset();
  EXPECT_EQ(passes.value() - start, 1) << "B's pass must survive A's reset";
  exec_b.reset();
  EXPECT_EQ(passes.value() - start, 0);
  // A second reset retracts nothing further.
  exec_a.reset();
  EXPECT_EQ(passes.value() - start, 0);
}

#endif  // HS_TRACE_ENABLED

TEST(StreamExecutor, ConcurrentExecutorsDoNotCrossContaminate) {
  // One executor per thread, each hammering run() and add_stage_time()
  // with interleaved reset(): per-executor aggregates and the shared
  // counter must both come out exact.
  const auto clear =
      gpusim::assemble_or_die("clear", "!!HSFP1.0\nMOV result.color, {0.0};\nEND\n");
  trace::Counter& passes = trace::counter("stream.executor.passes");
  const std::int64_t start = passes.value();

  constexpr std::size_t kThreads = 4;
  constexpr int kRounds = 8;
  constexpr int kPassesPerRound = 5;
  util::ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](std::size_t t) {
    Device dev(test_profile());
    StreamExecutor exec(dev);
    const TextureHandle out = dev.create_texture(4, 4, TextureFormat::R32F);
    const TextureHandle outs[1] = {out};
    const std::string stage = "stage_" + std::to_string(t);
    for (int round = 0; round < kRounds; ++round) {
      exec.reset();
      for (int i = 0; i < kPassesPerRound; ++i) {
        exec.run(stage, clear, {}, {}, outs);
        exec.add_stage_time(stage, 0.25);
      }
      // Snapshot taken between this thread's own calls: exact values.
      ASSERT_EQ(exec.stages().at(stage).passes,
                static_cast<std::uint64_t>(kPassesPerRound));
      ASSERT_EQ(exec.stage_order().size(), 1u);
    }
    exec.reset();
  });

  // Every executor retracted everything it contributed.
  EXPECT_EQ(passes.value() - start, 0);
}

}  // namespace
}  // namespace hs::stream
