# ctest smoke stage for the telemetry spine: a fault-injected hsi-served
# run must produce per-job timelines, a registry snapshot, and a
# flight-recorder dump for the failed job (hsi-served strict-validates
# each document itself), and hsi-top must render the snapshot.
file(MAKE_DIRECTORY ${WORKDIR})
execute_process(
  COMMAND ${SERVED} --requests ${REQUESTS} --workers 2 --max-bytes 32000000
          --fault unmix --retry-backoff-ms 1
          --timelines ${WORKDIR}/timelines
          --snapshot ${WORKDIR}/snapshot.json --snapshot-period 0.02
          --flight-dir ${WORKDIR}/flight
          --report ${WORKDIR}/report.json
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hsi-served telemetry smoke failed (rc=${rc}):\n${out}\n${err}")
endif()
# The faulted job (name contains "unmix") exhausts its retries -> Failed
# -> exactly this flight dump must exist; hsi-served already validated it.
file(GLOB flight_dumps ${WORKDIR}/flight/flight_job*.json)
if(flight_dumps STREQUAL "")
  message(FATAL_ERROR "no flight dump produced for the faulted job:\n${out}")
endif()
file(GLOB timelines ${WORKDIR}/timelines/timeline_job*.json)
list(LENGTH timelines timeline_count)
if(timeline_count LESS 6)
  message(FATAL_ERROR "expected a timeline per job, got ${timeline_count}")
endif()
if(NOT EXISTS ${WORKDIR}/snapshot.json)
  message(FATAL_ERROR "snapshot.json was not exported")
endif()
execute_process(
  COMMAND ${TOP} ${WORKDIR}/snapshot.json
  RESULT_VARIABLE top_rc
  OUTPUT_VARIABLE top_out
  ERROR_VARIABLE top_err)
if(NOT top_rc EQUAL 0)
  message(FATAL_ERROR "hsi-top failed (rc=${top_rc}):\n${top_out}\n${top_err}")
endif()
if(NOT top_out MATCHES "export #")
  message(FATAL_ERROR "hsi-top output missing header:\n${top_out}")
endif()
