// Load-generating TCP client for the hs::net front door (`hsi-loadgen`).
//
// Drives `hsi-served --listen` (or any hs.net.v1 listener) with N
// concurrent persistent connections, each cycling through the request
// lines of a JSON-lines file. Two arrival disciplines:
//   * closed (default): each client keeps a fixed window of requests in
//     flight and sends the next one as a terminal response arrives --
//     throughput self-limits to what the server sustains;
//   * open: each client sends on a fixed schedule (--rate req/s per
//     client) whether or not responses have arrived -- overload stays
//     overloaded, which is what exercises 429-style shedding. --seed N
//     (N > 0) replaces the fixed ticks with a Poisson process: each
//     client precomputes exponential inter-arrivals (mean 1/rate) from a
//     deterministic per-client stream, so bursty-arrival runs replay
//     bit-identically from one seed.
//
// Every request is tagged with a client-side "id" (its send index on that
// connection); responses are matched back by the echoed id, so
// out-of-order completion across a window is measured correctly. The tool
// reports over-the-wire latency percentiles (send -> terminal frame),
// per-state counts, and 429 reject/retry-after statistics.
//
// --expect-report report.json cross-checks witnesses: every Done response
// name's output_hash must equal the hash the hsi-served file-mode report
// recorded for that name -- the bit-identical-across-front-doors
// guarantee, checked over a real socket.
//
// Exit status: 0 when every sent request got exactly one terminal
// response (429 rejects count as responses; silent drops do not) and the
// witness check, when requested, passed; 1 on usage/connect errors;
// 2 on protocol violations, missing responses, or witness mismatch.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <cmath>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "trace/json_check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace hs;
using Clock = std::chrono::steady_clock;

struct ClientStats {
  std::vector<double> latencies_ms;  ///< terminal responses, any state
  std::uint64_t sent = 0;
  std::uint64_t done = 0;
  std::uint64_t rejected = 0;
  std::uint64_t other_terminal = 0;  ///< TimedOut / Failed / Cancelled
  std::uint64_t cached = 0;
  std::uint64_t progress = 0;
  std::uint64_t protocol_errors = 0;
  double retry_after_sum_ms = 0;
  std::map<std::string, std::set<std::string>> hashes_by_name;  ///< Done only
  std::string fatal;  ///< first unrecoverable client error
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Tags a request line with the client-side id: {"x":1} -> {"id":7,"x":1}.
/// Request lines are JSON objects by schema, so splicing after '{' is safe.
std::string tag_request(const std::string& line, std::uint64_t id) {
  const auto brace = line.find('{');
  if (brace == std::string::npos) return line;
  std::string out = line;
  const bool empty_object = line.find('}', brace) == brace + 1;
  out.insert(brace + 1,
             "\"id\":" + std::to_string(id) + (empty_object ? "" : ","));
  return out;
}

struct Frame {
  net::Response response;
  double latency_ms = 0;
};

/// One client connection's whole run. `mode_open` paces sends by
/// `interval_s` ticks, or by `schedule` (cumulative arrival offsets in
/// seconds, one per request) when non-empty; closed mode keeps `window`
/// requests in flight.
void run_client(const std::string& host, int port,
                const std::vector<std::string>& lines, std::uint64_t count,
                bool mode_open, double interval_s,
                const std::vector<double>& schedule, std::uint64_t window,
                double timeout_s, ClientStats* stats) {
  net::Client client;
  std::string error;
  if (!client.connect(host, port, &error)) {
    stats->fatal = error;
    return;
  }
  // The server greets with a hello frame; anything else is a violation.
  const auto hello = client.read_frame(timeout_s, &error);
  if (!hello) {
    stats->fatal = "no hello frame: " + error;
    return;
  }
  if (const auto r = net::parse_response_frame(*hello);
      !r || r->type != "hello") {
    stats->fatal = "expected hello frame, got: " + *hello;
    return;
  }

  std::vector<Clock::time_point> send_tp(count);
  std::set<std::uint64_t> outstanding;
  std::uint64_t next = 0;
  const auto start = Clock::now();

  const auto send_one = [&]() -> bool {
    const std::string frame = tag_request(lines[next % lines.size()], next);
    send_tp[next] = Clock::now();
    if (!client.send_line(frame, &error)) {
      stats->fatal = error;
      return false;
    }
    outstanding.insert(next);
    ++next;
    ++stats->sent;
    return true;
  };

  const auto handle = [&](const std::string& text) -> bool {
    std::string perr;
    const auto r = net::parse_response_frame(text, &perr);
    if (!r) {
      ++stats->protocol_errors;
      stats->fatal = "unparseable response: " + perr;
      return false;
    }
    if (r->type == "progress") {
      ++stats->progress;
      return true;
    }
    if (r->type == "error") {
      ++stats->protocol_errors;
      if (r->fatal) {
        stats->fatal = "server error: " + r->error;
        return false;
      }
      return true;
    }
    if (!r->terminal()) return true;  // future informational frames
    if (!r->has_client_id || r->client_id >= count ||
        outstanding.erase(r->client_id) == 0) {
      ++stats->protocol_errors;
      stats->fatal = "terminal response for unknown id: " + text;
      return false;
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - send_tp[r->client_id])
                          .count();
    stats->latencies_ms.push_back(ms);
    if (r->type == "reject") {
      ++stats->rejected;
      stats->retry_after_sum_ms += r->retry_after_ms;
    } else if (r->state == "done") {
      ++stats->done;
      if (r->cached) ++stats->cached;
      stats->hashes_by_name[r->name].insert(r->output_hash);
    } else {
      ++stats->other_terminal;
    }
    return true;
  };

  while (stats->latencies_ms.size() < count && stats->fatal.empty()) {
    if (mode_open) {
      const double due_s = next < schedule.size()
                               ? schedule[next]
                               : interval_s * static_cast<double>(next);
      const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(due_s));
      if (next < count && Clock::now() >= due) {
        if (!send_one()) break;
        continue;
      }
      double wait_s = 0.05;
      if (next < count) {
        wait_s = std::min(
            wait_s,
            std::chrono::duration<double>(due - Clock::now()).count());
      }
      const auto frame =
          client.read_frame(std::max(wait_s, 1e-3), &error);
      if (frame) {
        if (!handle(*frame)) break;
      } else if (error != "timeout") {
        stats->fatal = error;
        break;
      }
      // Open-loop deadline: everything sent, nothing owed for timeout_s.
      if (next == count && !outstanding.empty()) {
        const double oldest = std::chrono::duration<double>(
                                  Clock::now() - send_tp[*outstanding.begin()])
                                  .count();
        if (oldest > timeout_s) {
          stats->fatal = "response timeout";
          break;
        }
      }
    } else {
      while (next < count && outstanding.size() < window) {
        if (!send_one()) break;
      }
      if (!stats->fatal.empty()) break;
      const auto frame = client.read_frame(timeout_s, &error);
      if (!frame) {
        stats->fatal = error;
        break;
      }
      if (!handle(*frame)) break;
    }
  }
  client.shutdown_writes();
  client.close();
}

/// name -> output_hash of Done jobs in an hsi-served file-mode report.
bool load_report_hashes(const std::string& path,
                        std::map<std::string, std::string>* out,
                        std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream os;
  os << in.rdbuf();
  const auto doc = trace::json::parse(os.str(), error);
  if (!doc) return false;
  using trace::json::Value;
  if (!doc->is(Value::Kind::Object)) {
    *error = "report is not an object";
    return false;
  }
  for (const auto& [key, value] : doc->object) {
    if (key != "jobs" || !value.is(Value::Kind::Array)) continue;
    for (const auto& job : value.array) {
      if (!job.is(Value::Kind::Object)) continue;
      std::string name, state, hash;
      for (const auto& [k, v] : job.object) {
        if (k == "name" && v.is(Value::Kind::String)) name = v.string;
        if (k == "state" && v.is(Value::Kind::String)) state = v.string;
        if (k == "output_hash" && v.is(Value::Kind::String)) hash = v.string;
      }
      if (state == "done" && !name.empty()) (*out)[name] = hash;
    }
  }
  if (out->empty()) {
    *error = "no Done jobs in " + path;
    return false;
  }
  return true;
}

int run(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("port", "server TCP port (required)");
  cli.add_flag("host", "server IPv4 address", "127.0.0.1");
  cli.add_flag("requests", "JSON-lines request file to replay (required)");
  cli.add_flag("clients", "concurrent client connections", "4");
  cli.add_flag("count", "requests per client (cycles the file)", "16");
  cli.add_flag("mode", "arrival discipline: closed | open", "closed");
  cli.add_flag("window", "closed mode: in-flight requests per client", "1");
  cli.add_flag("rate", "open mode: requests/second per client", "50");
  cli.add_flag("seed",
               "open mode: > 0 draws Poisson arrivals (mean --rate) from "
               "this seed instead of fixed ticks; reproducible per client",
               "0");
  cli.add_flag("timeout", "per-response timeout in seconds", "30");
  cli.add_flag("expect-report",
               "hsi-served file-mode report to witness-check against", "");
  cli.add_flag("summary", "write a one-object JSON summary here", "");
  if (!cli.parse(argc, argv)) return 1;
  if (!cli.positional().empty()) {
    std::cerr << "hsi-loadgen: unexpected argument '" << cli.positional()[0]
              << "'\n";
    return 1;
  }
  const std::string port_arg = cli.get("port", "");
  if (port_arg.empty()) {
    std::cerr << "hsi-loadgen: pass --port <port>\n";
    cli.print_usage("hsi-loadgen");
    return 1;
  }
  const auto port = net::parse_port(port_arg);
  if (!port || *port == 0) {
    std::cerr << "hsi-loadgen: --port wants a port in [1, 65535], got '"
              << port_arg << "'\n";
    return 1;
  }
  const std::string requests_path = cli.get("requests", "");
  if (requests_path.empty()) {
    std::cerr << "hsi-loadgen: pass --requests <file.jsonl>\n";
    return 1;
  }
  const std::string mode = cli.get("mode", "closed");
  if (mode != "closed" && mode != "open") {
    std::cerr << "hsi-loadgen: --mode must be 'closed' or 'open', got '"
              << mode << "'\n";
    return 1;
  }
  const std::int64_t clients = cli.get_int("clients", 4);
  const std::int64_t count = cli.get_int("count", 16);
  const std::int64_t window = cli.get_int("window", 1);
  const double rate = cli.get_double("rate", 50);
  const double timeout_s = cli.get_double("timeout", 30);
  if (clients < 1 || count < 1 || window < 1) {
    std::cerr << "hsi-loadgen: --clients, --count and --window must be >= 1\n";
    return 1;
  }
  if (rate <= 0 || timeout_s <= 0) {
    std::cerr << "hsi-loadgen: --rate and --timeout must be > 0\n";
    return 1;
  }
  const std::int64_t seed = cli.get_int("seed", 0);
  if (seed < 0) {
    std::cerr << "hsi-loadgen: --seed must be >= 0\n";
    return 1;
  }
  if (seed > 0 && mode != "open") {
    std::cerr << "hsi-loadgen: --seed paces open-loop arrivals; "
                 "pass --mode open\n";
    return 1;
  }

  std::vector<std::string> lines;
  {
    std::ifstream in(requests_path);
    if (!in) {
      std::cerr << "hsi-loadgen: cannot open " << requests_path << "\n";
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      lines.push_back(line);
    }
  }
  if (lines.empty()) {
    std::cerr << "hsi-loadgen: no request lines in " << requests_path << "\n";
    return 1;
  }

  std::map<std::string, std::string> expected_hashes;
  const std::string expect_report = cli.get("expect-report", "");
  if (!expect_report.empty()) {
    std::string error;
    if (!load_report_hashes(expect_report, &expected_hashes, &error)) {
      std::cerr << "hsi-loadgen: --expect-report: " << error << "\n";
      return 1;
    }
  }

  const std::string host = cli.get("host", "127.0.0.1");
  // --seed: one independent deterministic arrival schedule per client,
  // exponential inter-arrivals with mean 1/rate (a Poisson process), fully
  // precomputed so the send path costs the same as the fixed-tick one.
  std::vector<std::vector<double>> schedules(
      static_cast<std::size_t>(clients));
  if (seed > 0) {
    for (std::int64_t c = 0; c < clients; ++c) {
      util::SplitMix64 sm(static_cast<std::uint64_t>(seed));
      for (std::int64_t skip = 0; skip <= c; ++skip) sm.next();
      util::Xoshiro256 rng(sm.next());
      std::vector<double>& sched = schedules[static_cast<std::size_t>(c)];
      sched.reserve(static_cast<std::size_t>(count));
      double t = 0;
      for (std::int64_t i = 0; i < count; ++i) {
        t += -std::log(1.0 - rng.uniform()) / rate;
        sched.push_back(t);
      }
    }
  }
  std::vector<ClientStats> stats(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  util::Timer wall;
  for (std::int64_t c = 0; c < clients; ++c) {
    threads.emplace_back(run_client, host, *port, std::cref(lines),
                         static_cast<std::uint64_t>(count), mode == "open",
                         rate > 0 ? 1.0 / rate : 0,
                         std::cref(schedules[static_cast<std::size_t>(c)]),
                         static_cast<std::uint64_t>(window), timeout_s,
                         &stats[static_cast<std::size_t>(c)]);
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.seconds();

  ClientStats total;
  std::size_t failed_clients = 0;
  for (const ClientStats& s : stats) {
    total.sent += s.sent;
    total.done += s.done;
    total.rejected += s.rejected;
    total.other_terminal += s.other_terminal;
    total.cached += s.cached;
    total.progress += s.progress;
    total.protocol_errors += s.protocol_errors;
    total.retry_after_sum_ms += s.retry_after_sum_ms;
    total.latencies_ms.insert(total.latencies_ms.end(), s.latencies_ms.begin(),
                              s.latencies_ms.end());
    for (const auto& [name, hashes] : s.hashes_by_name) {
      total.hashes_by_name[name].insert(hashes.begin(), hashes.end());
    }
    if (!s.fatal.empty()) {
      ++failed_clients;
      std::cerr << "hsi-loadgen: client failed: " << s.fatal << "\n";
    }
  }

  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  const double p50 = percentile(total.latencies_ms, 50);
  const double p95 = percentile(total.latencies_ms, 95);
  const double p99 = percentile(total.latencies_ms, 99);
  const std::uint64_t responded = total.latencies_ms.size();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(clients) * static_cast<std::uint64_t>(count);

  util::Table table({"Metric", "Value"});
  table.add_row({"clients", std::to_string(clients)});
  table.add_row({"mode", mode});
  table.add_row({"sent", std::to_string(total.sent)});
  table.add_row({"terminal responses", std::to_string(responded)});
  table.add_row({"done", std::to_string(total.done)});
  table.add_row({"cached", std::to_string(total.cached)});
  table.add_row({"rejected (429)", std::to_string(total.rejected)});
  table.add_row({"other terminal", std::to_string(total.other_terminal)});
  table.add_row({"progress frames", std::to_string(total.progress)});
  table.add_row({"wire p50 ms", std::to_string(p50)});
  table.add_row({"wire p95 ms", std::to_string(p95)});
  table.add_row({"wire p99 ms", std::to_string(p99)});
  if (total.rejected > 0) {
    table.add_row({"mean retry-after ms",
                   std::to_string(total.retry_after_sum_ms /
                                  static_cast<double>(total.rejected))});
  }
  table.print(std::cout, "hsi-loadgen: " + std::to_string(responded) + "/" +
                             std::to_string(expected) + " responses in " +
                             util::format_duration(wall_s));

  bool ok = failed_clients == 0 && total.protocol_errors == 0 &&
            responded == total.sent && total.sent == expected;
  if (responded != total.sent) {
    std::cerr << "hsi-loadgen: " << (total.sent - responded)
              << " requests got no terminal response (silent drop)\n";
  }

  // Witness check: one hash per name on the wire, equal to the report's.
  for (const auto& [name, hashes] : total.hashes_by_name) {
    if (hashes.size() > 1) {
      std::cerr << "hsi-loadgen: witness drift: '" << name << "' has "
                << hashes.size() << " distinct hashes over the wire\n";
      ok = false;
    }
  }
  if (!expected_hashes.empty()) {
    std::size_t checked = 0;
    for (const auto& [name, hashes] : total.hashes_by_name) {
      const auto it = expected_hashes.find(name);
      if (it == expected_hashes.end()) {
        std::cerr << "hsi-loadgen: witness: '" << name
                  << "' missing from " << expect_report << "\n";
        ok = false;
      } else if (hashes.count(it->second) == 0) {
        std::cerr << "hsi-loadgen: witness mismatch for '" << name
                  << "': wire " << *hashes.begin() << " vs report "
                  << it->second << "\n";
        ok = false;
      } else {
        ++checked;
      }
    }
    if (checked == 0) {
      std::cerr << "hsi-loadgen: witness: no Done responses to check\n";
      ok = false;
    } else {
      std::cout << "witness: " << checked << " job names match "
                << expect_report << "\n";
    }
  }

  const std::string summary_path = cli.get("summary", "");
  if (!summary_path.empty()) {
    std::ofstream out(summary_path);
    out << "{\"name\": \"hsi-loadgen\", \"mode\": \"" << mode
        << "\", \"clients\": " << clients << ", \"sent\": " << total.sent
        << ", \"responded\": " << responded << ", \"done\": " << total.done
        << ", \"rejected\": " << total.rejected
        << ", \"p50_ms\": " << p50 << ", \"p95_ms\": " << p95
        << ", \"p99_ms\": " << p99 << ", \"wall_s\": " << wall_s << "}\n";
    if (!out.good()) {
      std::cerr << "hsi-loadgen: cannot write " << summary_path << "\n";
      ok = false;
    }
  }
  return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "hsi-loadgen: " << e.what() << "\n";
    return 1;
  }
}
