// Batch job-serving CLI (`hsi-served`).
//
// Two mutually exclusive front doors over the same hs::serve::Server:
//
// File mode (--requests batch.jsonl) reads a JSON-lines request file
// (serve/request.hpp documents the schema; examples/serve_requests.jsonl
// is a ready-to-run sample), submits every request in file order, and
// drains.
//
// Listen mode (--listen <port>) opens the hs::net TCP front door
// (net/protocol.hpp documents the wire frames): persistent connections
// submit the same request schema as newline-delimited JSON and results
// stream back as they complete. Port 0 binds an ephemeral port;
// --port-file writes the bound port (atomically: tmp + rename) for
// scripts to discover. SIGTERM and SIGINT request a graceful drain: stop
// accepting, finish in-flight jobs, flush every response, then report as
// below. hsi-loadgen is the matching load-generating client.
//
// Listen mode scales out with --shards N: instead of an in-process
// serve::Server, the front door routes into an hs::shard::Router that
// fork/execs N copies of this binary in --worker mode (each a full
// single-process serving stack on a loopback socket) and consistent-hashes
// jobs across them by fingerprint (shard/router.hpp). --worker is the
// quiet flip side: a plain listen-mode server that skips the report
// tables (its stdout is the router's per-shard log) and drops a compact
// stats JSON (--stats-file) at clean exit for the bench to read.
//
// Either mode reports:
//   * a per-job result table on stdout (state, attempts, queue/run time,
//     output hash);
//   * --report out.json: a machine-readable per-job report;
//   * --metrics out.json: the hs::trace metrics registry (queue/in-flight
//     gauges, per-state serve.jobs.* counters, serve.job span aggregates)
//     in the shared BENCH_*.json schema;
//   * --trace out.json: the Chrome trace (serve.job spans nesting the
//     pipeline -> chunk -> stage spans of the jobs they served);
//   * --timelines dir/: one "hs.timeline.v1" document per job
//     (timeline_job<id>.json) -- the job's full life as events;
//   * --snapshot out.json: a periodic "hs.snapshot.v1" registry export
//     (atomic tmp+rename; --snapshot-period sets the interval) that
//     hsi-top renders live;
//   * --flight-dir dir/: flight-recorder dumps (flight_job<id>.json) for
//     every job that ends Failed or TimedOut;
//   * --fault substr[:n] (file mode): fail the first n attempts (default:
//     all) of jobs whose name contains substr with an injected
//     TransientFault -- the debugging story end to end: retries, backoff,
//     and a flight dump on exhaustion.
//
// Every JSON output is re-read and validated with the bundled strict
// parser before exit; a zero exit status certifies that every job reached
// a terminal state and every emitted document is well-formed.
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "net/net_server.hpp"
#include "net/protocol.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/timeline.hpp"
#include "shard/router.hpp"
#include "trace/histogram.hpp"
#include "trace/json_check.hpp"
#include "trace/snapshot.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/fileio.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace hs;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool write_report(const std::string& path,
                  const std::vector<serve::JobResult>& results) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"name\": \"hsi-served\",\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const serve::JobResult& r = results[i];
    out << "    {\"id\": " << r.id << ", \"name\": \"" << json_escape(r.name)
        << "\", \"kind\": \"" << to_string(r.kind) << "\", \"priority\": \""
        << to_string(r.priority) << "\", \"state\": \"" << to_string(r.state)
        << "\", \"detail\": \"" << json_escape(r.detail)
        << "\", \"attempts\": " << r.attempts
        << ", \"cached\": " << (r.cached ? "true" : "false")
        << ", \"queue_ms\": " << r.queue_seconds * 1e3
        << ", \"exec_ms\": " << r.exec_seconds * 1e3
        << ", \"run_ms\": " << r.run_seconds * 1e3
        << ", \"total_ms\": " << (r.queue_seconds + r.run_seconds) * 1e3
        << ", \"modeled_ms\": " << r.modeled_seconds * 1e3
        << ", \"chunks\": " << r.chunk_count
        << ", \"output_hash\": \"" << std::hex << r.output_hash << std::dec
        << "\"}";
    out << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.good();
}

/// The compact stats drop a shard router's bench reads back per worker:
/// job/done/cached counts plus the result-cache counters, written
/// atomically so a reader never sees a partial file.
bool write_stats_file(const std::string& path, serve::Server& server,
                      const std::vector<serve::JobResult>& results) {
  std::size_t done = 0, cached = 0;
  for (const serve::JobResult& r : results) {
    if (r.state == serve::JobState::Done) {
      ++done;
      if (r.cached) ++cached;
    }
  }
  const cache::CacheStats rs = server.result_cache_stats();
  std::ostringstream os;
  os << "{\"name\": \"hsi-served\", \"jobs\": " << results.size()
     << ", \"done\": " << done << ", \"cached\": " << cached
     << ", \"cache_hits\": " << rs.hits
     << ", \"cache_misses\": " << rs.misses
     << ", \"cache_evictions\": " << rs.evictions
     << ", \"cache_bytes\": " << rs.bytes << "}\n";
  return util::write_file_atomic(path, os.str());
}

bool validate_json_file(const std::string& path, const char* what) {
  std::string error;
  if (!trace::json::parse(slurp(path), &error)) {
    std::cerr << "hsi-served: " << what << " " << path
              << " failed validation: " << error << "\n";
    return false;
  }
  return true;
}

/// The SIGTERM/SIGINT drain hook: request_stop is async-signal-safe.
std::atomic<net::NetServer*> g_front_door{nullptr};

void on_drain_signal(int) {
  if (net::NetServer* front = g_front_door.load(std::memory_order_acquire)) {
    front->request_stop(/*drain=*/true);
  }
}

/// Everything after the serve: result table, cache/latency summaries,
/// witness-drift check, and every requested JSON export with strict
/// re-validation. Shared verbatim by file and listen mode.
int report_results(util::Cli& cli, serve::Server* server,
                   const std::vector<serve::JobResult>& results, double wall_s,
                   trace::SnapshotExporter* exporter, std::int64_t cache_mb,
                   const std::string& flight_dir,
                   const std::string& snapshot_path) {
  util::Table table({"Id", "Name", "Kind", "Prio", "State", "Attempts",
                     "Queue", "Run", "Hash / detail"});
  std::size_t done = 0, terminal = 0, cached = 0;
  // Witness stability: every Done job sharing a request name must report
  // one hash, whether it ran live or was served from the cache.
  std::map<std::string, std::set<std::uint64_t>> hashes_by_name;
  for (const serve::JobResult& r : results) {
    if (serve::is_terminal(r.state)) ++terminal;
    if (r.state == serve::JobState::Done) {
      ++done;
      if (r.cached) ++cached;
      hashes_by_name[r.name].insert(r.output_hash);
    }
    std::ostringstream tail;
    if (r.state == serve::JobState::Done) {
      tail << std::hex << r.output_hash;
      if (r.cached) tail << " (cached)";
    } else {
      tail << r.detail;
    }
    table.add_row({std::to_string(r.id), r.name, to_string(r.kind),
                   to_string(r.priority), to_string(r.state),
                   std::to_string(r.attempts),
                   util::format_duration(r.queue_seconds),
                   util::format_duration(r.run_seconds), tail.str()});
  }
  table.print(std::cout, "hsi-served: " + std::to_string(results.size()) +
                             " jobs in " + util::format_duration(wall_s));
  std::cout << "\n" << done << "/" << results.size() << " done, " << terminal
            << "/" << results.size() << " terminal\n";
  if (server != nullptr && cache_mb > 0) {
    const cache::CacheStats rs = server->result_cache_stats();
    const cache::CacheStats ss = server->scene_cache_stats();
    const gpusim::SharedProgramStore::Stats ps = server->program_store_stats();
    std::cout << "cache: results " << rs.hits << " hits / " << rs.misses
              << " misses / " << rs.evictions << " evictions (" << rs.bytes
              << " bytes), scenes " << ss.hits << " hits / " << ss.misses
              << " misses, programs " << ps.hits << " hits / " << ps.misses
              << " misses\n";
    std::cout << cached << "/" << done << " done jobs served from cache\n";
  }

  // Final latency summary from the trace histograms (empty in an
  // HS_TRACE=OFF build; the section is skipped rather than printed empty).
  if (const auto hists = trace::histograms_snapshot(); !hists.empty()) {
    util::Table hist_table(
        {"Histogram", "Count", "p50", "p90", "p99", "Max"});
    for (const auto& [hname, snap] : hists) {
      hist_table.add_row({hname, std::to_string(snap.count),
                          util::format_duration(snap.p50()),
                          util::format_duration(snap.p90()),
                          util::format_duration(snap.p99()),
                          util::format_duration(snap.max)});
    }
    std::cout << "\n";
    hist_table.print(std::cout, "latency summary");
  }

  bool ok = terminal == results.size();
  if (!ok) std::cerr << "hsi-served: some jobs never reached a terminal state\n";
  for (const auto& [name, hashes] : hashes_by_name) {
    if (hashes.size() > 1) {
      std::cerr << "hsi-served: witness drift: job name '" << name << "' has "
                << hashes.size() << " distinct output hashes\n";
      ok = false;
    }
  }

  const std::string report_path = cli.get("report", "");
  if (!report_path.empty()) {
    if (!write_report(report_path, results)) {
      std::cerr << "hsi-served: cannot write " << report_path << "\n";
      ok = false;
    } else if (!validate_json_file(report_path, "report")) {
      ok = false;
    } else {
      std::cout << "report: " << report_path << "\n";
    }
  }
  const std::string metrics_path = cli.get("metrics", "");
  if (!metrics_path.empty()) {
    std::string error;
    if (!trace::write_metrics_json_file(metrics_path, "hsi-served")) {
      std::cerr << "hsi-served: cannot write " << metrics_path << "\n";
      ok = false;
    } else if (!trace::json::validate_metrics_json(slurp(metrics_path),
                                                   &error)) {
      std::cerr << "hsi-served: metrics " << metrics_path
                << " failed validation: " << error << "\n";
      ok = false;
    } else {
      std::cout << "metrics: " << metrics_path << "\n";
    }
  }
  const std::string trace_path = cli.get("trace", "");
  if (!trace_path.empty()) {
    std::string error;
    if (!trace::write_chrome_trace_file(trace_path)) {
      std::cerr << "hsi-served: cannot write " << trace_path << "\n";
      ok = false;
    } else if (!trace::json::validate_chrome_trace(slurp(trace_path),
                                                   &error)) {
      std::cerr << "hsi-served: trace " << trace_path
                << " failed validation: " << error << "\n";
      ok = false;
    } else {
      std::cout << "trace: " << trace_path << "\n";
    }
  }
  const std::string timelines_dir = cli.get("timelines", "");
  if (!timelines_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(timelines_dir, ec);
    std::size_t written = 0;
    for (const serve::JobResult& r : results) {
      const std::string path =
          timelines_dir + "/" + serve::timeline_filename(r);
      std::string error;
      if (!serve::write_timeline_json_file(path, r)) {
        std::cerr << "hsi-served: cannot write " << path << "\n";
        ok = false;
      } else if (!trace::json::validate_timeline_json(slurp(path), &error)) {
        std::cerr << "hsi-served: timeline " << path
                  << " failed validation: " << error << "\n";
        ok = false;
      } else {
        ++written;
      }
    }
    std::cout << "timelines: " << written << " files in " << timelines_dir
              << "\n";
  }
  if (!snapshot_path.empty()) {
    std::string error;
    if (!trace::json::validate_snapshot_json(slurp(snapshot_path), &error)) {
      std::cerr << "hsi-served: snapshot " << snapshot_path
                << " failed validation: " << error << "\n";
      ok = false;
    } else {
      std::cout << "snapshot: " << snapshot_path << " ("
                << (exporter ? exporter->exports() : 0) << " exports)\n";
    }
  }
  if (!flight_dir.empty()) {
    std::size_t dumps = 0;
    for (const serve::JobResult& r : results) {
      const std::string path =
          flight_dir + "/flight_job" + std::to_string(r.id) + ".json";
      if (!std::filesystem::exists(path)) continue;
      std::string error;
      if (!trace::json::validate_flight_json(slurp(path), &error)) {
        std::cerr << "hsi-served: flight dump " << path
                  << " failed validation: " << error << "\n";
        ok = false;
      } else {
        ++dumps;
      }
    }
    std::cout << "flight dumps: " << dumps << " in " << flight_dir << "\n";
  }
  return ok ? 0 : 2;
}

int run(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("requests", "JSON-lines request file (see serve/request.hpp)");
  cli.add_flag("listen",
               "serve requests over TCP on this port instead of a file "
               "(0 = ephemeral; see --port-file)");
  cli.add_flag("port-file",
               "listen mode: write the bound port to this file", "");
  cli.add_flag("max-conns", "listen mode: max concurrent connections", "256");
  cli.add_flag("max-inflight",
               "listen mode: per-connection in-flight job cap "
               "(flow control pauses reads beyond it)",
               "32");
  cli.add_flag("progress",
               "listen mode: stream per-chunk progress frames");
  cli.add_flag("shards",
               "listen mode: shard the serve across this many worker "
               "processes (0 = in-process)",
               "0");
  cli.add_flag("shard-dir",
               "shard mode: state directory for worker port files and logs",
               "");
  cli.add_flag("worker",
               "quiet worker mode under a shard router (listen mode; "
               "skips report tables)");
  cli.add_flag("stats-file",
               "write a compact serve-stats JSON (jobs/done/cached + "
               "cache counters) at exit",
               "");
  cli.add_flag("workers", "server worker threads", "1");
  cli.add_flag("queue-depth", "admission: max queued jobs", "64");
  cli.add_flag("max-seconds", "admission: cost-model seconds budget (0 = off)",
               "0");
  cli.add_flag("max-bytes", "admission: estimated bytes budget (0 = off)", "0");
  cli.add_flag("no-shed", "never shed low-priority jobs on saturation");
  cli.add_flag("cache-mb",
               "result/scene cache byte budget in MiB (0 disables)", "64");
  cli.add_flag("no-cache", "disable the result and scene caches");
  cli.add_flag("repeat", "submit the request batch this many times", "1");
  cli.add_flag("report", "per-job report JSON output path", "");
  cli.add_flag("metrics", "metrics JSON output path", "");
  cli.add_flag("trace", "Chrome trace-event JSON output path", "");
  cli.add_flag("timelines", "directory for per-job timeline JSON files", "");
  cli.add_flag("snapshot", "periodic registry snapshot JSON output path", "");
  cli.add_flag("snapshot-period", "snapshot export interval in seconds",
               "0.05");
  cli.add_flag("flight-dir",
               "directory for flight-recorder dumps on job failure", "");
  cli.add_flag("fault",
               "inject transient faults: substr[:n] fails the first n "
               "attempts (default all) of jobs whose name contains substr",
               "");
  cli.add_flag("retry-backoff-ms", "base retry backoff in milliseconds", "0");
  if (!cli.parse(argc, argv)) return 1;
  if (!cli.positional().empty()) {
    std::cerr << "hsi-served: unexpected argument '" << cli.positional()[0]
              << "'\n";
    return 1;
  }
  const std::string requests_path = cli.get("requests", "");
  const std::string listen_arg = cli.get("listen", "");
  if (!requests_path.empty() && !listen_arg.empty()) {
    std::cerr << "hsi-served: --requests and --listen are mutually exclusive\n";
    return 1;
  }
  if (requests_path.empty() && listen_arg.empty()) {
    std::cerr << "hsi-served: pass --requests <file.jsonl> or --listen <port>\n";
    cli.print_usage("hsi-served");
    return 1;
  }
  const bool listen_mode = !listen_arg.empty();
  std::optional<int> listen_port;
  if (listen_mode) {
    listen_port = net::parse_port(listen_arg);
    if (!listen_port) {
      std::cerr << "hsi-served: --listen wants a port in [0, 65535], got '"
                << listen_arg << "'\n";
      return 1;
    }
  }
  const std::int64_t workers = cli.get_int("workers", 1);
  const std::int64_t depth = cli.get_int("queue-depth", 64);
  if (workers < 1 || depth < 1) {
    std::cerr << "hsi-served: --workers and --queue-depth must be >= 1\n";
    return 1;
  }
  const std::int64_t repeat = cli.get_int("repeat", 1);
  if (repeat < 1) {
    std::cerr << "hsi-served: --repeat must be >= 1\n";
    return 1;
  }
  const std::string fault_arg = cli.get("fault", "");
  if (listen_mode && (repeat != 1 || !fault_arg.empty())) {
    std::cerr << "hsi-served: --repeat and --fault are file-mode flags "
                 "(ids are not known up front in listen mode)\n";
    return 1;
  }
  const bool worker_mode = cli.get_bool("worker", false);
  const std::int64_t shards = cli.get_int("shards", 0);
  if (shards < 0) {
    std::cerr << "hsi-served: --shards must be >= 0\n";
    return 1;
  }
  if ((worker_mode || shards > 0) && !listen_mode) {
    std::cerr << "hsi-served: --worker and --shards require --listen\n";
    return 1;
  }
  if (worker_mode && shards > 0) {
    std::cerr << "hsi-served: --worker and --shards are mutually exclusive\n";
    return 1;
  }
  const std::string stats_file = cli.get("stats-file", "");
  if (shards > 0 && !cli.get("timelines", "").empty()) {
    std::cerr << "hsi-served: --timelines is a single-process flag (shard "
                 "workers own their job timelines)\n";
    return 1;
  }
  if (shards > 0 && !stats_file.empty()) {
    std::cerr << "hsi-served: --stats-file is per-process; shard workers "
                 "write their own into --shard-dir\n";
    return 1;
  }
  std::int64_t cache_mb = cli.get_int("cache-mb", 64);
  if (cache_mb < 0) {
    std::cerr << "hsi-served: --cache-mb must be >= 0\n";
    return 1;
  }
  if (cli.get_bool("no-cache", false)) cache_mb = 0;
  const double backoff_ms = cli.get_double("retry-backoff-ms", 0);
  if (backoff_ms < 0) {
    std::cerr << "hsi-served: --retry-backoff-ms must be >= 0\n";
    return 1;
  }
  const std::int64_t max_conns = cli.get_int("max-conns", 256);
  const std::int64_t max_inflight = cli.get_int("max-inflight", 32);
  if (listen_mode && (max_conns < 1 || max_inflight < 1)) {
    std::cerr << "hsi-served: --max-conns and --max-inflight must be >= 1\n";
    return 1;
  }

  trace::reset();
  trace::set_enabled(true);

  serve::RequestBatch batch;
  if (!listen_mode) {
    try {
      batch = serve::read_request_file(requests_path);
    } catch (const std::exception& e) {
      std::cerr << "hsi-served: " << e.what() << "\n";
      return 1;
    }
    for (const auto& err : batch.errors) {
      std::cerr << "hsi-served: " << err.second << "\n";  // pre-labeled path:line
    }
    if (batch.jobs.empty()) {
      std::cerr << "hsi-served: no valid requests in " << requests_path << "\n";
      return 1;
    }
  }

  serve::ServerOptions options;
  options.workers = static_cast<std::size_t>(workers);
  options.admission.max_queue_depth = static_cast<std::size_t>(depth);
  options.admission.max_estimated_seconds = cli.get_double("max-seconds", 0);
  options.admission.max_estimated_bytes =
      static_cast<std::uint64_t>(cli.get_int("max-bytes", 0));
  options.admission.shed_low_priority = !cli.get_bool("no-shed", false);
  options.keep_payloads = false;  // the CLI reports hashes, not payloads
  options.result_cache_bytes = static_cast<std::uint64_t>(cache_mb) << 20;
  options.scene_cache_bytes = static_cast<std::uint64_t>(cache_mb) << 20;
  options.retry_backoff_seconds = backoff_ms / 1e3;

  const std::string flight_dir = cli.get("flight-dir", "");
  if (!flight_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(flight_dir, ec);
    options.flight_dump_dir = flight_dir;
  }

  // --fault substr[:n]: ids are assigned in submission order by a single
  // submitter thread, so the faulted set is computable up front. Parsing
  // is strict (serve::parse_fault_spec): a malformed attempt count is a
  // usage error, not a silently different fault plan.
  if (!fault_arg.empty()) {
    std::string fault_error;
    const auto fault = serve::parse_fault_spec(fault_arg, &fault_error);
    if (!fault) {
      std::cerr << "hsi-served: " << fault_error << "\n";
      return 1;
    }
    auto fault_ids = std::make_shared<std::set<std::uint64_t>>();
    std::uint64_t next_id = 1;
    for (std::int64_t pass = 0; pass < repeat; ++pass) {
      for (const serve::JobSpec& spec : batch.jobs) {
        if (spec.name.find(fault->substr) != std::string::npos) {
          fault_ids->insert(next_id);
        }
        ++next_id;
      }
    }
    const int fault_attempts = fault->attempts;
    options.inject_fault = [fault_ids, fault_attempts](std::uint64_t id,
                                                       int attempt) {
      return attempt <= fault_attempts && fault_ids->count(id) > 0;
    };
  }

  // The snapshot exporter runs for the whole serve (started before the
  // server, stopped after shutdown so the final export sees the end state).
  std::unique_ptr<trace::SnapshotExporter> exporter;
  const std::string snapshot_path = cli.get("snapshot", "");
  if (!snapshot_path.empty()) {
    trace::SnapshotExporter::Options sopt;
    sopt.path = snapshot_path;
    sopt.period_seconds = cli.get_double("snapshot-period", 0.05);
    sopt.name = "hsi-served";
    exporter = std::make_unique<trace::SnapshotExporter>(sopt);
  }

  util::Timer wall;

  if (listen_mode) {
    // The backend behind the front door: an in-process serve::Server, or
    // in shard mode a Router fanning out over worker processes running
    // this same binary in --worker mode.
    std::unique_ptr<serve::Server> server;
    std::unique_ptr<shard::Router> router;
    serve::JobBackend* backend = nullptr;
    if (shards > 0) {
      shard::RouterOptions ropt;
      ropt.shards = static_cast<std::size_t>(shards);
      char exe[4096];
      const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
      if (n <= 0) {
        std::cerr << "hsi-served: cannot resolve own binary path for "
                     "--shards workers\n";
        return 1;
      }
      exe[n] = '\0';
      ropt.worker_cmd = exe;
      ropt.state_dir = cli.get("shard-dir", "");
      ropt.worker_threads = static_cast<std::size_t>(workers);
      ropt.worker_queue_depth = static_cast<std::size_t>(depth);
      ropt.worker_cache_mb = static_cast<std::uint64_t>(cache_mb);
      ropt.progress_events = cli.get_bool("progress", false);
      ropt.flight_dump_dir = flight_dir;
      router = std::make_unique<shard::Router>(ropt);
      try {
        router->start();
      } catch (const std::exception& e) {
        std::cerr << "hsi-served: " << e.what() << "\n";
        return 1;
      }
      std::cout << "hsi-served: " << router->alive_shards() << "/" << shards
                << " shards up (state: " << router->options().state_dir
                << ")\n";
      backend = router.get();
    } else {
      server = std::make_unique<serve::Server>(options);
      backend = server.get();
    }

    net::NetServerOptions nopt;
    nopt.port = *listen_port;
    nopt.max_connections = static_cast<std::size_t>(max_conns);
    nopt.max_inflight_per_conn = static_cast<std::size_t>(max_inflight);
    nopt.progress_events = cli.get_bool("progress", false);
    std::unique_ptr<net::NetServer> front;
    try {
      front = std::make_unique<net::NetServer>(*backend, nopt);
    } catch (const std::exception& e) {
      std::cerr << "hsi-served: " << e.what() << "\n";
      return 1;
    }
    const std::string port_file = cli.get("port-file", "");
    if (!port_file.empty()) {
      std::string error;
      if (!util::write_file_atomic(
              port_file, std::to_string(front->port()) + "\n", &error)) {
        std::cerr << "hsi-served: cannot write " << port_file << ": " << error
                  << "\n";
        return 1;
      }
    }
    g_front_door.store(front.get(), std::memory_order_release);
    struct sigaction sa{};
    sa.sa_handler = on_drain_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    std::cout << "hsi-served: listening on 127.0.0.1:" << front->port()
              << " (SIGTERM drains)" << std::endl;

    front->run();  // until a signal (or in-process request_stop)

    g_front_door.store(nullptr, std::memory_order_release);
    if (router) {
      router->shutdown(/*drain=*/true);
    } else {
      server->shutdown(/*drain=*/true);
    }
    const double wall_s = wall.seconds();
    if (exporter) exporter->stop();
    const net::NetServer::Stats ns = front->stats();
    std::cout << "net: " << ns.accepted << " connections, " << ns.frames
              << " frames (" << ns.bad_frames << " bad, "
              << ns.oversized_frames << " oversized), " << ns.submitted
              << " submitted, " << ns.rejected << " rejected, "
              << ns.results_sent << " results, " << ns.orphaned_results
              << " orphaned\n";
    const std::vector<serve::JobResult> results =
        router ? router->results() : server->results();
    if (router) {
      const shard::Router::Stats st = router->stats();
      std::cout << "shard: " << st.submitted << " submitted, " << st.routed
                << " routed, " << st.rerouted << " rerouted, " << st.parked
                << " parked, " << st.completed << " completed, "
                << st.rejected << " rejected, " << st.failed << " failed, "
                << st.deaths << " deaths, " << st.restarts << " restarts\n";
      const std::vector<shard::Router::ShardStats> per = router->shard_stats();
      for (std::size_t k = 0; k < per.size(); ++k) {
        std::cout << "shard " << k << ": " << per[k].routed << " routed, "
                  << per[k].done << " done (" << per[k].cached << " cached), "
                  << per[k].rejected << " rejected, " << per[k].restarts
                  << " restarts\n";
      }
    }
    bool ok = true;
    if (!stats_file.empty() && server) {
      if (write_stats_file(stats_file, *server, results)) {
        std::cout << "stats: " << stats_file << "\n";
      } else {
        std::cerr << "hsi-served: cannot write " << stats_file << "\n";
        ok = false;
      }
    }
    if (worker_mode) {
      // Quiet path: stdout is the router's per-shard log. The terminal
      // invariant still gates the exit status.
      std::size_t terminal = 0;
      for (const serve::JobResult& r : results) {
        if (serve::is_terminal(r.state)) ++terminal;
      }
      std::cout << "hsi-served worker: " << results.size() << " jobs, "
                << terminal << " terminal in " << util::format_duration(wall_s)
                << "\n";
      if (terminal != results.size()) {
        std::cerr << "hsi-served: some jobs never reached a terminal state\n";
        ok = false;
      }
      return ok ? 0 : 2;
    }
    const int rc =
        report_results(cli, server.get(), results, wall_s, exporter.get(),
                       cache_mb, flight_dir, snapshot_path);
    return ok ? rc : 2;
  }

  serve::Server server(options);
  for (std::int64_t pass = 0; pass < repeat; ++pass) {
    for (const serve::JobSpec& spec : batch.jobs) server.submit(spec);
  }
  server.shutdown(/*drain=*/true);
  const double wall_s = wall.seconds();
  if (exporter) exporter->stop();
  bool ok = true;
  if (!stats_file.empty()) {
    if (write_stats_file(stats_file, server, server.results())) {
      std::cout << "stats: " << stats_file << "\n";
    } else {
      std::cerr << "hsi-served: cannot write " << stats_file << "\n";
      ok = false;
    }
  }
  const int rc =
      report_results(cli, &server, server.results(), wall_s, exporter.get(),
                     cache_mb, flight_dir, snapshot_path);
  return ok ? rc : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "hsi-served: " << e.what() << "\n";
    return 1;
  }
}
