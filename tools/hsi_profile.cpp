// Pipeline profiler CLI.
//
// Runs the stream AMC pipeline (paper Section 3.2 / Figure 4) on a
// synthetic Indian-Pines-like scene or a user-supplied ENVI cube with
// tracing enabled, then writes:
//   * a Chrome trace-event JSON (--trace out.json) -- load it in
//     chrome://tracing or https://ui.perfetto.dev to see the nested
//     pipeline -> chunk -> stage -> pass spans;
//   * a flat metrics JSON (--metrics out.json) in the shared BENCH_*.json
//     schema;
//   * a Figure-4-style per-stage table plus the trace span summary on
//     stdout.
//
// Both JSON outputs are re-read and validated with the bundled parser
// before exit, so a zero exit status certifies well-formed documents.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/amc_gpu.hpp"
#include "hsi/envi_io.hpp"
#include "hsi/synthetic.hpp"
#include "trace/json_check.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

bool validate_file(const std::string& path, bool chrome) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    std::cerr << "hsi-profile: cannot re-open " << path << " for validation\n";
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::string error;
  const bool ok = chrome ? hs::trace::json::validate_chrome_trace(text, &error)
                         : hs::trace::json::validate_metrics_json(text, &error);
  if (!ok) {
    std::cerr << "hsi-profile: " << path << " failed validation: " << error
              << "\n";
  }
  return ok;
}

/// Strict integer flag parse: the whole value must be a number >= `min`.
/// Cli::get_int's strtoll silently maps garbage to 0, which here would
/// turn a typo into a degenerate scene instead of an error.
bool parse_int_flag(const hs::util::Cli& cli, const std::string& name,
                    long long min_value, long long fallback, long long* out) {
  *out = fallback;
  if (!cli.has(name)) return true;
  const std::string text = cli.get(name, "");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || v < min_value) {
    std::cerr << "hsi-profile: invalid --" << name << " '" << text
              << "' (integer >= " << min_value << " expected)\n";
    return false;
  }
  *out = v;
  return true;
}

int run(int argc, char** argv) {
  using namespace hs;

  util::Cli cli;
  cli.add_flag("synthetic", "profile a synthetic Indian-Pines-like scene");
  cli.add_flag("envi", "profile an ENVI cube (path to the .hdr file)");
  cli.add_flag("size", "synthetic scene edge length", "64");
  cli.add_flag("bands", "synthetic scene spectral bands", "32");
  cli.add_flag("se", "structuring element radius", "1");
  cli.add_flag("budget", "chunk texel budget (0 = auto)", "0");
  cli.add_flag("half", "half-precision stream textures", "false");
  cli.add_flag("engine", "fragment engine: compiled | soa | interpreter",
               "compiled");
  cli.add_flag("workers", "chunk-parallel workers (0 = one per host cpu)", "1");
  cli.add_flag("trace", "Chrome trace-event JSON output path", "");
  cli.add_flag("metrics", "metrics JSON output path", "");
  if (!cli.parse(argc, argv)) return 1;
  if (!cli.positional().empty()) {
    std::cerr << "hsi-profile: unexpected argument '" << cli.positional()[0]
              << "'\n";
    return 1;
  }

  const std::string envi_path = cli.get("envi", "");
  if (!cli.get_bool("synthetic", false) && envi_path.empty()) {
    std::cerr << "hsi-profile: pass --synthetic or --envi <cube.hdr>\n";
    cli.print_usage("hsi-profile");
    return 1;
  }

  long long size = 0, bands = 0, se = 0, budget = 0, workers = 0;
  if (!parse_int_flag(cli, "size", 1, 64, &size) ||
      !parse_int_flag(cli, "bands", 1, 32, &bands) ||
      !parse_int_flag(cli, "se", 0, 1, &se) ||
      !parse_int_flag(cli, "budget", 0, 0, &budget) ||
      !parse_int_flag(cli, "workers", 0, 1, &workers)) {
    return 1;
  }

  trace::reset();
  trace::set_enabled(true);
#if !HS_TRACE_ENABLED
  std::cerr << "hsi-profile: note: built with HS_TRACE=OFF -- span/metric "
               "collection is compiled out; outputs will be empty\n";
#endif

  hsi::HyperCube cube;
  if (!envi_path.empty()) {
    try {
      cube = hsi::read_envi(envi_path);
    } catch (const hsi::EnviError& e) {
      std::cerr << "hsi-profile: " << e.what() << "\n";
      return 1;
    }
  } else {
    hsi::SceneConfig scene;
    scene.width = static_cast<int>(size);
    scene.height = scene.width;
    scene.bands = static_cast<int>(bands);
    cube = hsi::generate_indian_pines_scene(scene).cube;
  }

  core::AmcGpuOptions opt;
  opt.chunk_texel_budget = static_cast<std::uint64_t>(budget);
  opt.half_precision = cli.get_bool("half", false);
  opt.workers = static_cast<std::size_t>(workers);
  const std::string engine = cli.get("engine", "compiled");
  if (!gpusim::parse_exec_engine(engine, opt.sim.exec_engine)) {
    std::cerr << "hsi-profile: unknown --engine '" << engine << "'\n";
    return 1;
  }
  const int se_radius = static_cast<int>(se);

  util::Timer wall;
  const core::AmcGpuReport report = core::morphology_gpu(
      cube, core::StructuringElement::square(se_radius), opt);
  const double wall_s = wall.seconds();

  // ---- Figure-4-style stage report ----------------------------------------
  double stage_total = 0;
  for (const auto& [name, stats] : report.stages) {
    stage_total += stats.modeled_seconds;
  }
  util::Table table({"Stage", "Passes", "Fragments", "ALU instr",
                     "Tex fetches", "Modeled time", "Share"});
  for (const auto& [name, stats] : report.stages) {
    table.add_row(
        {name, std::to_string(stats.passes), std::to_string(stats.fragments),
         std::to_string(stats.alu_instructions),
         std::to_string(stats.tex_fetches),
         util::format_duration(stats.modeled_seconds),
         util::Table::num(100.0 * stats.modeled_seconds / stage_total, 1) +
             "%"});
  }
  table.print(std::cout, "AMC stage breakdown (" +
                             std::to_string(cube.width()) + "x" +
                             std::to_string(cube.height()) + "x" +
                             std::to_string(cube.bands()) + ")");
  std::cout << "\nchunks: " << report.chunk_count
            << ", workers: " << report.workers_used
            << ", total passes: " << report.totals.passes
            << ", modeled end-to-end: "
            << util::format_duration(report.modeled_seconds)
            << ", wall: " << util::format_duration(wall_s) << "\n\n";

  trace::print_summary(std::cout);

  // ---- sinks + self-validation --------------------------------------------
  bool ok = true;
  const std::string trace_path = cli.get("trace", "");
  if (!trace_path.empty()) {
    if (!trace::write_chrome_trace_file(trace_path)) {
      std::cerr << "hsi-profile: cannot write " << trace_path << "\n";
      ok = false;
    } else if (!validate_file(trace_path, /*chrome=*/true)) {
      ok = false;
    } else {
      std::cout << "trace: " << trace_path << " (" << trace::event_count()
                << " spans; open in https://ui.perfetto.dev)\n";
    }
  }
  const std::string metrics_path = cli.get("metrics", "");
  if (!metrics_path.empty()) {
    if (!trace::write_metrics_json_file(metrics_path, "hsi-profile")) {
      std::cerr << "hsi-profile: cannot write " << metrics_path << "\n";
      ok = false;
    } else if (!validate_file(metrics_path, /*chrome=*/false)) {
      ok = false;
    } else {
      std::cout << "metrics: " << metrics_path << "\n";
    }
  }
  return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Every failure mode is a one-line error and a nonzero exit, never an
  // uncaught exception backtrace (the CLI tests in tools/CMakeLists.txt
  // pin this down).
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "hsi-profile: " << e.what() << "\n";
    return 1;
  }
}
