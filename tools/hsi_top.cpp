// Live process introspection CLI (`hsi-top`).
//
// Renders an "hs.snapshot.v1" registry snapshot file -- the document
// trace::SnapshotExporter writes and hsi-served exports with --snapshot
// -- as human-readable tables: a header line (process name, export
// sequence, uptime), the counter/gauge registry, and every latency
// histogram with count / mean / p50 / p90 / p95 / p99 / max.
//
// One-shot by default; --watch re-reads the file every --period seconds
// (bounded by --iterations, 0 = forever), clearing the screen between
// frames like top(1). Because the exporter renames each export into
// place atomically, a read never sees a torn document; a missing or
// not-yet-written file is reported and, under --watch, retried.
//
// The file is strict-validated (trace/json_check) before rendering, so
// hsi-top doubles as a schema checker: exit 0 certifies a valid snapshot.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "trace/json_check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace hs;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string fmt_num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v < 9.0e15 && v > -9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

std::string fmt_ms(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f ms", ms);
  return buf;
}

double num_or(const trace::json::Value& obj, std::string_view key,
              double fallback) {
  const trace::json::Value* v = obj.find(key);
  return (v != nullptr && v->is(trace::json::Value::Kind::Number)) ? v->number
                                                                   : fallback;
}

std::string str_or(const trace::json::Value& obj, std::string_view key,
                   const std::string& fallback) {
  const trace::json::Value* v = obj.find(key);
  return (v != nullptr && v->is(trace::json::Value::Kind::String)) ? v->string
                                                                   : fallback;
}

/// Renders one validated snapshot document. Returns false on I/O or
/// validation failure (the caller decides whether that is fatal).
bool render(const std::string& path, std::ostream& os) {
  const std::string text = slurp(path);
  if (text.empty()) {
    std::cerr << "hsi-top: cannot read " << path << " (missing or empty)\n";
    return false;
  }
  std::string error;
  if (!trace::json::validate_snapshot_json(text, &error)) {
    std::cerr << "hsi-top: " << path << " failed validation: " << error
              << "\n";
    return false;
  }
  const auto doc = trace::json::parse(text);
  const std::string name = str_or(*doc, "name", "?");
  const double sequence = num_or(*doc, "sequence", 0);
  const double uptime_ms = num_or(*doc, "uptime_ms", 0);

  char header[160];
  std::snprintf(header, sizeof header, "%s  export #%lld  uptime %.1f s",
                name.c_str(), static_cast<long long>(sequence),
                uptime_ms / 1e3);
  os << header << "\n";

  const trace::json::Value* metrics = doc->find("metrics");
  if (metrics != nullptr && !metrics->array.empty()) {
    util::Table table({"Metric", "Value"});
    for (const auto& row : metrics->array) {
      table.add_row({str_or(row, "name", "?"),
                     fmt_num(num_or(row, "value", 0))});
    }
    os << "\n";
    table.print(os, "counters / gauges");
  }

  const trace::json::Value* hists = doc->find("histograms");
  if (hists != nullptr && !hists->array.empty()) {
    util::Table table({"Histogram", "Count", "Mean", "p50", "p90", "p95",
                       "p99", "Max"});
    for (const auto& row : hists->array) {
      table.add_row({str_or(row, "name", "?"),
                     fmt_num(num_or(row, "count", 0)),
                     fmt_ms(num_or(row, "mean_ms", 0)),
                     fmt_ms(num_or(row, "p50_ms", 0)),
                     fmt_ms(num_or(row, "p90_ms", 0)),
                     fmt_ms(num_or(row, "p95_ms", 0)),
                     fmt_ms(num_or(row, "p99_ms", 0)),
                     fmt_ms(num_or(row, "max_ms", 0))});
    }
    os << "\n";
    table.print(os, "latency histograms");
  }
  if ((metrics == nullptr || metrics->array.empty()) &&
      (hists == nullptr || hists->array.empty())) {
    os << "\n(registry empty -- no counters, gauges or histograms yet)\n";
  }
  return true;
}

int run(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("watch", "refresh continuously instead of rendering once");
  cli.add_flag("period", "refresh interval in seconds (with --watch)", "1");
  cli.add_flag("iterations",
               "number of --watch frames before exiting (0 = forever)", "0");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().size() != 1) {
    std::cerr << "hsi-top: pass exactly one snapshot file "
                 "(see hsi-served --snapshot)\n";
    cli.print_usage("hsi-top");
    return 1;
  }
  const std::string path = cli.positional()[0];
  const bool watch = cli.get_bool("watch", false);
  const double period = cli.get_double("period", 1);
  const std::int64_t iterations = cli.get_int("iterations", 0);
  if (period <= 0) {
    std::cerr << "hsi-top: --period must be > 0\n";
    return 1;
  }
  if (iterations < 0) {
    std::cerr << "hsi-top: --iterations must be >= 0\n";
    return 1;
  }

  if (!watch) return render(path, std::cout) ? 0 : 1;

  // Watch mode tolerates a transiently missing file (the exporter may not
  // have produced its first snapshot yet); only a never-valid file over
  // every frame of a bounded watch is an error.
  bool any_ok = false;
  for (std::int64_t frame = 0; iterations == 0 || frame < iterations;
       ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(period));
    }
    std::cout << "\x1b[2J\x1b[H";  // clear screen, home cursor
    any_ok = render(path, std::cout) || any_ok;
    std::cout.flush();
  }
  return any_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "hsi-top: " << e.what() << "\n";
    return 1;
  }
}
