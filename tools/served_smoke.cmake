# ctest smoke stage for hsi-served: run the sample request batch and
# require a report + metrics JSON (hsi-served itself validates both with
# the bundled strict parser and exits nonzero otherwise).
file(MAKE_DIRECTORY ${WORKDIR})
execute_process(
  COMMAND ${SERVED} --requests ${REQUESTS} --workers 2 --max-bytes 32000000
          --report ${WORKDIR}/report.json --metrics ${WORKDIR}/metrics.json
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hsi-served smoke failed (rc=${rc}):\n${out}\n${err}")
endif()
file(READ ${WORKDIR}/report.json report)
if(NOT report MATCHES "\"jobs\"")
  message(FATAL_ERROR "report.json missing jobs array")
endif()
file(READ ${WORKDIR}/metrics.json metrics)
if(NOT metrics MATCHES "\"results\"")
  message(FATAL_ERROR "metrics.json missing results array")
endif()
