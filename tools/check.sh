#!/usr/bin/env bash
# Full pre-merge check: build and test the Release configuration, an
# ASan/UBSan-instrumented configuration, a TSan configuration running the
# concurrency suite (TSan and ASan are mutually exclusive, hence the
# separate build dir), and a tracing-disabled (HS_TRACE=OFF)
# configuration; then smoke-test the hsi-profile CLI.
#
# Usage: tools/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "${CTEST_ARGS[@]}"
}

# Runs hsi-profile from the given build dir on a small synthetic scene and
# checks the emitted JSON documents have the expected top-level shape.
# (hsi-profile already re-parses both files with the bundled strict JSON
# parser and exits nonzero on failure; this adds an independent check.)
smoke_profile() {
  local dir="$1"
  local out
  out="$(mktemp -d)"
  "$dir/tools/hsi-profile" --synthetic --size 24 --bands 16 \
    --trace "$out/trace.json" --metrics "$out/metrics.json" > /dev/null
  grep -q '"traceEvents"' "$out/trace.json"
  grep -q '"results"' "$out/metrics.json"
  rm -rf "$out"
}

CTEST_ARGS=("$@")

echo "==> Release"
run_config build-release -DCMAKE_BUILD_TYPE=Release
smoke_profile build-release

echo "==> Sanitizers (address,undefined)"
run_config build-sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHS_SANITIZE=address,undefined

echo "==> ThreadSanitizer (concurrency suite)"
# TSan slows execution ~10x, so run the tests that exercise real
# concurrency: the chunk-parallel pipeline/scheduler determinism suite,
# the thread-pool/task-group stress tests, the executor
# cross-contamination tests, and the multithreaded trace tests.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHS_SANITIZE=thread
cmake --build build-tsan -j
ctest --test-dir build-tsan --output-on-failure \
  -R 'ParallelPipeline|ChunkScheduler|ThreadPool|TaskGroup|StreamExecutor|Trace\.' \
  -j "${CTEST_ARGS[@]}"

echo "==> Tracing compiled out (HS_TRACE=OFF)"
run_config build-notrace -DCMAKE_BUILD_TYPE=Release -DHS_TRACE=OFF
smoke_profile build-notrace

echo "==> All checks passed"
