#!/usr/bin/env bash
# Full pre-merge check: build and test the Release configuration, an
# ASan/UBSan-instrumented configuration, a TSan configuration running the
# concurrency suite (TSan and ASan are mutually exclusive, hence the
# separate build dir), and a tracing-disabled (HS_TRACE=OFF)
# configuration; then smoke-test the hsi-profile and hsi-served CLIs and
# run the loopback TCP end-to-end smokes: single-process (hsi-served
# --listen driven by hsi-loadgen, witness-checked against file mode) and
# sharded (--shards 2 spawning worker processes, same witness check, then
# a SIGTERM drain).
#
# Usage: tools/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "${CTEST_ARGS[@]}"
}

# Runs hsi-profile from the given build dir on a small synthetic scene and
# checks the emitted JSON documents have the expected top-level shape.
# (hsi-profile already re-parses both files with the bundled strict JSON
# parser and exits nonzero on failure; this adds an independent check.)
smoke_profile() {
  local dir="$1"
  local out
  out="$(mktemp -d)"
  "$dir/tools/hsi-profile" --synthetic --size 24 --bands 16 \
    --trace "$out/trace.json" --metrics "$out/metrics.json" > /dev/null
  grep -q '"traceEvents"' "$out/trace.json"
  grep -q '"results"' "$out/metrics.json"
  rm -rf "$out"
}

# Runs the sample request batch through hsi-served and checks the report
# and metrics documents. hsi-served validates both with the bundled strict
# JSON parser and exits nonzero when any job fails to reach a terminal
# state, so a zero exit plus the shape greps is a full smoke.
smoke_served() {
  local dir="$1"
  local out
  out="$(mktemp -d)"
  "$dir/tools/hsi-served" --requests examples/serve_requests.jsonl \
    --workers 2 --max-bytes 32000000 \
    --report "$out/report.json" --metrics "$out/metrics.json" > /dev/null
  grep -q '"jobs"' "$out/report.json"
  grep -q '"results"' "$out/metrics.json"
  rm -rf "$out"
}

# Runs the sample batch twice through one hsi-served process with the
# result cache on: the second pass must report cache hits, and hsi-served
# itself exits nonzero if any repeated job's witness hash drifts between
# the live and cached runs.
smoke_cache() {
  local dir="$1"
  local out
  out="$(mktemp -d)"
  "$dir/tools/hsi-served" --requests examples/serve_requests.jsonl \
    --workers 1 --repeat 2 --cache-mb 64 \
    --report "$out/report.json" > /dev/null
  grep -q '"cached": true' "$out/report.json"
  rm -rf "$out"
}

# Telemetry smoke: a fault-injected batch must leave the full observability
# trail -- a registry snapshot hsi-top can render, per-job timelines, and a
# flight-recorder dump for the failed job -- and every document must pass
# the bundled strict-JSON validators (hsi-served exits nonzero otherwise).
# Works in HS_TRACE=OFF builds too: the snapshot degrades to a valid empty
# registry while timelines and flight dumps (serve-layer data) remain.
smoke_telemetry() {
  local dir="$1"
  local out
  out="$(mktemp -d)"
  "$dir/tools/hsi-served" --requests examples/serve_requests.jsonl \
    --workers 2 --max-bytes 32000000 \
    --fault unmix --retry-backoff-ms 1 \
    --timelines "$out/timelines" \
    --snapshot "$out/snapshot.json" \
    --flight-dir "$out/flight" \
    --report "$out/report.json" > /dev/null
  # The injected fault exhausts the retry budget: a validated flight dump
  # must exist for the failed job.
  ls "$out"/flight/flight_job*.json > /dev/null
  grep -q '"hs.flight.v1"' "$out"/flight/flight_job*.json
  # One timeline per job in the batch.
  [ "$(ls "$out"/timelines/timeline_job*.json | wc -l)" -ge 6 ]
  grep -q '"hs.snapshot.v1"' "$out/snapshot.json"
  # hsi-top renders the snapshot (one-shot mode).
  "$dir/tools/hsi-top" "$out/snapshot.json" | grep -q 'export #'
  rm -rf "$out"
}

# Loopback end-to-end smoke for the TCP front door. A file-mode run over
# the deterministic net batch writes the witness report; then hsi-served
# --listen on an ephemeral port (discovered via --port-file) is driven by
# hsi-loadgen, which exits nonzero unless every request got exactly one
# terminal response and every completed job's output hash matches the
# file-mode report byte for byte. Finally SIGTERM must drain the server
# to a clean zero exit.
smoke_net() {
  local dir="$1"
  local out
  out="$(mktemp -d)"
  "$dir/tools/hsi-served" --requests examples/net_requests.jsonl \
    --workers 2 --report "$out/file_report.json" > /dev/null
  "$dir/tools/hsi-served" --listen 0 --port-file "$out/port" --workers 2 \
    > "$out/served.log" 2>&1 &
  local served_pid=$!
  local ok=0
  for _ in $(seq 1 100); do
    [ -s "$out/port" ] && break
    sleep 0.1
  done
  if [ -s "$out/port" ] \
     && "$dir/tools/hsi-loadgen" --port "$(cat "$out/port")" \
          --requests examples/net_requests.jsonl --clients 3 --count 8 \
          --expect-report "$out/file_report.json" > "$out/loadgen.log" \
     && kill -TERM "$served_pid" \
     && wait "$served_pid"; then
    ok=1
  fi
  if [ "$ok" != 1 ]; then
    kill "$served_pid" 2>/dev/null || true
    echo "net smoke failed" >&2
    cat "$out/served.log" "$out/loadgen.log" >&2 2>/dev/null || true
    return 1
  fi
  rm -rf "$out"
}

# Sharded loopback smoke: the same witness discipline as smoke_net, but
# through the multi-process tier -- hsi-served --listen 0 --shards 2
# fork/execs two of itself in --worker mode and consistent-hashes jobs
# across them. hsi-loadgen must see every request answered exactly once
# with hashes equal to the single-process file-mode report (bit-identical
# outputs for any shard count), and SIGTERM must drain the router, its
# workers, and the front door to a clean zero exit.
smoke_shard() {
  local dir="$1"
  local out
  out="$(mktemp -d)"
  "$dir/tools/hsi-served" --requests examples/net_requests.jsonl \
    --workers 2 --report "$out/file_report.json" > /dev/null
  "$dir/tools/hsi-served" --listen 0 --shards 2 --port-file "$out/port" \
    --shard-dir "$out/state" > "$out/served.log" 2>&1 &
  local served_pid=$!
  local ok=0
  for _ in $(seq 1 100); do
    [ -s "$out/port" ] && break
    sleep 0.1
  done
  if [ -s "$out/port" ] \
     && "$dir/tools/hsi-loadgen" --port "$(cat "$out/port")" \
          --requests examples/net_requests.jsonl --clients 3 --count 8 \
          --expect-report "$out/file_report.json" > "$out/loadgen.log" \
     && kill -TERM "$served_pid" \
     && wait "$served_pid"; then
    ok=1
  fi
  if [ "$ok" != 1 ]; then
    kill "$served_pid" 2>/dev/null || true
    echo "shard smoke failed" >&2
    cat "$out/served.log" "$out/loadgen.log" "$out"/state/shard*.log >&2 \
      2>/dev/null || true
    return 1
  fi
  rm -rf "$out"
}

# Engine-comparison bench: regenerate the engine table off the ctest path
# and check the JSON carries the SoA acceptance metric. The run itself
# asserts bit-identity across the three engines (interpreter, compiled,
# soa) before timing them, so this doubles as an end-to-end engine smoke.
smoke_bench_engines() {
  local dir="$1"
  local out
  out="$(mktemp -d)"
  "$dir/bench/micro_kernels" --benchmark_filter=NONE     --json "$out/bench.json" > /dev/null
  grep -q '"speedup_soa_vs_compiled"' "$out/bench.json"
  grep -q '"wall_seconds_soa"' "$out/bench.json"
  rm -rf "$out"
}

CTEST_ARGS=("$@")

echo "==> Release"
run_config build-release -DCMAKE_BUILD_TYPE=Release
smoke_profile build-release
smoke_bench_engines build-release
smoke_served build-release
smoke_cache build-release
smoke_telemetry build-release
smoke_net build-release
smoke_shard build-release

echo "==> Sanitizers (address,undefined)"
run_config build-sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHS_SANITIZE=address,undefined
# The socket battery again, explicitly by label: an fd or buffer bug in
# the front door must fail fast under ASan/UBSan even when extra ctest
# args filtered the net tests out of the run above.
ctest --test-dir build-sanitize --output-on-failure -L 'net|slow' -j

echo "==> SoA engine (three-way fuzz oracle + parallel determinism, ASan/UBSan)"
# The fuzz oracle diffs interpreter vs compiled vs soa bit for bit on
# randomized programs; the ParallelPipeline.Soa* tests pin the SoA engine
# to the compiled baseline across worker counts {1,2,4,7}. Re-run them
# by name under ASan/UBSan so an out-of-bounds lane loop or a stale plane
# read in the SoA executor fails fast even when extra ctest args filtered
# them out of the main sanitizer pass.
ctest --test-dir build-sanitize --output-on-failure \
  -R 'ProgramFuzz|ParallelPipeline\.Soa' -j

echo "==> ThreadSanitizer (concurrency suite)"
# TSan slows execution ~10x, so run the tests that exercise real
# concurrency: the chunk-parallel pipeline/scheduler determinism suite,
# the serving-layer suite (worker threads + concurrent clients), the
# caching layer (LRU eviction under contention, the shared program store,
# the server result cache), the thread-pool/task-group stress tests, the
# executor cross-contamination tests, the multithreaded trace,
# histogram-shard and flight-recorder-ring tests, and the TCP front door
# battery (event loop vs serve worker hooks, concurrent socket clients).
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHS_SANITIZE=thread
cmake --build build-tsan -j
ctest --test-dir build-tsan --output-on-failure \
  -R 'ParallelPipeline|ChunkScheduler|ProgramFuzz|Serve|Cache|ThreadPool|TaskGroup|StreamExecutor|Trace\.|Histogram|FlightRecorder|Timeline|Net' \
  -j "${CTEST_ARGS[@]}"
# The sharded tier under TSan: the router's event-loop thread vs
# submit/wait/kill callers, with real worker processes behind it.
ctest --test-dir build-tsan --output-on-failure -L shard -j

echo "==> Tracing compiled out (HS_TRACE=OFF)"
run_config build-notrace -DCMAKE_BUILD_TYPE=Release -DHS_TRACE=OFF
smoke_profile build-notrace
smoke_served build-notrace
smoke_cache build-notrace
smoke_telemetry build-notrace
smoke_net build-notrace
smoke_shard build-notrace

echo "==> All checks passed"
