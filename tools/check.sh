#!/usr/bin/env bash
# Full pre-merge check: build and test the Release configuration and an
# ASan/UBSan-instrumented configuration.
#
# Usage: tools/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "${CTEST_ARGS[@]}"
}

CTEST_ARGS=("$@")

echo "==> Release"
run_config build-release -DCMAKE_BUILD_TYPE=Release

echo "==> Sanitizers (address,undefined)"
run_config build-sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHS_SANITIZE=address,undefined

echo "==> All checks passed"
