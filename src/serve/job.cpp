#include "serve/job.hpp"

#include <fstream>

#include "hsi/envi_io.hpp"
#include "util/rng.hpp"

namespace hs::serve {

bool is_terminal(JobState state) {
  return state != JobState::Queued && state != JobState::Running;
}

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::Morphology: return "morphology";
    case JobKind::Classify: return "classify";
    case JobKind::Unmix: return "unmix";
  }
  return "?";
}

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::Low: return "low";
    case Priority::Normal: return "normal";
    case Priority::High: return "high";
  }
  return "?";
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Rejected: return "rejected";
    case JobState::TimedOut: return "timed_out";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

std::optional<JobKind> parse_job_kind(std::string_view name) {
  if (name == "morphology" || name == "amc" || name == "mei") {
    return JobKind::Morphology;
  }
  if (name == "classify") return JobKind::Classify;
  if (name == "unmix") return JobKind::Unmix;
  return std::nullopt;
}

std::optional<Priority> parse_priority(std::string_view name) {
  if (name == "low" || name == "batch") return Priority::Low;
  if (name == "normal") return Priority::Normal;
  if (name == "high" || name == "interactive") return Priority::High;
  return std::nullopt;
}

std::optional<JobState> parse_job_state(std::string_view name) {
  for (JobState s : {JobState::Queued, JobState::Running, JobState::Done,
                     JobState::Failed, JobState::Rejected, JobState::TimedOut,
                     JobState::Cancelled}) {
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::optional<std::uint64_t> scene_content_hash(const SceneSpec& scene) {
  if (scene.envi_path.empty()) return std::nullopt;
  std::uint64_t h = 14695981039346656037ull;
  for (const std::string& path :
       {scene.envi_path, hsi::envi_payload_path(scene.envi_path)}) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    char buf[1 << 16];
    std::uint64_t total = 0;
    while (in) {
      in.read(buf, sizeof(buf));
      const auto got = static_cast<std::size_t>(in.gcount());
      h = fnv1a(buf, got, h);
      total += got;
    }
    if (in.bad()) return std::nullopt;
    // Fold each file's length so bytes migrating across the header/payload
    // boundary cannot produce the same chained stream.
    h = fnv1a(&total, sizeof(total), h);
  }
  return h;
}

bool is_cacheable(const JobSpec& spec) {
  return spec.scene.envi_path.empty() ||
         scene_content_hash(spec.scene).has_value();
}

cache::Fingerprint job_fingerprint(const JobSpec& spec) {
  cache::Fingerprinter fp;
  fp.field("kind", std::string_view(to_string(spec.kind)));
  if (const auto content = scene_content_hash(spec.scene)) {
    // Readable ENVI scene: the bytes are the identity, not the path.
    fp.field("envi_content", *content);
  } else {
    // Synthetic scene (empty path; the canonical pre-content layout) or an
    // unreadable one, which keeps path identity and stays uncacheable.
    fp.field("envi_path", std::string_view(spec.scene.envi_path));
  }
  fp.field("width", static_cast<std::int64_t>(spec.scene.width))
      .field("height", static_cast<std::int64_t>(spec.scene.height))
      .field("bands", static_cast<std::int64_t>(spec.scene.bands))
      .field("seed", static_cast<std::uint64_t>(spec.scene.seed))
      .field("se_radius", static_cast<std::int64_t>(spec.se_radius))
      .field("endmembers", static_cast<std::int64_t>(spec.endmembers))
      .field("chunk_texel_budget",
             static_cast<std::uint64_t>(spec.chunk_texel_budget))
      .field("half_precision", spec.half_precision);
  return fp.finish();
}

std::vector<std::vector<float>> synthetic_endmembers(int count, int bands,
                                                     std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<float>> e(static_cast<std::size_t>(count));
  for (auto& spectrum : e) {
    spectrum.resize(static_cast<std::size_t>(bands));
    for (auto& v : spectrum) {
      v = static_cast<float>(rng.uniform(0.05, 1.0));
    }
  }
  return e;
}

}  // namespace hs::serve
