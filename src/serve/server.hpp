// The batch job server (`hs::serve::Server`).
//
// Owns a pool of pipeline worker threads draining a bounded,
// priority-aware JobQueue of pipeline requests (job.hpp). Each worker
// executes one job at a time by calling the chunk-parallel GPU pipelines
// (core::morphology_gpu / core::unmix_gpu), which internally fan chunks
// out over stream::ChunkScheduler with per-worker simulated-device clones
// -- the serving layer adds *between-job* concurrency on top of the
// *within-job* chunk parallelism of PR 3.
//
// Guarantees:
//   * Admission control never throws at the client: an inadmissible job
//     (queue full, over the cost-model budget, shed, submitted after
//     shutdown, unreadable scene) comes back as a terminal
//     Rejected result with a typed reason string.
//   * Deadlines are enforced when a job is popped (expired while queued)
//     and cooperatively at every chunk boundary while it runs (expired
//     while running); both yield TimedOut.
//   * Attempts failed by an injected transient fault are retried up to
//     spec.max_retries times, then Failed.
//   * shutdown(drain=true) stops admission, completes every queued and
//     in-flight job, and joins the workers; shutdown(drain=false) cancels
//     queued jobs, requests cooperative cancellation of running ones, and
//     joins. Either way every submitted job reaches a terminal state.
//   * Determinism: a Done job's functional outputs are bit-identical to a
//     direct pipeline call with the same spec, independent of server
//     load, priorities, retries or worker count.
//
// Observability: the server maintains `serve.queue_depth` /
// `serve.in_flight` / `serve.worker_utilization` gauges,
// per-terminal-state `serve.jobs.*` counters, a `serve.retries` counter,
// and wraps every execution in a `serve.job` span (category "serve")
// carrying id/kind/priority/attempt. Latency distributions land in the
// trace histograms `serve.admission_s` (submit() decision time),
// `serve.queue_wait_s` (submission -> pop), `serve.exec_s` (attempt
// execution, jobs that ran), `serve.retry_backoff_s` (per backoff sleep)
// and `serve.total_s` (submission -> terminal, Done jobs). Every job also
// assembles an exact per-job timeline (JobResult::timeline; exported by
// serve/timeline.hpp), worker threads tag their spans/log lines/flight
// events with the running job's id via util::ScopedJobTag, and
// ServerOptions::flight_dump_dir turns job failure into a flight-recorder
// dump.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.hpp"
#include "cache/scene_cache.hpp"
#include "gpusim/compiled_program.hpp"
#include "serve/backend.hpp"
#include "serve/job.hpp"
#include "serve/job_queue.hpp"

namespace hs::serve {

/// The retryable error class: attempts failed by one are re-run while the
/// job has retry budget left. The server's fault injector raises these;
/// everything else is treated as permanent.
class TransientFault : public std::runtime_error {
 public:
  explicit TransientFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// Cheap pre-admission resource estimate for one job, derived from the
/// cost model (closed-form operation counts; cost_model.hpp) and the
/// scene dimensions -- an ENVI scene is estimated from its header alone,
/// without touching the payload.
struct JobEstimate {
  std::uint64_t pixels = 0;
  /// Host-side working set: the float cube plus functional outputs.
  std::uint64_t bytes = 0;
  /// Cost-model seconds on the reference CPU profile; a stable, hardware-
  /// independent admission currency (NOT a wall-clock prediction for the
  /// simulator).
  double seconds = 0;
};

/// Throws hsi::EnviError when the scene is an unreadable ENVI header;
/// submit() converts that into a Rejected{bad scene} outcome.
JobEstimate estimate_job(const JobSpec& spec);

struct AdmissionPolicy {
  /// Maximum queued (not yet running) jobs.
  std::size_t max_queue_depth = 64;
  /// Reject jobs whose estimate exceeds these; 0 disables a limit.
  double max_estimated_seconds = 0;
  std::uint64_t max_estimated_bytes = 0;
  /// When the queue is full, admit a higher-priority job by shedding the
  /// lowest-priority (youngest within that class) queued job.
  bool shed_low_priority = true;
};

struct ServerOptions {
  /// Server worker threads, each running one job at a time (>= 1).
  std::size_t workers = 1;
  AdmissionPolicy admission;
  /// Keep the functional payloads (mei/labels) in JobResults. Benches
  /// serving many jobs turn this off; the output_hash stays either way.
  bool keep_payloads = true;
  /// Byte budget of the content-addressed result cache (0 = off, the
  /// library default; hsi-served turns it on). When enabled, a Done
  /// result of a cacheable job (synthetic scene or readable ENVI scene,
  /// whose bytes are content-hashed; see serve::is_cacheable)
  /// is stored under its job_fingerprint, and a later job with the same
  /// fingerprint is served from the cache: state Done, `cached` set,
  /// attempts 0, and outputs bit-identical to the live run that populated
  /// the entry (same witness hash). Cache hits bypass the fault injector
  /// and retry machinery -- nothing runs.
  std::uint64_t result_cache_bytes = 0;
  /// Byte budget of the synthetic-scene memo cache (0 = off): repeated
  /// (width, height, bands, seed) scenes skip regeneration even when
  /// their jobs differ otherwise.
  std::uint64_t scene_cache_bytes = 0;
  /// Transient-fault injector, called at the start of every attempt
  /// (job id, 1-based attempt). Returning true fails that attempt with a
  /// TransientFault (consuming retry budget). The callback runs on worker
  /// threads and must be thread-safe. Tests also use it as a gate: it may
  /// block to hold a job "running" deterministically.
  std::function<bool(std::uint64_t id, int attempt)> inject_fault;
  /// Base sleep before re-running an attempt failed by a transient fault,
  /// doubling per retry (base, 2*base, 4*base, ...). 0 = retry
  /// immediately. The sleep counts toward run_seconds but not
  /// exec_seconds, lands in the `serve.retry_backoff_s` histogram, and is
  /// cut short by cancellation.
  double retry_backoff_seconds = 0;
  /// Terminal-state hook for front doors (the TCP listener streams results
  /// back to clients from it). Invoked exactly once per job, on the thread
  /// that terminalizes it, with the server's internal lock held: the
  /// callback must be cheap (copy what it needs, post to a queue) and must
  /// NOT call back into the Server. Covers every terminal state, including
  /// jobs rejected synchronously inside submit().
  std::function<void(const JobResult&)> on_terminal;
  /// Chunk-boundary progress hook: (job id, cooperative checks so far) on
  /// every cancellation check while the job runs. Runs on pipeline worker
  /// threads without the server lock; must be thread-safe and cheap.
  std::function<void(std::uint64_t id, std::uint64_t checks)> on_progress;
  /// When non-empty: a directory that receives one flight-recorder dump
  /// ("hs.flight.v1", named flight_job<id>.json) whenever a job
  /// terminalizes as Failed or TimedOut -- the last moments of the whole
  /// process around the failure. Requires an HS_TRACE build for non-empty
  /// event lists; the dump itself is written (valid, possibly empty) in
  /// every build.
  std::string flight_dump_dir;
};

class Server : public JobBackend {
 public:
  /// Outcome of submit() -- the shared backend vocabulary (backend.hpp);
  /// kept as a nested alias for the pre-JobBackend spelling.
  using Submitted = serve::Submitted;

  explicit Server(const ServerOptions& options);
  /// Implicit non-drain shutdown when the owner forgot: cancels queued
  /// jobs, cooperatively cancels running ones, joins the workers.
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Submitted submit(const JobSpec& spec) override;

  /// Queued -> Cancelled immediately; Running -> cooperative cancel
  /// request (the job terminalizes as Cancelled at the next chunk
  /// boundary). False when the job is unknown or already terminal.
  bool cancel(std::uint64_t id);

  /// Blocks until the job reaches a terminal state and returns its result.
  JobResult wait(std::uint64_t id);

  /// Non-blocking snapshot; nullopt for unknown ids.
  std::optional<JobResult> result(std::uint64_t id) const;

  /// All tracked jobs in submission order (terminal or not).
  std::vector<JobResult> results() const;

  /// Stops admission, then either drains (completes queued + in-flight
  /// jobs) or cancels (queued jobs -> Cancelled, running jobs get a
  /// cooperative cancel), and joins the workers. Idempotent; the first
  /// call's mode wins.
  void shutdown(bool drain);

  std::size_t queue_depth() const override;
  std::size_t in_flight() const;

  /// Installs/replaces the terminal and progress hooks after construction
  /// (a front door is usually built around an existing Server). Call
  /// before submitting the jobs the hook should observe; jobs already in
  /// flight may terminalize with either value. Detaching on_terminal
  /// (nullptr) blocks until any in-progress invocation has returned;
  /// running jobs keep the on_progress copy they started with, so that
  /// hook must capture shared-ownership state, never raw pointers the
  /// caller may free.
  void set_on_terminal(std::function<void(const JobResult&)> hook) override;
  void set_on_progress(
      std::function<void(std::uint64_t id, std::uint64_t checks)> hook) override;

  /// Per-instance cache statistics (exact even when HS_TRACE is off; the
  /// trace counters under `cache.*` aggregate process-wide).
  cache::CacheStats result_cache_stats() const { return result_cache_.stats(); }
  cache::CacheStats scene_cache_stats() const { return scene_cache_.stats(); }
  gpusim::SharedProgramStore::Stats program_store_stats() const {
    return shared_programs_->stats();
  }

 private:
  struct Record {
    JobSpec spec;
    JobResult result;
    std::chrono::steady_clock::time_point submit_tp;
    std::chrono::steady_clock::time_point deadline_tp;
    bool has_deadline = false;
    std::shared_ptr<std::atomic<bool>> cancel_flag;
  };

  void worker_loop();
  /// Resolves the job's scene: ENVI read, scene-cache hit, or a fresh
  /// synthetic generation (shared so cache hits need no copy).
  std::shared_ptr<const hsi::HyperCube> load_scene(const SceneSpec& scene);
  /// Runs one job to a terminal outcome (no locks held). Fills state,
  /// detail, attempts, run/exec_seconds, timeline events (stamped relative
  /// to `submit_tp`) and outputs into `out`.
  void run_job(std::uint64_t id, const JobSpec& spec,
               const std::shared_ptr<std::atomic<bool>>& cancel_flag,
               bool has_deadline,
               std::chrono::steady_clock::time_point deadline_tp,
               std::chrono::steady_clock::time_point submit_tp,
               const std::function<void(std::uint64_t, std::uint64_t)>& progress,
               JobResult& out);
  /// Terminal bookkeeping; requires mu_ held and a non-terminal record.
  void finalize_locked(Record& rec, JobState state, const std::string& detail);
  /// Writes a flight-recorder dump for a Failed/TimedOut job when
  /// ServerOptions::flight_dump_dir is set. Requires mu_ held (runs only
  /// on failure paths).
  void maybe_dump_flight_locked(const JobResult& result);
  void update_gauges_locked();

  ServerOptions options_;
  cache::ResultCache result_cache_;
  cache::SceneCache scene_cache_;
  /// Cross-worker compiled-program store handed to every pipeline run via
  /// SimConfig::shared_programs -- always on (its cost is one mutex).
  std::shared_ptr<gpusim::SharedProgramStore> shared_programs_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: queue non-empty or stop
  std::condition_variable done_cv_;  ///< waiters: some job terminalized
  JobQueue queue_;
  std::map<std::uint64_t, Record> records_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::size_t in_flight_ = 0;
  bool accepting_ = true;
  bool stop_ = false;  ///< workers exit once the queue is empty
  std::vector<std::thread> threads_;
};

}  // namespace hs::serve
