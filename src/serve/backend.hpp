// The job-submission seam between front doors and execution tiers.
//
// `JobBackend` is the narrow interface a front door (net::NetServer)
// actually needs from whatever executes jobs behind it: submit a spec,
// observe terminal results and progress ticks, and read the queue depth
// that prices 429 retry hints. Two implementations exist:
//
//   * serve::Server  -- the in-process worker pool (server.hpp);
//   * shard::Router  -- the multi-process sharded tier (src/shard/), which
//     forwards each spec to one of N hsi-served --worker processes over
//     loopback sockets and replays their terminal frames through the same
//     hooks.
//
// The contract mirrors what Server has always guaranteed, and Router must
// preserve it, because NetServer's correctness leans on every clause:
//
//   * submit() is thread-safe and never throws for inadmissible jobs; it
//     reports them as a non-admitted Submitted whose state/detail say why.
//   * Every admitted job reaches exactly one terminal state, and the
//     on_terminal hook fires exactly once per job -- including jobs
//     rejected synchronously inside submit() -- on the thread that
//     terminalizes it, with the backend's internal lock held. The hook
//     must be cheap and must not call back into the backend.
//   * on_progress (when installed) may fire from arbitrary backend
//     threads without the lock; it must be thread-safe and cheap.
//   * set_on_terminal(nullptr) blocks until any in-progress invocation
//     has returned, so a front door can detach safely in its destructor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "serve/job.hpp"

namespace hs::serve {

/// Outcome of JobBackend::submit(): `admitted` jobs are queued; rejected
/// ones are already terminal (state/detail say why) but still tracked by
/// the backend, so wait()/results() style queries cover them too.
struct Submitted {
  std::uint64_t id = 0;
  bool admitted = false;
  JobState state = JobState::Queued;
  std::string detail;
};

class JobBackend {
 public:
  virtual ~JobBackend() = default;

  virtual Submitted submit(const JobSpec& spec) = 0;

  /// Jobs queued but not yet running; front doors derive retry-after
  /// hints from it. Must be callable from any thread.
  virtual std::size_t queue_depth() const = 0;

  virtual void set_on_terminal(std::function<void(const JobResult&)> hook) = 0;
  virtual void set_on_progress(
      std::function<void(std::uint64_t id, std::uint64_t checks)> hook) = 0;
};

}  // namespace hs::serve
