#include "serve/timeline.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace hs::serve {

namespace {

std::string timeline_json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ms(double seconds) {
  if (!std::isfinite(seconds)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e3);
  return buf;
}

}  // namespace

void write_timeline_json(std::ostream& os, const JobResult& r) {
  char hash[32];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(r.output_hash));
  os << "{\n  \"schema\": \"hs.timeline.v1\",\n  \"id\": " << r.id
     << ",\n  \"name\": \"" << timeline_json_escape(r.name)
     << "\",\n  \"kind\": \"" << to_string(r.kind)
     << "\",\n  \"priority\": \"" << to_string(r.priority)
     << "\",\n  \"state\": \"" << to_string(r.state)
     << "\",\n  \"detail\": \"" << timeline_json_escape(r.detail)
     << "\",\n  \"attempts\": " << r.attempts
     << ",\n  \"cached\": " << (r.cached ? "true" : "false")
     << ",\n  \"queue_ms\": " << ms(r.queue_seconds)
     << ",\n  \"exec_ms\": " << ms(r.exec_seconds)
     << ",\n  \"run_ms\": " << ms(r.run_seconds)
     << ",\n  \"total_ms\": " << ms(r.queue_seconds + r.run_seconds)
     << ",\n  \"output_hash\": \"" << hash << "\",\n  \"events\": [\n";
  for (std::size_t i = 0; i < r.timeline.size(); ++i) {
    const TimelineEvent& ev = r.timeline[i];
    os << "    {\"t_ms\": " << ms(ev.t_seconds) << ", \"what\": \""
       << timeline_json_escape(ev.what) << "\", \"detail\": \""
       << timeline_json_escape(ev.detail) << "\"}"
       << (i + 1 < r.timeline.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

bool write_timeline_json_file(const std::string& path, const JobResult& r) {
  std::ofstream os(path);
  if (!os) return false;
  write_timeline_json(os, r);
  return static_cast<bool>(os);
}

std::string timeline_filename(const JobResult& r) {
  return "timeline_job" + std::to_string(r.id) + ".json";
}

}  // namespace hs::serve
