#include "serve/request.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "trace/json_check.hpp"

namespace hs::serve {

namespace {

using trace::json::Value;

bool set_error(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Requires an integral-valued number in [lo, hi].
bool get_int_field(const Value& v, const std::string& key, long long lo,
                   long long hi, long long* out, std::string* error) {
  if (!v.is(Value::Kind::Number)) {
    return set_error(error, "'" + key + "' must be a number");
  }
  const double d = v.number;
  if (!std::isfinite(d) || d != std::floor(d) || d < static_cast<double>(lo) ||
      d > static_cast<double>(hi)) {
    return set_error(error, "'" + key + "' out of range");
  }
  *out = static_cast<long long>(d);
  return true;
}

}  // namespace

std::optional<JobSpec> parse_request_line(std::string_view line,
                                          std::string* error) {
  std::string parse_error;
  const auto doc = trace::json::parse(line, &parse_error);
  if (!doc) {
    set_error(error, "invalid JSON: " + parse_error);
    return std::nullopt;
  }
  if (!doc->is(Value::Kind::Object)) {
    set_error(error, "request must be a JSON object");
    return std::nullopt;
  }

  JobSpec spec;
  bool have_kind = false;
  for (const auto& [key, value] : doc->object) {
    long long n = 0;
    if (key == "name") {
      if (!value.is(Value::Kind::String)) {
        set_error(error, "'name' must be a string");
        return std::nullopt;
      }
      spec.name = value.string;
    } else if (key == "kind") {
      if (!value.is(Value::Kind::String)) {
        set_error(error, "'kind' must be a string");
        return std::nullopt;
      }
      const auto kind = parse_job_kind(value.string);
      if (!kind) {
        set_error(error, "unknown kind '" + value.string + "'");
        return std::nullopt;
      }
      spec.kind = *kind;
      have_kind = true;
    } else if (key == "priority") {
      if (!value.is(Value::Kind::String)) {
        set_error(error, "'priority' must be a string");
        return std::nullopt;
      }
      const auto priority = parse_priority(value.string);
      if (!priority) {
        set_error(error, "unknown priority '" + value.string + "'");
        return std::nullopt;
      }
      spec.priority = *priority;
    } else if (key == "deadline_ms") {
      // Non-finite values sneak past a bare `< 0` check: 1e999 parses to
      // +inf (and NaN compares false to everything), then overflows the
      // steady_clock duration cast when the deadline is armed.
      if (!value.is(Value::Kind::Number) || !std::isfinite(value.number) ||
          value.number < 0) {
        set_error(error, "'deadline_ms' must be a finite non-negative number");
        return std::nullopt;
      }
      spec.deadline_seconds = value.number / 1000.0;
    } else if (key == "retries") {
      if (!get_int_field(value, key, 0, 1000, &n, error)) return std::nullopt;
      spec.max_retries = static_cast<int>(n);
    } else if (key == "envi") {
      if (!value.is(Value::Kind::String)) {
        set_error(error, "'envi' must be a string");
        return std::nullopt;
      }
      spec.scene.envi_path = value.string;
    } else if (key == "size") {
      if (!get_int_field(value, key, 1, 1 << 20, &n, error)) return std::nullopt;
      spec.scene.width = static_cast<int>(n);
      spec.scene.height = static_cast<int>(n);
    } else if (key == "width") {
      if (!get_int_field(value, key, 1, 1 << 20, &n, error)) return std::nullopt;
      spec.scene.width = static_cast<int>(n);
    } else if (key == "height") {
      if (!get_int_field(value, key, 1, 1 << 20, &n, error)) return std::nullopt;
      spec.scene.height = static_cast<int>(n);
    } else if (key == "bands") {
      if (!get_int_field(value, key, 1, 1 << 16, &n, error)) return std::nullopt;
      spec.scene.bands = static_cast<int>(n);
    } else if (key == "seed") {
      if (!get_int_field(value, key, 0, (1ll << 62), &n, error)) {
        return std::nullopt;
      }
      spec.scene.seed = static_cast<std::uint64_t>(n);
    } else if (key == "se") {
      if (!get_int_field(value, key, 0, 64, &n, error)) return std::nullopt;
      spec.se_radius = static_cast<int>(n);
    } else if (key == "endmembers") {
      if (!get_int_field(value, key, 1, 256, &n, error)) return std::nullopt;
      spec.endmembers = static_cast<int>(n);
    } else if (key == "workers") {
      if (!get_int_field(value, key, 0, 4096, &n, error)) return std::nullopt;
      spec.workers = static_cast<std::size_t>(n);
    } else if (key == "chunk_texel_budget") {
      if (!get_int_field(value, key, 0, (1ll << 62), &n, error)) {
        return std::nullopt;
      }
      spec.chunk_texel_budget = static_cast<std::uint64_t>(n);
    } else if (key == "half") {
      if (!value.is(Value::Kind::Bool)) {
        set_error(error, "'half' must be a boolean");
        return std::nullopt;
      }
      spec.half_precision = value.boolean;
    } else {
      set_error(error, "unknown key '" + key + "'");
      return std::nullopt;
    }
  }
  if (!have_kind) {
    set_error(error, "missing required key 'kind'");
    return std::nullopt;
  }
  return spec;
}

RequestBatch read_requests(std::istream& in) {
  RequestBatch batch;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::string error;
    if (auto spec = parse_request_line(line, &error)) {
      batch.jobs.push_back(std::move(*spec));
    } else {
      batch.errors.emplace_back(line_no, error);
    }
  }
  return batch;
}

RequestBatch read_request_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open request file: " + path);
  return read_requests(in);
}

}  // namespace hs::serve
