#include "serve/request.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <system_error>

#include "trace/json_check.hpp"

namespace hs::serve {

namespace {

using trace::json::Value;

std::string request_json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool set_error(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Requires an integral-valued number in [lo, hi].
bool get_int_field(const Value& v, const std::string& key, long long lo,
                   long long hi, long long* out, std::string* error) {
  if (!v.is(Value::Kind::Number)) {
    return set_error(error, "'" + key + "' must be a number");
  }
  const double d = v.number;
  if (!std::isfinite(d) || d != std::floor(d) || d < static_cast<double>(lo) ||
      d > static_cast<double>(hi)) {
    return set_error(error, "'" + key + "' out of range");
  }
  *out = static_cast<long long>(d);
  return true;
}

/// Shared parser behind the file-mode and frame-mode entry points. When
/// `out_client` is non-null the `"id"` key is accepted and captured there;
/// otherwise it is an unknown key like any other.
bool parse_request_impl(std::string_view line, std::string* error,
                        JobSpec* out_spec, ParsedRequest* out_client) {
  std::string parse_error;
  const auto doc = trace::json::parse(line, &parse_error);
  if (!doc) {
    return set_error(error, "invalid JSON: " + parse_error);
  }
  if (!doc->is(Value::Kind::Object)) {
    return set_error(error, "request must be a JSON object");
  }

  JobSpec spec;
  bool have_kind = false;
  for (const auto& [key, value] : doc->object) {
    long long n = 0;
    if (out_client && key == "id") {
      if (!get_int_field(value, key, 0, (1ll << 62), &n, error)) return false;
      out_client->client_id = static_cast<std::uint64_t>(n);
      out_client->has_client_id = true;
    } else if (key == "name") {
      if (!value.is(Value::Kind::String)) {
        set_error(error, "'name' must be a string");
        return false;
      }
      spec.name = value.string;
    } else if (key == "kind") {
      if (!value.is(Value::Kind::String)) {
        set_error(error, "'kind' must be a string");
        return false;
      }
      const auto kind = parse_job_kind(value.string);
      if (!kind) {
        set_error(error, "unknown kind '" + value.string + "'");
        return false;
      }
      spec.kind = *kind;
      have_kind = true;
    } else if (key == "priority") {
      if (!value.is(Value::Kind::String)) {
        set_error(error, "'priority' must be a string");
        return false;
      }
      const auto priority = parse_priority(value.string);
      if (!priority) {
        set_error(error, "unknown priority '" + value.string + "'");
        return false;
      }
      spec.priority = *priority;
    } else if (key == "deadline_ms") {
      // Non-finite values sneak past a bare `< 0` check: 1e999 parses to
      // +inf (and NaN compares false to everything), then overflows the
      // steady_clock duration cast when the deadline is armed.
      if (!value.is(Value::Kind::Number) || !std::isfinite(value.number) ||
          value.number < 0) {
        set_error(error, "'deadline_ms' must be a finite non-negative number");
        return false;
      }
      spec.deadline_seconds = value.number / 1000.0;
    } else if (key == "retries") {
      if (!get_int_field(value, key, 0, 1000, &n, error)) return false;
      spec.max_retries = static_cast<int>(n);
    } else if (key == "envi") {
      if (!value.is(Value::Kind::String)) {
        set_error(error, "'envi' must be a string");
        return false;
      }
      spec.scene.envi_path = value.string;
    } else if (key == "size") {
      if (!get_int_field(value, key, 1, 1 << 20, &n, error)) return false;
      spec.scene.width = static_cast<int>(n);
      spec.scene.height = static_cast<int>(n);
    } else if (key == "width") {
      if (!get_int_field(value, key, 1, 1 << 20, &n, error)) return false;
      spec.scene.width = static_cast<int>(n);
    } else if (key == "height") {
      if (!get_int_field(value, key, 1, 1 << 20, &n, error)) return false;
      spec.scene.height = static_cast<int>(n);
    } else if (key == "bands") {
      if (!get_int_field(value, key, 1, 1 << 16, &n, error)) return false;
      spec.scene.bands = static_cast<int>(n);
    } else if (key == "seed") {
      if (!get_int_field(value, key, 0, (1ll << 62), &n, error)) {
        return false;
      }
      spec.scene.seed = static_cast<std::uint64_t>(n);
    } else if (key == "se") {
      if (!get_int_field(value, key, 0, 64, &n, error)) return false;
      spec.se_radius = static_cast<int>(n);
    } else if (key == "endmembers") {
      if (!get_int_field(value, key, 1, 256, &n, error)) return false;
      spec.endmembers = static_cast<int>(n);
    } else if (key == "workers") {
      if (!get_int_field(value, key, 0, 4096, &n, error)) return false;
      spec.workers = static_cast<std::size_t>(n);
    } else if (key == "chunk_texel_budget") {
      if (!get_int_field(value, key, 0, (1ll << 62), &n, error)) {
        return false;
      }
      spec.chunk_texel_budget = static_cast<std::uint64_t>(n);
    } else if (key == "half") {
      if (!value.is(Value::Kind::Bool)) {
        set_error(error, "'half' must be a boolean");
        return false;
      }
      spec.half_precision = value.boolean;
    } else {
      set_error(error, "unknown key '" + key + "'");
      return false;
    }
  }
  if (!have_kind) {
    return set_error(error, "missing required key 'kind'");
  }
  *out_spec = std::move(spec);
  return true;
}

/// Prefixes an already-set error message with its source label, so "conn 3"
/// or "requests.jsonl:7" diagnostics read the same everywhere.
void label_error(std::string* error, std::string_view source) {
  if (error && !source.empty()) {
    *error = std::string(source) + ": " + *error;
  }
}

}  // namespace

std::string to_request_line(const JobSpec& spec,
                            std::optional<std::uint64_t> client_id) {
  std::ostringstream os;
  os << '{';
  if (client_id) os << "\"id\":" << *client_id << ',';
  if (!spec.name.empty()) {
    os << "\"name\":\"" << request_json_escape(spec.name) << "\",";
  }
  os << "\"kind\":\"" << to_string(spec.kind) << "\""
     << ",\"priority\":\"" << to_string(spec.priority) << "\"";
  if (spec.deadline_seconds > 0 && std::isfinite(spec.deadline_seconds)) {
    os << ",\"deadline_ms\":"
       << std::setprecision(std::numeric_limits<double>::max_digits10)
       << spec.deadline_seconds * 1000.0;
  }
  if (spec.max_retries > 0) os << ",\"retries\":" << spec.max_retries;
  if (!spec.scene.envi_path.empty()) {
    os << ",\"envi\":\"" << request_json_escape(spec.scene.envi_path) << "\"";
  }
  // The synthetic-scene fields stay in the fingerprint even for ENVI jobs
  // (seed feeds the endmember generator), so always emit them.
  os << ",\"width\":" << spec.scene.width
     << ",\"height\":" << spec.scene.height
     << ",\"bands\":" << spec.scene.bands
     << ",\"seed\":" << spec.scene.seed
     << ",\"se\":" << spec.se_radius
     << ",\"endmembers\":" << spec.endmembers
     << ",\"workers\":" << spec.workers
     << ",\"chunk_texel_budget\":" << spec.chunk_texel_budget
     << ",\"half\":" << (spec.half_precision ? "true" : "false") << '}';
  return os.str();
}

std::optional<JobSpec> parse_request_line(std::string_view line,
                                          std::string* error,
                                          std::string_view source) {
  JobSpec spec;
  if (!parse_request_impl(line, error, &spec, nullptr)) {
    label_error(error, source);
    return std::nullopt;
  }
  return spec;
}

std::optional<ParsedRequest> parse_request_frame(std::string_view line,
                                                 std::string* error,
                                                 std::string_view source) {
  ParsedRequest req;
  if (!parse_request_impl(line, error, &req.spec, &req)) {
    label_error(error, source);
    return std::nullopt;
  }
  return req;
}

RequestBatch read_requests(std::istream& in, std::string_view source) {
  RequestBatch batch;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::string error;
    const std::string line_source =
        source.empty() ? std::string()
                       : std::string(source) + ":" + std::to_string(line_no);
    if (auto spec = parse_request_line(line, &error, line_source)) {
      batch.jobs.push_back(std::move(*spec));
    } else {
      batch.errors.emplace_back(line_no, error);
    }
  }
  return batch;
}

RequestBatch read_request_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open request file: " + path);
  return read_requests(in, path);
}

std::optional<FaultSpec> parse_fault_spec(std::string_view arg,
                                          std::string* error) {
  const auto fail = [error](const std::string& what) -> std::optional<FaultSpec> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  if (arg.empty()) return fail("--fault needs substr[:n]");

  FaultSpec spec;
  spec.substr = std::string(arg);
  const std::size_t colon = arg.rfind(':');
  if (colon != std::string_view::npos && colon + 1 < arg.size()) {
    const std::string_view tail = arg.substr(colon + 1);
    const bool all_digits =
        tail.find_first_not_of("0123456789") == std::string_view::npos;
    if (all_digits) {
      int n = 0;
      const auto r = std::from_chars(tail.data(), tail.data() + tail.size(), n);
      if (r.ec == std::errc::result_out_of_range) {
        return fail("--fault attempt count out of range: '" +
                    std::string(tail) + "'");
      }
      if (n == 0) return fail("--fault attempt count must be >= 1");
      spec.attempts = n;
      spec.substr = std::string(arg.substr(0, colon));
      if (spec.substr.empty()) {
        return fail("--fault substring is empty (got ':" + std::string(tail) +
                    "')");
      }
    }
  }
  return spec;
}

}  // namespace hs::serve
