// Job vocabulary for the serving layer (`hs::serve`).
//
// A Job is one request against the GPU pipelines: run AMC classification,
// linear unmixing, or the morphological MEI pipeline over an ENVI scene on
// disk or a synthetic scene generated from a seed. Each job carries a
// priority class, an optional deadline, and a bounded retry budget; the
// server (server.hpp) moves it through the state machine
//
//   Queued -> Running -> {Done, Failed, TimedOut, Cancelled}
//        \-> {Rejected, TimedOut, Cancelled}        (never ran)
//
// where every terminal state is reported through a JobResult rather than
// an exception -- a serving layer degrades, it does not crash.
//
// Determinism contract: a job's functional outputs depend only on its
// spec (scene, options, seed), never on queue position, priority, worker
// count, retries or server load -- they are the same bits a direct
// morphology_gpu / unmix_gpu call with the same options produces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/fingerprint.hpp"

namespace hs::serve {

enum class JobKind {
  Morphology,  ///< morphology_gpu: the Figure-4 six-stage MEI pipeline
  Classify,    ///< morphology_gpu + unmix_gpu: GPU-resident AMC labels
  Unmix,       ///< unmix_gpu only: abundance argmax labels
};

/// Admission and scheduling class. Higher runs first; under saturation the
/// queue sheds lower classes to admit higher ones.
enum class Priority : int { Low = 0, Normal = 1, High = 2 };

enum class JobState {
  Queued,
  Running,
  Done,
  Failed,     ///< ran and errored (after exhausting any retry budget)
  Rejected,   ///< never admitted (queue full, over budget, shed, shutdown)
  TimedOut,   ///< deadline expired while queued or at a chunk boundary
  Cancelled,  ///< cancelled by the client or a no-drain shutdown
};

/// True for every state a job can end in (everything but Queued/Running).
bool is_terminal(JobState state);

const char* to_string(JobKind kind);
const char* to_string(Priority priority);
const char* to_string(JobState state);

std::optional<JobKind> parse_job_kind(std::string_view name);
std::optional<Priority> parse_priority(std::string_view name);
/// Inverse of to_string(JobState); used when a router ingests terminal
/// frames a shard process reported over the wire.
std::optional<JobState> parse_job_state(std::string_view name);

/// The scene a job runs over: an ENVI cube on disk when `envi_path` is
/// set, otherwise a deterministic synthetic Indian-Pines-like scene.
struct SceneSpec {
  std::string envi_path;
  int width = 32;
  int height = 32;
  int bands = 16;
  std::uint64_t seed = 7;
};

struct JobSpec {
  /// Client-chosen label echoed in the result report (need not be unique;
  /// the server assigns the numeric id).
  std::string name;
  JobKind kind = JobKind::Morphology;
  Priority priority = Priority::Normal;
  /// Wall-clock budget from submission; 0 disables the deadline. Expiry is
  /// detected when the job is popped and at every chunk boundary while it
  /// runs, yielding TimedOut either way.
  double deadline_seconds = 0;
  /// Re-run budget for attempts failed by transient faults; 0 = fail fast.
  int max_retries = 0;

  SceneSpec scene;
  int se_radius = 1;     ///< Morphology / Classify structuring element
  int endmembers = 4;    ///< Classify / Unmix endmember count
  std::size_t workers = 1;  ///< chunk-parallel workers inside the pipeline run
  std::uint64_t chunk_texel_budget = 0;  ///< 0 = derive from video memory
  bool half_precision = false;
};

/// Whole-file FNV-1a content hash of an ENVI scene's bytes: the header
/// file chained with the payload file (each followed by its byte count so
/// shifting bytes across the file boundary cannot collide). nullopt for
/// synthetic scenes (there is no file) and when either file cannot be
/// read -- an unreadable scene has no content identity.
std::optional<std::uint64_t> scene_content_hash(const SceneSpec& scene);

/// True when a job's functional outputs are a pure function of its
/// fingerprint: synthetic scenes always; ENVI-backed jobs once their file
/// bytes are readable, because the content hash above folds those bytes
/// into the fingerprint (an unreadable scene still is not cacheable --
/// there is nothing to address the entry by).
bool is_cacheable(const JobSpec& spec);

/// Canonical content fingerprint of a job's functional identity: kind,
/// scene (content hash for readable ENVI scenes -- two paths to the same
/// bytes share an entry, an edited file gets a new one -- else
/// width/height/bands/seed) and every pipeline option that reaches the
/// simulator (se_radius, endmembers, chunk_texel_budget, half_precision).
/// Deliberately EXCLUDES name, priority, deadline, max_retries and
/// workers: the determinism contract above makes outputs invariant to all
/// of them, so jobs differing only there share a cache entry. The shard
/// router also routes on this fingerprint, so equal-fingerprint jobs land
/// on the same shard and concentrate its cache hits.
cache::Fingerprint job_fingerprint(const JobSpec& spec);

/// One moment in a job's life, stamped relative to its submission time.
/// The server appends these as the job moves through its state machine
/// (submitted, dequeued, attempt, fault, backoff, cache_hit, terminal);
/// serve/timeline.hpp exports the list as an "hs.timeline.v1" document.
/// Timelines are plain per-job data -- exact in every build, independent
/// of whether HS_TRACE instrumentation is compiled in.
struct TimelineEvent {
  double t_seconds = 0;  ///< offset from submission (monotonic per job)
  std::string what;      ///< event kind, lower_snake_case
  std::string detail;    ///< optional qualifier (attempt number, reason, ...)
};

struct JobResult {
  std::uint64_t id = 0;
  std::string name;
  JobKind kind = JobKind::Morphology;
  Priority priority = Priority::Normal;
  JobState state = JobState::Queued;
  /// Human-readable qualifier for non-Done terminal states: the rejection
  /// reason, error text, or where the deadline hit (queued vs running).
  std::string detail;
  int attempts = 0;
  /// True when the outputs came from the server's result cache instead of
  /// a live pipeline run (attempts stays 0; the bits are identical).
  bool cached = false;

  double queue_seconds = 0;  ///< submission -> start (or terminalization)
  double run_seconds = 0;    ///< start -> terminal; 0 when the job never ran
  /// Time spent actually executing attempts (pipeline work, cache lookup),
  /// excluding retry-backoff sleeps; <= run_seconds.
  double exec_seconds = 0;

  /// The job's life in submission-relative order; see TimelineEvent.
  std::vector<TimelineEvent> timeline;

  // Pipeline echoes, filled on Done.
  double modeled_seconds = 0;
  std::size_t chunk_count = 0;
  std::size_t pipeline_workers = 0;

  /// FNV-1a over the functional outputs (mei/db for morphology, labels
  /// for classify/unmix) -- the cheap bit-identity witness the report
  /// carries even when the payload vectors are dropped.
  std::uint64_t output_hash = 0;

  /// Functional payloads; present on Done when the server keeps payloads.
  std::vector<float> mei;
  std::vector<int> labels;
};

/// FNV-1a 64-bit over a byte range; `seed` chains multiple ranges.
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = 14695981039346656037ull);

/// Deterministic endmember spectra for Classify/Unmix jobs over synthetic
/// scenes: `count` spectra of `bands` reflectances uniform in [0.05, 1.0),
/// reproducible from (seed, count, bands) alone so a direct unmix_gpu call
/// can be compared bit-for-bit against a served job.
std::vector<std::vector<float>> synthetic_endmembers(int count, int bands,
                                                     std::uint64_t seed);

}  // namespace hs::serve
