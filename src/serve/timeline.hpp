// Per-job timeline export (`hs::serve`): one strict-JSON document per job
// describing its whole life -- submission, queueing, every attempt, faults,
// retry backoffs, cache hits, cancellation checks, and the terminal state
// -- assembled from JobResult::timeline plus the derived duration split
// (queue_ms / exec_ms / run_ms / total_ms).
//
// Schema "hs.timeline.v1", validated by trace::json::validate_timeline_json.
// Timelines are plain serve-layer data: they stay exact in an HS_TRACE=OFF
// build, extending the per-instance-stats guarantee of the cache layer.
#pragma once

#include <iosfwd>
#include <string>

#include "serve/job.hpp"

namespace hs::serve {

/// Serializes `result` as one "hs.timeline.v1" document.
void write_timeline_json(std::ostream& os, const JobResult& result);

/// File variant. Returns false when the file cannot be written.
bool write_timeline_json_file(const std::string& path, const JobResult& result);

/// Canonical file name for a job's timeline: "timeline_job<id>.json".
std::string timeline_filename(const JobResult& result);

}  // namespace hs::serve
