#include "serve/server.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "core/amc_gpu.hpp"
#include "core/cost_model.hpp"
#include "core/structuring_element.hpp"
#include "core/unmix_gpu.hpp"
#include "gpusim/device_profile.hpp"
#include "hsi/envi_io.hpp"
#include "hsi/synthetic.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/histogram.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace hs::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

trace::Counter& state_counter(JobState state) {
  switch (state) {
    case JobState::Done: return trace::counter("serve.jobs.done");
    case JobState::Failed: return trace::counter("serve.jobs.failed");
    case JobState::Rejected: return trace::counter("serve.jobs.rejected");
    case JobState::TimedOut: return trace::counter("serve.jobs.timed_out");
    case JobState::Cancelled: return trace::counter("serve.jobs.cancelled");
    case JobState::Queued:
    case JobState::Running: break;
  }
  HS_ASSERT_MSG(false, "state_counter on a non-terminal state");
  return trace::counter("serve.jobs.invalid");
}

std::uint64_t hash_floats(const std::vector<float>& v, std::uint64_t seed) {
  return fnv1a(v.data(), v.size() * sizeof(float), seed);
}

std::uint64_t hash_ints(const std::vector<int>& v, std::uint64_t seed) {
  return fnv1a(v.data(), v.size() * sizeof(int), seed);
}

/// Appends a timeline moment stamped "now", relative to `submit_tp`.
void mark(JobResult& result, std::chrono::steady_clock::time_point submit_tp,
          std::string what, std::string detail = {}) {
  result.timeline.push_back(TimelineEvent{
      seconds_between(submit_tp, std::chrono::steady_clock::now()),
      std::move(what), std::move(detail)});
}

}  // namespace

JobEstimate estimate_job(const JobSpec& spec) {
  int w = spec.scene.width;
  int h = spec.scene.height;
  int bands = spec.scene.bands;
  if (!spec.scene.envi_path.empty()) {
    const hsi::EnviHeader hdr = hsi::read_envi_header(spec.scene.envi_path);
    w = hdr.samples;
    h = hdr.lines;
    bands = hdr.bands;
  }
  if (w <= 0 || h <= 0 || bands <= 0) {
    throw std::invalid_argument("scene dimensions must be positive");
  }
  if (spec.se_radius < 0) throw std::invalid_argument("se_radius must be >= 0");
  if (spec.endmembers < 1) {
    throw std::invalid_argument("endmembers must be >= 1");
  }

  JobEstimate est;
  est.pixels = static_cast<std::uint64_t>(w) * static_cast<std::uint64_t>(h);
  // Host working set: the float cube, plus mei/db scalars and/or labels.
  est.bytes = est.pixels * static_cast<std::uint64_t>(bands) * 4 +
              est.pixels * 12;

  const double px = static_cast<double>(est.pixels);
  const int c = spec.endmembers;
  core::CpuCost cost;
  if (spec.kind != JobKind::Unmix) {
    const int se_edge = 2 * spec.se_radius + 1;
    cost = core::cpu_morphology_cost(est.pixels, se_edge * se_edge, bands);
  }
  if (spec.kind != JobKind::Morphology) {
    // Unmixing: per pixel, c dot products over `bands` (mul+add) plus the
    // argmax chain; traffic is one cube read and a label write.
    cost.flops += px * (2.0 * bands * c + c);
    cost.bytes += px * (bands * 4.0 + 4.0);
  }
  est.seconds = core::model_cpu_morphology_seconds(gpusim::pentium4_prescott(),
                                                   cost, /*vectorized=*/true);
  return est;
}

Server::Server(const ServerOptions& options)
    : options_(options),
      result_cache_(options.result_cache_bytes),
      scene_cache_(options.scene_cache_bytes),
      shared_programs_(std::make_shared<gpusim::SharedProgramStore>()),
      queue_(std::max<std::size_t>(1, options.admission.max_queue_depth)) {
  update_gauges_locked();  // still single-threaded: no lock needed yet
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(/*drain=*/false); }

void Server::update_gauges_locked() {
  trace::gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
  trace::gauge("serve.in_flight").set(static_cast<double>(in_flight_));
  trace::gauge("serve.worker_utilization")
      .set(static_cast<double>(in_flight_) /
           static_cast<double>(std::max<std::size_t>(1, options_.workers)));
}

void Server::finalize_locked(Record& rec, JobState state,
                             const std::string& detail) {
  HS_ASSERT_MSG(!is_terminal(rec.result.state), "job finalized twice");
  rec.result.state = state;
  if (!detail.empty()) rec.result.detail = detail;
  mark(rec.result, rec.submit_tp, "terminal", to_string(state));
  if (state == JobState::Done) {
    // The same queue + run split the JobResult carries, so exported
    // percentiles cross-check exactly against per-job reports.
    trace::histogram("serve.total_s")
        .record(rec.result.queue_seconds + rec.result.run_seconds);
  }
  trace::flight_event("job.terminal", static_cast<std::int64_t>(rec.result.id),
                      rec.result.attempts, to_string(state));
  state_counter(state).increment();
  update_gauges_locked();
  done_cv_.notify_all();
  // Front-door hook: fires under mu_ so a terminal state is observed
  // exactly once, in finalization order. The callback contract (cheap, no
  // re-entry) is documented on ServerOptions::on_terminal.
  if (options_.on_terminal) options_.on_terminal(rec.result);
}

void Server::set_on_terminal(std::function<void(const JobResult&)> hook) {
  std::unique_lock<std::mutex> lk(mu_);
  options_.on_terminal = std::move(hook);
}

void Server::set_on_progress(
    std::function<void(std::uint64_t id, std::uint64_t checks)> hook) {
  std::unique_lock<std::mutex> lk(mu_);
  options_.on_progress = std::move(hook);
}

Server::Submitted Server::submit(const JobSpec& spec) {
  // Admission latency: everything between the client calling submit() and
  // the queued/rejected decision, including the estimate's header read.
  const auto admission_start = std::chrono::steady_clock::now();
  struct AdmissionTimer {
    std::chrono::steady_clock::time_point start;
    ~AdmissionTimer() {
      trace::histogram("serve.admission_s")
          .record(seconds_between(start, std::chrono::steady_clock::now()));
    }
  } admission_timer{admission_start};

  // Estimate before taking the lock: it may read an ENVI header. A bad
  // scene is an admission failure, not an exception at the client.
  JobEstimate estimate;
  std::string estimate_error;
  try {
    estimate = estimate_job(spec);
  } catch (const std::exception& e) {
    estimate_error = std::string("bad scene: ") + e.what();
  }

  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t id = next_id_++;
  const std::uint64_t seq = next_seq_++;
  Record& rec = records_[id];
  rec.spec = spec;
  rec.submit_tp = std::chrono::steady_clock::now();
  rec.has_deadline = spec.deadline_seconds > 0;
  if (rec.has_deadline) {
    rec.deadline_tp =
        rec.submit_tp + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(spec.deadline_seconds));
  }
  rec.cancel_flag = std::make_shared<std::atomic<bool>>(false);
  rec.result.id = id;
  rec.result.name = spec.name;
  rec.result.kind = spec.kind;
  rec.result.priority = spec.priority;
  rec.result.timeline.push_back(TimelineEvent{0, "submitted", spec.name});
  trace::counter("serve.jobs.submitted").increment();
  trace::flight_event("job.submit", static_cast<std::int64_t>(id), 0,
                      to_string(spec.kind));

  auto reject = [&](const std::string& reason) {
    rec.result.queue_seconds =
        seconds_between(rec.submit_tp, std::chrono::steady_clock::now());
    finalize_locked(rec, JobState::Rejected, reason);
    return Submitted{id, false, JobState::Rejected, reason};
  };

  if (!accepting_) return reject("server is shutting down");
  if (!estimate_error.empty()) return reject(estimate_error);
  const AdmissionPolicy& policy = options_.admission;
  if (policy.max_estimated_bytes > 0 &&
      estimate.bytes > policy.max_estimated_bytes) {
    return reject("over budget: estimated " + std::to_string(estimate.bytes) +
                  " bytes > limit " +
                  std::to_string(policy.max_estimated_bytes));
  }
  if (policy.max_estimated_seconds > 0 &&
      estimate.seconds > policy.max_estimated_seconds) {
    return reject("over budget: estimated " + std::to_string(estimate.seconds) +
                  " s > limit " + std::to_string(policy.max_estimated_seconds));
  }

  if (queue_.full()) {
    const auto victim = queue_.shed_victim();
    const bool can_shed = policy.shed_low_priority && victim &&
                          static_cast<int>(victim->priority) <
                              static_cast<int>(spec.priority);
    if (!can_shed) return reject("queue full");
    queue_.remove(victim->id);
    Record& shed = records_.at(victim->id);
    shed.result.queue_seconds =
        seconds_between(shed.submit_tp, std::chrono::steady_clock::now());
    trace::counter("serve.jobs.shed").increment();
    mark(shed.result, shed.submit_tp, "shed",
         "by higher-priority job " + std::to_string(id));
    trace::flight_event("job.shed", static_cast<std::int64_t>(victim->id),
                        static_cast<std::int64_t>(id));
    finalize_locked(shed, JobState::Rejected,
                    "shed by higher-priority job " + std::to_string(id));
  }

  queue_.push(JobQueue::Entry{id, spec.priority, seq});
  rec.result.state = JobState::Queued;
  update_gauges_locked();
  work_cv_.notify_one();
  return Submitted{id, true, JobState::Queued, ""};
}

bool Server::cancel(std::uint64_t id) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  Record& rec = it->second;
  if (rec.result.state == JobState::Queued) {
    queue_.remove(id);
    rec.result.queue_seconds =
        seconds_between(rec.submit_tp, std::chrono::steady_clock::now());
    finalize_locked(rec, JobState::Cancelled, "cancelled while queued");
    return true;
  }
  if (rec.result.state == JobState::Running) {
    rec.cancel_flag->store(true, std::memory_order_relaxed);
    mark(rec.result, rec.submit_tp, "cancel_requested");
    return true;
  }
  return false;
}

JobResult Server::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = records_.find(id);
  if (it == records_.end()) {
    throw std::invalid_argument("unknown job id " + std::to_string(id));
  }
  done_cv_.wait(lk, [&] { return is_terminal(it->second.result.state); });
  return it->second.result;
}

std::optional<JobResult> Server::result(std::uint64_t id) const {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second.result;
}

std::vector<JobResult> Server::results() const {
  std::unique_lock<std::mutex> lk(mu_);
  std::vector<JobResult> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(rec.result);
  return out;
}

std::size_t Server::queue_depth() const {
  std::unique_lock<std::mutex> lk(mu_);
  return queue_.size();
}

std::size_t Server::in_flight() const {
  std::unique_lock<std::mutex> lk(mu_);
  return in_flight_;
}

void Server::shutdown(bool drain) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!accepting_ && threads_.empty()) return;  // already shut down
  accepting_ = false;
  if (drain) {
    done_cv_.wait(lk, [&] { return queue_.empty() && in_flight_ == 0; });
  } else {
    while (const auto entry = queue_.pop()) {
      Record& rec = records_.at(entry->id);
      rec.result.queue_seconds =
          seconds_between(rec.submit_tp, std::chrono::steady_clock::now());
      finalize_locked(rec, JobState::Cancelled, "cancelled by shutdown");
    }
    for (auto& [id, rec] : records_) {
      if (rec.result.state == JobState::Running) {
        rec.cancel_flag->store(true, std::memory_order_relaxed);
      }
    }
    update_gauges_locked();
  }
  stop_ = true;
  work_cv_.notify_all();
  std::vector<std::thread> threads = std::move(threads_);
  threads_.clear();
  lk.unlock();
  for (std::thread& t : threads) t.join();
}

void Server::worker_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lk(mu_);
    work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    const auto entry = queue_.pop();
    if (!entry) {
      if (stop_) return;
      continue;
    }
    Record& rec = records_.at(entry->id);
    const auto now = std::chrono::steady_clock::now();
    rec.result.queue_seconds = seconds_between(rec.submit_tp, now);
    trace::histogram("serve.queue_wait_s").record(rec.result.queue_seconds);
    trace::flight_event("job.dequeue",
                        static_cast<std::int64_t>(entry->id));
    if (rec.has_deadline && now >= rec.deadline_tp) {
      mark(rec.result, rec.submit_tp, "deadline_expired", "while queued");
      finalize_locked(rec, JobState::TimedOut, "deadline expired while queued");
      maybe_dump_flight_locked(rec.result);
      continue;
    }
    mark(rec.result, rec.submit_tp, "dequeued");
    rec.result.state = JobState::Running;
    ++in_flight_;
    update_gauges_locked();
    const std::uint64_t id = entry->id;
    const JobSpec spec = rec.spec;
    const auto cancel_flag = rec.cancel_flag;
    const bool has_deadline = rec.has_deadline;
    const auto deadline_tp = rec.deadline_tp;
    const auto submit_tp = rec.submit_tp;
    // Copied under mu_: set_on_progress may swap the hook while we run.
    const auto progress = options_.on_progress;
    JobResult outcome;
    lk.unlock();

    run_job(id, spec, cancel_flag, has_deadline, deadline_tp, submit_tp,
            progress, outcome);

    lk.lock();
    Record& done = records_.at(id);
    --in_flight_;
    done.result.attempts = outcome.attempts;
    done.result.cached = outcome.cached;
    done.result.run_seconds = outcome.run_seconds;
    done.result.exec_seconds = outcome.exec_seconds;
    done.result.modeled_seconds = outcome.modeled_seconds;
    done.result.chunk_count = outcome.chunk_count;
    done.result.pipeline_workers = outcome.pipeline_workers;
    done.result.output_hash = outcome.output_hash;
    done.result.mei = std::move(outcome.mei);
    done.result.labels = std::move(outcome.labels);
    // Merge the attempt-side events with the submit/cancel-side ones;
    // cancel() may have interleaved a cancel_requested stamp, so restore
    // global time order.
    done.result.timeline.insert(
        done.result.timeline.end(),
        std::make_move_iterator(outcome.timeline.begin()),
        std::make_move_iterator(outcome.timeline.end()));
    std::stable_sort(done.result.timeline.begin(), done.result.timeline.end(),
                     [](const TimelineEvent& x, const TimelineEvent& y) {
                       return x.t_seconds < y.t_seconds;
                     });
    trace::histogram("serve.exec_s").record(outcome.exec_seconds);
    finalize_locked(done, outcome.state, outcome.detail);
    maybe_dump_flight_locked(done.result);
  }
}

/// Flight-recorder dump for a just-terminalized job, when configured and
/// the terminal state is a failure class. Called with mu_ held: the write
/// happens outside the serve lock's hot path only in failure cases, where
/// a consistent "moment of death" capture matters more than latency.
void Server::maybe_dump_flight_locked(const JobResult& result) {
  if (options_.flight_dump_dir.empty()) return;
  if (result.state != JobState::Failed && result.state != JobState::TimedOut) {
    return;
  }
  const std::string path = options_.flight_dump_dir + "/flight_job" +
                           std::to_string(result.id) + ".json";
  const std::string reason = std::string("job ") + std::to_string(result.id) +
                             " " + to_string(result.state) +
                             (result.detail.empty() ? "" : ": " + result.detail);
  if (!trace::write_flight_json_file(path, reason)) {
    util::logkv(util::LogLevel::Warn, "flight dump failed",
                {{"path", path}, {"job", static_cast<std::int64_t>(result.id)}});
  }
}

std::shared_ptr<const hsi::HyperCube> Server::load_scene(
    const SceneSpec& scene) {
  if (!scene.envi_path.empty()) {
    return std::make_shared<const hsi::HyperCube>(
        hsi::read_envi(scene.envi_path));
  }
  if (scene_cache_.enabled()) {
    return scene_cache_.get_or_generate(
        cache::SceneKey{scene.width, scene.height, scene.bands, scene.seed});
  }
  hsi::SceneConfig cfg;
  cfg.width = scene.width;
  cfg.height = scene.height;
  cfg.bands = scene.bands;
  cfg.seed = scene.seed;
  return std::make_shared<const hsi::HyperCube>(
      hsi::generate_indian_pines_scene(cfg).cube);
}

void Server::run_job(
    std::uint64_t id, const JobSpec& spec,
    const std::shared_ptr<std::atomic<bool>>& cancel_flag, bool has_deadline,
    std::chrono::steady_clock::time_point deadline_tp,
    std::chrono::steady_clock::time_point submit_tp,
    const std::function<void(std::uint64_t, std::uint64_t)>& progress,
    JobResult& out) {
  const auto start = std::chrono::steady_clock::now();
  // Everything this worker does for the job -- spans, log lines, flight
  // events -- carries the job id from here on.
  util::ScopedJobTag job_tag(id);
  double backoff_total = 0;
  // Cooperative-cancellation checks at chunk boundaries, summarized as one
  // timeline event after the run (a per-check event would dwarf the rest).
  auto cancel_checks = std::make_shared<std::atomic<std::uint64_t>>(0);

  // Cache lookup before the attempt loop: a hit serves the stored outputs
  // of an identical earlier run (bit-identical by the determinism
  // contract) without touching the fault injector or retry machinery. A
  // payload-less entry cannot satisfy a payload-keeping server, so that
  // case falls through to a live run, which re-stores with payloads.
  std::optional<cache::Fingerprint> fp;
  if (result_cache_.enabled() && is_cacheable(spec)) {
    fp = job_fingerprint(spec);
    if (const auto hit = result_cache_.get(*fp);
        hit && (hit->has_payloads || !options_.keep_payloads)) {
      out.cached = true;
      out.attempts = 0;
      out.modeled_seconds = hit->modeled_seconds;
      out.chunk_count = hit->chunk_count;
      out.pipeline_workers = hit->pipeline_workers;
      out.output_hash = hit->output_hash;
      if (options_.keep_payloads) {
        out.mei = hit->mei;
        out.labels = hit->labels;
      }
      mark(out, submit_tp, "cache_hit");
      trace::flight_event("job.cache_hit", static_cast<std::int64_t>(id));
      out.state = JobState::Done;
      out.run_seconds =
          seconds_between(start, std::chrono::steady_clock::now());
      out.exec_seconds = out.run_seconds;
      return;
    }
  }

  for (int attempt = 1;; ++attempt) {
    out.attempts = attempt;
    mark(out, submit_tp, "attempt", std::to_string(attempt));
    trace::flight_event("job.attempt", static_cast<std::int64_t>(id), attempt);
    trace::Span span("serve.job", "serve");
    if (span.active()) {
      span.arg("id", static_cast<double>(id));
      span.arg("kind", to_string(spec.kind));
      span.arg("priority", to_string(spec.priority));
      span.arg("attempt", attempt);
    }
    try {
      if (cancel_flag->load(std::memory_order_relaxed)) {
        out.state = JobState::Cancelled;
        out.detail = "cancelled while running";
        break;
      }
      if (has_deadline && std::chrono::steady_clock::now() >= deadline_tp) {
        out.state = JobState::TimedOut;
        out.detail = "deadline expired while running";
        break;
      }
      if (options_.inject_fault && options_.inject_fault(id, attempt)) {
        throw TransientFault("injected transient fault (attempt " +
                             std::to_string(attempt) + ")");
      }

      const std::shared_ptr<const hsi::HyperCube> scene =
          load_scene(spec.scene);
      const hsi::HyperCube& cube = *scene;
      core::AmcGpuOptions opt;
      opt.sim.shared_programs = shared_programs_;
      opt.workers = spec.workers;
      opt.chunk_texel_budget = spec.chunk_texel_budget;
      opt.half_precision = spec.half_precision;
      opt.cancel_check = [cancel_flag, has_deadline, deadline_tp,
                          cancel_checks, &progress, id] {
        const std::uint64_t checks =
            cancel_checks->fetch_add(1, std::memory_order_relaxed) + 1;
        if (progress) progress(id, checks);
        if (cancel_flag->load(std::memory_order_relaxed)) return true;
        return has_deadline &&
               std::chrono::steady_clock::now() >= deadline_tp;
      };

      std::uint64_t hash = fnv1a(nullptr, 0);
      out.modeled_seconds = 0;
      out.chunk_count = 0;
      if (spec.kind != JobKind::Unmix) {
        const core::AmcGpuReport report = core::morphology_gpu(
            cube, core::StructuringElement::square(spec.se_radius), opt);
        hash = hash_floats(report.morph.mei, hash);
        hash = hash_floats(report.morph.db, hash);
        out.mei = report.morph.mei;
        out.modeled_seconds += report.modeled_seconds;
        out.chunk_count += report.chunk_count;
        out.pipeline_workers = report.workers_used;
      }
      if (spec.kind != JobKind::Morphology) {
        const auto endmembers = synthetic_endmembers(
            spec.endmembers, cube.bands(), spec.scene.seed);
        const core::GpuUnmixReport report =
            core::unmix_gpu(cube, endmembers, opt);
        hash = hash_ints(report.labels, hash);
        out.labels = report.labels;
        out.modeled_seconds += report.modeled_seconds;
        out.chunk_count += report.chunk_count;
        out.pipeline_workers = report.workers_used;
      }
      out.output_hash = hash;
      if (fp) {
        auto entry = std::make_shared<cache::CachedJobOutputs>();
        entry->modeled_seconds = out.modeled_seconds;
        entry->chunk_count = out.chunk_count;
        entry->pipeline_workers = out.pipeline_workers;
        entry->output_hash = hash;
        entry->has_payloads = options_.keep_payloads;
        if (options_.keep_payloads) {
          entry->mei = out.mei;
          entry->labels = out.labels;
        }
        result_cache_.put(*fp, std::move(entry));
      }
      if (!options_.keep_payloads) {
        out.mei.clear();
        out.mei.shrink_to_fit();
        out.labels.clear();
        out.labels.shrink_to_fit();
      }
      out.state = JobState::Done;
      break;
    } catch (const TransientFault& e) {
      mark(out, submit_tp, "fault", e.what());
      trace::flight_event("job.fault", static_cast<std::int64_t>(id), attempt,
                          e.what());
      if (attempt <= spec.max_retries) {
        trace::counter("serve.retries").increment();
        if (options_.retry_backoff_seconds > 0 &&
            !cancel_flag->load(std::memory_order_relaxed)) {
          // Exponential: base, 2*base, 4*base, ... per consumed retry.
          const double backoff = options_.retry_backoff_seconds *
                                 static_cast<double>(1ull << (attempt - 1));
          mark(out, submit_tp, "backoff",
               std::to_string(backoff * 1e3) + " ms");
          const auto backoff_start = std::chrono::steady_clock::now();
          std::this_thread::sleep_for(
              std::chrono::duration<double>(backoff));
          const double slept = seconds_between(
              backoff_start, std::chrono::steady_clock::now());
          backoff_total += slept;
          trace::histogram("serve.retry_backoff_s").record(slept);
        }
        continue;
      }
      out.state = JobState::Failed;
      out.detail = e.what();
      break;
    } catch (const core::PipelineCancelled& e) {
      if (cancel_flag->load(std::memory_order_relaxed)) {
        out.state = JobState::Cancelled;
        out.detail = std::string("cancelled while running: ") + e.what();
      } else {
        out.state = JobState::TimedOut;
        out.detail = std::string("deadline expired while running: ") + e.what();
      }
      break;
    } catch (const std::exception& e) {
      out.state = JobState::Failed;
      out.detail = e.what();
      break;
    }
  }
  if (const std::uint64_t checks =
          cancel_checks->load(std::memory_order_relaxed);
      checks > 0) {
    mark(out, submit_tp, "cancel_checks", std::to_string(checks) + " checks");
  }
  out.run_seconds = seconds_between(start, std::chrono::steady_clock::now());
  out.exec_seconds = std::max(0.0, out.run_seconds - backoff_total);
}

}  // namespace hs::serve
