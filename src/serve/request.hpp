// JSON-lines request parsing for the serving layer.
//
// One request per line, e.g.
//
//   {"name":"j1","kind":"classify","priority":"high","deadline_ms":500,
//    "size":32,"bands":16,"se":1,"endmembers":4,"seed":7,"workers":2}
//   {"name":"scene","kind":"morphology","envi":"pines.hdr"}
//
// Recognized keys (all optional except "kind"):
//   name (string), kind ("morphology"|"classify"|"unmix"),
//   priority ("low"|"normal"|"high"), deadline_ms (number, 0 = none),
//   retries (number), envi (string header path), size / width / height /
//   bands / seed (numbers; synthetic scene), se (structuring element
//   radius), endmembers, workers, chunk_texel_budget, half (bool).
//
// Parsing reuses the strict RFC-8259 parser bundled with the trace sinks
// (trace/json_check.hpp); a malformed line yields a per-line error rather
// than aborting the batch, so a served request file degrades the same way
// the server itself does.
#pragma once

#include <climits>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/job.hpp"

namespace hs::serve {

/// Parses one JSON request line into a JobSpec. Returns nullopt and sets
/// `error` (when non-null) on malformed JSON, unknown keys, or bad values.
/// `source` labels the request's origin in the error message ("conn 3",
/// "requests.jsonl:7", ...) so batch-file and socket diagnostics both name
/// where the bad line came from; empty leaves the message bare.
std::optional<JobSpec> parse_request_line(std::string_view line,
                                          std::string* error = nullptr,
                                          std::string_view source = {});

/// A request parsed from a socket frame: the job plus the client's own
/// request id (the `"id"` key, echoed back on every response so a client
/// with many in-flight jobs can match results to requests). The id is a
/// wire-protocol concern only -- it never reaches the JobSpec, the
/// fingerprint, or the server.
struct ParsedRequest {
  JobSpec spec;
  std::uint64_t client_id = 0;
  bool has_client_id = false;
};

/// Frame-mode parser: the file schema plus the optional `"id"` key (a
/// non-negative integer). File mode keeps rejecting `"id"` -- there is no
/// response channel for it to name.
std::optional<ParsedRequest> parse_request_frame(std::string_view line,
                                                 std::string* error = nullptr,
                                                 std::string_view source = {});

/// Serializes a spec back into one request line that parse_request_line /
/// parse_request_frame accept, inverting the schema above: the round trip
/// preserves every JobSpec field (and therefore the job fingerprint).
/// The shard router uses this to forward an already-parsed job to a worker
/// process speaking the same protocol. `client_id` (frame mode) prepends
/// the "id" key so the worker echoes it on every response frame.
std::string to_request_line(const JobSpec& spec,
                            std::optional<std::uint64_t> client_id = {});

struct RequestBatch {
  std::vector<JobSpec> jobs;
  /// (1-based line number, message) for every rejected line. When the
  /// stream was read with a source name the message is already labeled
  /// "<source>:<line>: ...".
  std::vector<std::pair<int, std::string>> errors;
};

/// Reads a JSON-lines stream: blank lines and lines starting with '#' are
/// skipped; each remaining line must parse as a request. A non-empty
/// `source` (typically the file path) labels each error with
/// "<source>:<line>".
RequestBatch read_requests(std::istream& in, std::string_view source = {});

/// File wrapper; throws std::runtime_error when the file cannot be opened.
/// Errors come back labeled with "<path>:<line>".
RequestBatch read_request_file(const std::string& path);

/// Decoded `--fault substr[:n]` fault-injection spec (hsi-served).
struct FaultSpec {
  std::string substr;       ///< jobs whose name contains this are faulted
  int attempts = INT32_MAX; ///< fail the first n attempts (default: all)
};

/// Strict parser for `--fault substr[:n]`. The suffix after the LAST ':'
/// is an attempt count only when it is a complete base-10 digit string
/// (from_chars: no sign, no whitespace, no trailing junk, locale-free);
/// any other suffix keeps the whole argument as the substring, so job
/// names containing ':' still match. Returns nullopt -- with a message in
/// `error` -- for an empty argument, an empty substring (":3"), a zero
/// count, or a count that overflows int (stoi used to truncate "5x" to 5
/// and accept negatives silently).
std::optional<FaultSpec> parse_fault_spec(std::string_view arg,
                                          std::string* error = nullptr);

}  // namespace hs::serve
