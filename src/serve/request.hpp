// JSON-lines request parsing for the serving layer.
//
// One request per line, e.g.
//
//   {"name":"j1","kind":"classify","priority":"high","deadline_ms":500,
//    "size":32,"bands":16,"se":1,"endmembers":4,"seed":7,"workers":2}
//   {"name":"scene","kind":"morphology","envi":"pines.hdr"}
//
// Recognized keys (all optional except "kind"):
//   name (string), kind ("morphology"|"classify"|"unmix"),
//   priority ("low"|"normal"|"high"), deadline_ms (number, 0 = none),
//   retries (number), envi (string header path), size / width / height /
//   bands / seed (numbers; synthetic scene), se (structuring element
//   radius), endmembers, workers, chunk_texel_budget, half (bool).
//
// Parsing reuses the strict RFC-8259 parser bundled with the trace sinks
// (trace/json_check.hpp); a malformed line yields a per-line error rather
// than aborting the batch, so a served request file degrades the same way
// the server itself does.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/job.hpp"

namespace hs::serve {

/// Parses one JSON request line into a JobSpec. Returns nullopt and sets
/// `error` (when non-null) on malformed JSON, unknown keys, or bad values.
std::optional<JobSpec> parse_request_line(std::string_view line,
                                          std::string* error = nullptr);

struct RequestBatch {
  std::vector<JobSpec> jobs;
  /// (1-based line number, message) for every rejected line.
  std::vector<std::pair<int, std::string>> errors;
};

/// Reads a JSON-lines stream: blank lines and lines starting with '#' are
/// skipped; each remaining line must parse as a request.
RequestBatch read_requests(std::istream& in);

/// File wrapper; throws std::runtime_error when the file cannot be opened.
RequestBatch read_request_file(const std::string& path);

}  // namespace hs::serve
