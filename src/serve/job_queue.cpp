#include "serve/job_queue.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hs::serve {

namespace {

/// Pop order: higher priority first, then older (smaller seq) first.
bool before(const JobQueue::Entry& a, const JobQueue::Entry& b) {
  if (a.priority != b.priority) {
    return static_cast<int>(a.priority) > static_cast<int>(b.priority);
  }
  return a.seq < b.seq;
}

}  // namespace

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void JobQueue::push(const Entry& entry) {
  HS_ASSERT_MSG(!full(), "JobQueue::push on a full queue");
  const auto pos =
      std::upper_bound(entries_.begin(), entries_.end(), entry, before);
  entries_.insert(pos, entry);
}

std::optional<JobQueue::Entry> JobQueue::pop() {
  if (entries_.empty()) return std::nullopt;
  const Entry front = entries_.front();
  entries_.pop_front();
  return front;
}

std::optional<JobQueue::Entry> JobQueue::shed_victim() const {
  if (entries_.empty()) return std::nullopt;
  // Sorted priority desc / seq asc, so the victim (lowest priority,
  // youngest) is the last entry.
  return entries_.back();
}

bool JobQueue::remove(std::uint64_t id) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Entry& e) { return e.id == id; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

}  // namespace hs::serve
