// Bounded, priority-aware job queue for the serving layer.
//
// Ordering: strict priority classes, FIFO (submission order) inside a
// class -- the deterministic choice, so two runs of the same request
// sequence against a single-worker server execute jobs in the same order.
//
// Saturation policy: when the queue is full, an incoming job may *shed*
// the worst queued job (lowest priority, youngest within that priority)
// if and only if that victim's priority is strictly lower than the
// incoming job's; otherwise admission fails and the incoming job is the
// one rejected. Shedding the youngest victim preserves FIFO fairness for
// the work that stays.
//
// The queue is NOT thread-safe: the server serializes access under its
// own mutex, and unit tests drive it single-threaded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

#include "serve/job.hpp"

namespace hs::serve {

class JobQueue {
 public:
  /// Entry: a job id plus the ordering keys (the queue does not own specs).
  struct Entry {
    std::uint64_t id = 0;
    Priority priority = Priority::Normal;
    std::uint64_t seq = 0;  ///< submission sequence number (FIFO key)
  };

  /// `capacity` >= 1: the maximum number of queued (not in-flight) jobs.
  explicit JobQueue(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  bool full() const { return entries_.size() >= capacity_; }

  /// Admits an entry. Precondition: !full().
  void push(const Entry& entry);

  /// Removes and returns the highest-priority, oldest entry.
  std::optional<Entry> pop();

  /// The entry shedding would evict: the lowest-priority, *youngest*
  /// entry. Empty queue -> nullopt. Does not remove it.
  std::optional<Entry> shed_victim() const;

  /// Removes the entry with `id`; false when absent (already popped).
  bool remove(std::uint64_t id);

 private:
  std::size_t capacity_;
  std::deque<Entry> entries_;  ///< kept sorted: priority desc, seq asc
};

}  // namespace hs::serve
