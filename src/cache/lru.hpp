// Thread-safe, byte-budgeted LRU keyed by canonical fingerprints.
//
// The storage primitive under every cache level in `hs::cache`: entries
// are charged against a byte budget (value payload + key bytes + a fixed
// per-entry overhead), lookups refresh recency, and inserts evict from
// the cold end until the new entry fits. A zero budget disables the cache
// entirely -- every get() misses, every put() is dropped -- so callers
// can keep one unconditional code path.
//
// Concurrency: one mutex around the list + index. Cache values are
// returned by copy, so callers should store std::shared_ptr<const T>
// payloads; entries stay alive for readers even after eviction.
//
// Observability: per-instance Stats are always exact; in addition every
// hit/miss/eviction bumps the process-global `<prefix>.hit` / `.miss` /
// `.evict` trace counters and the byte/entry gauges `<prefix>.bytes` /
// `<prefix>.entries` (no-ops in an HS_TRACE=OFF build).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/fingerprint.hpp"
#include "trace/trace.hpp"

namespace hs::cache {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// put() calls dropped because a single entry exceeded the whole budget.
  std::uint64_t oversize = 0;
  std::uint64_t bytes = 0;     ///< currently resident, including overhead
  std::size_t entries = 0;
  std::uint64_t max_bytes = 0;  ///< 0 = the cache is disabled
};

template <typename Value>
class ByteBudgetLru {
 public:
  /// Fixed accounting overhead charged per entry on top of the key and
  /// the caller-reported value bytes.
  static constexpr std::uint64_t kEntryOverhead = 64;

  ByteBudgetLru(std::string counter_prefix, std::uint64_t max_bytes)
      : max_bytes_(max_bytes),
        hit_(&trace::counter(counter_prefix + ".hit")),
        miss_(&trace::counter(counter_prefix + ".miss")),
        evict_(&trace::counter(counter_prefix + ".evict")),
        bytes_gauge_(&trace::gauge(counter_prefix + ".bytes")),
        entries_gauge_(&trace::gauge(counter_prefix + ".entries")) {}

  bool enabled() const { return max_bytes_ > 0; }
  std::uint64_t max_bytes() const { return max_bytes_; }

  std::optional<Value> get(const Fingerprint& fp) {
    if (!enabled()) return std::nullopt;
    std::lock_guard<std::mutex> lk(mu_);
    auto* it = find_locked(fp);
    if (it == nullptr) {
      ++stats_.misses;
      miss_->increment();
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, *it);  // refresh recency
    ++stats_.hits;
    hit_->increment();
    return (*it)->value;
  }

  /// Inserts (or refreshes) an entry costing `value_bytes`. Drops the
  /// entry when it alone exceeds the budget; evicts cold entries until
  /// the rest fits.
  void put(const Fingerprint& fp, Value value, std::uint64_t value_bytes) {
    if (!enabled()) return;
    const std::uint64_t cost = value_bytes + fp.key.size() + kEntryOverhead;
    std::lock_guard<std::mutex> lk(mu_);
    if (cost > max_bytes_) {
      ++stats_.oversize;
      return;
    }
    if (auto* it = find_locked(fp)) {
      // Concurrent fill of the same key: keep the resident entry (both
      // producers computed identical content), just refresh recency.
      lru_.splice(lru_.begin(), lru_, *it);
      return;
    }
    while (stats_.bytes + cost > max_bytes_ && !lru_.empty()) {
      evict_back_locked();
    }
    lru_.push_front(Entry{fp, std::move(value), cost});
    index_[fp.digest].push_back(lru_.begin());
    stats_.bytes += cost;
    ++stats_.insertions;
    stats_.entries = lru_.size();
    publish_gauges_locked();
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    CacheStats s = stats_;
    s.max_bytes = max_bytes_;
    return s;
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    while (!lru_.empty()) evict_back_locked();
  }

 private:
  struct Entry {
    Fingerprint fp;
    Value value;
    std::uint64_t bytes = 0;
  };
  using Iter = typename std::list<Entry>::iterator;

  /// Returns the stored iterator slot for `fp`, or nullptr. Buckets by
  /// digest; equality is on the full canonical key.
  Iter* find_locked(const Fingerprint& fp) {
    const auto bucket = index_.find(fp.digest);
    if (bucket == index_.end()) return nullptr;
    for (Iter& it : bucket->second) {
      if (it->fp == fp) return &it;
    }
    return nullptr;
  }

  void evict_back_locked() {
    const Iter victim = std::prev(lru_.end());
    auto bucket = index_.find(victim->fp.digest);
    for (auto it = bucket->second.begin(); it != bucket->second.end(); ++it) {
      if (*it == victim) {
        bucket->second.erase(it);
        break;
      }
    }
    if (bucket->second.empty()) index_.erase(bucket);
    stats_.bytes -= victim->bytes;
    lru_.erase(victim);
    ++stats_.evictions;
    evict_->increment();
    stats_.entries = lru_.size();
    publish_gauges_locked();
  }

  void publish_gauges_locked() {
    bytes_gauge_->set(static_cast<double>(stats_.bytes));
    entries_gauge_->set(static_cast<double>(stats_.entries));
  }

  const std::uint64_t max_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::vector<Iter>> index_;
  CacheStats stats_;
  trace::Counter* hit_;
  trace::Counter* miss_;
  trace::Counter* evict_;
  trace::Gauge* bytes_gauge_;
  trace::Gauge* entries_gauge_;
};

}  // namespace hs::cache
