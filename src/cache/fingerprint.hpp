// Canonical content fingerprints for the caching layer (`hs::cache`).
//
// A Fingerprint is the content address of a cacheable artifact: a
// length-prefixed, type-tagged encoding of named fields plus its FNV-1a
// 64-bit digest (the same witness hash the serving layer already uses for
// output bit-identity). Two fingerprints are equal iff their canonical
// key bytes are equal -- the digest is only an index accelerator, never
// the identity, so hash collisions can degrade lookup speed but can never
// alias two different cache entries.
//
// Canonical form: every field is encoded as
//
//   [u32 name length][name bytes][u8 type tag][u32 payload length][payload]
//
// so ("ab", "c") and ("a", "bc") encode differently, integer 1 and bool
// true encode differently, and appending a field can never collide with a
// longer value of the previous field. Callers must emit fields in a fixed
// order (a fingerprint is a protocol, not a map).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace hs::cache {

/// FNV-1a 64-bit over a byte range; `seed` chains multiple ranges. Uses
/// the same offset basis/prime as the serve-layer output witness.
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = 14695981039346656037ull);

struct Fingerprint {
  std::vector<std::uint8_t> key;  ///< canonical encoded fields
  std::uint64_t digest = 0;       ///< fnv1a over `key`

  bool operator==(const Fingerprint& other) const { return key == other.key; }
  bool operator!=(const Fingerprint& other) const { return !(*this == other); }
};

/// Builder for canonical fingerprints. Field order is significant.
class Fingerprinter {
 public:
  Fingerprinter& field(std::string_view name, std::string_view value);
  Fingerprinter& field(std::string_view name, std::uint64_t value);
  Fingerprinter& field(std::string_view name, std::int64_t value);
  Fingerprinter& field(std::string_view name, bool value);
  /// Canonicalized by bit pattern with -0.0 normalized to 0.0, so equal
  /// doubles always fingerprint equally.
  Fingerprinter& field(std::string_view name, double value);
  /// Raw bytes (e.g. an already-canonical sub-key).
  Fingerprinter& field(std::string_view name, const void* data,
                       std::size_t bytes);

  Fingerprint finish() const;

 private:
  void tagged(std::string_view name, std::uint8_t type, const void* payload,
              std::size_t bytes);

  std::vector<std::uint8_t> key_;
};

}  // namespace hs::cache
