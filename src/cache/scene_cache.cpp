#include "cache/scene_cache.hpp"

#include "hsi/synthetic.hpp"

namespace hs::cache {

Fingerprint scene_fingerprint(const SceneKey& key) {
  return Fingerprinter{}
      .field("scene.width", static_cast<std::int64_t>(key.width))
      .field("scene.height", static_cast<std::int64_t>(key.height))
      .field("scene.bands", static_cast<std::int64_t>(key.bands))
      .field("scene.seed", key.seed)
      .finish();
}

SceneCache::SceneCache(std::uint64_t max_bytes)
    : lru_("cache.scenes", max_bytes) {}

std::shared_ptr<const hsi::HyperCube> SceneCache::get_or_generate(
    const SceneKey& key) {
  const Fingerprint fp = scene_fingerprint(key);
  if (auto hit = lru_.get(fp)) return *hit;

  hsi::SceneConfig cfg;
  cfg.width = key.width;
  cfg.height = key.height;
  cfg.bands = key.bands;
  cfg.seed = key.seed;
  auto cube = std::make_shared<const hsi::HyperCube>(
      hsi::generate_indian_pines_scene(cfg).cube);
  lru_.put(fp, cube, cube->raw().size() * sizeof(float));
  return cube;
}

}  // namespace hs::cache
