// Content-addressed pipeline-result cache.
//
// Stores the functional outcome of one completed pipeline job -- the
// output witness hash, the modeled-time/chunk echoes, and (optionally)
// the functional payloads -- keyed by a canonical job fingerprint
// (serve::job_fingerprint). A hit is bit-identical to a live run by
// construction: the entry *is* a live run's outputs, and the fingerprint
// covers every input that influences them.
//
// This layer is serve-agnostic on purpose: it knows nothing about job
// states, deadlines or priorities, only about the deterministic
// (fingerprint -> outputs) mapping. The serving layer decides what is
// cacheable (see serve::is_cacheable: ENVI-backed scenes are not, their
// bytes live outside the fingerprint) and what counts as a storable
// terminal state (Done only).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/lru.hpp"

namespace hs::cache {

/// The cacheable slice of a completed job result. Everything here is a
/// pure function of the job fingerprint (see job_fingerprint's contract).
struct CachedJobOutputs {
  double modeled_seconds = 0;
  std::size_t chunk_count = 0;
  /// Worker count of the run that populated the entry -- an echo of how
  /// the bits were produced, not part of the functional identity (the
  /// chunk-parallel determinism contract makes outputs workers-invariant).
  std::size_t pipeline_workers = 0;
  std::uint64_t output_hash = 0;  ///< FNV-1a witness over the outputs
  bool has_payloads = false;
  std::vector<float> mei;
  std::vector<int> labels;

  std::uint64_t payload_bytes() const {
    return sizeof(CachedJobOutputs) + mei.size() * sizeof(float) +
           labels.size() * sizeof(int);
  }
};

class ResultCache {
 public:
  /// `max_bytes` of 0 disables the cache.
  explicit ResultCache(std::uint64_t max_bytes);

  std::shared_ptr<const CachedJobOutputs> get(const Fingerprint& fp);
  void put(const Fingerprint& fp,
           std::shared_ptr<const CachedJobOutputs> outputs);

  bool enabled() const { return lru_.enabled(); }
  CacheStats stats() const { return lru_.stats(); }

 private:
  ByteBudgetLru<std::shared_ptr<const CachedJobOutputs>> lru_;
};

}  // namespace hs::cache
