#include "cache/result_cache.hpp"

#include <chrono>

#include "trace/histogram.hpp"

namespace hs::cache {

ResultCache::ResultCache(std::uint64_t max_bytes)
    : lru_("cache.results", max_bytes) {}

std::shared_ptr<const CachedJobOutputs> ResultCache::get(
    const Fingerprint& fp) {
  const auto begin = std::chrono::steady_clock::now();
  auto hit = lru_.get(fp);
  trace::histogram("cache.lookup_s")
      .record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            begin)
                  .count());
  return hit ? *hit : nullptr;
}

void ResultCache::put(const Fingerprint& fp,
                      std::shared_ptr<const CachedJobOutputs> outputs) {
  const std::uint64_t bytes = outputs->payload_bytes();
  lru_.put(fp, std::move(outputs), bytes);
}

}  // namespace hs::cache
