#include "cache/result_cache.hpp"

namespace hs::cache {

ResultCache::ResultCache(std::uint64_t max_bytes)
    : lru_("cache.results", max_bytes) {}

std::shared_ptr<const CachedJobOutputs> ResultCache::get(
    const Fingerprint& fp) {
  auto hit = lru_.get(fp);
  return hit ? *hit : nullptr;
}

void ResultCache::put(const Fingerprint& fp,
                      std::shared_ptr<const CachedJobOutputs> outputs) {
  const std::uint64_t bytes = outputs->payload_bytes();
  lru_.put(fp, std::move(outputs), bytes);
}

}  // namespace hs::cache
