#include "cache/fingerprint.hpp"

#include <cstring>

namespace hs::cache {

namespace {

enum FieldType : std::uint8_t {
  kString = 1,
  kUint = 2,
  kInt = 3,
  kBool = 4,
  kDouble = 5,
  kBytes = 6,
};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void Fingerprinter::tagged(std::string_view name, std::uint8_t type,
                           const void* payload, std::size_t bytes) {
  put_u32(key_, static_cast<std::uint32_t>(name.size()));
  key_.insert(key_.end(), name.begin(), name.end());
  key_.push_back(type);
  put_u32(key_, static_cast<std::uint32_t>(bytes));
  const auto* p = static_cast<const std::uint8_t*>(payload);
  key_.insert(key_.end(), p, p + bytes);
}

Fingerprinter& Fingerprinter::field(std::string_view name,
                                    std::string_view value) {
  tagged(name, kString, value.data(), value.size());
  return *this;
}

Fingerprinter& Fingerprinter::field(std::string_view name,
                                    std::uint64_t value) {
  std::vector<std::uint8_t> tmp;
  put_u64(tmp, value);
  tagged(name, kUint, tmp.data(), tmp.size());
  return *this;
}

Fingerprinter& Fingerprinter::field(std::string_view name,
                                    std::int64_t value) {
  std::vector<std::uint8_t> tmp;
  put_u64(tmp, static_cast<std::uint64_t>(value));
  tagged(name, kInt, tmp.data(), tmp.size());
  return *this;
}

Fingerprinter& Fingerprinter::field(std::string_view name, bool value) {
  const std::uint8_t v = value ? 1 : 0;
  tagged(name, kBool, &v, 1);
  return *this;
}

Fingerprinter& Fingerprinter::field(std::string_view name, double value) {
  if (value == 0.0) value = 0.0;  // -0.0 and 0.0 compare equal: same bits
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  std::vector<std::uint8_t> tmp;
  put_u64(tmp, bits);
  tagged(name, kDouble, tmp.data(), tmp.size());
  return *this;
}

Fingerprinter& Fingerprinter::field(std::string_view name, const void* data,
                                    std::size_t bytes) {
  tagged(name, kBytes, data, bytes);
  return *this;
}

Fingerprint Fingerprinter::finish() const {
  Fingerprint fp;
  fp.key = key_;
  fp.digest = fnv1a(fp.key.data(), fp.key.size());
  return fp;
}

}  // namespace hs::cache
