// Synthetic-scene memo cache.
//
// The serving layer regenerates a deterministic Indian-Pines-like scene
// from (width, height, bands, seed) for every synthetic job -- for
// repeated requests that is pure waste (generation is O(pixels * bands)
// and fully determined by the key). This cache memoizes the generated
// cube behind a byte-budgeted LRU; hits return a shared immutable cube
// that concurrent pipeline runs can read without copying.
//
// Bit-identity: generation is deterministic in the key, so a cached cube
// is the same bits a fresh generation would produce -- verified by
// tests/test_cache.cpp.
#pragma once

#include <cstdint>
#include <memory>

#include "cache/lru.hpp"
#include "hsi/cube.hpp"

namespace hs::cache {

/// The full functional identity of a synthetic serve scene. Generation
/// parameters beyond these (field scale, SNR, ...) are fixed defaults in
/// the serving layer; widen the key if they ever become job inputs.
struct SceneKey {
  int width = 0;
  int height = 0;
  int bands = 0;
  std::uint64_t seed = 0;
};

Fingerprint scene_fingerprint(const SceneKey& key);

class SceneCache {
 public:
  /// `max_bytes` of 0 disables memoization (every call generates).
  explicit SceneCache(std::uint64_t max_bytes);

  /// Returns the memoized cube for `key`, generating (and inserting) on a
  /// miss. Generation runs outside the cache lock; two concurrent misses
  /// on one key may both generate, but produce identical bits and the
  /// first insert wins.
  std::shared_ptr<const hsi::HyperCube> get_or_generate(const SceneKey& key);

  bool enabled() const { return lru_.enabled(); }
  CacheStats stats() const { return lru_.stats(); }

 private:
  ByteBudgetLru<std::shared_ptr<const hsi::HyperCube>> lru_;
};

}  // namespace hs::cache
