// Wire protocol for the TCP front door ("hs.net.v1").
//
// Every frame, both directions, is one JSON object per line (frame.hpp
// handles the byte-level splitting). Client -> server frames are the
// serve/request.hpp schema plus an optional "id" key the client chooses;
// server -> client frames carry a "type" discriminator:
//
//   {"type":"hello","proto":"hs.net.v1","max_frame_bytes":N}
//       sent once when the connection opens.
//   {"type":"result","job":J,"id":C,"name":...,"state":"Done"|"Failed"|
//    "TimedOut"|"Cancelled","detail":...,"attempts":n,"cached":b,
//    "queue_ms":..,"run_ms":..,"exec_ms":..,"modeled_ms":..,"chunks":..,
//    "output_hash":"<hex>"}
//       the job's terminal state, streamed when it completes. "id" is
//       present only when the request carried one.
//   {"type":"reject","code":429,"job":J,"id":C,"state":"Rejected",
//    "error":reason,"retry_after_ms":R}
//       admission control said no (queue full, over budget, shed, server
//       draining). retry_after_ms is a backoff hint derived from current
//       queue depth and observed service times -- load shedding degrades
//       to a structured response, never a dropped request.
//   {"type":"error","error":msg,"fatal":b}
//       a malformed or oversized frame; fatal means the server closes the
//       connection after flushing.
//   {"type":"progress","job":J,"id":C,"chunks":n}
//       optional per-chunk-boundary progress, when the server enables it.
//
// The builders below emit frames (terminating '\n' included) that the
// bundled strict RFC-8259 parser accepts; parse_response_frame is the
// client-side decoder used by hsi-loadgen, the tests, and anyone scripting
// against the wire.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "serve/job.hpp"

namespace hs::net {

inline constexpr const char* kProtocolName = "hs.net.v1";

/// JSON string escaping for frame payloads (RFC 8259 minimal set).
std::string json_escape(std::string_view s);

std::string hello_frame(std::size_t max_frame_bytes);
std::string result_frame(const serve::JobResult& result, bool has_client_id,
                         std::uint64_t client_id);
std::string reject_frame(std::uint64_t job_id, bool has_client_id,
                         std::uint64_t client_id, std::string_view name,
                         std::string_view reason, double retry_after_ms);
std::string error_frame(std::string_view message, bool fatal);
std::string progress_frame(std::uint64_t job_id, bool has_client_id,
                           std::uint64_t client_id, std::uint64_t chunks);

/// Decoded server -> client frame; fields are meaningful per `type` as
/// documented above. Unset numerics stay 0 and unset strings empty.
struct Response {
  std::string type;
  std::uint64_t job = 0;
  std::uint64_t client_id = 0;
  bool has_client_id = false;
  std::string state;
  std::string name;
  std::string detail;
  std::string error;
  std::string output_hash;  ///< lowercase hex, as printed by the server
  int code = 0;
  double retry_after_ms = 0;
  int attempts = 0;
  bool cached = false;
  bool fatal = false;
  double queue_ms = 0;
  double run_ms = 0;
  double exec_ms = 0;
  double modeled_ms = 0;
  std::uint64_t chunks = 0;

  /// True for the two frame types that end a request's life.
  bool terminal() const { return type == "result" || type == "reject"; }
};

/// Parses one server frame; nullopt + error on malformed JSON or a frame
/// without a recognized "type".
std::optional<Response> parse_response_frame(std::string_view line,
                                             std::string* error = nullptr);

/// Strict TCP port parse: all digits consumed, value in [0, 65535]
/// (0 means "pick an ephemeral port" where accepted). nullopt otherwise.
std::optional<int> parse_port(std::string_view text);

}  // namespace hs::net
