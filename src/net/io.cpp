#include "net/io.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstddef>

namespace hs::net {

bool send_all_bounded(int fd, std::string_view frame, int timeout_ms) {
  std::size_t off = 0;
  int waits_ms_left = timeout_ms;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (waits_ms_left <= 0) return false;
      // Short poll slices keep the worst-case stall close to timeout_ms
      // even if POLLOUT keeps firing with room for only a byte or two.
      const int slice = waits_ms_left < 20 ? waits_ms_left : 20;
      pollfd p{fd, POLLOUT, 0};
      const int r = ::poll(&p, 1, slice);
      if (r < 0 && errno != EINTR) return false;
      waits_ms_left -= slice;
      continue;
    }
    return false;  // broken pipe / reset: nothing more to say to this peer
  }
  return true;
}

}  // namespace hs::net
