// TCP front door for the serving layer (`hs::net::NetServer`).
//
// A poll(2)-based event loop in front of a `serve::JobBackend` (the
// in-process `serve::Server`, or a `shard::Router` fanning out to worker
// processes):
// persistent connections speak newline-delimited JSON frames
// (protocol.hpp) over loopback or LAN, submitting the serve/request.hpp
// schema and streaming back each job's terminal JobResult (plus optional
// per-chunk progress) as it completes -- request order and completion
// order are independent, which is the point of tagging frames with the
// client's request id.
//
// Architecture: one event-loop thread owns every socket and all
// per-connection state; nothing else touches an fd. Job completions and
// progress ticks arrive from serve worker threads through the Server's
// on_terminal/on_progress hooks, which append to a mutex-guarded event
// queue and wake the loop through a self-pipe -- the only cross-thread
// hand-off in the layer. Because a frame's route (job id -> connection)
// is registered inside the same loop iteration that called submit(),
// before the queue is next drained, a completion can never outrun its
// route.
//
// Per-connection state machine and degradation rules:
//   * partial reads/writes are the normal case: FrameReader accumulates
//     request bytes, a bounded out-buffer absorbs response bytes, and the
//     loop only subscribes to POLLOUT while that buffer is non-empty;
//   * flow control: a connection with too many in-flight jobs or too
//     large an unread response backlog stops being polled for reads (the
//     kernel socket buffer then pushes back on the client); reads resume
//     when it drains below the caps;
//   * a malformed frame gets a structured error response and the
//     connection lives on (close_on_bad_frame makes it fatal); an
//     oversized frame is fatal after the error flushes, since the stream
//     has already been resynchronized by discarding unknown bytes;
//   * admission rejections (queue full, over budget, shed, draining)
//     become 429-style reject frames with a retry_after_ms hint derived
//     from queue depth x observed mean service time -- shedding is a
//     response, never a silent drop;
//   * a client disconnect with jobs in flight orphans those jobs: they
//     still run to exactly one terminal state inside the Server; the
//     results are counted (orphaned_results) and discarded.
//
// Shutdown: request_stop(drain) is async-signal-safe (atomics + one
// self-pipe write), so a SIGTERM handler may call it directly. Drain mode
// stops accepting connections and reading frames, waits for every routed
// job to terminalize and every response to flush, then closes; non-drain
// closes immediately (jobs keep running inside the Server).
//
// Telemetry: net.* counters (accepted/closed connections, frames in/bad/
// oversized, bytes in/out, submitted/rejected jobs, responses, orphans,
// flow-control pauses), a net.connections.active gauge, and the
// connection-lifecycle histograms net.conn.lifetime_s and
// net.request_total_s (frame in -> terminal response queued). Stats
// mirrors the counters exactly in every build, HS_TRACE or not.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "serve/backend.hpp"

namespace hs::net {

struct NetServerOptions {
  /// Listen address; the default only accepts loopback clients.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  int port = 0;
  int backlog = 64;
  /// Accepted connections beyond this are told "busy" and closed.
  std::size_t max_connections = 256;
  /// Hard per-frame byte bound (requests are one JSON line).
  std::size_t max_frame_bytes = 1 << 20;
  /// Flow control: stop reading a connection with this many unfinished
  /// jobs...
  std::size_t max_inflight_per_conn = 32;
  /// ...or this many unread response bytes buffered for it.
  std::size_t max_write_backlog_bytes = 1 << 22;
  /// Stream {"type":"progress"} frames at pipeline chunk boundaries.
  bool progress_events = false;
  /// Treat malformed (non-oversized) frames as fatal for the connection.
  bool close_on_bad_frame = false;
  /// Bounds for the 429 retry_after_ms hint.
  double retry_after_floor_ms = 25;
  double retry_after_ceil_ms = 60000;
};

class NetServer {
 public:
  /// Exact, always-on mirror of the net.* counters.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t frames = 0;
    std::uint64_t bad_frames = 0;
    std::uint64_t oversized_frames = 0;
    std::uint64_t truncated_frames = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t results_sent = 0;
    std::uint64_t progress_sent = 0;
    std::uint64_t orphaned_results = 0;
    std::uint64_t flow_pauses = 0;
  };

  /// Binds and listens immediately (throws std::runtime_error with the
  /// errno text on failure -- port in use, bad address), and installs the
  /// on_terminal/on_progress hooks on `backend`. The backend -- an
  /// in-process serve::Server or a shard::Router fronting N worker
  /// processes -- must outlive this object, which detaches its hooks on
  /// destruction; one front door per backend at a time.
  NetServer(serve::JobBackend& backend, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (resolves option port 0 to the kernel's choice).
  int port() const { return port_; }

  /// Runs the event loop on the calling thread until request_stop().
  void run();

  /// Runs the event loop on a background thread (tests, in-process use).
  void start();

  /// Requests stop and, when start() was used, joins the loop thread.
  void stop(bool drain);

  /// Async-signal-safe stop request (atomics + one pipe write). The first
  /// call's drain mode wins.
  void request_stop(bool drain);

  Stats stats() const;
  std::size_t open_connections() const;

 private:
  struct PendingJob {
    std::uint64_t client_id = 0;
    bool has_client_id = false;
    std::chrono::steady_clock::time_point received;
  };

  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    FrameReader reader;
    std::string outbuf;        ///< bytes not yet written
    std::size_t outbuf_off = 0;
    std::map<std::uint64_t, PendingJob> inflight;  ///< job id -> tag
    bool paused = false;    ///< reads suspended by flow control
    bool closing = false;   ///< flush outbuf, then close
    bool read_eof = false;  ///< client half-closed; flush results, then close
    std::chrono::steady_clock::time_point opened;

    Connection(int f, std::uint64_t i, std::size_t max_frame)
        : fd(f), id(i), reader(max_frame),
          opened(std::chrono::steady_clock::now()) {}
  };

  /// One completion or progress tick crossing from serve worker threads
  /// into the loop thread.
  struct JobEvent {
    bool is_progress = false;
    serve::JobResult result;   ///< terminal events
    std::uint64_t job_id = 0;  ///< progress events
    std::uint64_t checks = 0;
  };

  /// The cross-thread hand-off, shared by the hooks (which may outlive
  /// this object inside still-running jobs) and the loop.
  struct SharedQueue {
    std::mutex mu;
    std::deque<JobEvent> events;
    int wake_fd = -1;      ///< self-pipe write end; guarded by mu
    bool open = true;      ///< false once the NetServer is gone
  };

  void loop();
  void drain_events();
  void accept_clients();
  void read_connection(Connection& conn);
  void drain_reader(Connection& conn);
  void write_connection(Connection& conn);
  void handle_frame(Connection& conn, const std::string& text);
  void deliver_terminal(const serve::JobResult& result);
  void queue_response(Connection& conn, std::string frame);
  void update_flow_control(Connection& conn);
  void close_connection(int fd, const char* why);
  double retry_after_ms() const;

  serve::JobBackend& backend_;
  NetServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;  ///< raw copy for the signal-safe path
  std::shared_ptr<SharedQueue> queue_;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_requested_{true};
  std::atomic<bool> stop_latched_{false};  ///< first request_stop wins

  // Loop-thread state.
  std::map<int, Connection> conns_;       ///< fd -> connection
  std::map<std::uint64_t, int> routes_;   ///< job id -> fd
  std::set<std::uint64_t> orphaned_;      ///< net jobs whose client left
  std::uint64_t next_conn_id_ = 1;
  double ewma_exec_ms_ = 50;  ///< seeds the retry-after hint

  // Stats mirror (atomics: stats() may be called from any thread).
  struct AtomicStats {
    std::atomic<std::uint64_t> accepted{0}, closed{0}, frames{0},
        bad_frames{0}, oversized_frames{0}, truncated_frames{0}, bytes_in{0},
        bytes_out{0}, submitted{0}, rejected{0}, results_sent{0},
        progress_sent{0}, orphaned_results{0}, flow_pauses{0};
  } stats_;
  std::atomic<std::size_t> open_conns_{0};
};

}  // namespace hs::net
