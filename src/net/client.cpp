#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace hs::net {

namespace {

void set_error(std::string* error, const std::string& text) {
  if (error) *error = text;
}

}  // namespace

bool Client::connect(const std::string& host, int port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    set_error(error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    set_error(error, "bad address: " + host);
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, std::string("connect: ") + std::strerror(errno));
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool Client::send_line(std::string_view line, std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return false;
  }
  std::string frame(line);
  if (frame.empty() || frame.back() != '\n') frame += '\n';
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    set_error(error, std::string("send: ") + std::strerror(errno));
    close();
    return false;
  }
  return true;
}

void Client::shutdown_writes() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

std::optional<std::string> Client::read_frame(double timeout_seconds,
                                              std::string* error) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    while (auto ev = reader_.next()) {
      if (ev->kind == FrameEvent::Kind::Frame) return ev->text;
      set_error(error, ev->kind == FrameEvent::Kind::Oversized
                           ? "oversized frame from server"
                           : "truncated frame from server");
      return std::nullopt;
    }
    if (fd_ < 0) {
      set_error(error, "eof");
      return std::nullopt;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      set_error(error, "timeout");
      return std::nullopt;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) {
      set_error(error, rc == 0 ? "timeout"
                               : std::string("poll: ") + std::strerror(errno));
      return std::nullopt;
    }
    char buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.feed(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      reader_.finish();
      close();  // loop once more: a final buffered frame may remain
    } else if (errno != EINTR) {
      set_error(error, std::string("recv: ") + std::strerror(errno));
      close();
      return std::nullopt;
    }
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace hs::net
