#include "net/protocol.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "trace/json_check.hpp"

namespace hs::net {

namespace {

using trace::json::Value;

/// Doubles are printed with enough digits to round-trip small latencies;
/// the strict parser re-reads them as plain JSON numbers.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_kv(std::string& out, const char* key, std::string_view value) {
  out += '"';
  out += key;
  out += "\":\"";
  out += json_escape(value);
  out += '"';
}

std::string hex_hash(std::uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hello_frame(std::size_t max_frame_bytes) {
  std::string out = "{\"type\":\"hello\",";
  append_kv(out, "proto", kProtocolName);
  out += ",\"max_frame_bytes\":" + std::to_string(max_frame_bytes) + "}\n";
  return out;
}

std::string result_frame(const serve::JobResult& result, bool has_client_id,
                         std::uint64_t client_id) {
  std::string out = "{\"type\":\"result\",\"job\":" + std::to_string(result.id);
  if (has_client_id) out += ",\"id\":" + std::to_string(client_id);
  out += ',';
  append_kv(out, "name", result.name);
  out += ',';
  append_kv(out, "kind", to_string(result.kind));
  out += ',';
  append_kv(out, "state", to_string(result.state));
  out += ',';
  append_kv(out, "detail", result.detail);
  out += ",\"attempts\":" + std::to_string(result.attempts);
  out += ",\"cached\":";
  out += result.cached ? "true" : "false";
  out += ",\"queue_ms\":";
  append_number(out, result.queue_seconds * 1e3);
  out += ",\"run_ms\":";
  append_number(out, result.run_seconds * 1e3);
  out += ",\"exec_ms\":";
  append_number(out, result.exec_seconds * 1e3);
  out += ",\"modeled_ms\":";
  append_number(out, result.modeled_seconds * 1e3);
  out += ",\"chunks\":" + std::to_string(result.chunk_count);
  out += ',';
  append_kv(out, "output_hash", hex_hash(result.output_hash));
  out += "}\n";
  return out;
}

std::string reject_frame(std::uint64_t job_id, bool has_client_id,
                         std::uint64_t client_id, std::string_view name,
                         std::string_view reason, double retry_after_ms) {
  std::string out =
      "{\"type\":\"reject\",\"code\":429,\"job\":" + std::to_string(job_id);
  if (has_client_id) out += ",\"id\":" + std::to_string(client_id);
  out += ',';
  append_kv(out, "name", name);
  out += ',';
  append_kv(out, "state", "rejected");
  out += ',';
  append_kv(out, "error", reason);
  out += ",\"retry_after_ms\":";
  append_number(out, retry_after_ms);
  out += "}\n";
  return out;
}

std::string error_frame(std::string_view message, bool fatal) {
  std::string out = "{\"type\":\"error\",";
  append_kv(out, "error", message);
  out += ",\"fatal\":";
  out += fatal ? "true" : "false";
  out += "}\n";
  return out;
}

std::string progress_frame(std::uint64_t job_id, bool has_client_id,
                           std::uint64_t client_id, std::uint64_t chunks) {
  std::string out =
      "{\"type\":\"progress\",\"job\":" + std::to_string(job_id);
  if (has_client_id) out += ",\"id\":" + std::to_string(client_id);
  out += ",\"chunks\":" + std::to_string(chunks) + "}\n";
  return out;
}

std::optional<Response> parse_response_frame(std::string_view line,
                                             std::string* error) {
  std::string parse_error;
  const auto doc = trace::json::parse(line, &parse_error);
  if (!doc) {
    if (error) *error = "invalid JSON: " + parse_error;
    return std::nullopt;
  }
  if (!doc->is(Value::Kind::Object)) {
    if (error) *error = "response must be a JSON object";
    return std::nullopt;
  }
  Response r;
  for (const auto& [key, value] : doc->object) {
    if (key == "type" && value.is(Value::Kind::String)) {
      r.type = value.string;
    } else if (key == "job" && value.is(Value::Kind::Number)) {
      r.job = static_cast<std::uint64_t>(value.number);
    } else if (key == "id" && value.is(Value::Kind::Number)) {
      r.client_id = static_cast<std::uint64_t>(value.number);
      r.has_client_id = true;
    } else if (key == "state" && value.is(Value::Kind::String)) {
      r.state = value.string;
    } else if (key == "name" && value.is(Value::Kind::String)) {
      r.name = value.string;
    } else if (key == "detail" && value.is(Value::Kind::String)) {
      r.detail = value.string;
    } else if (key == "error" && value.is(Value::Kind::String)) {
      r.error = value.string;
    } else if (key == "output_hash" && value.is(Value::Kind::String)) {
      r.output_hash = value.string;
    } else if (key == "code" && value.is(Value::Kind::Number)) {
      r.code = static_cast<int>(value.number);
    } else if (key == "retry_after_ms" && value.is(Value::Kind::Number)) {
      r.retry_after_ms = value.number;
    } else if (key == "attempts" && value.is(Value::Kind::Number)) {
      r.attempts = static_cast<int>(value.number);
    } else if (key == "cached" && value.is(Value::Kind::Bool)) {
      r.cached = value.boolean;
    } else if (key == "fatal" && value.is(Value::Kind::Bool)) {
      r.fatal = value.boolean;
    } else if (key == "queue_ms" && value.is(Value::Kind::Number)) {
      r.queue_ms = value.number;
    } else if (key == "run_ms" && value.is(Value::Kind::Number)) {
      r.run_ms = value.number;
    } else if (key == "exec_ms" && value.is(Value::Kind::Number)) {
      r.exec_ms = value.number;
    } else if (key == "modeled_ms" && value.is(Value::Kind::Number)) {
      r.modeled_ms = value.number;
    } else if (key == "chunks" && value.is(Value::Kind::Number)) {
      r.chunks = static_cast<std::uint64_t>(value.number);
    }
    // Unknown keys are skipped: the response schema may grow and older
    // clients keep working.
  }
  if (r.type.empty()) {
    if (error) *error = "response frame has no 'type'";
    return std::nullopt;
  }
  return r;
}

std::optional<int> parse_port(std::string_view text) {
  if (text.empty() || text.size() > 5) return std::nullopt;
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  if (value < 0 || value > 65535) return std::nullopt;
  return value;
}

}  // namespace hs::net
