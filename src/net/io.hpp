// Small blocking-ish socket I/O helpers shared by the net layer.
#pragma once

#include <string_view>

namespace hs::net {

/// Writes the whole frame to a (possibly nonblocking) socket, retrying
/// partial writes and EINTR and waiting -- bounded -- for POLLOUT on
/// EAGAIN. A single ::send is not enough for fire-and-close frames like
/// the accept-time busy reject: accept4 hands out SOCK_NONBLOCK sockets,
/// so a short write or a full socket buffer would truncate the frame and
/// the peer would see a framing error instead of the structured response.
/// Gives up after roughly `timeout_ms` of cumulative waiting so the caller
/// (the accept loop) can never be wedged by an unreadable peer. Returns
/// true when every byte was handed to the kernel.
bool send_all_bounded(int fd, std::string_view frame, int timeout_ms);

}  // namespace hs::net
