#include "net/net_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "net/io.hpp"
#include "net/protocol.hpp"
#include "serve/request.hpp"
#include "trace/histogram.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"

namespace hs::net {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t)
      .count();
}

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

NetServer::NetServer(serve::JobBackend& backend, NetServerOptions options)
    : backend_(backend), options_(std::move(options)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error(errno_text("socket"));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string msg = errno_text(
        ("cannot bind " + options_.bind_address + ":" +
         std::to_string(options_.port))
            .c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(msg);
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const std::string msg = errno_text("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(msg);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  int pipe_fds[2] = {-1, -1};
  if (::pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
    const std::string msg = errno_text("pipe2");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(msg);
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  queue_ = std::make_shared<SharedQueue>();
  queue_->wake_fd = wake_write_fd_;

  // The hooks own only the shared queue: a job still running after this
  // NetServer dies finds open == false and drops its event.
  const std::shared_ptr<SharedQueue> q = queue_;
  backend_.set_on_terminal([q](const serve::JobResult& result) {
    std::lock_guard<std::mutex> lk(q->mu);
    if (!q->open) return;
    JobEvent ev;
    ev.result = result;
    q->events.push_back(std::move(ev));
    const char b = 'e';
    [[maybe_unused]] const auto n = ::write(q->wake_fd, &b, 1);
  });
  if (options_.progress_events) {
    backend_.set_on_progress([q](std::uint64_t id, std::uint64_t checks) {
      std::lock_guard<std::mutex> lk(q->mu);
      if (!q->open) return;
      JobEvent ev;
      ev.is_progress = true;
      ev.job_id = id;
      ev.checks = checks;
      q->events.push_back(std::move(ev));
      const char b = 'p';
      [[maybe_unused]] const auto n = ::write(q->wake_fd, &b, 1);
    });
  }
  util::logkv(util::LogLevel::Info, "net: listening",
              {{"addr", options_.bind_address},
               {"port", static_cast<std::int64_t>(port_)}});
}

NetServer::~NetServer() {
  request_stop(/*drain=*/false);
  if (thread_.joinable()) thread_.join();
  // Detach the hooks before tearing down the queue: set_on_terminal blocks
  // until an in-flight invocation has left the callback.
  backend_.set_on_terminal(nullptr);
  backend_.set_on_progress(nullptr);
  {
    std::lock_guard<std::mutex> lk(queue_->mu);
    queue_->open = false;
    queue_->wake_fd = -1;
  }
  ::close(wake_write_fd_);
  ::close(wake_read_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
}

void NetServer::run() { loop(); }

void NetServer::start() {
  thread_ = std::thread([this] { loop(); });
}

void NetServer::stop(bool drain) {
  request_stop(drain);
  if (thread_.joinable()) thread_.join();
}

void NetServer::request_stop(bool drain) {
  bool expected = false;
  if (stop_latched_.compare_exchange_strong(expected, true)) {
    drain_requested_.store(drain, std::memory_order_relaxed);
  }
  stop_requested_.store(true, std::memory_order_release);
  const char b = 's';
  [[maybe_unused]] const auto n = ::write(wake_write_fd_, &b, 1);
}

NetServer::Stats NetServer::stats() const {
  Stats s;
  s.accepted = stats_.accepted.load(std::memory_order_relaxed);
  s.closed = stats_.closed.load(std::memory_order_relaxed);
  s.frames = stats_.frames.load(std::memory_order_relaxed);
  s.bad_frames = stats_.bad_frames.load(std::memory_order_relaxed);
  s.oversized_frames = stats_.oversized_frames.load(std::memory_order_relaxed);
  s.truncated_frames = stats_.truncated_frames.load(std::memory_order_relaxed);
  s.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  s.submitted = stats_.submitted.load(std::memory_order_relaxed);
  s.rejected = stats_.rejected.load(std::memory_order_relaxed);
  s.results_sent = stats_.results_sent.load(std::memory_order_relaxed);
  s.progress_sent = stats_.progress_sent.load(std::memory_order_relaxed);
  s.orphaned_results =
      stats_.orphaned_results.load(std::memory_order_relaxed);
  s.flow_pauses = stats_.flow_pauses.load(std::memory_order_relaxed);
  return s;
}

std::size_t NetServer::open_connections() const {
  return open_conns_.load(std::memory_order_relaxed);
}

double NetServer::retry_after_ms() const {
  const double depth = static_cast<double>(backend_.queue_depth());
  const double hint = (depth + 1) * ewma_exec_ms_;
  return std::clamp(hint, options_.retry_after_floor_ms,
                    options_.retry_after_ceil_ms);
}

void NetServer::loop() {
  std::vector<pollfd> fds;
  for (;;) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    const bool draining = drain_requested_.load(std::memory_order_relaxed);
    if (stopping) {
      if (listen_fd_ >= 0) {  // release the port as soon as we stop
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      if (!draining) {
        while (!conns_.empty()) {
          close_connection(conns_.begin()->first, "shutdown");
        }
        return;
      }
      bool pending_events;
      {
        std::lock_guard<std::mutex> lk(queue_->mu);
        pending_events = !queue_->events.empty();
      }
      bool flushed = routes_.empty() && !pending_events;
      for (const auto& [fd, conn] : conns_) {
        if (conn.outbuf.size() > conn.outbuf_off) flushed = false;
      }
      if (flushed) {
        while (!conns_.empty()) {
          close_connection(conns_.begin()->first, "drained");
        }
        return;
      }
    }

    fds.clear();
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    // Poll the listen socket even at the connection cap: accept_clients
    // answers over-limit peers with the structured busy reject and closes
    // them. Leaving them in the kernel backlog would make them hang
    // silently until a slot frees instead of hearing "busy" promptly.
    const bool accepting = !stopping && listen_fd_ >= 0;
    if (accepting) fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      short events = 0;
      if (!stopping && !conn.paused && !conn.closing && !conn.read_eof) {
        events |= POLLIN;
      }
      if (conn.outbuf.size() > conn.outbuf_off) events |= POLLOUT;
      fds.push_back(pollfd{fd, events, 0});
    }

    // 100 ms cap: a safety net for missed wakeups and the drain recheck.
    ::poll(fds.data(), fds.size(), 100);

    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    drain_events();

    std::size_t i = 1;
    if (accepting) {
      if (fds[i].revents & POLLIN) accept_clients();
      ++i;
    }
    for (; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      const short re = fds[i].revents;
      if (re == 0) continue;
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      if ((re & (POLLERR | POLLNVAL)) ||
          ((re & POLLHUP) && !(re & POLLIN))) {
        close_connection(fd, "socket error");
        continue;
      }
      if (re & POLLIN) read_connection(it->second);
      it = conns_.find(fd);
      if (it != conns_.end() && (re & POLLOUT)) write_connection(it->second);
    }

    // Connections that flow control just resumed (drain_events above
    // delivered their terminals) may hold frames split off an earlier
    // recv batch; process them now -- the client may be idle waiting on
    // those responses, so no POLLIN will arrive to trigger it.
    if (!stopping) {
      for (auto& [fd, conn] : conns_) {
        if (!conn.paused && !conn.closing) drain_reader(conn);
      }
    }

    // Sweep: half-closed clients linger only while results are still
    // owed; closing connections go once their out-buffer flushes.
    std::vector<int> done;
    for (const auto& [fd, conn] : conns_) {
      const bool flushed = conn.outbuf.size() <= conn.outbuf_off;
      if (flushed && (conn.closing ||
                      (conn.read_eof && conn.inflight.empty()))) {
        done.push_back(fd);
      }
    }
    for (const int fd : done) {
      close_connection(fd, conns_.at(fd).closing ? "closed" : "client closed");
    }
  }
}

void NetServer::drain_events() {
  std::deque<JobEvent> events;
  {
    std::lock_guard<std::mutex> lk(queue_->mu);
    events.swap(queue_->events);
  }
  for (JobEvent& ev : events) {
    if (ev.is_progress) {
      const auto route = routes_.find(ev.job_id);
      if (route == routes_.end()) continue;
      auto it = conns_.find(route->second);
      if (it == conns_.end()) continue;
      Connection& conn = it->second;
      const PendingJob& tag = conn.inflight.at(ev.job_id);
      stats_.progress_sent.fetch_add(1, std::memory_order_relaxed);
      trace::counter("net.progress.out").increment();
      queue_response(conn, progress_frame(ev.job_id, tag.has_client_id,
                                          tag.client_id, ev.checks));
    } else {
      deliver_terminal(ev.result);
    }
  }
}

void NetServer::deliver_terminal(const serve::JobResult& result) {
  const auto route = routes_.find(result.id);
  if (route == routes_.end()) {
    if (orphaned_.erase(result.id) > 0) {
      stats_.orphaned_results.fetch_add(1, std::memory_order_relaxed);
      trace::counter("net.results.orphaned").increment();
    }
    // Otherwise: not a net-submitted job (file mode, another front door)
    // or already answered synchronously at submit time.
    return;
  }
  const int fd = route->second;
  routes_.erase(route);
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  const auto tag_it = conn.inflight.find(result.id);
  if (tag_it == conn.inflight.end()) return;
  const PendingJob tag = tag_it->second;
  conn.inflight.erase(tag_it);

  trace::histogram("net.request_total_s").record(seconds_since(tag.received));
  if (result.state == serve::JobState::Done && result.exec_seconds > 0) {
    // Feeds the 429 retry-after hint: recent mean service time.
    ewma_exec_ms_ = 0.8 * ewma_exec_ms_ + 0.2 * result.exec_seconds * 1e3;
  }
  std::string frame;
  if (result.state == serve::JobState::Rejected) {
    // A queued job shed by a higher-priority arrival: same 429 shape as a
    // synchronous admission rejection.
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    trace::counter("net.jobs.rejected").increment();
    frame = reject_frame(result.id, tag.has_client_id, tag.client_id,
                         result.name, result.detail, retry_after_ms());
  } else {
    stats_.results_sent.fetch_add(1, std::memory_order_relaxed);
    trace::counter("net.responses.out").increment();
    frame = result_frame(result, tag.has_client_id, tag.client_id);
  }
  queue_response(conn, std::move(frame));
  update_flow_control(conn);
}

void NetServer::accept_clients() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient accept error: try later
    if (conns_.size() >= options_.max_connections) {
      const std::string busy = error_frame("server busy: too many connections",
                                           /*fatal=*/true);
      (void)send_all_bounded(fd, busy, /*timeout_ms=*/100);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    auto [it, inserted] =
        conns_.emplace(fd, Connection(fd, id, options_.max_frame_bytes));
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    trace::counter("net.connections.accepted").increment();
    open_conns_.store(conns_.size(), std::memory_order_relaxed);
    trace::gauge("net.connections.active")
        .set(static_cast<double>(conns_.size()));
    queue_response(it->second, hello_frame(options_.max_frame_bytes));
  }
}

void NetServer::read_connection(Connection& conn) {
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      trace::counter("net.bytes.in").add(n);
      conn.reader.feed(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      conn.reader.finish();
      conn.read_eof = true;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // fall through to process what we have
    } else if (errno == EINTR) {
      continue;
    } else {
      // Socket is broken: drop pending output and let the loop sweep
      // close it (erasing here would dangle this reference).
      conn.outbuf.clear();
      conn.outbuf_off = 0;
      conn.closing = true;
      return;
    }

    drain_reader(conn);
    update_flow_control(conn);
    if (n == 0 || conn.closing || conn.paused) break;
    if (n < 0) break;  // EAGAIN
  }
  // Closing connections flush eagerly; the POLLOUT path finishes the job.
  if (conn.closing) write_connection(conn);
}

void NetServer::drain_reader(Connection& conn) {
  // Pause state is re-checked before every frame, not once per recv
  // batch: TCP happily coalesces a burst of requests into one segment,
  // and the in-flight cap must hold even when all of them arrive in a
  // single read. Frames past the cap stay queued in the reader; the loop
  // drains them after flow control resumes the connection (no further
  // socket bytes required).
  while (!conn.paused && !conn.closing) {
    auto ev = conn.reader.next();
    if (!ev) break;
    switch (ev->kind) {
      case FrameEvent::Kind::Frame:
        if (!ev->text.empty() && ev->text[0] != '#') {
          handle_frame(conn, ev->text);
        }
        break;
      case FrameEvent::Kind::Oversized:
        stats_.oversized_frames.fetch_add(1, std::memory_order_relaxed);
        trace::counter("net.frames.oversized").increment();
        queue_response(
            conn,
            error_frame("frame exceeds " +
                            std::to_string(options_.max_frame_bytes) +
                            " bytes",
                        /*fatal=*/true));
        conn.closing = true;
        break;
      case FrameEvent::Kind::Truncated:
        // Abrupt mid-frame disconnect; nobody is left to answer.
        stats_.truncated_frames.fetch_add(1, std::memory_order_relaxed);
        trace::counter("net.frames.truncated").increment();
        break;
    }
    update_flow_control(conn);
  }
}

void NetServer::handle_frame(Connection& conn, const std::string& text) {
  stats_.frames.fetch_add(1, std::memory_order_relaxed);
  trace::counter("net.frames.in").increment();

  std::string error;
  const auto req = serve::parse_request_frame(
      text, &error, "conn " + std::to_string(conn.id));
  if (!req) {
    stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
    trace::counter("net.frames.bad").increment();
    queue_response(conn, error_frame(error, options_.close_on_bad_frame));
    if (options_.close_on_bad_frame) conn.closing = true;
    return;
  }

  const auto received = std::chrono::steady_clock::now();
  const serve::Submitted submitted = backend_.submit(req->spec);
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  trace::counter("net.jobs.submitted").increment();
  if (!submitted.admitted) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    trace::counter("net.jobs.rejected").increment();
    queue_response(conn, reject_frame(submitted.id, req->has_client_id,
                                      req->client_id, req->spec.name,
                                      submitted.detail, retry_after_ms()));
    return;
  }
  // Route registered in the same loop iteration as submit(): the terminal
  // event for this id sits in the shared queue until we next drain it, so
  // it cannot arrive unrouted.
  conn.inflight[submitted.id] =
      PendingJob{req->client_id, req->has_client_id, received};
  routes_[submitted.id] = conn.fd;
}

void NetServer::queue_response(Connection& conn, std::string frame) {
  const bool was_empty = conn.outbuf.size() <= conn.outbuf_off;
  conn.outbuf += frame;
  // Eager flush when the buffer was idle: one syscall now beats waiting a
  // poll cycle for POLLOUT on an almost-always-writable socket.
  if (was_empty) write_connection(conn);
}

void NetServer::write_connection(Connection& conn) {
  while (conn.outbuf.size() > conn.outbuf_off) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.outbuf_off,
               conn.outbuf.size() - conn.outbuf_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf_off += static_cast<std::size_t>(n);
      stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
      trace::counter("net.bytes.out").add(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Broken pipe / reset: closing is deferred to the loop sweep so that
    // callers holding a reference to this Connection stay valid.
    conn.outbuf.clear();
    conn.outbuf_off = 0;
    conn.closing = true;
    return;
  }
  if (conn.outbuf_off == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.outbuf_off = 0;
  } else if (conn.outbuf_off > (1u << 16)) {
    conn.outbuf.erase(0, conn.outbuf_off);
    conn.outbuf_off = 0;
  }
  update_flow_control(conn);
}

void NetServer::update_flow_control(Connection& conn) {
  const std::size_t backlog = conn.outbuf.size() - conn.outbuf_off;
  const bool should_pause =
      conn.inflight.size() >= options_.max_inflight_per_conn ||
      backlog > options_.max_write_backlog_bytes;
  if (should_pause && !conn.paused) {
    stats_.flow_pauses.fetch_add(1, std::memory_order_relaxed);
    trace::counter("net.flow.pauses").increment();
    util::logkv(util::LogLevel::Debug, "net: connection paused",
                {{"conn", static_cast<std::int64_t>(conn.id)},
                 {"inflight", static_cast<std::int64_t>(conn.inflight.size())},
                 {"backlog", static_cast<std::int64_t>(backlog)}});
  }
  conn.paused = should_pause;
}

void NetServer::close_connection(int fd, const char* why) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  trace::histogram("net.conn.lifetime_s").record(seconds_since(conn.opened));
  // Jobs the dead client leaves behind still run to a terminal state in
  // the Server; their results become orphans instead of routing nowhere.
  for (const auto& [job_id, tag] : conn.inflight) {
    routes_.erase(job_id);
    orphaned_.insert(job_id);
  }
  util::logkv(util::LogLevel::Debug, "net: connection closed",
              {{"conn", static_cast<std::int64_t>(conn.id)}, {"why", why}});
  ::close(fd);
  conns_.erase(it);
  stats_.closed.fetch_add(1, std::memory_order_relaxed);
  trace::counter("net.connections.closed").increment();
  open_conns_.store(conns_.size(), std::memory_order_relaxed);
  trace::gauge("net.connections.active")
      .set(static_cast<double>(conns_.size()));
}

}  // namespace hs::net
