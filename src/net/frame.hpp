// Incremental frame splitting for the TCP front door (`hs::net`).
//
// The wire protocol is newline-delimited JSON ("JSON lines over a
// socket"): one request or response document per frame, terminated by
// '\n' (a trailing '\r' is stripped, so telnet/CRLF clients work). A
// FrameReader turns an arbitrary sequence of read() chunks -- bytes may
// arrive one at a time, or many frames may land in one chunk -- into
// complete frames, without ever buffering more than `max_frame_bytes` of
// an unterminated line.
//
// Degradation contract: a frame that exceeds the limit yields exactly one
// Oversized event (carrying the byte count seen so far) and the reader
// then discards bytes until the next '\n', after which it resynchronizes
// and subsequent frames parse normally. finish() reports a trailing
// unterminated fragment (an abrupt mid-frame disconnect) as one Truncated
// event. The reader itself never throws and never grows unboundedly; what
// to do with a bad frame (error response, close, counter) is the
// connection state machine's decision.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

namespace hs::net {

struct FrameEvent {
  enum class Kind {
    Frame,      ///< a complete line; `text` is the frame without '\n'/'\r'
    Oversized,  ///< line exceeded max_frame_bytes; reader is resyncing
    Truncated,  ///< finish() found a non-empty unterminated fragment
  };
  Kind kind = Kind::Frame;
  std::string text;         ///< frame payload (Frame) or partial prefix
  std::size_t bytes = 0;    ///< bytes consumed by this event so far
};

class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes == 0 ? 1 : max_frame_bytes) {}

  /// Appends raw socket bytes; completed events queue up for next().
  void feed(const char* data, std::size_t n);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// Signals end-of-stream: a non-empty partial line becomes a Truncated
  /// event (an already-oversized tail was reported when it overflowed).
  void finish();

  /// Pops the next queued event in arrival order.
  std::optional<FrameEvent> next();

  /// Bytes of the current unterminated line held in the buffer.
  std::size_t pending_bytes() const { return partial_.size(); }

  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  std::size_t max_frame_bytes_;
  std::string partial_;
  bool skipping_ = false;  ///< discarding an oversized line until '\n'
  std::size_t skipped_ = 0;
  std::deque<FrameEvent> events_;
};

}  // namespace hs::net
