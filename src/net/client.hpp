// Minimal blocking TCP client for the hs.net.v1 front door.
//
// One connection, one thread: connect(), send_line() raw request frames,
// read_frame() responses one at a time through an internal FrameReader
// (handles partial reads and coalesced frames transparently). This is the
// client half used by tests, hsi-loadgen's worker threads (one Client per
// concurrent client), and the loopback e2e smoke -- it is intentionally
// not an async mirror of the server.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/frame.hpp"

namespace hs::net {

class Client {
 public:
  Client() : reader_(1 << 20) {}
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (IPv4 dotted quad). False + error text on
  /// failure; a connected client must be close()d or destroyed.
  bool connect(const std::string& host, int port, std::string* error = nullptr);

  bool connected() const { return fd_ >= 0; }

  /// Raw socket (tests use it for setsockopt, e.g. SO_LINGER resets);
  /// -1 when not connected.
  int fd() const { return fd_; }

  /// Sends `line` verbatim, appending '\n' unless it already ends with
  /// one. False on a send error (connection is closed as a side effect).
  bool send_line(std::string_view line, std::string* error = nullptr);

  /// Half-close: no more requests, but responses still flow. The server
  /// flushes results for in-flight jobs, then closes.
  void shutdown_writes();

  /// Blocks until one complete frame arrives (already buffered bytes are
  /// served without touching the socket). nullopt on timeout, EOF with an
  /// empty buffer, or a socket error; `error` says which ("timeout",
  /// "eof", errno text). Oversized/truncated frame events surface as
  /// errors, not frames.
  std::optional<std::string> read_frame(double timeout_seconds = 10.0,
                                        std::string* error = nullptr);

  void close();

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace hs::net
