#include "net/frame.hpp"

#include <cstring>

namespace hs::net {

void FrameReader::feed(const char* data, std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    if (skipping_) {
      // Discard the rest of an oversized line, then resynchronize.
      const char* nl = static_cast<const char*>(
          std::memchr(data + i, '\n', n - i));
      if (!nl) {
        skipped_ += n - i;
        return;
      }
      skipped_ += static_cast<std::size_t>(nl - (data + i));
      skipping_ = false;
      skipped_ = 0;
      i = static_cast<std::size_t>(nl - data) + 1;
      continue;
    }
    const char* nl =
        static_cast<const char*>(std::memchr(data + i, '\n', n - i));
    const std::size_t take =
        nl ? static_cast<std::size_t>(nl - (data + i)) : n - i;
    if (partial_.size() + take > max_frame_bytes_) {
      // Report the overflow once, with the prefix we can still show, and
      // drop into skip mode until the terminating newline.
      FrameEvent ev;
      ev.kind = FrameEvent::Kind::Oversized;
      ev.bytes = partial_.size() + take;
      ev.text = std::move(partial_);
      partial_.clear();
      events_.push_back(std::move(ev));
      skipping_ = true;
      skipped_ = take;
      if (nl) {
        skipping_ = false;
        skipped_ = 0;
        i = static_cast<std::size_t>(nl - data) + 1;
      } else {
        return;
      }
      continue;
    }
    partial_.append(data + i, take);
    if (!nl) return;
    i += take + 1;
    if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
    FrameEvent ev;
    ev.kind = FrameEvent::Kind::Frame;
    ev.bytes = partial_.size();
    ev.text = std::move(partial_);
    partial_.clear();
    events_.push_back(std::move(ev));
  }
}

void FrameReader::finish() {
  if (partial_.empty()) return;
  FrameEvent ev;
  ev.kind = FrameEvent::Kind::Truncated;
  ev.bytes = partial_.size();
  ev.text = std::move(partial_);
  partial_.clear();
  events_.push_back(std::move(ev));
}

std::optional<FrameEvent> FrameReader::next() {
  if (events_.empty()) return std::nullopt;
  FrameEvent ev = std::move(events_.front());
  events_.pop_front();
  return ev;
}

}  // namespace hs::net
