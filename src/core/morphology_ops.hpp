// Extended morphological operators on pixel-vector images.
//
// AMC's step 2 uses one erosion/dilation pair internally; the algorithm
// family it derives from (Plaza et al. 2005, the paper's reference [11])
// builds *sequences* of extended transformations -- openings, closings,
// morphological profiles. These operators materialize the transformed
// cubes: each output pixel is the input pixel vector selected by the
// SID-cumulative-distance argmin (erosion) or argmax (dilation) over the
// structuring element, per eqs. 5-6.
#pragma once

#include <vector>

#include "core/structuring_element.hpp"
#include "hsi/cube.hpp"

namespace hs::core {

/// Extended erosion: every pixel replaced by its B-neighborhood's most
/// spectrally central member (argmin of D_B).
hsi::HyperCube extended_erode(const hsi::HyperCube& cube,
                              const StructuringElement& se);

/// Extended dilation: every pixel replaced by its B-neighborhood's most
/// spectrally distinct member (argmax of D_B).
hsi::HyperCube extended_dilate(const hsi::HyperCube& cube,
                               const StructuringElement& se);

/// Opening: erosion followed by dilation. Removes bright (spectrally
/// anomalous) structures smaller than the SE.
hsi::HyperCube extended_open(const hsi::HyperCube& cube,
                             const StructuringElement& se);

/// Closing: dilation followed by erosion.
hsi::HyperCube extended_close(const hsi::HyperCube& cube,
                              const StructuringElement& se);

/// Morphological profile: per-pixel SID between the input and each of
/// `steps` successive openings/closings with SEs of growing radius
/// (radius = 1..steps, square). Output layout: profiles[s][pixel], with
/// openings first (s in [0, steps)) then closings (s in [steps, 2*steps)).
std::vector<std::vector<float>> morphological_profile(
    const hsi::HyperCube& cube, int steps);

}  // namespace hs::core
