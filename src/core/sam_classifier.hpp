// Supervised spectral-library classification.
//
// The supervised counterpart to AMC's unsupervised pipeline: each pixel is
// assigned the library class whose reference spectrum is nearest under the
// chosen spectral distance (SAM by default; SID and Euclidean are the
// alternatives). With the synthetic scene's own library this is the oracle
// upper bound the AMC result can be compared against.
#pragma once

#include <vector>

#include "core/distances.hpp"
#include "hsi/cube.hpp"
#include "hsi/spectral_library.hpp"

namespace hs::core {

struct LibraryClassifierConfig {
  Distance metric = Distance::Sam;
  /// Pixels whose best distance exceeds this are labeled -1 (reject).
  /// Negative disables rejection.
  double reject_threshold = -1.0;
};

/// Labels every pixel with the nearest library class (or -1 on reject).
std::vector<int> classify_by_library(const hsi::HyperCube& cube,
                                     const hsi::SpectralLibrary& library,
                                     const LibraryClassifierConfig& config = {});

}  // namespace hs::core
