#include "core/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace hs::core {

namespace {

/// k-means++-style seeding: first centroid uniform, then proportional to
/// squared distance from the nearest chosen centroid.
std::vector<std::vector<float>> seed_centroids(const hsi::HyperCube& cube,
                                               const KMeansConfig& config,
                                               util::Xoshiro256& rng) {
  const std::size_t px = cube.pixel_count();
  const int bands = cube.bands();
  std::vector<std::vector<float>> centroids;
  centroids.reserve(static_cast<std::size_t>(config.clusters));

  std::vector<float> spec(static_cast<std::size_t>(bands));
  auto pixel_at = [&](std::size_t p) {
    const int x = static_cast<int>(p % static_cast<std::size_t>(cube.width()));
    const int y = static_cast<int>(p / static_cast<std::size_t>(cube.width()));
    cube.pixel(x, y, spec);
    return std::vector<float>(spec.begin(), spec.end());
  };

  centroids.push_back(pixel_at(rng.uniform_int(px)));

  std::vector<double> best_d2(px, std::numeric_limits<double>::infinity());
  while (static_cast<int>(centroids.size()) < config.clusters) {
    // Update squared distances to the nearest chosen centroid.
    const auto& last = centroids.back();
    double total = 0;
    for (std::size_t p = 0; p < px; ++p) {
      const int x = static_cast<int>(p % static_cast<std::size_t>(cube.width()));
      const int y = static_cast<int>(p / static_cast<std::size_t>(cube.width()));
      cube.pixel(x, y, spec);
      const double d = spectral_distance(config.metric, spec, last);
      best_d2[p] = std::min(best_d2[p], d * d);
      total += best_d2[p];
    }
    if (total <= 0) {
      // Degenerate (all pixels identical): duplicate the first centroid.
      centroids.push_back(centroids.front());
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t pick = px - 1;
    for (std::size_t p = 0; p < px; ++p) {
      r -= best_d2[p];
      if (r <= 0) {
        pick = p;
        break;
      }
    }
    centroids.push_back(pixel_at(pick));
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans_spectral(const hsi::HyperCube& cube,
                             const KMeansConfig& config) {
  HS_ASSERT(config.clusters >= 1);
  HS_ASSERT(config.max_iterations >= 1);
  const std::size_t px = cube.pixel_count();
  const int bands = cube.bands();
  HS_ASSERT(px >= static_cast<std::size_t>(config.clusters));

  util::Xoshiro256 rng(config.seed);
  KMeansResult result;
  result.centroids = seed_centroids(cube, config, rng);
  result.labels.assign(px, 0);

  std::vector<float> spec(static_cast<std::size_t>(bands));
  std::vector<std::vector<double>> sums(
      static_cast<std::size_t>(config.clusters),
      std::vector<double>(static_cast<std::size_t>(bands), 0.0));
  std::vector<std::size_t> counts(static_cast<std::size_t>(config.clusters), 0);

  double previous = std::numeric_limits<double>::infinity();
  for (result.iterations = 1; result.iterations <= config.max_iterations;
       ++result.iterations) {
    // Assignment step.
    double distortion = 0;
    for (auto& s : sums) std::fill(s.begin(), s.end(), 0.0);
    std::fill(counts.begin(), counts.end(), std::size_t{0});

    for (std::size_t p = 0; p < px; ++p) {
      const int x = static_cast<int>(p % static_cast<std::size_t>(cube.width()));
      const int y = static_cast<int>(p / static_cast<std::size_t>(cube.width()));
      cube.pixel(x, y, spec);
      double best = std::numeric_limits<double>::infinity();
      int best_k = 0;
      for (int k = 0; k < config.clusters; ++k) {
        const double d = spectral_distance(
            config.metric, spec, result.centroids[static_cast<std::size_t>(k)]);
        if (d < best) {
          best = d;
          best_k = k;
        }
      }
      result.labels[p] = best_k;
      distortion += best;
      auto& s = sums[static_cast<std::size_t>(best_k)];
      for (int b = 0; b < bands; ++b) {
        s[static_cast<std::size_t>(b)] += spec[static_cast<std::size_t>(b)];
      }
      ++counts[static_cast<std::size_t>(best_k)];
    }
    result.distortion = distortion;

    // Update step (empty clusters keep their previous centroid).
    for (int k = 0; k < config.clusters; ++k) {
      if (counts[static_cast<std::size_t>(k)] == 0) continue;
      auto& c = result.centroids[static_cast<std::size_t>(k)];
      const double inv = 1.0 / static_cast<double>(counts[static_cast<std::size_t>(k)]);
      for (int b = 0; b < bands; ++b) {
        c[static_cast<std::size_t>(b)] = static_cast<float>(
            sums[static_cast<std::size_t>(k)][static_cast<std::size_t>(b)] * inv);
      }
    }

    if (previous - distortion <= config.tolerance * std::max(previous, 1e-30)) {
      result.converged = true;
      break;
    }
    previous = distortion;
  }
  return result;
}

}  // namespace hs::core
