// Structuring elements for the extended morphological operations.
//
// The paper uses a 3x3 square SE; square(1) reproduces it. The offset
// *order* is part of the algorithm's observable behaviour (argmin/argmax
// tie-breaking is first-wins over this order), so it is fixed: row-major,
// top-left to bottom-right, origin included.
#pragma once

#include <utility>
#include <vector>

namespace hs::core {

struct StructuringElement {
  int radius = 1;
  /// (dx, dy) offsets in fixed scan order; includes (0, 0).
  std::vector<std::pair<int, int>> offsets;

  int size() const { return static_cast<int>(offsets.size()); }

  /// (2r+1) x (2r+1) square window.
  static StructuringElement square(int radius);
  /// Plus-shaped window of the given radius.
  static StructuringElement cross(int radius);
  /// Discrete disk: offsets with dx^2 + dy^2 <= radius^2.
  static StructuringElement disk(int radius);
};

}  // namespace hs::core
