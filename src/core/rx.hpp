// RX anomaly detection (Reed-Xiaoli).
//
// The standard global anomaly detector for hyperspectral imagery and one
// of the "timely response" applications (target/threat detection) the
// paper's introduction motivates: score every pixel by its Mahalanobis
// distance to the scene's global background statistics,
//     RX(x) = (x - mu)^T C^-1 (x - mu),
// and threshold the score. Complements AMC: AMC labels everything, RX
// flags the pixels that fit nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "hsi/cube.hpp"

namespace hs::core {

struct RxResult {
  /// Per-pixel RX score (>= 0).
  std::vector<float> scores;
  /// Chi-squared-motivated detection threshold actually used.
  double threshold = 0;
  /// Pixel indices with score above the threshold, descending score.
  std::vector<std::size_t> detections;
};

struct RxConfig {
  /// Fraction of pixels expected to be anomalous; the threshold is the
  /// (1 - rate) quantile of the empirical score distribution.
  double false_alarm_rate = 0.001;
  /// Relative ridge added to the covariance diagonal (rank safety).
  double ridge = 1e-6;
};

RxResult rx_detect(const hsi::HyperCube& cube, const RxConfig& config = {});

}  // namespace hs::core
