// GPU-resident linear unmixing and max-abundance classification.
//
// The paper's GPU pipeline ends at the MEI download (Figure 4); steps 3-4
// of AMC (abundance estimation, argmax labeling) run on the host. This
// module moves them onto the simulated GPU as well, making the whole
// classifier GPU-resident:
//
//   * host side, once per scene: W = (E^T E)^-1 E^T (c x bands), the
//     pseudo-inverse rows of the endmember matrix;
//   * abundance stage: a_k(x) = dot(W_k, f(x)) accumulated over band
//     groups with DP4 passes (one ping-pong per endmember), then packed
//     four abundances per RGBA texture with masked writes;
//   * argmax stage: one pass chaining CMP selections over the packed
//     abundance textures, emitting the class index per pixel.
//
// The arithmetic is the *unconstrained* linear mixture model in float
// (the GPU of this era had no doubles); labels agree with the host
// Unmixer except where two abundances tie within float rounding.
#pragma once

#include <cstdint>
#include <vector>

#include "core/amc_gpu.hpp"
#include "hsi/cube.hpp"

namespace hs::core {

struct GpuUnmixReport {
  /// Per-pixel argmax class in [0, c).
  std::vector<int> labels;
  /// Per-pixel abundances (pixel-major, c per pixel); filled only when
  /// requested.
  std::vector<float> abundances;
  gpusim::DeviceTotals totals;
  std::size_t chunk_count = 0;
  std::vector<ChunkCost> chunk_costs;
  double modeled_seconds = 0;
  /// Worker count the run actually used (options.workers resolved and
  /// clamped to the chunk count).
  std::size_t workers_used = 1;

  /// Wave-max parallel schedule over chunk_costs (see
  /// modeled_parallel_schedule_seconds); bit-equals modeled_seconds at
  /// workers == 1.
  double modeled_parallel_seconds(std::size_t workers) const {
    return modeled_parallel_schedule_seconds(chunk_costs, workers);
  }
};

/// Unmixes and labels every pixel on the simulated GPU.
/// `endmembers[k]` is a bands-long raw spectrum. Uses the same device
/// options/chunking machinery as morphology_gpu (no halo is needed --
/// unmixing is purely per-pixel).
GpuUnmixReport unmix_gpu(const hsi::HyperCube& cube,
                         const std::vector<std::vector<float>>& endmembers,
                         const AmcGpuOptions& options,
                         bool download_abundances = false);

}  // namespace hs::core
