#include "core/morphology_ops.hpp"

#include <algorithm>

#include "core/distances.hpp"
#include "core/morphology.hpp"
#include "util/assert.hpp"

namespace hs::core {

namespace {

enum class Selection { Erosion, Dilation };

hsi::HyperCube select_transform(const hsi::HyperCube& cube,
                                const StructuringElement& se,
                                Selection selection) {
  const MorphOutputs morph = morphology_reference(cube, se);
  hsi::HyperCube out(cube.width(), cube.height(), cube.bands(),
                     cube.interleave());
  std::vector<float> spec(static_cast<std::size_t>(cube.bands()));
  for (int y = 0; y < cube.height(); ++y) {
    for (int x = 0; x < cube.width(); ++x) {
      const std::size_t idx =
          static_cast<std::size_t>(y) * static_cast<std::size_t>(cube.width()) +
          static_cast<std::size_t>(x);
      const std::uint8_t d = selection == Selection::Erosion
                                 ? morph.erosion_index[idx]
                                 : morph.dilation_index[idx];
      const auto [dx, dy] = se.offsets[d];
      const int sx = std::clamp(x + dx, 0, cube.width() - 1);
      const int sy = std::clamp(y + dy, 0, cube.height() - 1);
      cube.pixel(sx, sy, spec);
      out.set_pixel(x, y, spec);
    }
  }
  return out;
}

}  // namespace

hsi::HyperCube extended_erode(const hsi::HyperCube& cube,
                              const StructuringElement& se) {
  return select_transform(cube, se, Selection::Erosion);
}

hsi::HyperCube extended_dilate(const hsi::HyperCube& cube,
                               const StructuringElement& se) {
  return select_transform(cube, se, Selection::Dilation);
}

hsi::HyperCube extended_open(const hsi::HyperCube& cube,
                             const StructuringElement& se) {
  return extended_dilate(extended_erode(cube, se), se);
}

hsi::HyperCube extended_close(const hsi::HyperCube& cube,
                              const StructuringElement& se) {
  return extended_erode(extended_dilate(cube, se), se);
}

std::vector<std::vector<float>> morphological_profile(
    const hsi::HyperCube& cube, int steps) {
  HS_ASSERT(steps >= 1);
  std::vector<std::vector<float>> profile;
  profile.reserve(static_cast<std::size_t>(2 * steps));

  std::vector<float> a(static_cast<std::size_t>(cube.bands()));
  std::vector<float> b(static_cast<std::size_t>(cube.bands()));
  auto sid_map = [&](const hsi::HyperCube& transformed) {
    std::vector<float> out(cube.pixel_count());
    for (int y = 0; y < cube.height(); ++y) {
      for (int x = 0; x < cube.width(); ++x) {
        cube.pixel(x, y, a);
        transformed.pixel(x, y, b);
        out[static_cast<std::size_t>(y) * static_cast<std::size_t>(cube.width()) +
            static_cast<std::size_t>(x)] = static_cast<float>(sid(a, b));
      }
    }
    return out;
  };

  for (int s = 1; s <= steps; ++s) {
    profile.push_back(sid_map(extended_open(cube, StructuringElement::square(s))));
  }
  for (int s = 1; s <= steps; ++s) {
    profile.push_back(sid_map(extended_close(cube, StructuringElement::square(s))));
  }
  return profile;
}

}  // namespace hs::core
