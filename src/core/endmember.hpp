// Endmember selection (step 3 of AMC, first half).
//
// The c pixels with the highest MEI scores become the class endmembers.
// A minimum spatial separation (Chebyshev distance) between selected
// pixels is supported because raw top-c selection tends to pick several
// texels of the same high-contrast boundary; the paper does not state its
// dedup rule, so separation = 0 reproduces the literal text and the
// accuracy bench documents the value it uses (see DESIGN.md).
#pragma once

#include <span>
#include <vector>

namespace hs::core {

struct EndmemberSelection {
  /// Pixel indices (y * width + x) of the selected endmembers, in
  /// descending MEI order.
  std::vector<std::size_t> pixels;
};

/// Selects up to `count` pixels by descending MEI, skipping candidates
/// within `min_separation` (Chebyshev) of an already-selected pixel.
/// Deterministic: ties in MEI are broken by pixel index.
EndmemberSelection select_endmembers(std::span<const float> mei, int width,
                                     int height, int count,
                                     int min_separation);

}  // namespace hs::core
