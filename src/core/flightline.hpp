// Streaming (pushbroom) flightline processing.
//
// AVIRIS "routinely collects images hundreds of kilometers long" (paper,
// Section 1): an onboard processor never holds the flightline in memory --
// scanlines arrive continuously from the sensor, and results must leave at
// the same rate. FlightlineProcessor implements that regime on top of the
// GPU morphology pipeline: rows are pushed as they arrive, buffered into
// halo-overlapped blocks, each block runs the six-stage stream pipeline,
// and finished MEI/D_B rows are emitted through a callback. Host memory is
// bounded by one block (plus halo), independent of flightline length.
//
// Functional guarantee: the emitted rows are bit-identical to running the
// whole flightline through morphology_gpu at once (the halo logic matches
// the chunker's).
#pragma once

#include <functional>
#include <vector>

#include "core/amc_gpu.hpp"
#include "core/structuring_element.hpp"

namespace hs::core {

struct FlightlineConfig {
  /// Interior rows processed per block. Larger blocks amortize per-pass
  /// overhead; memory grows accordingly.
  int block_rows = 64;
  StructuringElement se = StructuringElement::square(1);
  AmcGpuOptions gpu;
};

/// One finished scanline of results.
struct FlightlineRow {
  std::int64_t row = 0;  ///< global row index within the flightline
  std::vector<float> mei;
  std::vector<float> db;
  std::vector<std::uint8_t> erosion_index;
  std::vector<std::uint8_t> dilation_index;
};

class FlightlineProcessor {
 public:
  using RowCallback = std::function<void(FlightlineRow&&)>;

  /// `width`/`bands` are fixed by the sensor; rows stream in via push_row.
  FlightlineProcessor(int width, int bands, FlightlineConfig config,
                      RowCallback on_row);

  int width() const { return width_; }
  int bands() const { return bands_; }

  /// Appends one scanline (width * bands floats, BIP: band innermost).
  /// May trigger a block launch that emits finished rows via the callback.
  void push_row(std::span<const float> row_bip);

  /// Flushes the remaining buffered rows (the final partial block).
  /// Must be called once after the last push_row.
  void finish();

  /// Rows pushed so far.
  std::int64_t rows_pushed() const { return next_row_; }
  /// Rows emitted so far.
  std::int64_t rows_emitted() const { return emitted_; }
  /// Aggregate modeled GPU seconds across all launched blocks.
  double modeled_gpu_seconds() const { return modeled_seconds_; }
  std::size_t blocks_launched() const { return blocks_; }

  /// Host-side buffered rows right now (the memory bound).
  std::size_t buffered_rows() const { return buffer_.size(); }

 private:
  void launch(bool final_block);

  int width_;
  int bands_;
  FlightlineConfig config_;
  RowCallback on_row_;
  int halo_;

  /// Rolling buffer of raw rows; front() is global row `buffer_start_`.
  std::vector<std::vector<float>> buffer_;
  std::int64_t buffer_start_ = 0;
  std::int64_t next_row_ = 0;
  std::int64_t emitted_ = 0;
  double modeled_seconds_ = 0;
  std::size_t blocks_ = 0;
  bool finished_ = false;
};

}  // namespace hs::core
