#include "core/unmixing.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"
#include "linalg/qr.hpp"
#include "util/assert.hpp"

namespace hs::core {

const char* unmixing_method_name(UnmixingMethod method) {
  switch (method) {
    case UnmixingMethod::Unconstrained: return "unconstrained";
    case UnmixingMethod::SumToOne: return "sum-to-one";
    case UnmixingMethod::Nnls: return "nnls";
  }
  return "?";
}

struct Unmixer::Impl {
  linalg::Matrix e;  ///< bands x count
  std::optional<linalg::Cholesky> chol;
  std::optional<linalg::HouseholderQr> qr;  ///< fallback when Gram is singular
  // Sum-to-one correction state: g1 = G^-1 * 1, s11 = 1^T G^-1 1.
  std::vector<double> g1;
  double s11 = 0;
};

Unmixer::Unmixer(std::vector<std::vector<float>> endmembers,
                 UnmixingMethod method)
    : endmembers_(std::move(endmembers)), method_(method) {
  HS_ASSERT_MSG(!endmembers_.empty(), "need at least one endmember");
  bands_ = static_cast<int>(endmembers_.front().size());
  HS_ASSERT(bands_ > 0);
  for (const auto& e : endmembers_) {
    HS_ASSERT_MSG(static_cast<int>(e.size()) == bands_,
                  "endmember band counts differ");
  }
  HS_ASSERT_MSG(bands_ >= static_cast<int>(endmembers_.size()),
                "more endmembers than bands: system underdetermined");

  auto impl = std::make_shared<Impl>();
  impl->e = linalg::Matrix(static_cast<std::size_t>(bands_), endmembers_.size());
  for (std::size_t k = 0; k < endmembers_.size(); ++k) {
    for (int b = 0; b < bands_; ++b) {
      impl->e(static_cast<std::size_t>(b), k) =
          static_cast<double>(endmembers_[k][static_cast<std::size_t>(b)]);
    }
  }

  linalg::Matrix gram = impl->e.gram();
  impl->chol = linalg::Cholesky::factor(gram);
  if (!impl->chol) {
    // Near-duplicate endmembers: retry with a relative ridge, then fall
    // back to QR which handles rank deficiency outright.
    double trace = 0;
    for (std::size_t i = 0; i < gram.rows(); ++i) trace += gram(i, i);
    linalg::Matrix ridged = gram;
    const double ridge = 1e-10 * std::max(trace, 1.0);
    for (std::size_t i = 0; i < ridged.rows(); ++i) ridged(i, i) += ridge;
    impl->chol = linalg::Cholesky::factor(ridged);
    if (!impl->chol) impl->qr.emplace(impl->e);
  }

  if (impl->chol) {
    const std::vector<double> ones(endmembers_.size(), 1.0);
    impl->g1 = impl->chol->solve(ones);
    impl->s11 = 0;
    for (double v : impl->g1) impl->s11 += v;
  }
  impl_ = std::move(impl);
}

std::vector<double> Unmixer::abundances(std::span<const float> spectrum) const {
  HS_ASSERT(spectrum.size() == static_cast<std::size_t>(bands_));

  if (method_ == UnmixingMethod::Nnls) {
    std::vector<double> b(spectrum.begin(), spectrum.end());
    return linalg::nnls(impl_->e, b).x;
  }

  std::vector<double> x(spectrum.begin(), spectrum.end());
  std::vector<double> a;
  if (impl_->chol) {
    const auto etx = impl_->e.multiply_transposed(x);
    a = impl_->chol->solve(etx);
  } else {
    a = impl_->qr->solve(x);
  }

  if (method_ == UnmixingMethod::SumToOne && impl_->chol &&
      std::fabs(impl_->s11) > 1e-30) {
    double sum = 0;
    for (double v : a) sum += v;
    const double corr = (1.0 - sum) / impl_->s11;
    for (std::size_t k = 0; k < a.size(); ++k) a[k] += corr * impl_->g1[k];
  }
  return a;
}

int Unmixer::classify(std::span<const float> spectrum) const {
  const auto a = abundances(spectrum);
  return static_cast<int>(std::max_element(a.begin(), a.end()) - a.begin());
}

std::vector<int> Unmixer::classify_cube(const hsi::HyperCube& cube,
                                        std::vector<double>* abundances_out) const {
  HS_ASSERT(cube.bands() == bands_);
  const std::size_t px = cube.pixel_count();
  const std::size_t count = endmembers_.size();
  std::vector<int> labels(px, 0);
  if (abundances_out) abundances_out->assign(px * count, 0.0);

  std::vector<float> spec(static_cast<std::size_t>(bands_));
  for (int y = 0; y < cube.height(); ++y) {
    for (int x = 0; x < cube.width(); ++x) {
      cube.pixel(x, y, spec);
      const auto a = abundances(spec);
      const std::size_t idx =
          static_cast<std::size_t>(y) * static_cast<std::size_t>(cube.width()) +
          static_cast<std::size_t>(x);
      labels[idx] =
          static_cast<int>(std::max_element(a.begin(), a.end()) - a.begin());
      if (abundances_out) {
        std::copy(a.begin(), a.end(), abundances_out->begin() + static_cast<std::ptrdiff_t>(idx * count));
      }
    }
  }
  return labels;
}

}  // namespace hs::core
