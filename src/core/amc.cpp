#include "core/amc.hpp"

#include "core/distances.hpp"
#include "core/unmix_gpu.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace hs::core {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::CpuReference: return "cpu-reference";
    case Backend::CpuVectorized: return "cpu-vectorized";
    case Backend::GpuStream: return "gpu-stream";
  }
  return "?";
}

AmcResult run_amc(const hsi::HyperCube& cube, const AmcConfig& config) {
  HS_ASSERT(config.num_classes >= 1);
  HS_ASSERT_MSG(cube.bands() >= config.num_classes,
                "linear unmixing needs bands >= num_classes");

  AmcResult result;

  // ---- steps 1-2: MEI via extended morphology ------------------------------
  util::Timer morph_timer;
  switch (config.backend) {
    case Backend::CpuReference:
      result.morph = morphology_reference(cube, config.se);
      break;
    case Backend::CpuVectorized:
      result.morph = morphology_vectorized(cube, config.se);
      break;
    case Backend::GpuStream: {
      AmcGpuReport report = morphology_gpu(cube, config.se, config.gpu);
      result.morph = std::move(report.morph);
      GpuRunSummary summary;
      summary.stages = std::move(report.stages);
      summary.totals = report.totals;
      summary.chunk_count = report.chunk_count;
      summary.modeled_seconds = report.modeled_seconds;
      result.gpu = std::move(summary);
      break;
    }
  }
  result.morphology_wall_seconds = morph_timer.seconds();

  // ---- step 3: endmember selection + abundance estimation ------------------
  util::Timer post_timer;
  // Candidates are the full MEI ranking (spatially thinned): distinct
  // high-MEI windows can resolve to the same extreme pixel below, and
  // spectral duplicates are dropped, so the scan must be allowed to reach
  // deep into the ranking before c distinct materials are found.
  const EndmemberSelection sel =
      select_endmembers(result.morph.mei, cube.width(), cube.height(),
                        static_cast<int>(cube.pixel_count()),
                        config.endmember_min_separation);
  HS_ASSERT_MSG(!sel.pixels.empty(), "no endmembers selected");

  // A high MEI marks a neighborhood containing a spectrally extreme pixel;
  // the *dilation-selected* pixel of that neighborhood (argmax of eq. 6) is
  // the extreme one, so it -- not the window center, which is typically a
  // mixed boundary pixel -- becomes the endmember (Plaza et al. 2002, the
  // algorithm AMC derives from). Candidates spectrally closer than
  // endmember_min_sid to an accepted endmember are skipped so that a
  // single extreme region cannot consume several classes.
  std::set<std::size_t> used;
  std::vector<float> spec(static_cast<std::size_t>(cube.bands()));
  for (std::size_t p : sel.pixels) {
    if (static_cast<int>(result.endmember_pixels.size()) >= config.num_classes) {
      break;
    }
    const int x = static_cast<int>(p % static_cast<std::size_t>(cube.width()));
    const int y = static_cast<int>(p / static_cast<std::size_t>(cube.width()));
    const auto [dx, dy] = config.se.offsets[result.morph.dilation_index[p]];
    const int ex = std::clamp(x + dx, 0, cube.width() - 1);
    const int ey = std::clamp(y + dy, 0, cube.height() - 1);
    const std::size_t e =
        static_cast<std::size_t>(ey) * static_cast<std::size_t>(cube.width()) +
        static_cast<std::size_t>(ex);
    if (!used.insert(e).second) continue;
    cube.pixel(ex, ey, spec);
    if (config.endmember_min_sid > 0) {
      bool too_close = false;
      for (const auto& accepted : result.endmember_spectra) {
        if (sid(spec, accepted) < config.endmember_min_sid) {
          too_close = true;
          break;
        }
      }
      if (too_close) continue;
    }
    result.endmember_pixels.push_back(e);
    result.endmember_spectra.emplace_back(spec.begin(), spec.end());
  }
  HS_ASSERT_MSG(!result.endmember_pixels.empty(), "no endmembers selected");

  // ---- step 4: max-abundance labeling ---------------------------------------
  if (config.gpu_classification && config.backend == Backend::GpuStream) {
    HS_ASSERT_MSG(config.unmixing == UnmixingMethod::Unconstrained,
                  "GPU classification implements the unconstrained mixture model");
    GpuUnmixReport unmix =
        unmix_gpu(cube, result.endmember_spectra, config.gpu);
    result.labels = std::move(unmix.labels);
    if (result.gpu) {
      result.gpu->classification_modeled_seconds = unmix.modeled_seconds;
    }
  } else {
    const Unmixer unmixer(result.endmember_spectra, config.unmixing);
    result.labels = unmixer.classify_cube(cube);
  }
  result.postprocess_wall_seconds = post_timer.seconds();
  return result;
}

AccuracyReport evaluate_accuracy(const AmcResult& result,
                                 const hsi::ClassMap& truth) {
  HS_ASSERT(result.labels.size() == truth.labels().size());
  const int truth_classes = truth.num_classes();
  int predicted_classes = 0;
  for (int v : result.labels) predicted_classes = std::max(predicted_classes, v + 1);

  AccuracyReport report;
  report.mapping = hsi::majority_mapping(truth.labels(), result.labels,
                                         truth_classes, predicted_classes);
  const hsi::ConfusionMatrix cm = hsi::remapped_confusion(
      truth.labels(), result.labels, report.mapping, truth_classes);
  report.overall = cm.overall_accuracy();
  report.kappa = cm.kappa();
  report.per_class.resize(static_cast<std::size_t>(truth_classes));
  for (int c = 0; c < truth_classes; ++c) {
    report.per_class[static_cast<std::size_t>(c)] = cm.class_accuracy(c);
  }
  return report;
}

}  // namespace hs::core
