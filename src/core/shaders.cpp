#include "core/shaders.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace hs::core::shaders {

namespace {
constexpr const char* kHeader = "!!HSFP1.0\n";
constexpr const char* kSumEps = "{0.000001}";       // == core::kSumEpsilon
constexpr const char* kProbEps = "{0.000000000001}"; // == core::kProbEpsilon
constexpr const char* kLn2 = "{0.69314718}";
}  // namespace

std::string clear_source() {
  return std::string(kHeader) +
         "MOV result.color, {0.0, 0.0, 0.0, 0.0};\n"
         "END\n";
}

std::string band_sum_source() {
  return std::string(kHeader) +
         "TEX R0, fragment.texcoord[0], texture[0];\n"  // f_g
         "TEX R1, fragment.texcoord[0], texture[1];\n"  // running sum
         "DP4 R2.x, R0, {1.0, 1.0, 1.0, 1.0};\n"
         "ADD result.color.x, R1.x, R2.x;\n"
         "END\n";
}

std::string normalize_source() {
  std::ostringstream os;
  os << kHeader;
  os << "TEX R0, fragment.texcoord[0], texture[0];\n";  // f_g
  os << "TEX R1, fragment.texcoord[0], texture[1];\n";  // sum
  os << "MAX R1.x, R1.x, " << kSumEps << ";\n";
  os << "RCP R2.x, R1.x;\n";
  os << "MUL result.color, R0, R2.x;\n";
  os << "END\n";
  return os.str();
}

std::string log_source() {
  std::ostringstream os;
  os << kHeader;
  os << "TEX R0, fragment.texcoord[0], texture[0];\n";  // p_g
  os << "MAX R0, R0, " << kProbEps << ";\n";
  os << "LG2 R1.x, R0.x;\n";
  os << "LG2 R1.y, R0.y;\n";
  os << "LG2 R1.z, R0.z;\n";
  os << "LG2 R1.w, R0.w;\n";
  os << "MUL result.color, R1, " << kLn2 << ";\n";
  os << "END\n";
  return os.str();
}

std::string cumulative_distance_fused_source(int neighbors) {
  HS_ASSERT(neighbors >= 1);
  std::ostringstream os;
  os << kHeader;
  os << "TEX R0, fragment.texcoord[0], texture[0];\n";  // p center
  os << "TEX R1, fragment.texcoord[0], texture[1];\n";  // lp center
  os << "MOV R2.x, {0.0};\n";                           // accumulator
  for (int d = 0; d < neighbors; ++d) {
    os << "ADD R3.xy, fragment.texcoord[0], c[" << d << "];\n";
    os << "TEX R4, R3, texture[0];\n";  // p neighbor
    os << "TEX R5, R3, texture[1];\n";  // lp neighbor
    os << "SUB R6, R0, R4;\n";
    os << "SUB R7, R1, R5;\n";
    os << "DP4 R8.x, R6, R7;\n";
    os << "ADD R2.x, R2.x, R8.x;\n";
  }
  os << "TEX R9, fragment.texcoord[0], texture[2];\n";  // db in
  os << "ADD result.color.x, R9.x, R2.x;\n";
  os << "END\n";
  return os.str();
}

std::string cumulative_distance_inline_log_source(int neighbors) {
  HS_ASSERT(neighbors >= 1);
  std::ostringstream os;
  os << kHeader;
  os << "TEX R0, fragment.texcoord[0], texture[0];\n";  // p center
  // Center log, computed once per fragment.
  os << "MAX R1, R0, " << kProbEps << ";\n";
  os << "LG2 R2.x, R1.x;\n";
  os << "LG2 R2.y, R1.y;\n";
  os << "LG2 R2.z, R1.z;\n";
  os << "LG2 R2.w, R1.w;\n";
  os << "MUL R1, R2, " << kLn2 << ";\n";                // lp center
  os << "MOV R3.x, {0.0};\n";                           // accumulator
  for (int d = 0; d < neighbors; ++d) {
    os << "ADD R4.xy, fragment.texcoord[0], c[" << d << "];\n";
    os << "TEX R5, R4, texture[0];\n";  // p neighbor
    os << "MAX R6, R5, " << kProbEps << ";\n";
    os << "LG2 R7.x, R6.x;\n";
    os << "LG2 R7.y, R6.y;\n";
    os << "LG2 R7.z, R6.z;\n";
    os << "LG2 R7.w, R6.w;\n";
    os << "MUL R6, R7, " << kLn2 << ";\n";  // lq
    os << "SUB R8, R0, R5;\n";
    os << "SUB R9, R1, R6;\n";
    os << "DP4 R10.x, R8, R9;\n";
    os << "ADD R3.x, R3.x, R10.x;\n";
  }
  os << "TEX R11, fragment.texcoord[0], texture[1];\n";  // db in
  os << "ADD result.color.x, R11.x, R3.x;\n";
  os << "END\n";
  return os.str();
}

std::string cumulative_distance_single_source() {
  std::ostringstream os;
  os << kHeader;
  os << "TEX R0, fragment.texcoord[0], texture[0];\n";
  os << "TEX R1, fragment.texcoord[0], texture[1];\n";
  os << "ADD R3.xy, fragment.texcoord[0], c[0];\n";
  os << "TEX R4, R3, texture[0];\n";
  os << "TEX R5, R3, texture[1];\n";
  os << "SUB R6, R0, R4;\n";
  os << "SUB R7, R1, R5;\n";
  os << "DP4 R8.x, R6, R7;\n";
  os << "TEX R9, fragment.texcoord[0], texture[2];\n";
  os << "ADD result.color.x, R9.x, R8.x;\n";
  os << "END\n";
  return os.str();
}

std::string minmax_offsets_source(int neighbors) {
  HS_ASSERT(neighbors >= 1);
  std::ostringstream os;
  os << kHeader;
  // d = 0 initializes both chains.
  os << "ADD R0.xy, fragment.texcoord[0], c[0];\n";
  os << "TEX R2, R0, texture[0];\n";
  os << "MOV R3.x, R2.x;\n";  // min value
  os << "MOV R3.y, R2.x;\n";  // max value
  os << "MOV R1, c[0];\n";    // offsets (dxmin, dymin, dxmax, dymax)
  for (int d = 1; d < neighbors; ++d) {
    os << "ADD R0.xy, fragment.texcoord[0], c[" << d << "];\n";
    os << "TEX R2, R0, texture[0];\n";
    // Min chain: new value wins iff dd - min < 0 (strict; first wins ties).
    os << "SUB R4.x, R2.x, R3.x;\n";
    os << "CMP R3.x, R4.x, R2.x, R3.x;\n";
    os << "CMP R1.xy, R4.x, c[" << d << "], R1;\n";
    // Max chain: new value wins iff max - dd < 0.
    os << "SUB R4.y, R3.y, R2.x;\n";
    os << "CMP R3.y, R4.y, R2.x, R3.y;\n";
    os << "CMP R1.zw, R4.y, c[" << d << "], R1;\n";
  }
  os << "MOV result.color, R1;\n";
  os << "END\n";
  return os.str();
}

std::string minmax_indices_source(int neighbors) {
  HS_ASSERT(neighbors >= 1);
  std::ostringstream os;
  os << kHeader;
  os << "ADD R0.xy, fragment.texcoord[0], c[0];\n";
  os << "TEX R2, R0, texture[0];\n";
  os << "MOV R3.z, R2.x;\n";          // min value
  os << "MOV R3.w, R2.x;\n";          // max value
  os << "MOV R3.xy, c[0].zzzz;\n";    // min/max index (c[d].z carries d)
  for (int d = 1; d < neighbors; ++d) {
    os << "ADD R0.xy, fragment.texcoord[0], c[" << d << "];\n";
    os << "TEX R2, R0, texture[0];\n";
    os << "SUB R4.x, R2.x, R3.z;\n";
    os << "CMP R3.z, R4.x, R2.x, R3.z;\n";
    os << "CMP R3.x, R4.x, c[" << d << "].z, R3.x;\n";
    os << "SUB R4.y, R3.w, R2.x;\n";
    os << "CMP R3.w, R4.y, R2.x, R3.w;\n";
    os << "CMP R3.y, R4.y, c[" << d << "].z, R3.y;\n";
  }
  os << "MOV result.color, R3;\n";
  os << "END\n";
  return os.str();
}

std::string mei_source() {
  std::ostringstream os;
  os << kHeader;
  os << "TEX R0, fragment.texcoord[0], texture[2];\n";       // offsets
  os << "ADD R1.xy, fragment.texcoord[0], R0;\n";            // erosion coord
  os << "ADD R2.xy, fragment.texcoord[0], R0.zwzw;\n";       // dilation coord
  os << "TEX R3, R1, texture[0];\n";                         // p ero
  os << "TEX R4, R2, texture[0];\n";                         // p dil
  os << "TEX R5, R1, texture[1];\n";                         // lp ero
  os << "TEX R6, R2, texture[1];\n";                         // lp dil
  os << "SUB R7, R4, R3;\n";
  os << "SUB R8, R6, R5;\n";
  os << "DP4 R9.x, R7, R8;\n";
  os << "TEX R10, fragment.texcoord[0], texture[3];\n";      // mei in
  os << "ADD result.color.x, R10.x, R9.x;\n";
  os << "END\n";
  return os.str();
}

}  // namespace hs::core::shaders
