#include "core/morphology.hpp"

#include <algorithm>
#include <cmath>

#include "core/distances.hpp"
#include "util/assert.hpp"

namespace hs::core {

namespace {

inline int clampi(int v, int lo, int hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

MorphOutputs morphology_reference(const hsi::HyperCube& cube,
                                  const StructuringElement& se) {
  const int w = cube.width();
  const int h = cube.height();
  const int n = cube.bands();
  const std::size_t px = cube.pixel_count();
  const std::size_t sn = static_cast<std::size_t>(n);

  MorphOutputs out;
  out.width = w;
  out.height = h;
  out.db.assign(px, 0.f);
  out.erosion_index.assign(px, 0);
  out.dilation_index.assign(px, 0);
  out.mei.assign(px, 0.f);

  // Normalized distributions and their logs, computed once and reused for
  // every neighborhood the pixel participates in.
  std::vector<double> p(px * sn), lp(px * sn);
  {
    std::vector<float> spec(sn);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        cube.pixel(x, y, spec);
        double sum = 0;
        for (int b = 0; b < n; ++b) sum += static_cast<double>(spec[static_cast<std::size_t>(b)]);
        sum = std::max(sum, static_cast<double>(kSumEpsilon));
        const std::size_t base = (static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
                                  static_cast<std::size_t>(x)) * sn;
        for (int b = 0; b < n; ++b) {
          const double v = std::max(static_cast<double>(spec[static_cast<std::size_t>(b)]) / sum,
                                    static_cast<double>(kProbEpsilon));
          p[base + static_cast<std::size_t>(b)] = v;
          lp[base + static_cast<std::size_t>(b)] = std::log(v);
        }
      }
    }
  }

  auto pixel_base = [&](int x, int y) {
    return (static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
            static_cast<std::size_t>(x)) * sn;
  };

  auto pair_sid = [&](std::size_t a, std::size_t b) {
    double acc = 0;
    for (std::size_t l = 0; l < sn; ++l) {
      acc += (p[a + l] - p[b + l]) * (lp[a + l] - lp[b + l]);
    }
    return acc;
  };

  // Cumulative distance D_B (eq. 1), once per pixel.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::size_t center = pixel_base(x, y);
      double acc = 0;
      for (const auto& [dx, dy] : se.offsets) {
        const std::size_t nb = pixel_base(clampi(x + dx, 0, w - 1),
                                          clampi(y + dy, 0, h - 1));
        acc += pair_sid(center, nb);
      }
      out.db[static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
             static_cast<std::size_t>(x)] = static_cast<float>(acc);
    }
  }

  // Erosion (argmin) / dilation (argmax) over the shifted D_B values
  // (eqs. 5-6), first-wins tie-breaking in SE scan order, then the MEI
  // (SID between the dilation- and erosion-selected pixel vectors).
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int min_d = 0, max_d = 0;
      float min_v = 0, max_v = 0;
      for (int d = 0; d < se.size(); ++d) {
        const auto [dx, dy] = se.offsets[static_cast<std::size_t>(d)];
        const float v =
            out.db[static_cast<std::size_t>(clampi(y + dy, 0, h - 1)) *
                       static_cast<std::size_t>(w) +
                   static_cast<std::size_t>(clampi(x + dx, 0, w - 1))];
        if (d == 0) {
          min_v = max_v = v;
        } else {
          if (v < min_v) {
            min_v = v;
            min_d = d;
          }
          if (v > max_v) {
            max_v = v;
            max_d = d;
          }
        }
      }
      const std::size_t idx =
          static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
          static_cast<std::size_t>(x);
      out.erosion_index[idx] = static_cast<std::uint8_t>(min_d);
      out.dilation_index[idx] = static_cast<std::uint8_t>(max_d);

      const auto [ex, ey] = se.offsets[static_cast<std::size_t>(min_d)];
      const auto [gx, gy] = se.offsets[static_cast<std::size_t>(max_d)];
      const std::size_t ero = pixel_base(clampi(x + ex, 0, w - 1),
                                         clampi(y + ey, 0, h - 1));
      const std::size_t dil = pixel_base(clampi(x + gx, 0, w - 1),
                                         clampi(y + gy, 0, h - 1));
      out.mei[idx] = static_cast<float>(pair_sid(dil, ero));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Vectorized engine: float arithmetic in band groups of four, mirroring the
// fragment programs instruction for instruction (see core/shaders.cpp).
// ---------------------------------------------------------------------------

namespace {

/// ln(2) exactly as the shader literal {0.69314718} parses to float.
constexpr float kLn2 = 0.69314718f;

/// DP4 with the interpreter's evaluation order.
inline float dp4_mirror(const float* a, const float* b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2] + a[3] * b[3];
}

}  // namespace

MorphOutputs morphology_vectorized(const hsi::HyperCube& cube,
                                   const StructuringElement& se) {
  const int w = cube.width();
  const int h = cube.height();
  const int n = cube.bands();
  const int groups = (n + 3) / 4;
  const std::size_t padn = static_cast<std::size_t>(groups) * 4;
  const std::size_t px = cube.pixel_count();

  MorphOutputs out;
  out.width = w;
  out.height = h;
  out.db.assign(px, 0.f);
  out.erosion_index.assign(px, 0);
  out.dilation_index.assign(px, 0);
  out.mei.assign(px, 0.f);

  // Normalization stage: band-group sums (DP4 order), reciprocal multiply,
  // then the log stream (MAX clamp, LG2, scale by ln 2).
  std::vector<float> p(px * padn, 0.f), lp(px * padn, 0.f);
  {
    std::vector<float> spec(static_cast<std::size_t>(n));
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        cube.pixel(x, y, spec);
        const std::size_t base =
            (static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
             static_cast<std::size_t>(x)) * padn;
        float* pp = p.data() + base;
        for (int b = 0; b < n; ++b) pp[b] = spec[static_cast<std::size_t>(b)];

        float sum = 0.f;
        for (int g = 0; g < groups; ++g) {
          const float* f = pp + 4 * g;
          const float sg = f[0] * 1.f + f[1] * 1.f + f[2] * 1.f + f[3] * 1.f;
          sum = sum + sg;
        }
        const float r = 1.f / std::max(sum, kSumEpsilon);
        float* lpp = lp.data() + base;
        for (std::size_t b = 0; b < padn; ++b) {
          pp[b] = pp[b] * r;
          lpp[b] = std::log2(std::max(pp[b], kProbEpsilon)) * kLn2;
        }
      }
    }
  }

  auto base_of = [&](int x, int y) {
    return (static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
            static_cast<std::size_t>(x)) * padn;
  };

  // Cumulative distance: one "pass" per band group (group-major), each pass
  // accumulating the SE neighbors in scan order inside a register.
  for (int g = 0; g < groups; ++g) {
    const std::size_t go = static_cast<std::size_t>(g) * 4;
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const float* pc = p.data() + base_of(x, y) + go;
        const float* lc = lp.data() + base_of(x, y) + go;
        float acc = 0.f;
        for (const auto& [dx, dy] : se.offsets) {
          const std::size_t nb =
              base_of(clampi(x + dx, 0, w - 1), clampi(y + dy, 0, h - 1)) + go;
          const float* pq = p.data() + nb;
          const float* lq = lp.data() + nb;
          float dp[4], dl[4];
          for (int c = 0; c < 4; ++c) {
            dp[c] = pc[c] - pq[c];
            dl[c] = lc[c] - lq[c];
          }
          acc = acc + dp4_mirror(dp, dl);
        }
        const std::size_t idx =
            static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
            static_cast<std::size_t>(x);
        out.db[idx] = out.db[idx] + acc;
      }
    }
  }

  // Min/max stage: strict-compare chains over the shifted D_B, first-wins.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int min_d = 0, max_d = 0;
      float min_v = 0.f, max_v = 0.f;
      for (int d = 0; d < se.size(); ++d) {
        const auto [dx, dy] = se.offsets[static_cast<std::size_t>(d)];
        const float v =
            out.db[static_cast<std::size_t>(clampi(y + dy, 0, h - 1)) *
                       static_cast<std::size_t>(w) +
                   static_cast<std::size_t>(clampi(x + dx, 0, w - 1))];
        if (d == 0) {
          min_v = max_v = v;
        } else {
          if (v < min_v) {
            min_v = v;
            min_d = d;
          }
          if (max_v < v) {
            max_v = v;
            max_d = d;
          }
        }
      }
      const std::size_t idx =
          static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
          static_cast<std::size_t>(x);
      out.erosion_index[idx] = static_cast<std::uint8_t>(min_d);
      out.dilation_index[idx] = static_cast<std::uint8_t>(max_d);
    }
  }

  // MEI stage: one pass per band group, accumulating SID(dilation, erosion).
  for (int g = 0; g < groups; ++g) {
    const std::size_t go = static_cast<std::size_t>(g) * 4;
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const std::size_t idx =
            static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
            static_cast<std::size_t>(x);
        const auto [ex, ey] =
            se.offsets[static_cast<std::size_t>(out.erosion_index[idx])];
        const auto [gx, gy] =
            se.offsets[static_cast<std::size_t>(out.dilation_index[idx])];
        const std::size_t ero =
            base_of(clampi(x + ex, 0, w - 1), clampi(y + ey, 0, h - 1)) + go;
        const std::size_t dil =
            base_of(clampi(x + gx, 0, w - 1), clampi(y + gy, 0, h - 1)) + go;
        float dp[4], dl[4];
        for (int c = 0; c < 4; ++c) {
          dp[c] = p[dil + static_cast<std::size_t>(c)] -
                  p[ero + static_cast<std::size_t>(c)];
          dl[c] = lp[dil + static_cast<std::size_t>(c)] -
                  lp[ero + static_cast<std::size_t>(c)];
        }
        out.mei[idx] = out.mei[idx] + dp4_mirror(dp, dl);
      }
    }
  }
  return out;
}

}  // namespace hs::core
