// Linear spectral unmixing and max-abundance labeling (steps 3-4 of AMC).
//
// The linear mixture model x = E a + n is solved per pixel. Three solvers:
//
//   Unconstrained -- a = (E^T E)^-1 E^T x, the paper's "standard linear
//                    mixture model". The Gram matrix is factored once
//                    (Cholesky, with a tiny ridge retry, then QR fallback),
//                    so per-pixel work is one matvec + two triangular
//                    solves.
//   SumToOne      -- abundances constrained to sum to 1 (SCLS), the usual
//                    physical refinement, via the closed-form correction
//                    of the unconstrained solution.
//   Nnls          -- abundances constrained non-negative (Lawson-Hanson).
//                    Markedly slower; used by the unmixing ablation.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "hsi/cube.hpp"

namespace hs::core {

enum class UnmixingMethod { Unconstrained, SumToOne, Nnls };

const char* unmixing_method_name(UnmixingMethod method);

class Unmixer {
 public:
  /// `endmembers[k]` is the bands-long spectrum of endmember k.
  Unmixer(std::vector<std::vector<float>> endmembers, UnmixingMethod method);

  int endmember_count() const { return static_cast<int>(endmembers_.size()); }
  int bands() const { return bands_; }
  UnmixingMethod method() const { return method_; }

  /// Abundance vector of one pixel spectrum (size = endmember_count()).
  std::vector<double> abundances(std::span<const float> spectrum) const;

  /// argmax abundance for one spectrum.
  int classify(std::span<const float> spectrum) const;

  /// Labels every pixel of the cube; abundances_out, if non-null, receives
  /// pixel-major abundance vectors (pixel * count + k).
  std::vector<int> classify_cube(const hsi::HyperCube& cube,
                                 std::vector<double>* abundances_out = nullptr) const;

 private:
  struct Impl;
  std::vector<std::vector<float>> endmembers_;
  int bands_;
  UnmixingMethod method_;
  // Precomputed solver state (type-erased to keep linalg out of this header).
  std::shared_ptr<const Impl> impl_;
};

}  // namespace hs::core
