// Extended morphological operations and the MEI score (step 2 of AMC).
//
// Two CPU engines compute the same mathematics:
//
//   * morphology_reference -- the clean double-precision implementation
//     (the paper's "gcc" scalar baseline). Hand-tuned in the same sense
//     the paper describes: the cumulative distance D_B is computed once
//     per pixel and *reused* for all neighborhoods that contain the pixel
//     (without the reuse, erosion+dilation would recompute every D_B
//     |B| times).
//
//   * morphology_vectorized -- the 4-wide float implementation (the
//     paper's "icc autovectorized" baseline). It processes bands in
//     groups of four with the exact operation order, precision, and
//     epsilon clamps of the GPU fragment programs, so its outputs are
//     bit-comparable with the GPU stream pipeline -- the equivalence test
//     between backends rests on this.
//
// Border policy is clamp-to-edge everywhere (matching the texture
// addressing mode of the GPU path).
#pragma once

#include <cstdint>
#include <vector>

#include "core/structuring_element.hpp"
#include "hsi/cube.hpp"

namespace hs::core {

struct MorphOutputs {
  int width = 0;
  int height = 0;
  /// Cumulative SID distance D_B per pixel (eq. 1).
  std::vector<float> db;
  /// Index into se.offsets of the erosion selection (argmin, eq. 5).
  std::vector<std::uint8_t> erosion_index;
  /// Index into se.offsets of the dilation selection (argmax, eq. 6).
  std::vector<std::uint8_t> dilation_index;
  /// Morphological eccentricity index: SID(dilation pixel, erosion pixel).
  std::vector<float> mei;

  std::size_t pixel_count() const {
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }
};

/// Double-precision scalar reference.
MorphOutputs morphology_reference(const hsi::HyperCube& cube,
                                  const StructuringElement& se);

/// Float, band-group-of-4 engine mirroring the GPU kernel arithmetic.
MorphOutputs morphology_vectorized(const hsi::HyperCube& cube,
                                   const StructuringElement& se);

}  // namespace hs::core
