#include "core/endmember.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "util/assert.hpp"

namespace hs::core {

EndmemberSelection select_endmembers(std::span<const float> mei, int width,
                                     int height, int count,
                                     int min_separation) {
  HS_ASSERT(width > 0 && height > 0 &&
            mei.size() == static_cast<std::size_t>(width) * static_cast<std::size_t>(height));
  HS_ASSERT(count > 0 && min_separation >= 0);

  std::vector<std::size_t> order(mei.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (mei[a] != mei[b]) return mei[a] > mei[b];
    return a < b;
  });

  EndmemberSelection sel;
  for (std::size_t cand : order) {
    if (static_cast<int>(sel.pixels.size()) >= count) break;
    const int cx = static_cast<int>(cand % static_cast<std::size_t>(width));
    const int cy = static_cast<int>(cand / static_cast<std::size_t>(width));
    bool ok = true;
    if (min_separation > 0) {
      for (std::size_t taken : sel.pixels) {
        const int tx = static_cast<int>(taken % static_cast<std::size_t>(width));
        const int ty = static_cast<int>(taken / static_cast<std::size_t>(width));
        if (std::abs(cx - tx) < min_separation &&
            std::abs(cy - ty) < min_separation) {
          ok = false;
          break;
        }
      }
    }
    if (ok) sel.pixels.push_back(cand);
  }
  return sel;
}

}  // namespace hs::core
