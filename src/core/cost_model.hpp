// Analytic cost model for paper-scale workloads.
//
// The paper times the full Indian Pines scene (1.33 Mpixels x 216 bands);
// running the *functional* simulator at that size would take tens of
// minutes per data point, so the table benches (Tables 4/5, Figure 6)
// proceed in two steps:
//
//   1. CPU side: closed-form operation counts for the morphological
//      pipeline (documented below), converted to time with the Table 2
//      CPU profiles.
//   2. GPU side: a *calibration* run of the real simulator on a small
//      scene measures per-fragment ALU/texture/cache-traffic rates per
//      pipeline stage; those rates are exact for any image size because
//      every kernel does size-independent per-fragment work. The
//      extrapolation then re-plans the chunking at the target size and
//      applies the same bottleneck timing model the simulator uses,
//      plus the bus model for the transfers.
//
// CPU operation counts per pixel (N bands, |B| SE offsets):
//   normalization: N adds + 1 clamped divide + N multiplies, plus N
//                  log evaluations (counted as transcendentals);
//   cumulative distance: |B| * N * (2 subs + 1 mul + 1 add);
//   min/max: 2 * |B| compares;
//   MEI: N * 4 flops.
// Streamed bytes: ~4 float arrays of N per pixel (read raw, write p and
// log p, re-read for the neighborhood scan from cache).
#pragma once

#include <cstdint>

#include "core/amc_gpu.hpp"
#include "gpusim/device_profile.hpp"

namespace hs::core {

struct CpuCost {
  double flops = 0;            ///< adds/mults/compares
  double transcendentals = 0;  ///< log evaluations
  double bytes = 0;            ///< effective streamed memory traffic
};

CpuCost cpu_morphology_cost(std::uint64_t pixels, int se_size, int bands);

/// Transcendentals are charged `transcendental_flop_equiv` flops each
/// (libm log on a P4 costs tens of cycles; 10 flop-equivalents at the
/// sustained rate is the calibrated middle ground).
double model_cpu_morphology_seconds(const gpusim::CpuProfile& cpu,
                                    const CpuCost& cost, bool vectorized,
                                    double transcendental_flop_equiv = 10.0);

struct GpuExtrapolation {
  double upload_seconds = 0;
  double pass_seconds = 0;
  double download_seconds = 0;
  std::uint64_t passes = 0;
  std::uint64_t chunks = 0;
  std::uint64_t padded_texels = 0;

  double total_seconds() const {
    return upload_seconds + pass_seconds + download_seconds;
  }
};

/// The chunk texel budget morphology_gpu derives for a fresh device of
/// `profile` (exposed so the extrapolation plans identical chunking).
std::uint64_t amc_auto_texel_budget(const gpusim::DeviceProfile& profile,
                                    int bands, bool precompute_log);

/// Extrapolates a calibration run (real simulator output on a small scene,
/// same bands / SE / options) to a target image size on `profile`.
GpuExtrapolation extrapolate_gpu_morphology(const AmcGpuReport& calibration,
                                            const gpusim::DeviceProfile& profile,
                                            int target_width, int target_height,
                                            int bands, int se_radius,
                                            bool precompute_log,
                                            std::uint64_t chunk_texel_budget = 0);

}  // namespace hs::core
