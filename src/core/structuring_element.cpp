#include "core/structuring_element.hpp"

#include "util/assert.hpp"

namespace hs::core {

StructuringElement StructuringElement::square(int radius) {
  HS_ASSERT(radius >= 0);
  StructuringElement se;
  se.radius = radius;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      se.offsets.emplace_back(dx, dy);
    }
  }
  return se;
}

StructuringElement StructuringElement::cross(int radius) {
  HS_ASSERT(radius >= 0);
  StructuringElement se;
  se.radius = radius;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx == 0 || dy == 0) se.offsets.emplace_back(dx, dy);
    }
  }
  return se;
}

StructuringElement StructuringElement::disk(int radius) {
  HS_ASSERT(radius >= 0);
  StructuringElement se;
  se.radius = radius;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx * dx + dy * dy <= radius * radius) se.offsets.emplace_back(dx, dy);
    }
  }
  return se;
}

}  // namespace hs::core
