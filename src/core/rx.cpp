#include "core/rx.hpp"

#include <algorithm>
#include <numeric>

#include "hsi/band_math.hpp"
#include "linalg/cholesky.hpp"
#include "util/assert.hpp"

namespace hs::core {

RxResult rx_detect(const hsi::HyperCube& cube, const RxConfig& config) {
  HS_ASSERT(config.false_alarm_rate > 0 && config.false_alarm_rate < 1);
  const int n = cube.bands();
  const std::size_t px = cube.pixel_count();

  const std::vector<double> mean = hsi::band_means(cube);
  linalg::Matrix cov = hsi::band_covariance(cube);
  double trace = 0;
  for (int i = 0; i < n; ++i) trace += cov(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
  const double ridge = config.ridge * std::max(trace / n, 1e-12);
  for (int i = 0; i < n; ++i) cov(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += ridge;

  const auto chol = linalg::Cholesky::factor(cov);
  HS_ASSERT_MSG(chol.has_value(), "covariance not positive definite after ridge");

  RxResult result;
  result.scores.assign(px, 0.f);
  std::vector<float> spec(static_cast<std::size_t>(n));
  std::vector<double> centered(static_cast<std::size_t>(n));
  for (int y = 0; y < cube.height(); ++y) {
    for (int x = 0; x < cube.width(); ++x) {
      cube.pixel(x, y, spec);
      for (int b = 0; b < n; ++b) {
        centered[static_cast<std::size_t>(b)] =
            static_cast<double>(spec[static_cast<std::size_t>(b)]) -
            mean[static_cast<std::size_t>(b)];
      }
      const auto solved = chol->solve(centered);
      double score = 0;
      for (int b = 0; b < n; ++b) {
        score += centered[static_cast<std::size_t>(b)] * solved[static_cast<std::size_t>(b)];
      }
      result.scores[static_cast<std::size_t>(y) * static_cast<std::size_t>(cube.width()) +
                    static_cast<std::size_t>(x)] = static_cast<float>(score);
    }
  }

  // Empirical quantile threshold.
  std::vector<float> sorted = result.scores;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t cut = std::min(
      px - 1, static_cast<std::size_t>((1.0 - config.false_alarm_rate) *
                                       static_cast<double>(px)));
  result.threshold = sorted[cut];

  std::vector<std::size_t> order(px);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.scores[a] > result.scores[b];
  });
  for (std::size_t i : order) {
    if (result.scores[i] <= result.threshold) break;
    result.detections.push_back(i);
  }
  return result;
}

}  // namespace hs::core
