// Hybrid CPU/GPU workload partitioning.
//
// The paper closes with: "In future research, we plan to study additional
// partitioning strategies to balance the CPU and GPU workloads." This
// module implements that strategy for the morphological pipeline: the
// image is split into a CPU row band and a GPU row band (each extended by
// the usual 2r halo so results are exact), the two engines process their
// bands concurrently in the modeled timeline, and the makespan is
// max(cpu_time, gpu_time). The split fraction can be fixed or derived
// from the cost models so both sides finish together.
//
// Functional guarantee: the stitched outputs are bit-identical to a
// full-image run of the vectorized CPU engine (and therefore to the GPU
// pipeline), because both engines mirror the same arithmetic and the halo
// makes borders exact.
#pragma once

#include "core/amc_gpu.hpp"
#include "core/morphology.hpp"
#include "gpusim/device_profile.hpp"

namespace hs::core {

struct HybridOptions {
  AmcGpuOptions gpu;
  /// Host CPU working alongside the GPU (cost model only).
  gpusim::CpuProfile cpu = gpusim::pentium4_prescott();
  bool cpu_vectorized = true;
  /// Fraction of image rows assigned to the CPU, in [0, 1].
  /// Negative = balance automatically from the cost models.
  double cpu_fraction = -1.0;
};

struct HybridReport {
  MorphOutputs morph;
  double cpu_fraction = 0;  ///< fraction actually used
  int cpu_rows = 0;
  int gpu_rows = 0;
  /// Modeled concurrent timeline.
  double cpu_seconds = 0;
  double gpu_seconds = 0;
  double makespan_seconds = 0;
  std::size_t gpu_chunks = 0;
};

/// Runs the split; either band may be empty (fraction 0 or 1).
HybridReport morphology_hybrid(const hsi::HyperCube& cube,
                               const StructuringElement& se,
                               const HybridOptions& options);

/// Analytic (no-simulation) estimate of the GPU pipeline's modeled time
/// for a given image, from the assembled kernels' static per-fragment
/// instruction mix, the chunk plan, and the transfer model. Used to pick
/// the automatic split; validated against the simulator in tests.
double analytic_gpu_morphology_seconds(const gpusim::DeviceProfile& profile,
                                       int width, int height, int bands,
                                       const StructuringElement& se,
                                       bool precompute_log = true,
                                       std::uint64_t chunk_texel_budget = 0);

/// Analytic CPU time for the same pipeline (wraps the cost model).
double analytic_cpu_morphology_seconds(const gpusim::CpuProfile& cpu,
                                       bool vectorized, std::uint64_t pixels,
                                       const StructuringElement& se, int bands);

/// The balanced CPU fraction: both sides finish together under the
/// analytic models (clamped to [0, 1]).
double balanced_cpu_fraction(const gpusim::CpuProfile& cpu, bool vectorized,
                             const gpusim::DeviceProfile& gpu, int width,
                             int height, int bands,
                             const StructuringElement& se);

}  // namespace hs::core
