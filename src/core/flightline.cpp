#include "core/flightline.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hs::core {

FlightlineProcessor::FlightlineProcessor(int width, int bands,
                                         FlightlineConfig config,
                                         RowCallback on_row)
    : width_(width),
      bands_(bands),
      config_(std::move(config)),
      on_row_(std::move(on_row)),
      halo_(2 * config_.se.radius) {
  HS_ASSERT(width > 0 && bands > 0);
  HS_ASSERT(config_.block_rows > 0);
  HS_ASSERT(on_row_ != nullptr);
}

void FlightlineProcessor::push_row(std::span<const float> row_bip) {
  HS_ASSERT_MSG(!finished_, "push_row after finish");
  HS_ASSERT(row_bip.size() == static_cast<std::size_t>(width_) *
                                  static_cast<std::size_t>(bands_));
  buffer_.emplace_back(row_bip.begin(), row_bip.end());
  ++next_row_;

  // A block of interior rows [emitted_, emitted_ + block_rows) can launch
  // once its bottom halo has arrived.
  while (next_row_ >= emitted_ + config_.block_rows + halo_) {
    launch(/*final_block=*/false);
  }
}

void FlightlineProcessor::finish() {
  HS_ASSERT_MSG(!finished_, "finish called twice");
  finished_ = true;
  while (emitted_ < next_row_) {
    launch(/*final_block=*/true);
  }
}

void FlightlineProcessor::launch(bool final_block) {
  const std::int64_t interior_begin = emitted_;
  const std::int64_t interior_end =
      std::min<std::int64_t>(interior_begin + config_.block_rows, next_row_);
  HS_ASSERT(interior_end > interior_begin);

  const std::int64_t band_begin = std::max<std::int64_t>(0, interior_begin - halo_);
  const std::int64_t band_end =
      final_block ? std::min<std::int64_t>(next_row_, interior_end + halo_)
                  : interior_end + halo_;
  HS_ASSERT(band_end <= buffer_start_ + static_cast<std::int64_t>(buffer_.size()));

  // Materialize the band as a cube.
  const int band_rows = static_cast<int>(band_end - band_begin);
  hsi::HyperCube band(width_, band_rows, bands_, hsi::Interleave::BIP);
  for (int r = 0; r < band_rows; ++r) {
    const std::vector<float>& row =
        buffer_[static_cast<std::size_t>(band_begin + r - buffer_start_)];
    std::copy(row.begin(), row.end(),
              band.raw().begin() + static_cast<std::ptrdiff_t>(
                                       static_cast<std::size_t>(r) *
                                       static_cast<std::size_t>(width_) *
                                       static_cast<std::size_t>(bands_)));
  }

  const AmcGpuReport report = morphology_gpu(band, config_.se, config_.gpu);
  modeled_seconds_ += report.modeled_seconds;
  ++blocks_;

  // Emit the interior rows.
  const int local0 = static_cast<int>(interior_begin - band_begin);
  for (std::int64_t row = interior_begin; row < interior_end; ++row) {
    const std::size_t local =
        static_cast<std::size_t>(local0 + (row - interior_begin)) *
        static_cast<std::size_t>(width_);
    FlightlineRow out;
    out.row = row;
    out.mei.assign(report.morph.mei.begin() + static_cast<std::ptrdiff_t>(local),
                   report.morph.mei.begin() + static_cast<std::ptrdiff_t>(local + static_cast<std::size_t>(width_)));
    out.db.assign(report.morph.db.begin() + static_cast<std::ptrdiff_t>(local),
                  report.morph.db.begin() + static_cast<std::ptrdiff_t>(local + static_cast<std::size_t>(width_)));
    out.erosion_index.assign(
        report.morph.erosion_index.begin() + static_cast<std::ptrdiff_t>(local),
        report.morph.erosion_index.begin() + static_cast<std::ptrdiff_t>(local + static_cast<std::size_t>(width_)));
    out.dilation_index.assign(
        report.morph.dilation_index.begin() + static_cast<std::ptrdiff_t>(local),
        report.morph.dilation_index.begin() + static_cast<std::ptrdiff_t>(local + static_cast<std::size_t>(width_)));
    on_row_(std::move(out));
  }
  emitted_ = interior_end;

  // Drop rows the next block's top halo no longer needs.
  const std::int64_t keep_from = std::max<std::int64_t>(0, emitted_ - halo_);
  while (buffer_start_ < keep_from && !buffer_.empty()) {
    buffer_.erase(buffer_.begin());
    ++buffer_start_;
  }
}

}  // namespace hs::core
