#include "core/amc_gpu.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <span>

#include "core/shaders.hpp"
#include "gpusim/assembler.hpp"
#include "stream/chunker.hpp"
#include "stream/scheduler.hpp"
#include "stream/stream.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace hs::core {

using gpusim::float4;
using gpusim::FragmentProgram;
using gpusim::TextureFormat;
using gpusim::TextureHandle;

double AmcGpuReport::modeled_overlapped_seconds() const {
  // Three-stage software pipeline (upload / compute / download) with one
  // chunk in flight per stage: standard tandem-queue completion recurrence.
  double u_done = 0, c_done = 0, d_done = 0;
  for (const ChunkCost& chunk : chunk_costs) {
    u_done += chunk.upload_seconds;
    c_done = std::max(u_done, c_done) + chunk.pass_seconds;
    d_done = std::max(c_done, d_done) + chunk.download_seconds;
  }
  return d_done;
}

double modeled_parallel_schedule_seconds(const std::vector<ChunkCost>& costs,
                                         std::size_t workers) {
  const std::size_t w = std::max<std::size_t>(1, workers);
  // Compute proceeds in index-order waves of w chunks, one per device;
  // a wave finishes when its slowest member does. The host bus is shared,
  // so transfers stay fully serialized. Streams are accumulated separately
  // and added last so that w == 1 regroups nothing: compute is then the
  // plain chunk-order pass sum and the result bit-equals the serialized
  // modeled total.
  double compute = 0;
  for (std::size_t base = 0; base < costs.size(); base += w) {
    double wave = 0;
    const std::size_t end = std::min(costs.size(), base + w);
    for (std::size_t i = base; i < end; ++i) {
      wave = std::max(wave, costs[i].pass_seconds);
    }
    compute += wave;
  }
  double upload = 0;
  double download = 0;
  for (const ChunkCost& chunk : costs) {
    upload += chunk.upload_seconds;
    download += chunk.download_seconds;
  }
  return compute + upload + download;
}

double AmcGpuReport::modeled_parallel_seconds(std::size_t workers) const {
  return modeled_parallel_schedule_seconds(chunk_costs, workers);
}

const char* const kStageUpload = "stream_upload";
const char* const kStageNormalization = "normalization";
const char* const kStageCumulativeDistance = "cumulative_distance";
const char* const kStageMaxMin = "maximum_minimum";
const char* const kStageSid = "compute_sid";
const char* const kStageDownload = "stream_download";

namespace {

/// Captures the device transfer totals so upload/download deltas can be
/// attributed to the corresponding pipeline stages.
struct TransferMark {
  double upload_s;
  double download_s;
  explicit TransferMark(const gpusim::Device& device)
      : upload_s(device.totals().transfer.modeled_upload_seconds),
        download_s(device.totals().transfer.modeled_download_seconds) {}
};

std::uint64_t auto_texel_budget(const gpusim::Device& device, int groups,
                                bool precompute_log) {
  const std::uint64_t stacks = static_cast<std::uint64_t>(groups) *
                               (precompute_log ? 3u : 2u);
  // Bytes per padded texel: RGBA stacks + offsets texture + six R32F
  // scalar textures (sum/DB/MEI ping-pongs).
  const std::uint64_t per_texel = stacks * 16 + 16 + 6 * 4;
  const std::uint64_t usable =
      static_cast<std::uint64_t>(0.9 * static_cast<double>(device.video_memory_free()));
  return std::max<std::uint64_t>(1024, usable / per_texel);
}

/// Everything one chunk contributes to the aggregate report. Captured
/// per chunk (each chunk runs against zeroed device totals and a fresh
/// executor) and reduced in chunk-index order afterwards, so the merged
/// numbers are bit-identical for every worker count.
struct ChunkOutcome {
  std::vector<std::pair<std::string, stream::StageStats>> stages;
  gpusim::DeviceTotals totals;
  ChunkCost cost;
};

}  // namespace

AmcGpuReport morphology_gpu(const hsi::HyperCube& cube,
                            const StructuringElement& se,
                            const AmcGpuOptions& options) {
  const int w = cube.width();
  const int h = cube.height();
  const int bands = cube.bands();
  const int groups = stream::band_group_count(bands);
  const int nb = se.size();
  HS_ASSERT(nb >= 1);

  trace::Span pipeline_span("amc_gpu", "pipeline");
  if (pipeline_span.active()) {
    pipeline_span.arg("width", w);
    pipeline_span.arg("height", h);
    pipeline_span.arg("bands", bands);
    pipeline_span.arg("se_size", nb);
  }

  // The cumulative-distance shader is specialized per (dx, dy) constant
  // pair under the compiled engine, so the device's program cache must
  // hold the fixed programs plus one entry per SE neighbor or the
  // per-chunk redraw loop would thrash it.
  gpusim::SimConfig sim = options.sim;
  sim.program_cache_capacity = std::max(
      sim.program_cache_capacity, static_cast<std::size_t>(16 + nb));

  // ---- programs (assembled once; shared read-only by all workers) ----------
  const FragmentProgram prog_clear =
      gpusim::assemble_or_die("clear", shaders::clear_source());
  const FragmentProgram prog_sum =
      gpusim::assemble_or_die("band_sum", shaders::band_sum_source());
  const FragmentProgram prog_norm =
      gpusim::assemble_or_die("normalize", shaders::normalize_source());
  const FragmentProgram prog_log =
      gpusim::assemble_or_die("log", shaders::log_source());
  const FragmentProgram prog_cumdist_fused = gpusim::assemble_or_die(
      "cumdist_fused", options.precompute_log
                           ? shaders::cumulative_distance_fused_source(nb)
                           : shaders::cumulative_distance_inline_log_source(nb));
  const FragmentProgram prog_cumdist_single = gpusim::assemble_or_die(
      "cumdist_single", options.precompute_log
                            ? shaders::cumulative_distance_fused_source(1)
                            : shaders::cumulative_distance_inline_log_source(1));
  const FragmentProgram prog_minmax = gpusim::assemble_or_die(
      "minmax_offsets", shaders::minmax_offsets_source(nb));
  const FragmentProgram prog_minmax_idx = gpusim::assemble_or_die(
      "minmax_indices", shaders::minmax_indices_source(nb));
  const FragmentProgram prog_mei =
      gpusim::assemble_or_die("mei", shaders::mei_source());

  // ---- constants -----------------------------------------------------------
  std::vector<float4> cumdist_consts;     // (dx, dy, 0, 0)
  std::vector<float4> minmax_consts;      // (dx, dy, dx, dy)
  std::vector<float4> minmax_idx_consts;  // (dx, dy, d, 0)
  cumdist_consts.reserve(static_cast<std::size_t>(nb));
  minmax_consts.reserve(static_cast<std::size_t>(nb));
  minmax_idx_consts.reserve(static_cast<std::size_t>(nb));
  std::map<std::pair<int, int>, std::uint8_t> offset_to_index;
  for (int d = 0; d < nb; ++d) {
    const auto [dx, dy] = se.offsets[static_cast<std::size_t>(d)];
    cumdist_consts.push_back({static_cast<float>(dx), static_cast<float>(dy), 0.f, 0.f});
    minmax_consts.push_back({static_cast<float>(dx), static_cast<float>(dy),
                             static_cast<float>(dx), static_cast<float>(dy)});
    minmax_idx_consts.push_back({static_cast<float>(dx), static_cast<float>(dy),
                                 static_cast<float>(d), 0.f});
    offset_to_index.emplace(std::make_pair(dx, dy), static_cast<std::uint8_t>(d));
  }

  // ---- chunk plan ----------------------------------------------------------
  // The planning device never draws; it exists so the auto budget sees the
  // profile's full video memory -- exactly what every (fresh) worker
  // device will have.
  gpusim::Device planner(options.profile, sim);
  const int halo = 2 * se.radius;
  const std::uint64_t budget =
      options.chunk_texel_budget > 0
          ? options.chunk_texel_budget
          : auto_texel_budget(planner, groups, options.precompute_log);
  const stream::ChunkPlan plan = stream::plan_chunks(w, h, halo, budget);

  AmcGpuReport report;
  report.morph.width = w;
  report.morph.height = h;
  const std::size_t px = cube.pixel_count();
  report.morph.db.assign(px, 0.f);
  report.morph.erosion_index.assign(px, 0);
  report.morph.dilation_index.assign(px, 0);
  report.morph.mei.assign(px, 0.f);
  report.chunk_count = plan.chunks.size();
  if (options.emit_index_stream) {
    report.index_stream.assign(px, {0, 0});
  }

  const TextureFormat stack_fmt = options.half_precision
                                      ? TextureFormat::RGBA16F
                                      : TextureFormat::RGBA32F;
  const TextureFormat scalar_fmt =
      options.half_precision ? TextureFormat::R16F : TextureFormat::R32F;

  // ---- worker devices ------------------------------------------------------
  const std::size_t workers = std::min<std::size_t>(
      std::max<std::size_t>(1, plan.chunks.size()),
      stream::resolve_workers(options.workers));
  gpusim::SimConfig worker_sim = sim;
  if (workers > 1 && sim.worker_threads == 0) {
    // Concurrent devices share the host: split the threads one sequential
    // device would auto-size across the workers instead of nesting full
    // pools. Functional results are independent of worker_threads.
    worker_sim.worker_threads = stream::per_worker_device_threads(
        util::ThreadPool::clamp_to_hardware(
            static_cast<std::size_t>(options.profile.fragment_pipes)),
        workers);
  }
  if (workers > 1 && !worker_sim.shared_programs) {
    // Worker clones re-draw the same few programs; share one lowering.
    worker_sim.shared_programs = std::make_shared<gpusim::SharedProgramStore>();
  }
  std::vector<std::unique_ptr<gpusim::Device>> devices;
  devices.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    devices.push_back(planner.clone_blank(worker_sim));
  }
  report.workers_used = workers;
  if (pipeline_span.active()) {
    pipeline_span.arg("workers", static_cast<double>(workers));
    pipeline_span.arg("chunks", static_cast<double>(plan.chunks.size()));
  }

  std::vector<ChunkOutcome> outcomes(plan.chunks.size());

  // One chunk end to end on one worker's device. Reads only shared
  // read-only state (cube, programs, constants, plan); writes only its
  // ChunkOutcome and its disjoint interior of the full-image outputs, so
  // chunks need no locks and any execution order yields identical bits.
  auto run_chunk = [&](gpusim::Device& device, std::size_t chunk_index) {
    const stream::ChunkRect& chunk = plan.chunks[chunk_index];
    const int cw = chunk.pwidth;
    const int ch = chunk.pheight;

    // Zeroed totals + fresh executor: this chunk's statistics accumulate
    // from scratch, independent of whatever the device ran before, which
    // is what makes the chunk-order reduction worker-count-invariant.
    device.reset_totals();
    stream::StreamExecutor exec(device);

    trace::Span chunk_span("chunk", "chunk");
    if (chunk_span.active()) {
      chunk_span.arg("index", static_cast<double>(chunk_index));
      chunk_span.arg("x0", chunk.x0);
      chunk_span.arg("y0", chunk.y0);
      chunk_span.arg("width", chunk.width);
      chunk_span.arg("height", chunk.height);
      chunk_span.arg("padded_width", cw);
      chunk_span.arg("padded_height", ch);
    }

    // -- stage 1: stream uploading ------------------------------------------
    trace::Span upload_span(kStageUpload, "stage");
    TransferMark upload_mark(device);
    stream::BandStack raw(device, cw, ch, bands,
                          gpusim::AddressMode::ClampToEdge, stack_fmt);
    raw.upload([&](int x, int y, int b) {
      return cube.at(chunk.px0 + x, chunk.py0 + y, b);
    });
    const double upload_delta =
        device.totals().transfer.modeled_upload_seconds - upload_mark.upload_s;
    exec.add_stage_time(kStageUpload, upload_delta);
    upload_span.arg("modeled_us", upload_delta * 1e6);
    upload_span.end();

    stream::BandStack norm(device, cw, ch, bands,
                           gpusim::AddressMode::ClampToEdge, stack_fmt);
    // The log stack is only materialized when precomputing logs; otherwise
    // allocate nothing for it.
    std::optional<stream::BandStack> logs;
    if (options.precompute_log) {
      logs.emplace(device, cw, ch, bands, gpusim::AddressMode::ClampToEdge,
                   stack_fmt);
    }

    stream::PingPong sum(device, cw, ch, scalar_fmt);
    stream::PingPong db(device, cw, ch, scalar_fmt);
    stream::PingPong mei(device, cw, ch, scalar_fmt);
    const TextureHandle offsets =
        device.create_texture(cw, ch, TextureFormat::RGBA32F);

    auto draw = [&](const char* stage, const FragmentProgram& prog,
                    std::initializer_list<TextureHandle> inputs,
                    std::span<const float4> constants, TextureHandle output) {
      const std::vector<TextureHandle> in(inputs);
      const TextureHandle out[1] = {output};
      exec.run(stage, prog, in, constants, out);
    };

    // -- stage 2: normalization (band sum, then divide) -----------------------
    trace::Span norm_span(kStageNormalization, "stage");
    draw(kStageNormalization, prog_clear, {}, {}, sum.front());
    for (int g = 0; g < groups; ++g) {
      draw(kStageNormalization, prog_sum, {raw.group(g), sum.front()}, {},
           sum.back());
      sum.swap();
    }
    for (int g = 0; g < groups; ++g) {
      draw(kStageNormalization, prog_norm, {raw.group(g), sum.front()}, {},
           norm.group(g));
    }
    if (options.precompute_log) {
      for (int g = 0; g < groups; ++g) {
        draw(kStageNormalization, prog_log, {norm.group(g)}, {},
             logs->group(g));
      }
    }

    norm_span.end();

    // -- stage 3: cumulative distance -----------------------------------------
    trace::Span cumdist_span(kStageCumulativeDistance, "stage");
    draw(kStageCumulativeDistance, prog_clear, {}, {}, db.front());
    if (options.fuse_neighbors) {
      for (int g = 0; g < groups; ++g) {
        if (options.precompute_log) {
          draw(kStageCumulativeDistance, prog_cumdist_fused,
               {norm.group(g), logs->group(g), db.front()}, cumdist_consts,
               db.back());
        } else {
          draw(kStageCumulativeDistance, prog_cumdist_fused,
               {norm.group(g), db.front()}, cumdist_consts, db.back());
        }
        db.swap();
      }
    } else {
      // One accumulation stream per SE neighbor, as in the paper's text.
      for (int d = 0; d < nb; ++d) {
        const std::span<const float4> one(&cumdist_consts[static_cast<std::size_t>(d)], 1);
        for (int g = 0; g < groups; ++g) {
          if (options.precompute_log) {
            draw(kStageCumulativeDistance, prog_cumdist_single,
                 {norm.group(g), logs->group(g), db.front()}, one, db.back());
          } else {
            draw(kStageCumulativeDistance, prog_cumdist_single,
                 {norm.group(g), db.front()}, one, db.back());
          }
          db.swap();
        }
      }
    }

    cumdist_span.end();

    // -- stage 4: maximum and minimum (erosion/dilation selection) -----------
    trace::Span maxmin_span(kStageMaxMin, "stage");
    draw(kStageMaxMin, prog_minmax, {db.front()}, minmax_consts, offsets);
    gpusim::TextureHandle index_tex = 0;
    if (options.emit_index_stream) {
      index_tex = device.create_texture(cw, ch, TextureFormat::RGBA32F);
      draw(kStageMaxMin, prog_minmax_idx, {db.front()}, minmax_idx_consts,
           index_tex);
    }

    maxmin_span.end();

    // -- stage 5: compute SID (MEI) -------------------------------------------
    trace::Span sid_span(kStageSid, "stage");
    draw(kStageSid, prog_clear, {}, {}, mei.front());
    for (int g = 0; g < groups; ++g) {
      if (options.precompute_log) {
        draw(kStageSid, prog_mei,
             {norm.group(g), logs->group(g), offsets, mei.front()}, {},
             mei.back());
      } else {
        // Without a log stack the MEI kernel needs logs inline; reuse the
        // single-neighbor inline-log cumulative kernel applied twice is not
        // equivalent, so the log stack is required for this stage. Compute
        // it on demand into the norm stack's scratch: simplest correct
        // choice is to require precompute for stage 5 -- materialize a
        // transient log texture per group here.
        const TextureHandle lg = device.create_texture(cw, ch, stack_fmt);
        draw(kStageSid, prog_log, {norm.group(g)}, {}, lg);
        draw(kStageSid, prog_mei, {norm.group(g), lg, offsets, mei.front()},
             {}, mei.back());
        device.destroy_texture(lg);
      }
      mei.swap();
    }

    sid_span.end();

    // -- stage 6: stream downloading ------------------------------------------
    trace::Span download_span(kStageDownload, "stage");
    TransferMark download_mark(device);
    const std::vector<float> db_host = device.download_scalar(db.front());
    const std::vector<float4> off_host = device.download(offsets);
    const std::vector<float> mei_host = device.download_scalar(mei.front());
    std::vector<float4> idx_host;
    if (options.emit_index_stream) {
      idx_host = device.download(index_tex);
      device.destroy_texture(index_tex);
    }
    const double download_delta =
        device.totals().transfer.modeled_download_seconds -
        download_mark.download_s;
    exec.add_stage_time(kStageDownload, download_delta);
    download_span.arg("modeled_us", download_delta * 1e6);
    download_span.end();

    ChunkOutcome& outcome = outcomes[chunk_index];
    outcome.cost.upload_seconds =
        device.totals().transfer.modeled_upload_seconds - upload_mark.upload_s;
    outcome.cost.download_seconds =
        device.totals().transfer.modeled_download_seconds -
        download_mark.download_s;
    outcome.cost.pass_seconds = device.totals().modeled_pass_seconds;

    // Scatter the interior into the full-image outputs.
    const int dx0 = chunk.interior_dx();
    const int dy0 = chunk.interior_dy();
    for (int y = 0; y < chunk.height; ++y) {
      for (int x = 0; x < chunk.width; ++x) {
        const std::size_t local =
            static_cast<std::size_t>(dy0 + y) * static_cast<std::size_t>(cw) +
            static_cast<std::size_t>(dx0 + x);
        const std::size_t global =
            static_cast<std::size_t>(chunk.y0 + y) * static_cast<std::size_t>(w) +
            static_cast<std::size_t>(chunk.x0 + x);
        report.morph.db[global] = db_host[local];
        report.morph.mei[global] = mei_host[local];
        const float4 off = off_host[local];
        const auto emin = offset_to_index.find(
            {static_cast<int>(std::lround(off.x)), static_cast<int>(std::lround(off.y))});
        const auto emax = offset_to_index.find(
            {static_cast<int>(std::lround(off.z)), static_cast<int>(std::lround(off.w))});
        HS_ASSERT_MSG(emin != offset_to_index.end() && emax != offset_to_index.end(),
                      "minmax stage produced an offset outside the SE");
        report.morph.erosion_index[global] = emin->second;
        report.morph.dilation_index[global] = emax->second;
        if (options.emit_index_stream) {
          const float4 pair = idx_host[local];
          report.index_stream[global] = {
              static_cast<std::uint8_t>(std::lround(pair.x)),
              static_cast<std::uint8_t>(std::lround(pair.y))};
        }
      }
    }

    device.destroy_texture(offsets);

    outcome.totals = device.totals();
    for (const std::string& name : exec.stage_order()) {
      outcome.stages.emplace_back(name, exec.stages().at(name));
    }
  };

  stream::ChunkScheduler scheduler(workers);
  scheduler.run(plan.chunks.size(), [&](std::size_t worker, std::size_t chunk) {
    if (options.cancel_check && options.cancel_check()) {
      throw PipelineCancelled("amc_gpu cancelled before chunk " +
                              std::to_string(chunk));
    }
    run_chunk(*devices[worker], chunk);
  });

  // ---- ordered reduction ---------------------------------------------------
  // Chunk-index order, regardless of which worker ran what when: the
  // merged stage table, device totals and chunk costs are therefore the
  // same bits for every worker count.
  std::map<std::string, std::size_t> stage_slot;
  for (const ChunkOutcome& outcome : outcomes) {
    for (const auto& [name, stats] : outcome.stages) {
      auto [it, inserted] = stage_slot.try_emplace(name, report.stages.size());
      if (inserted) report.stages.emplace_back(name, stream::StageStats{});
      report.stages[it->second].second += stats;
    }
    report.totals += outcome.totals;
    report.chunk_costs.push_back(outcome.cost);
  }
  report.modeled_seconds = report.totals.modeled_total_seconds();
  return report;
}

}  // namespace hs::core
