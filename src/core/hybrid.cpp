#include "core/hybrid.hpp"

#include <algorithm>
#include <cmath>

#include "core/cost_model.hpp"
#include "core/shaders.hpp"
#include "gpusim/assembler.hpp"
#include "stream/chunker.hpp"
#include "stream/stream.hpp"
#include "util/assert.hpp"

namespace hs::core {

namespace {

/// Static per-fragment cost of one pass type.
struct KernelCost {
  std::uint64_t alu = 0;
  std::uint64_t tex = 0;
  std::uint64_t write_bytes = 0;        ///< render-target bytes per fragment
  std::uint64_t input_texel_bytes = 0;  ///< unique texture bytes per fragment
};

double pass_time(const gpusim::DeviceProfile& profile, const KernelCost& k,
                 std::uint64_t fragments) {
  gpusim::PassCounts counts;
  counts.fragments = fragments;
  counts.alu_instructions = k.alu * fragments;
  counts.tex_fetches = k.tex * fragments;
  counts.unique_tile_bytes = k.input_texel_bytes * fragments;
  // Without simulating the L1 we approximate its miss traffic as the
  // compulsory traffic (every unique byte moves L2->L1 at least once).
  counts.cache_miss_bytes = counts.unique_tile_bytes;
  counts.tex_fetch_bytes = counts.unique_tile_bytes;
  counts.bytes_written = k.write_bytes * fragments;
  counts.cache_enabled = true;
  return gpusim::model_pass_time(profile, counts);
}

KernelCost cost_of(const gpusim::FragmentProgram& program,
                   std::uint64_t write_bytes, std::uint64_t input_bytes) {
  KernelCost k;
  k.alu = static_cast<std::uint64_t>(program.alu_instruction_count());
  k.tex = static_cast<std::uint64_t>(program.tex_instruction_count());
  k.write_bytes = write_bytes;
  k.input_texel_bytes = input_bytes;
  return k;
}

}  // namespace

double analytic_gpu_morphology_seconds(const gpusim::DeviceProfile& profile,
                                       int width, int height, int bands,
                                       const StructuringElement& se,
                                       bool precompute_log,
                                       std::uint64_t chunk_texel_budget) {
  if (width <= 0 || height <= 0) return 0.0;
  const int groups = stream::band_group_count(bands);
  const int nb = se.size();
  const int halo = 2 * se.radius;
  const std::uint64_t budget =
      chunk_texel_budget > 0
          ? chunk_texel_budget
          : amc_auto_texel_budget(profile, bands, precompute_log);
  const stream::ChunkPlan plan = stream::plan_chunks(width, height, halo, budget);

  // Assemble the kernels once for their static instruction mix.
  const auto clear = gpusim::assemble_or_die("clear", shaders::clear_source());
  const auto sum = gpusim::assemble_or_die("sum", shaders::band_sum_source());
  const auto norm = gpusim::assemble_or_die("norm", shaders::normalize_source());
  const auto logk = gpusim::assemble_or_die("log", shaders::log_source());
  const auto cumdist = gpusim::assemble_or_die(
      "cumdist", precompute_log
                     ? shaders::cumulative_distance_fused_source(nb)
                     : shaders::cumulative_distance_inline_log_source(nb));
  const auto minmax =
      gpusim::assemble_or_die("minmax", shaders::minmax_offsets_source(nb));
  const auto mei = gpusim::assemble_or_die("mei", shaders::mei_source());

  double total = 0;
  for (const auto& chunk : plan.chunks) {
    const std::uint64_t texels = static_cast<std::uint64_t>(chunk.pwidth) *
                                 static_cast<std::uint64_t>(chunk.pheight);
    const std::uint64_t g = static_cast<std::uint64_t>(groups);

    // Stage 2: clear + per-group sum/normalize (+ log).
    total += pass_time(profile, cost_of(clear, 4, 0), texels);
    total += static_cast<double>(g) *
             pass_time(profile, cost_of(sum, 4, 16 + 4), texels);
    total += static_cast<double>(g) *
             pass_time(profile, cost_of(norm, 16, 16 + 4), texels);
    if (precompute_log) {
      total += static_cast<double>(g) *
               pass_time(profile, cost_of(logk, 16, 16), texels);
    }
    // Stage 3: clear + per-group fused cumulative distance.
    total += pass_time(profile, cost_of(clear, 4, 0), texels);
    const std::uint64_t cum_inputs = precompute_log ? (16 + 16 + 4) : (16 + 4);
    total += static_cast<double>(g) *
             pass_time(profile, cost_of(cumdist, 4, cum_inputs), texels);
    // Stage 4: one min/max pass.
    total += pass_time(profile, cost_of(minmax, 16, 4), texels);
    // Stage 5: clear + per-group MEI.
    total += pass_time(profile, cost_of(clear, 4, 0), texels);
    total += static_cast<double>(g) *
             pass_time(profile, cost_of(mei, 4, 16 + 16 + 16 + 4), texels);

    // Stages 1/6: transfers.
    for (int gi = 0; gi < groups; ++gi) {
      total += gpusim::model_upload_time(profile.bus, texels * 16);
    }
    total += gpusim::model_download_time(profile.bus, texels * 4);
    total += gpusim::model_download_time(profile.bus, texels * 16);
    total += gpusim::model_download_time(profile.bus, texels * 4);
  }
  return total;
}

double analytic_cpu_morphology_seconds(const gpusim::CpuProfile& cpu,
                                       bool vectorized, std::uint64_t pixels,
                                       const StructuringElement& se, int bands) {
  if (pixels == 0) return 0.0;
  return model_cpu_morphology_seconds(
      cpu, cpu_morphology_cost(pixels, se.size(), bands), vectorized);
}

double balanced_cpu_fraction(const gpusim::CpuProfile& cpu, bool vectorized,
                             const gpusim::DeviceProfile& gpu, int width,
                             int height, int bands,
                             const StructuringElement& se) {
  const std::uint64_t px =
      static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height);
  const double t_cpu = analytic_cpu_morphology_seconds(cpu, vectorized, px, se, bands);
  const double t_gpu =
      analytic_gpu_morphology_seconds(gpu, width, height, bands, se);
  if (t_cpu + t_gpu <= 0) return 0.0;
  // Rates are ~linear in rows; both finish together when the CPU gets the
  // share proportional to its speed.
  return std::clamp(t_gpu / (t_cpu + t_gpu), 0.0, 1.0);
}

HybridReport morphology_hybrid(const hsi::HyperCube& cube,
                               const StructuringElement& se,
                               const HybridOptions& options) {
  const int w = cube.width();
  const int h = cube.height();
  const int halo = 2 * se.radius;

  HybridReport report;
  report.cpu_fraction =
      options.cpu_fraction >= 0
          ? std::clamp(options.cpu_fraction, 0.0, 1.0)
          : balanced_cpu_fraction(options.cpu, options.cpu_vectorized,
                                  options.gpu.profile, w, h, cube.bands(), se);
  report.cpu_rows = static_cast<int>(std::lround(report.cpu_fraction * h));
  report.cpu_rows = std::clamp(report.cpu_rows, 0, h);
  report.gpu_rows = h - report.cpu_rows;

  report.morph.width = w;
  report.morph.height = h;
  const std::size_t px = cube.pixel_count();
  report.morph.db.assign(px, 0.f);
  report.morph.erosion_index.assign(px, 0);
  report.morph.dilation_index.assign(px, 0);
  report.morph.mei.assign(px, 0.f);

  auto stitch = [&](const MorphOutputs& part, int src_row0, int dst_row0,
                    int rows) {
    for (int y = 0; y < rows; ++y) {
      const std::size_t src = static_cast<std::size_t>(src_row0 + y) *
                              static_cast<std::size_t>(w);
      const std::size_t dst = static_cast<std::size_t>(dst_row0 + y) *
                              static_cast<std::size_t>(w);
      std::copy_n(part.db.begin() + static_cast<std::ptrdiff_t>(src), w,
                  report.morph.db.begin() + static_cast<std::ptrdiff_t>(dst));
      std::copy_n(part.mei.begin() + static_cast<std::ptrdiff_t>(src), w,
                  report.morph.mei.begin() + static_cast<std::ptrdiff_t>(dst));
      std::copy_n(part.erosion_index.begin() + static_cast<std::ptrdiff_t>(src), w,
                  report.morph.erosion_index.begin() + static_cast<std::ptrdiff_t>(dst));
      std::copy_n(part.dilation_index.begin() + static_cast<std::ptrdiff_t>(src), w,
                  report.morph.dilation_index.begin() + static_cast<std::ptrdiff_t>(dst));
    }
  };

  // CPU band: rows [0, cpu_rows), computed on a crop extended by the halo.
  if (report.cpu_rows > 0) {
    const int crop_h = std::min(h, report.cpu_rows + halo);
    const hsi::HyperCube band = cube.crop(0, 0, w, crop_h);
    const MorphOutputs part = options.cpu_vectorized
                                  ? morphology_vectorized(band, se)
                                  : morphology_reference(band, se);
    stitch(part, 0, 0, report.cpu_rows);
    report.cpu_seconds = analytic_cpu_morphology_seconds(
        options.cpu, options.cpu_vectorized,
        static_cast<std::uint64_t>(crop_h) * static_cast<std::uint64_t>(w), se,
        cube.bands());
  }

  // GPU band: rows [cpu_rows, h), crop extended upward by the halo.
  if (report.gpu_rows > 0) {
    const int crop_y0 = std::max(0, report.cpu_rows - halo);
    const int lead = report.cpu_rows - crop_y0;  // halo rows inside the crop
    const hsi::HyperCube band = cube.crop(0, crop_y0, w, h - crop_y0);
    const AmcGpuReport gpu = morphology_gpu(band, se, options.gpu);
    stitch(gpu.morph, lead, report.cpu_rows, report.gpu_rows);
    report.gpu_seconds = gpu.modeled_seconds;
    report.gpu_chunks = gpu.chunk_count;
  }

  report.makespan_seconds = std::max(report.cpu_seconds, report.gpu_seconds);
  return report;
}

}  // namespace hs::core
