#include "core/cost_model.hpp"

#include <algorithm>

#include "stream/chunker.hpp"
#include "stream/stream.hpp"
#include "util/assert.hpp"

namespace hs::core {

CpuCost cpu_morphology_cost(std::uint64_t pixels, int se_size, int bands) {
  HS_ASSERT(se_size >= 1 && bands >= 1);
  const double px = static_cast<double>(pixels);
  const double n = static_cast<double>(bands);
  const double nb = static_cast<double>(se_size);

  CpuCost cost;
  // Normalization: sum + divide-by-sum, then the SID inner loops reuse the
  // precomputed log stream (the hand-tuned layout both the paper's CPU code
  // and ours use).
  cost.flops = px * (2.0 * n + 1.0);
  cost.transcendentals = px * n;
  // Cumulative distance: |B| neighbors x N bands x (sub, sub, mul, add).
  cost.flops += px * nb * n * 4.0;
  // Min/max scan over |B| shifted values, two chains.
  cost.flops += px * nb * 2.0;
  // MEI: one SID between the selected pair.
  cost.flops += px * n * 4.0;
  // Streamed traffic: raw read + p/log-p write + one effective re-read of
  // the neighborhood from the cache hierarchy.
  cost.bytes = px * n * 4.0 * 4.0;
  return cost;
}

double model_cpu_morphology_seconds(const gpusim::CpuProfile& cpu,
                                    const CpuCost& cost, bool vectorized,
                                    double transcendental_flop_equiv) {
  const double flop_equiv =
      cost.flops + transcendental_flop_equiv * cost.transcendentals;
  return gpusim::model_cpu_time(cpu, static_cast<std::uint64_t>(flop_equiv),
                                static_cast<std::uint64_t>(cost.bytes),
                                vectorized);
}

std::uint64_t amc_auto_texel_budget(const gpusim::DeviceProfile& profile,
                                    int bands, bool precompute_log) {
  const std::uint64_t groups =
      static_cast<std::uint64_t>(stream::band_group_count(bands));
  const std::uint64_t stacks = groups * (precompute_log ? 3u : 2u);
  const std::uint64_t per_texel = stacks * 16 + 16 + 6 * 4;
  const std::uint64_t usable = static_cast<std::uint64_t>(
      0.9 * static_cast<double>(profile.video_memory_bytes));
  return std::max<std::uint64_t>(1024, usable / per_texel);
}

GpuExtrapolation extrapolate_gpu_morphology(const AmcGpuReport& calibration,
                                            const gpusim::DeviceProfile& profile,
                                            int target_width, int target_height,
                                            int bands, int se_radius,
                                            bool precompute_log,
                                            std::uint64_t chunk_texel_budget) {
  HS_ASSERT(calibration.chunk_count > 0);
  const int groups = stream::band_group_count(bands);
  const int halo = 2 * se_radius;
  const std::uint64_t budget =
      chunk_texel_budget > 0
          ? chunk_texel_budget
          : amc_auto_texel_budget(profile, bands, precompute_log);

  const stream::ChunkPlan plan =
      stream::plan_chunks(target_width, target_height, halo, budget);
  GpuExtrapolation out;
  out.chunks = plan.chunks.size();
  for (const auto& c : plan.chunks) {
    out.padded_texels += static_cast<std::uint64_t>(c.pwidth) *
                         static_cast<std::uint64_t>(c.pheight);
  }

  // Rendering stages: scale per-fragment rates measured by the calibration
  // run. Every pass of a stage runs the same kernel, so the stage-level
  // bottleneck max() is exact under linear scaling.
  for (const auto& [name, stage] : calibration.stages) {
    if (stage.passes == 0 || stage.fragments == 0) continue;  // transfer stages
    const double frag = static_cast<double>(stage.fragments);
    const std::uint64_t passes_per_chunk = stage.passes / calibration.chunk_count;
    HS_ASSERT_MSG(passes_per_chunk * calibration.chunk_count == stage.passes,
                  "calibration pass count not uniform across chunks");

    const double target_frags =
        static_cast<double>(out.padded_texels) * static_cast<double>(passes_per_chunk);
    const double scale = target_frags / frag;

    gpusim::PassCounts counts;
    counts.fragments = static_cast<std::uint64_t>(target_frags);
    counts.alu_instructions = static_cast<std::uint64_t>(
        static_cast<double>(stage.alu_instructions) * scale);
    counts.tex_fetches = static_cast<std::uint64_t>(
        static_cast<double>(stage.tex_fetches) * scale);
    counts.cache_miss_bytes = static_cast<std::uint64_t>(
        static_cast<double>(stage.cache_miss_bytes) * scale);
    counts.unique_tile_bytes = static_cast<std::uint64_t>(
        static_cast<double>(stage.unique_tile_bytes) * scale);
    counts.tex_fetch_bytes = counts.unique_tile_bytes;  // cache-enabled path
    counts.bytes_written = static_cast<std::uint64_t>(
        static_cast<double>(stage.bytes_written) * scale);
    counts.cache_enabled = true;

    const std::uint64_t target_passes = passes_per_chunk * out.chunks;
    // model_pass_time adds one overhead; charge the remaining passes.
    out.pass_seconds += gpusim::model_pass_time(profile, counts) +
                        profile.pass_overhead_s *
                            static_cast<double>(target_passes - 1);
    out.passes += target_passes;
  }

  // Transfers from the chunk plan: the raw band stack up, the three result
  // textures (D_B, offsets, MEI) down.
  for (const auto& c : plan.chunks) {
    const std::uint64_t texels = static_cast<std::uint64_t>(c.pwidth) *
                                 static_cast<std::uint64_t>(c.pheight);
    for (int g = 0; g < groups; ++g) {
      out.upload_seconds += gpusim::model_upload_time(profile.bus, texels * 16);
    }
    out.download_seconds += gpusim::model_download_time(profile.bus, texels * 4);
    out.download_seconds += gpusim::model_download_time(profile.bus, texels * 16);
    out.download_seconds += gpusim::model_download_time(profile.bus, texels * 4);
  }
  return out;
}

}  // namespace hs::core
