// Public facade: the Automated Morphological Classification algorithm.
//
// run_amc executes the full four-step AMC of Section 3.1 on one of three
// backends (double-precision scalar CPU, 4-wide float CPU, simulated-GPU
// stream pipeline) and returns the MEI map, the extracted endmembers, and
// the per-pixel classification. evaluate_accuracy scores a result against
// ground truth with the unsupervised-clustering protocol (majority class
// mapping, then per-class/overall accuracy and kappa) used to produce the
// paper's Table 3.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/amc_gpu.hpp"
#include "core/endmember.hpp"
#include "core/morphology.hpp"
#include "core/structuring_element.hpp"
#include "core/unmixing.hpp"
#include "hsi/cube.hpp"
#include "hsi/ground_truth.hpp"
#include "hsi/metrics.hpp"

namespace hs::core {

enum class Backend { CpuReference, CpuVectorized, GpuStream };

const char* backend_name(Backend backend);

struct AmcConfig {
  /// Number of classes c: endmembers extracted and labels produced.
  int num_classes = 16;
  StructuringElement se = StructuringElement::square(1);
  Backend backend = Backend::CpuReference;
  UnmixingMethod unmixing = UnmixingMethod::Unconstrained;
  /// Minimum Chebyshev separation between selected endmember pixels.
  /// 0 reproduces the paper's literal top-c rule; the default keeps the
  /// top scorers from clustering on a single boundary (see DESIGN.md).
  int endmember_min_separation = 8;
  /// Minimum SID between accepted endmember spectra: a candidate closer
  /// than this to an already-accepted endmember is skipped, so one
  /// extreme region (a lake boundary, say) cannot consume many classes.
  /// 0 disables spectral deduplication. The default sits just above the
  /// within-class SID noise floor of AVIRIS-like data (~1-2e-3 at 34 dB
  /// SNR over 216 bands) so same-material duplicates collapse while even
  /// closely related land-cover variants stay eligible.
  double endmember_min_sid = 2.5e-3;
  /// GPU backend options (ignored by the CPU backends).
  AmcGpuOptions gpu;
  /// With the GpuStream backend: also run steps 3-4 (abundances + argmax)
  /// on the simulated GPU, making the whole classifier GPU-resident.
  /// Requires the unconstrained mixture model (the only one the fragment
  /// pipeline can express as dot-product passes).
  bool gpu_classification = false;
};

/// GPU run telemetry (present when backend == GpuStream).
struct GpuRunSummary {
  std::vector<std::pair<std::string, stream::StageStats>> stages;
  gpusim::DeviceTotals totals;
  std::size_t chunk_count = 0;
  double modeled_seconds = 0;
  /// Modeled seconds of the GPU classification stage (steps 3-4), when
  /// gpu_classification was requested; 0 otherwise.
  double classification_modeled_seconds = 0;
};

struct AmcResult {
  MorphOutputs morph;
  /// Selected endmember pixel indices (y * width + x), best MEI first.
  std::vector<std::size_t> endmember_pixels;
  /// The endmember spectra (raw reflectance), one per class.
  std::vector<std::vector<float>> endmember_spectra;
  /// Per-pixel class label in [0, num_classes).
  std::vector<int> labels;

  double morphology_wall_seconds = 0;
  double postprocess_wall_seconds = 0;
  std::optional<GpuRunSummary> gpu;
};

AmcResult run_amc(const hsi::HyperCube& cube, const AmcConfig& config);

struct AccuracyReport {
  /// Producer's accuracy per ground-truth class (index = class id).
  std::vector<double> per_class;
  double overall = 0;
  double kappa = 0;
  /// Cluster -> ground-truth class mapping used.
  std::vector<int> mapping;
};

AccuracyReport evaluate_accuracy(const AmcResult& result,
                                 const hsi::ClassMap& truth);

}  // namespace hs::core
