#include "core/sam_classifier.hpp"

#include <limits>

#include "util/assert.hpp"

namespace hs::core {

std::vector<int> classify_by_library(const hsi::HyperCube& cube,
                                     const hsi::SpectralLibrary& library,
                                     const LibraryClassifierConfig& config) {
  HS_ASSERT(cube.bands() == library.bands);
  HS_ASSERT(library.num_classes() > 0);

  std::vector<int> labels(cube.pixel_count(), -1);
  std::vector<float> spec(static_cast<std::size_t>(cube.bands()));
  for (int y = 0; y < cube.height(); ++y) {
    for (int x = 0; x < cube.width(); ++x) {
      cube.pixel(x, y, spec);
      double best = std::numeric_limits<double>::infinity();
      int best_class = -1;
      for (int c = 0; c < library.num_classes(); ++c) {
        const double d =
            spectral_distance(config.metric, spec, library.signature(c));
        if (d < best) {
          best = d;
          best_class = c;
        }
      }
      if (config.reject_threshold >= 0 && best > config.reject_threshold) {
        best_class = -1;
      }
      labels[static_cast<std::size_t>(y) * static_cast<std::size_t>(cube.width()) +
             static_cast<std::size_t>(x)] = best_class;
    }
  }
  return labels;
}

}  // namespace hs::core
