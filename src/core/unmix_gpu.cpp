#include "core/unmix_gpu.hpp"

#include <cmath>
#include <memory>
#include <sstream>

#include "core/shaders.hpp"
#include "gpusim/assembler.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "stream/chunker.hpp"
#include "stream/scheduler.hpp"
#include "stream/stream.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace hs::core {

using gpusim::float4;
using gpusim::FragmentProgram;
using gpusim::TextureFormat;
using gpusim::TextureHandle;

namespace {

/// out.x = accum.x + dot(f_g, c[0]) -- one endmember-row chunk applied to
/// one band group. texture[0] = raw band group, texture[1] = accumulator.
std::string weighted_sum_source() {
  return "!!HSFP1.0\n"
         "TEX R0, fragment.texcoord[0], texture[0];\n"
         "TEX R1, fragment.texcoord[0], texture[1];\n"
         "DP4 R2.x, R0, c[0];\n"
         "ADD result.color.x, R1.x, R2.x;\n"
         "END\n";
}

/// Copies the packed-abundance texel and overwrites one lane with the new
/// scalar. texture[0] = packed previous, texture[1] = a_k (R32F).
std::string pack_lane_source(int lane) {
  static const char kLane[4] = {'x', 'y', 'z', 'w'};
  std::ostringstream os;
  os << "!!HSFP1.0\n";
  os << "TEX R0, fragment.texcoord[0], texture[0];\n";
  os << "TEX R1, fragment.texcoord[0], texture[1];\n";
  os << "MOV result.color, R0;\n";
  os << "MOV result.color." << kLane[lane] << ", R1.x;\n";
  os << "END\n";
  return os.str();
}

/// Argmax over `count` abundances packed four per texture:
/// out.x = index of the largest (first wins ties).
std::string argmax_source(int count) {
  HS_ASSERT(count >= 1);
  static const char kLane[4] = {'x', 'y', 'z', 'w'};
  const int textures = (count + 3) / 4;
  std::ostringstream os;
  os << "!!HSFP1.0\n";
  for (int t = 0; t < textures; ++t) {
    os << "TEX R" << t << ", fragment.texcoord[0], texture[" << t << "];\n";
  }
  // Entry 0 initializes the chains; R20 = best value, R21 = best index.
  os << "MOV R20.x, R0.x;\n";
  os << "MOV R21.x, {0.0};\n";
  for (int e = 1; e < count; ++e) {
    const int t = e / 4;
    const char lane = kLane[e % 4];
    // New entry wins iff best - new < 0 (strictly greater; first wins ties).
    os << "SUB R22.x, R20.x, R" << t << "." << lane << ";\n";
    os << "CMP R20.x, R22.x, R" << t << "." << lane << ", R20.x;\n";
    os << "CMP R21.x, R22.x, {" << e << ".0}, R21.x;\n";
  }
  os << "MOV result.color.x, R21.x;\n";
  os << "END\n";
  return os.str();
}

}  // namespace

GpuUnmixReport unmix_gpu(const hsi::HyperCube& cube,
                         const std::vector<std::vector<float>>& endmembers,
                         const AmcGpuOptions& options,
                         bool download_abundances) {
  const int bands = cube.bands();
  const int c = static_cast<int>(endmembers.size());
  HS_ASSERT_MSG(c >= 1, "need at least one endmember");
  HS_ASSERT_MSG(c <= 64, "argmax kernel supports up to 64 endmembers (16 textures)");
  HS_ASSERT_MSG(bands >= c, "unmixing needs bands >= endmembers");
  const int groups = stream::band_group_count(bands);
  const int packed = (c + 3) / 4;

  // ---- host precompute: W = (E^T E)^-1 E^T, c x bands ----------------------
  linalg::Matrix e(static_cast<std::size_t>(bands), static_cast<std::size_t>(c));
  for (int k = 0; k < c; ++k) {
    HS_ASSERT(static_cast<int>(endmembers[static_cast<std::size_t>(k)].size()) == bands);
    for (int b = 0; b < bands; ++b) {
      e(static_cast<std::size_t>(b), static_cast<std::size_t>(k)) =
          static_cast<double>(endmembers[static_cast<std::size_t>(k)][static_cast<std::size_t>(b)]);
    }
  }
  linalg::Matrix gram = e.gram();
  auto chol = linalg::Cholesky::factor(gram);
  if (!chol) {
    double trace = 0;
    for (std::size_t i = 0; i < gram.rows(); ++i) trace += gram(i, i);
    for (std::size_t i = 0; i < gram.rows(); ++i) {
      gram(i, i) += 1e-10 * std::max(trace, 1.0);
    }
    chol = linalg::Cholesky::factor(gram);
  }
  HS_ASSERT_MSG(chol.has_value(), "endmember Gram matrix is singular");

  // Column b of W solves G w = E^T[:, b]; assemble as float rows.
  std::vector<std::vector<float>> w(static_cast<std::size_t>(c));
  for (auto& row : w) row.resize(static_cast<std::size_t>(groups) * 4, 0.f);
  std::vector<double> rhs(static_cast<std::size_t>(c));
  for (int b = 0; b < bands; ++b) {
    for (int k = 0; k < c; ++k) {
      rhs[static_cast<std::size_t>(k)] = e(static_cast<std::size_t>(b), static_cast<std::size_t>(k));
    }
    const auto col = chol->solve(rhs);
    for (int k = 0; k < c; ++k) {
      w[static_cast<std::size_t>(k)][static_cast<std::size_t>(b)] =
          static_cast<float>(col[static_cast<std::size_t>(k)]);
    }
  }

  // ---- programs -------------------------------------------------------------
  const FragmentProgram prog_clear =
      gpusim::assemble_or_die("clear", shaders::clear_source());
  const FragmentProgram prog_dot =
      gpusim::assemble_or_die("weighted_sum", weighted_sum_source());
  FragmentProgram prog_pack[4] = {
      gpusim::assemble_or_die("pack_x", pack_lane_source(0)),
      gpusim::assemble_or_die("pack_y", pack_lane_source(1)),
      gpusim::assemble_or_die("pack_z", pack_lane_source(2)),
      gpusim::assemble_or_die("pack_w", pack_lane_source(3))};
  const FragmentProgram prog_argmax =
      gpusim::assemble_or_die("argmax", argmax_source(c));

  // ---- device & chunking (no halo: per-pixel work) --------------------------
  // The planning device never draws; worker devices are blank clones with
  // the same free video memory, so the auto budget holds for all of them.
  gpusim::Device planner(options.profile, options.sim);
  const std::uint64_t per_texel = static_cast<std::uint64_t>(groups) * 16 +
                                  2 * 4 +
                                  static_cast<std::uint64_t>(packed) * 2 * 16 + 4;
  const std::uint64_t budget =
      options.chunk_texel_budget > 0
          ? options.chunk_texel_budget
          : std::max<std::uint64_t>(
                1024, static_cast<std::uint64_t>(
                          0.9 * static_cast<double>(planner.video_memory_free())) /
                          per_texel);
  const stream::ChunkPlan plan =
      stream::plan_chunks(cube.width(), cube.height(), 0, budget);

  GpuUnmixReport report;
  report.chunk_count = plan.chunks.size();
  report.labels.assign(cube.pixel_count(), 0);
  if (download_abundances) {
    report.abundances.assign(cube.pixel_count() * static_cast<std::size_t>(c), 0.f);
  }

  trace::Span pipeline_span("unmix_gpu", "pipeline");
  if (pipeline_span.active()) {
    pipeline_span.arg("width", cube.width());
    pipeline_span.arg("height", cube.height());
    pipeline_span.arg("bands", bands);
    pipeline_span.arg("endmembers", c);
  }

  // ---- worker devices ------------------------------------------------------
  const std::size_t workers = std::min<std::size_t>(
      std::max<std::size_t>(1, plan.chunks.size()),
      stream::resolve_workers(options.workers));
  gpusim::SimConfig worker_sim = options.sim;
  if (workers > 1 && options.sim.worker_threads == 0) {
    worker_sim.worker_threads = stream::per_worker_device_threads(
        util::ThreadPool::clamp_to_hardware(
            static_cast<std::size_t>(options.profile.fragment_pipes)),
        workers);
  }
  if (workers > 1 && !worker_sim.shared_programs) {
    // Worker clones re-draw the same few programs; share one lowering.
    worker_sim.shared_programs = std::make_shared<gpusim::SharedProgramStore>();
  }
  std::vector<std::unique_ptr<gpusim::Device>> devices;
  devices.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    devices.push_back(planner.clone_blank(worker_sim));
  }
  report.workers_used = workers;
  if (pipeline_span.active()) {
    pipeline_span.arg("workers", static_cast<double>(workers));
  }

  // Per-chunk device totals, reduced in chunk-index order below so the
  // aggregate is bit-identical for every worker count.
  std::vector<gpusim::DeviceTotals> chunk_totals(plan.chunks.size());

  auto run_chunk = [&](gpusim::Device& device, std::size_t chunk_index) {
    const stream::ChunkRect& chunk = plan.chunks[chunk_index];
    const int cw = chunk.pwidth;
    const int ch = chunk.pheight;

    device.reset_totals();

    trace::Span chunk_span("chunk", "chunk");
    if (chunk_span.active()) {
      chunk_span.arg("index", static_cast<double>(chunk_index));
      chunk_span.arg("x0", chunk.x0);
      chunk_span.arg("y0", chunk.y0);
      chunk_span.arg("width", chunk.width);
      chunk_span.arg("height", chunk.height);
    }

    trace::Span upload_span("stream_upload", "stage");
    stream::BandStack raw(device, cw, ch, bands);
    raw.upload([&](int x, int y, int b) {
      return cube.at(chunk.px0 + x, chunk.py0 + y, b);
    });
    upload_span.end();

    stream::PingPong accum(device, cw, ch, TextureFormat::R32F);
    std::vector<stream::PingPong> packed_tex;
    packed_tex.reserve(static_cast<std::size_t>(packed));
    for (int t = 0; t < packed; ++t) {
      packed_tex.emplace_back(device, cw, ch, TextureFormat::RGBA32F);
    }
    const TextureHandle labels_tex =
        device.create_texture(cw, ch, TextureFormat::R32F);

    auto draw1 = [&](const FragmentProgram& prog,
                     std::initializer_list<TextureHandle> inputs,
                     std::span<const float4> constants, TextureHandle output) {
      const std::vector<TextureHandle> in(inputs);
      const TextureHandle out[1] = {output};
      device.draw(prog, in, constants, out);
    };

    // Abundance stage: per endmember, accumulate dot(W_k, f) over groups,
    // then pack into lane k%4 of packed texture k/4.
    trace::Span abundance_span("abundance_estimation", "stage");
    for (int k = 0; k < c; ++k) {
      draw1(prog_clear, {}, {}, accum.front());
      for (int g = 0; g < groups; ++g) {
        const float* wr = w[static_cast<std::size_t>(k)].data() + 4 * g;
        const float4 consts[1] = {{wr[0], wr[1], wr[2], wr[3]}};
        draw1(prog_dot, {raw.group(g), accum.front()}, consts, accum.back());
        accum.swap();
      }
      stream::PingPong& target = packed_tex[static_cast<std::size_t>(k / 4)];
      draw1(prog_pack[k % 4], {target.front(), accum.front()}, {}, target.back());
      target.swap();
    }

    abundance_span.end();

    // Argmax stage.
    trace::Span argmax_span("argmax_labeling", "stage");
    std::vector<TextureHandle> packed_inputs;
    for (auto& t : packed_tex) packed_inputs.push_back(t.front());
    const TextureHandle outs[1] = {labels_tex};
    device.draw(prog_argmax, packed_inputs, {}, outs);
    argmax_span.end();

    // Downloads + scatter.
    trace::Span download_span("stream_download", "stage");
    const std::vector<float> labels_host = device.download_scalar(labels_tex);
    std::vector<std::vector<float4>> abundance_host;
    if (download_abundances) {
      for (auto& t : packed_tex) abundance_host.push_back(device.download(t.front()));
    }
    download_span.end();
    for (int y = 0; y < chunk.height; ++y) {
      for (int x = 0; x < chunk.width; ++x) {
        const std::size_t local = static_cast<std::size_t>(y) * static_cast<std::size_t>(cw) +
                                  static_cast<std::size_t>(x);
        const std::size_t global =
            static_cast<std::size_t>(chunk.y0 + y) * static_cast<std::size_t>(cube.width()) +
            static_cast<std::size_t>(chunk.x0 + x);
        report.labels[global] = static_cast<int>(std::lround(labels_host[local]));
        if (download_abundances) {
          for (int k = 0; k < c; ++k) {
            report.abundances[global * static_cast<std::size_t>(c) + static_cast<std::size_t>(k)] =
                abundance_host[static_cast<std::size_t>(k / 4)][local][static_cast<std::size_t>(k % 4)];
          }
        }
      }
    }

    device.destroy_texture(labels_tex);

    chunk_totals[chunk_index] = device.totals();
  };

  stream::ChunkScheduler scheduler(workers);
  scheduler.run(plan.chunks.size(), [&](std::size_t worker, std::size_t chunk) {
    if (options.cancel_check && options.cancel_check()) {
      throw PipelineCancelled("unmix_gpu cancelled before chunk " +
                              std::to_string(chunk));
    }
    run_chunk(*devices[worker], chunk);
  });

  // Ordered reduction: chunk-index order regardless of execution order.
  for (const gpusim::DeviceTotals& totals : chunk_totals) {
    report.totals += totals;
    ChunkCost cost;
    cost.upload_seconds = totals.transfer.modeled_upload_seconds;
    cost.download_seconds = totals.transfer.modeled_download_seconds;
    cost.pass_seconds = totals.modeled_pass_seconds;
    report.chunk_costs.push_back(cost);
  }
  report.modeled_seconds = report.totals.modeled_total_seconds();
  return report;
}

}  // namespace hs::core
