// Spectral-only k-means clustering.
//
// The baseline AMC is motivated against: "last-generation hyperspectral
// image analysis algorithms naturally integrate the wealth [of] spatial
// and spectral information" (paper, Section 1) -- as opposed to classic
// purely *spectral* clustering, which treats pixels as an unordered bag of
// spectra. This k-means (Lloyd's algorithm with k-means++-style seeding,
// pluggable spectral distance) supplies that baseline so the spatial
// benefit of the morphological pipeline can be quantified
// (bench/ablate_spatial_vs_spectral).
#pragma once

#include <cstdint>
#include <vector>

#include "core/distances.hpp"
#include "hsi/cube.hpp"

namespace hs::core {

struct KMeansConfig {
  int clusters = 16;
  int max_iterations = 50;
  /// Relative decrease of total distortion that counts as converged.
  double tolerance = 1e-4;
  Distance metric = Distance::Euclidean;
  std::uint64_t seed = 1;
};

struct KMeansResult {
  std::vector<int> labels;                     ///< per pixel, [0, k)
  std::vector<std::vector<float>> centroids;   ///< k spectra
  double distortion = 0;                       ///< final total distance
  int iterations = 0;
  bool converged = false;
};

KMeansResult kmeans_spectral(const hsi::HyperCube& cube,
                             const KMeansConfig& config = {});

}  // namespace hs::core
