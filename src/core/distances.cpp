#include "core/distances.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace hs::core {

namespace {
void normalize(std::span<const float> v, std::vector<double>& out) {
  out.resize(v.size());
  double sum = 0;
  for (float x : v) sum += static_cast<double>(x);
  sum = std::max(sum, static_cast<double>(kSumEpsilon));
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = std::max(static_cast<double>(v[i]) / sum,
                      static_cast<double>(kProbEpsilon));
  }
}
}  // namespace

double sid(std::span<const float> a, std::span<const float> b) {
  HS_ASSERT(a.size() == b.size() && !a.empty());
  thread_local std::vector<double> p, q;
  normalize(a, p);
  normalize(b, q);
  return sid_normalized(p, q);
}

double sid_normalized(std::span<const double> p, std::span<const double> q) {
  HS_ASSERT(p.size() == q.size());
  // sum_l p log(p/q) + q log(q/p) == sum_l (p - q)(log p - log q)
  double acc = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    acc += (p[i] - q[i]) * (std::log(p[i]) - std::log(q[i]));
  }
  return acc;
}

double sam(std::span<const float> a, std::span<const float> b) {
  HS_ASSERT(a.size() == b.size() && !a.empty());
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
    nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 0) return 0;
  return std::acos(std::clamp(dot / denom, -1.0, 1.0));
}

double euclidean(std::span<const float> a, std::span<const float> b) {
  HS_ASSERT(a.size() == b.size());
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return std::sqrt(acc);
}

double spectral_distance(Distance metric, std::span<const float> a,
                         std::span<const float> b) {
  switch (metric) {
    case Distance::Sid: return sid(a, b);
    case Distance::Sam: return sam(a, b);
    case Distance::Euclidean: return euclidean(a, b);
  }
  return 0;
}

}  // namespace hs::core
