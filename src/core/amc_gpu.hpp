// GPU stream implementation of AMC step 2 (the paper's Section 3.2).
//
// Executes the six-stage pipeline of Figure 4 on the simulated GPU:
// upload -> normalization -> cumulative distance -> max/min -> SID -> download,
// with the image split into halo-padded spatial chunks when it exceeds
// video memory. Functional outputs are bit-identical to
// morphology_vectorized (the CPU mirror of the kernels) when the default
// options are used; the report carries the modeled timing breakdown.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/morphology.hpp"
#include "gpusim/device_profile.hpp"
#include "gpusim/gpu_device.hpp"
#include "stream/executor.hpp"
#include "hsi/cube.hpp"

namespace hs::core {

/// Thrown by the GPU pipelines when an options.cancel_check callback asks
/// for a cooperative abort (deadline expiry, job cancellation). The run
/// stops at the next chunk boundary; partial outputs must be discarded.
class PipelineCancelled : public std::runtime_error {
 public:
  explicit PipelineCancelled(const std::string& what)
      : std::runtime_error(what) {}
};

struct AmcGpuOptions {
  gpusim::DeviceProfile profile = gpusim::geforce_7800_gtx();
  /// Simulator knobs. `sim.exec_engine` picks the fragment engine
  /// (interpreter reference, compiled fast path, or the SoA SIMD engine);
  /// results, counters and modeled times are bit-identical in every case.
  gpusim::SimConfig sim;

  /// true: one cumulative-distance pass per band group covering all SE
  /// neighbors (fewer passes, the tuned layout). false: one pass per
  /// (neighbor, band group) pair -- the paper's literal "one cumulative
  /// stream per neighbor" formulation; same results up to float
  /// accumulation order.
  bool fuse_neighbors = true;

  /// true: materialize the log-probability stream once (extra stage,
  /// fewer LG2 ops downstream). false: recompute logs inside the
  /// cumulative-distance kernels. Outputs are bit-identical either way.
  bool precompute_log = true;

  /// Run the stream textures (band stacks and scalar accumulators) in
  /// half-float formats -- the NV3x-era speed/precision trade. Halves the
  /// texture memory and traffic; MEI values pick up fp16 quantization
  /// error (quantified by bench/ablate_half_precision).
  bool half_precision = false;

  /// Maximum padded texels per chunk; 0 derives it from free video memory.
  std::uint64_t chunk_texel_budget = 0;

  /// Also run the paper's index-stream variant of the max/min stage
  /// (Figure 4 describes "the index of the neighbors with maximum and
  /// minimum cumulative distance") and download it; the report's
  /// `index_stream` then holds (min_idx, max_idx) per pixel. The offsets
  /// variant still drives the MEI stage either way.
  bool emit_index_stream = false;

  /// Chunk-level parallelism: number of worker threads, each driving its
  /// own simulated device over independent chunks (0 = one per host
  /// hardware thread, clamped to the chunk count). Functional outputs,
  /// counters and modeled times are bit-identical for every value — see
  /// DESIGN.md "Chunk-parallel execution" for the determinism contract.
  std::size_t workers = 1;

  /// Cooperative cancellation hook, polled once per chunk immediately
  /// before that chunk starts. Returning true aborts the run by throwing
  /// PipelineCancelled (no further chunks start; in-flight chunks on other
  /// workers drain first). Must be thread-safe when workers > 1; leave
  /// empty for an uncancellable run. Completed runs are unaffected by the
  /// hook, so results stay bit-identical to a run without one.
  std::function<bool()> cancel_check;
};

/// Stage names used in reports, in pipeline order.
extern const char* const kStageUpload;
extern const char* const kStageNormalization;
extern const char* const kStageCumulativeDistance;
extern const char* const kStageMaxMin;
extern const char* const kStageSid;
extern const char* const kStageDownload;

/// Modeled cost of one chunk's trip through the pipeline.
struct ChunkCost {
  double upload_seconds = 0;
  double pass_seconds = 0;
  double download_seconds = 0;
};

/// Modeled seconds for `workers` devices processing `costs` concurrently:
/// compute runs in index-order waves of `workers` chunks (a wave costs the
/// max of its members' pass time) while the shared host bus serializes
/// every upload and download. With workers == 1 this regroups nothing and
/// bit-equals the serialized total (pass + upload + download sums in chunk
/// order), preserving the single-device Table 4/5 numbers.
double modeled_parallel_schedule_seconds(const std::vector<ChunkCost>& costs,
                                         std::size_t workers);

struct AmcGpuReport {
  MorphOutputs morph;
  /// Per-stage aggregates in pipeline order.
  std::vector<std::pair<std::string, stream::StageStats>> stages;
  gpusim::DeviceTotals totals;
  std::size_t chunk_count = 0;
  std::vector<ChunkCost> chunk_costs;
  /// Modeled end-to-end seconds, fully serialized (upload, compute and
  /// download of every chunk back to back -- the paper-era baseline).
  double modeled_seconds = 0;
  /// (min_idx, max_idx) pairs per pixel when emit_index_stream is set.
  std::vector<std::pair<std::uint8_t, std::uint8_t>> index_stream;

  /// Modeled seconds with double-buffered transfers: chunk k+1 uploads
  /// while chunk k computes and chunk k-1 downloads (the classic
  /// three-stage software pipeline an onboard system would use). Equals
  /// modeled_seconds for a single chunk.
  double modeled_overlapped_seconds() const;

  /// Worker count the run actually used (requested workers clamped to the
  /// chunk count; 1 for a sequential run).
  std::size_t workers_used = 1;

  /// Modeled seconds when `workers` devices process chunks concurrently:
  /// chunks execute in index-order waves of `workers`, each wave costing
  /// the max of its members' pass time, while the shared host bus
  /// serializes every upload and download. modeled_parallel_seconds(1)
  /// bit-equals modeled_seconds, preserving the Table 4/5 single-device
  /// numbers as the workers=1 case.
  double modeled_parallel_seconds(std::size_t workers) const;
};

AmcGpuReport morphology_gpu(const hsi::HyperCube& cube,
                            const StructuringElement& se,
                            const AmcGpuOptions& options);

}  // namespace hs::core
