// Spectral distance measures.
//
// SID -- the spectral information divergence (eq. 2 of the paper) -- is the
// distance AMC builds its morphological ordering on: pixel vectors are
// normalized to probability distributions (eqs. 3-4) and compared with the
// symmetrized KL divergence. SAM and Euclidean distance are provided as
// alternatives for the distance ablation.
//
// Numerical guards: the band-sum is clamped below by kSumEpsilon before
// the division and each probability by kProbEpsilon before the log, so
// zero-valued bands (dead detector columns in real AVIRIS data) cannot
// produce NaNs. The GPU kernels apply the *same* clamps with MAX
// instructions, keeping CPU and GPU numerics aligned.
#pragma once

#include <span>

namespace hs::core {

inline constexpr float kSumEpsilon = 1e-6f;
inline constexpr float kProbEpsilon = 1e-12f;

/// Symmetric spectral information divergence between two spectra
/// (non-negative, zero iff the normalized spectra coincide). Reference
/// implementation in double precision.
double sid(std::span<const float> a, std::span<const float> b);

/// SID between two already-normalized probability vectors.
double sid_normalized(std::span<const double> p, std::span<const double> q);

/// Spectral angle mapper, radians in [0, pi/2] for non-negative spectra.
double sam(std::span<const float> a, std::span<const float> b);

/// Euclidean distance between raw spectra.
double euclidean(std::span<const float> a, std::span<const float> b);

enum class Distance { Sid, Sam, Euclidean };

double spectral_distance(Distance metric, std::span<const float> a,
                         std::span<const float> b);

}  // namespace hs::core
