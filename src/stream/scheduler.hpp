// Chunk-parallel execution across a pool of simulated devices.
//
// The paper's chunking scheme (Section 3.2) splits an oversize scene into
// independent spatial tiles of whole pixel vectors; nothing in the stream
// model couples one chunk to another. ChunkScheduler exploits that: it
// drives chunk jobs across `workers` OS threads, each bound to one worker
// slot so a job can keep worker-local state (its own gpusim::Device) with
// no sharing beyond read-only program text and the input cube.
//
// Determinism contract (see DESIGN.md "Chunk-parallel execution"): a chunk
// job must depend only on its chunk index and read-only shared inputs, and
// must write only chunk-exclusive outputs. Under that contract every
// worker count -- including the sequential workers=1 baseline -- produces
// bit-identical results; callers make aggregate *statistics* deterministic
// too by capturing them per chunk and reducing in chunk-index order.
#pragma once

#include <cstddef>
#include <functional>

#include "util/thread_pool.hpp"

namespace hs::stream {

/// Resolves a worker-count request: 0 = auto (one per hardware thread),
/// anything else is taken literally. Always >= 1.
std::size_t resolve_workers(std::size_t requested);

/// Splits the host threads a single sequential device would use across
/// `workers` concurrent devices (at least one each), so a chunk-parallel
/// run does not oversubscribe the machine with nested pools.
std::size_t per_worker_device_threads(std::size_t sequential_threads,
                                      std::size_t workers);

class ChunkScheduler {
 public:
  /// `workers` >= 1. One worker runs every job inline on the calling
  /// thread -- the exact sequential baseline, no extra threads.
  explicit ChunkScheduler(std::size_t workers);

  std::size_t workers() const { return workers_; }

  /// Runs job(worker, chunk) for every chunk index in [0, chunks). Chunks
  /// are handed out dynamically in index order; each worker slot in
  /// [0, workers) is used by at most one OS thread at a time, so jobs may
  /// use per-slot mutable state without locks. Blocks until every job
  /// finished. If a job throws, no further chunks are started, in-flight
  /// jobs drain, and the first exception is rethrown.
  void run(std::size_t chunks,
           const std::function<void(std::size_t worker, std::size_t chunk)>& job);

 private:
  std::size_t workers_;
  util::ThreadPool pool_;
};

}  // namespace hs::stream
