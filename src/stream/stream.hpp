// Stream abstractions over the simulated GPU.
//
// Following the paper's mapping (Section 3.2), a hyperspectral chunk lives
// on the device as a *band stack*: one RGBA32F texture per group of four
// consecutive spectral bands, so the fragment pipes' 4-wide SIMD processes
// four bands per instruction. BandStack owns the textures of one chunk.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "gpusim/gpu_device.hpp"

namespace hs::stream {

/// Number of RGBA textures needed for `bands` spectral bands.
inline int band_group_count(int bands) { return (bands + 3) / 4; }

/// A chunk's spectral data resident in video memory: groups of four bands
/// packed into the RGBA channels of a texture stack. Bands beyond the last
/// multiple of four are zero-padded (zero contributes nothing to the sums
/// the AMC kernels compute).
class BandStack {
 public:
  /// Allocates the stack on `device`. Throws GpuOutOfMemory via the device
  /// if it does not fit. `format` must be a four-channel format
  /// (RGBA32F, or RGBA16F for the half-precision trade).
  BandStack(gpusim::Device& device, int width, int height, int bands,
            gpusim::AddressMode address = gpusim::AddressMode::ClampToEdge,
            gpusim::TextureFormat format = gpusim::TextureFormat::RGBA32F);
  ~BandStack();

  BandStack(const BandStack&) = delete;
  BandStack& operator=(const BandStack&) = delete;
  BandStack(BandStack&& other) noexcept;
  BandStack& operator=(BandStack&&) = delete;

  int width() const { return width_; }
  int height() const { return height_; }
  int bands() const { return bands_; }
  int groups() const { return static_cast<int>(textures_.size()); }

  gpusim::TextureHandle group(int g) const { return textures_[static_cast<std::size_t>(g)]; }
  std::span<const gpusim::TextureHandle> handles() const { return textures_; }

  /// Uploads spectra via a sampling callback (x, y, band) -> value, one
  /// bus transfer per group texture. Coordinates are chunk-local.
  void upload(const std::function<float(int x, int y, int band)>& sample);

  std::uint64_t size_bytes() const;

 private:
  gpusim::Device* device_;
  int width_;
  int height_;
  int bands_;
  gpusim::TextureFormat format_ = gpusim::TextureFormat::RGBA32F;
  std::vector<gpusim::TextureHandle> textures_;
};

/// Two same-shape textures alternating as source/target across passes --
/// the loop-back pattern of the paper's Cumulative Distance stage (a pass
/// may not sample its own render target, so accumulation ping-pongs).
class PingPong {
 public:
  PingPong(gpusim::Device& device, int width, int height,
           gpusim::TextureFormat format,
           gpusim::AddressMode address = gpusim::AddressMode::ClampToEdge);
  ~PingPong();

  PingPong(const PingPong&) = delete;
  PingPong& operator=(const PingPong&) = delete;
  PingPong(PingPong&& other) noexcept
      : device_(other.device_), front_(other.front_), back_(other.back_) {
    other.device_ = nullptr;
  }
  PingPong& operator=(PingPong&&) = delete;

  gpusim::TextureHandle front() const { return front_; }  ///< current source
  gpusim::TextureHandle back() const { return back_; }    ///< current target
  void swap() { std::swap(front_, back_); }

 private:
  gpusim::Device* device_;
  gpusim::TextureHandle front_;
  gpusim::TextureHandle back_;
};

}  // namespace hs::stream
