#include "stream/executor.hpp"

namespace hs::stream {

gpusim::PassStats StreamExecutor::run(
    const std::string& stage_name, const gpusim::FragmentProgram& program,
    std::span<const gpusim::TextureHandle> inputs,
    std::span<const gpusim::float4> constants,
    std::span<const gpusim::TextureHandle> outputs) {
  const gpusim::PassStats pass = device_->draw(program, inputs, constants, outputs);
  StageStats& s = stage(stage_name);
  s.passes += 1;
  s.fragments += pass.fragments;
  s.alu_instructions += pass.exec.alu_instructions;
  s.tex_fetches += pass.exec.tex_fetches;
  s.cache_miss_bytes += pass.cache_miss_bytes;
  s.unique_tile_bytes += pass.unique_tile_bytes;
  s.bytes_written += pass.bytes_written;
  s.modeled_seconds += pass.modeled_seconds;
  return pass;
}

void StreamExecutor::add_stage_time(const std::string& stage_name, double seconds) {
  stage(stage_name).modeled_seconds += seconds;
}

void StreamExecutor::reset() {
  stages_.clear();
  order_.clear();
}

StageStats& StreamExecutor::stage(const std::string& name) {
  auto [it, inserted] = stages_.try_emplace(name);
  if (inserted) order_.push_back(name);
  return it->second;
}

}  // namespace hs::stream
