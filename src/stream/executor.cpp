#include "stream/executor.hpp"

#include <chrono>
#include <utility>

#include "trace/histogram.hpp"

namespace hs::stream {

gpusim::PassStats StreamExecutor::run(
    const std::string& stage_name, const gpusim::FragmentProgram& program,
    std::span<const gpusim::TextureHandle> inputs,
    std::span<const gpusim::float4> constants,
    std::span<const gpusim::TextureHandle> outputs) {
  trace::Span span(stage_name, "stage_pass");
  const auto draw_begin = std::chrono::steady_clock::now();
  const gpusim::PassStats pass = device_->draw(program, inputs, constants, outputs);
  trace::histogram("stream.stage_pass_s")
      .record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            draw_begin)
                  .count());
  if (span.active()) {
    span.arg("program", program.name);
    span.arg("fragments", static_cast<double>(pass.fragments));
    span.arg("modeled_us", pass.modeled_seconds * 1e6);
  }
  double stage_total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    StageStats& s = stage_locked(stage_name);
    s.passes += 1;
    s.fragments += pass.fragments;
    s.alu_instructions += pass.exec.alu_instructions;
    s.tex_fetches += pass.exec.tex_fetches;
    s.cache_miss_bytes += pass.cache_miss_bytes;
    s.unique_tile_bytes += pass.unique_tile_bytes;
    s.bytes_written += pass.bytes_written;
    s.modeled_seconds += pass.modeled_seconds;
    stage_total = s.modeled_seconds;
    passes_contributed_ += 1;
  }
  passes_counter_->increment();
  stage_seconds_gauge_->set(stage_total);
  return pass;
}

void StreamExecutor::add_stage_time(const std::string& stage_name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  stage_locked(stage_name).modeled_seconds += seconds;
}

void StreamExecutor::reset() {
  std::uint64_t retract = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stages_.clear();
    order_.clear();
    retract = std::exchange(passes_contributed_, 0);
  }
  // Retract only our own passes from the shared counter; a concurrent
  // executor's contribution must survive our reset.
  passes_counter_->add(-static_cast<std::int64_t>(retract));
}

StageStats& StreamExecutor::stage_locked(const std::string& name) {
  auto [it, inserted] = stages_.try_emplace(name);
  if (inserted) order_.push_back(name);
  return it->second;
}

}  // namespace hs::stream
