#include "stream/stream.hpp"

#include "util/assert.hpp"

namespace hs::stream {

using gpusim::float4;

BandStack::BandStack(gpusim::Device& device, int width, int height, int bands,
                     gpusim::AddressMode address, gpusim::TextureFormat format)
    : device_(&device), width_(width), height_(height), bands_(bands), format_(format) {
  HS_ASSERT(width > 0 && height > 0 && bands > 0);
  HS_ASSERT_MSG(gpusim::channels_of(format) == 4,
                "band stacks need a four-channel format");
  const int groups = band_group_count(bands);
  textures_.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    textures_.push_back(device.create_texture(width, height, format, address));
  }
}

BandStack::~BandStack() {
  if (device_ == nullptr) return;
  for (auto handle : textures_) device_->destroy_texture(handle);
}

BandStack::BandStack(BandStack&& other) noexcept
    : device_(other.device_),
      width_(other.width_),
      height_(other.height_),
      bands_(other.bands_),
      format_(other.format_),
      textures_(std::move(other.textures_)) {
  other.device_ = nullptr;
  other.textures_.clear();
}

void BandStack::upload(const std::function<float(int, int, int)>& sample) {
  std::vector<float4> staging(static_cast<std::size_t>(width_) *
                              static_cast<std::size_t>(height_));
  for (int g = 0; g < groups(); ++g) {
    const int b0 = g * 4;
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) {
        float4 v(0.f);
        for (int c = 0; c < 4 && b0 + c < bands_; ++c) {
          v[static_cast<std::size_t>(c)] = sample(x, y, b0 + c);
        }
        staging[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                static_cast<std::size_t>(x)] = v;
      }
    }
    device_->upload(textures_[static_cast<std::size_t>(g)],
                    std::span<const float4>(staging));
  }
}

std::uint64_t BandStack::size_bytes() const {
  return static_cast<std::uint64_t>(groups()) * static_cast<std::uint64_t>(width_) *
         static_cast<std::uint64_t>(height_) * gpusim::bytes_per_texel(format_);
}

PingPong::PingPong(gpusim::Device& device, int width, int height,
                   gpusim::TextureFormat format, gpusim::AddressMode address)
    : device_(&device),
      front_(device.create_texture(width, height, format, address)),
      back_(device.create_texture(width, height, format, address)) {}

PingPong::~PingPong() {
  if (device_ == nullptr) return;
  device_->destroy_texture(front_);
  device_->destroy_texture(back_);
}

}  // namespace hs::stream
