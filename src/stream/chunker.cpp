#include "stream/chunker.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hs::stream {

namespace {

ChunkRect make_chunk(int x0, int y0, int w, int h, int halo, int image_w,
                     int image_h) {
  ChunkRect c;
  c.x0 = x0;
  c.y0 = y0;
  c.width = w;
  c.height = h;
  c.px0 = std::max(0, x0 - halo);
  c.py0 = std::max(0, y0 - halo);
  const int px1 = std::min(image_w, x0 + w + halo);
  const int py1 = std::min(image_h, y0 + h + halo);
  c.pwidth = px1 - c.px0;
  c.pheight = py1 - c.py0;
  return c;
}

}  // namespace

ChunkPlan plan_chunks(int width, int height, int halo,
                      std::uint64_t max_padded_texels) {
  HS_ASSERT(width > 0 && height > 0 && halo >= 0);
  HS_ASSERT_MSG(max_padded_texels >=
                    static_cast<std::uint64_t>(2 * halo + 1) *
                        static_cast<std::uint64_t>(2 * halo + 1),
                "texel budget cannot fit a single pixel plus halo");

  ChunkPlan plan;

  // All tile sizing stays in 64-bit until the final height/width clamp:
  // a generous budget (the request schema admits up to 1 << 62) makes
  // budget / padded_width overflow a narrowing int cast into a negative
  // tile height.
  const std::uint64_t halo2 = 2 * static_cast<std::uint64_t>(halo);
  const std::uint64_t padded_w = static_cast<std::uint64_t>(width);
  int tile_w = width;
  int tile_h = 0;
  if (padded_w * (halo2 + 1) <= max_padded_texels) {
    // Preferred: full-width row bands.
    const std::uint64_t rows = max_padded_texels / padded_w;
    tile_h = static_cast<int>(std::min<std::uint64_t>(
        rows - halo2, static_cast<std::uint64_t>(height)));
  } else {
    // 2-D tiles: aim square on the padded size.
    const std::uint64_t side = static_cast<std::uint64_t>(
        std::sqrt(static_cast<double>(max_padded_texels)));
    const std::uint64_t interior_w = side > halo2 ? side - halo2 : 1;
    tile_w = static_cast<int>(
        std::min<std::uint64_t>(interior_w, static_cast<std::uint64_t>(width)));
    // Recompute height from the actual padded width.
    const std::uint64_t pw = static_cast<std::uint64_t>(tile_w) + halo2;
    const std::uint64_t rows = max_padded_texels / pw;
    const std::uint64_t interior_h = rows > halo2 ? rows - halo2 : 1;
    tile_h = static_cast<int>(std::min<std::uint64_t>(
        interior_h, static_cast<std::uint64_t>(height)));
  }
  HS_ASSERT(tile_h > 0 && tile_w > 0);

  plan.tile_width = tile_w;
  plan.tile_height = tile_h;
  for (int y = 0; y < height; y += tile_h) {
    const int h = std::min(tile_h, height - y);
    for (int x = 0; x < width; x += tile_w) {
      const int w = std::min(tile_w, width - x);
      plan.chunks.push_back(make_chunk(x, y, w, h, halo, width, height));
    }
  }
  return plan;
}

std::uint64_t amc_working_set_texels(std::uint64_t texels, int bands,
                                     bool precompute_log) {
  const std::uint64_t groups = static_cast<std::uint64_t>((bands + 3) / 4);
  // Raw stack + normalized stack (+ log stack), RGBA texels.
  std::uint64_t rgba_texels = texels * groups * (precompute_log ? 3 : 2);
  // Offsets stream (RGBA).
  rgba_texels += texels;
  // Scalar textures (R32F = 1/4 of an RGBA texel): sum, DB and MEI
  // ping-pongs, two textures each.
  const std::uint64_t scalar_texels = texels * 6;
  return rgba_texels + (scalar_texels + 3) / 4;
}

}  // namespace hs::stream
