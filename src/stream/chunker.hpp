// Spatial chunking of images that exceed video memory.
//
// "In case of a target hyperspectral image that exceeds the capacity of
//  the GPU memory, we split it into multiple chunks made up of entire
//  pixel vectors, i.e. every chunk incorporates all the spectral
//  information on a localized spatial region." (paper, Section 3.2)
//
// Each chunk carries a halo: the morphological pipeline reads a
// (2*se_radius)-pixel neighborhood around every output pixel -- one
// se_radius for the cumulative distance of a neighbor, another for the
// erosion/dilation argmin/argmax over neighbors -- so the padded region
// extends the interior by that much, clamped at image borders (where the
// kernels' clamp-to-edge addressing takes over).
#pragma once

#include <cstdint>
#include <vector>

namespace hs::stream {

struct ChunkRect {
  // Interior: the pixels this chunk is responsible for producing.
  int x0 = 0, y0 = 0, width = 0, height = 0;
  // Padded region actually uploaded (interior + halo, clipped to image).
  int px0 = 0, py0 = 0, pwidth = 0, pheight = 0;

  /// Offset of the interior within the padded region.
  int interior_dx() const { return x0 - px0; }
  int interior_dy() const { return y0 - py0; }
};

struct ChunkPlan {
  std::vector<ChunkRect> chunks;
  int tile_width = 0;   ///< interior tile size used (last row/col may be smaller)
  int tile_height = 0;
};

/// Plans a tiling of a width x height image such that no chunk's *padded*
/// area exceeds `max_padded_texels`. Chunks are full-width row bands when
/// possible (best upload locality), falling back to 2-D tiles when a
/// single padded row band would not fit.
/// halo >= 0; max_padded_texels must admit at least one pixel of interior.
ChunkPlan plan_chunks(int width, int height, int halo,
                      std::uint64_t max_padded_texels);

/// Video-memory footprint of the AMC working set for a chunk of `texels`
/// padded pixels with `bands` bands: the raw stack, the normalized stack,
/// optionally the log stack, plus the offsets texture and the scalar
/// sum/DB/MEI ping-pongs. Returned in units of *RGBA32F-equivalent texels*
/// so it can be compared against a video-memory budget via 16 bytes/texel.
std::uint64_t amc_working_set_texels(std::uint64_t texels, int bands,
                                     bool precompute_log);

}  // namespace hs::stream
