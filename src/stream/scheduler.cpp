#include "stream/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "trace/histogram.hpp"

namespace hs::stream {

namespace {

/// Chunk service time: one chunk's full pipeline pass through a worker,
/// the unit the scheduler load-balances. Shared by both run() paths so
/// the distribution is comparable across worker counts.
void record_chunk_service(std::chrono::steady_clock::time_point begin) {
  trace::histogram("stream.chunk_service_s")
      .record(std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - begin)
                  .count());
}

}  // namespace

std::size_t resolve_workers(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t per_worker_device_threads(std::size_t sequential_threads,
                                      std::size_t workers) {
  return std::max<std::size_t>(1, sequential_threads / std::max<std::size_t>(1, workers));
}

ChunkScheduler::ChunkScheduler(std::size_t workers)
    : workers_(std::max<std::size_t>(1, workers)),
      pool_(workers_ > 1 ? workers_ : 0) {}

void ChunkScheduler::run(
    std::size_t chunks,
    const std::function<void(std::size_t worker, std::size_t chunk)>& job) {
  if (chunks == 0) return;
  if (workers_ == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto begin = std::chrono::steady_clock::now();
      job(0, c);
      record_chunk_service(begin);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  pool_.parallel_for(workers_, [&](std::size_t worker) {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      try {
        const auto begin = std::chrono::steady_clock::now();
        job(worker, c);
        record_chunk_service(begin);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        throw;  // parallel_for keeps the first exception and rethrows it
      }
    }
  });
}

}  // namespace hs::stream
