// Stage-labeled pass execution.
//
// The paper's Figure 4 organizes the GPU algorithm into named stages, each
// comprising one or more kernels ("every stage ... comprises at least one
// kernel, although in most cases the stage is implemented using more than
// one"). StreamExecutor wraps Device::draw with a stage label and keeps a
// per-stage aggregate, which the stage-breakdown bench prints.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "gpusim/gpu_device.hpp"
#include "trace/trace.hpp"

namespace hs::stream {

struct StageStats {
  std::uint64_t passes = 0;
  std::uint64_t fragments = 0;
  std::uint64_t alu_instructions = 0;
  std::uint64_t tex_fetches = 0;
  std::uint64_t cache_miss_bytes = 0;
  std::uint64_t unique_tile_bytes = 0;
  std::uint64_t bytes_written = 0;
  double modeled_seconds = 0;

  /// Component-wise merge (chunk-parallel runs reduce per-chunk stage
  /// stats in chunk-index order; see DeviceTotals::operator+=).
  StageStats& operator+=(const StageStats& o) {
    passes += o.passes;
    fragments += o.fragments;
    alu_instructions += o.alu_instructions;
    tex_fetches += o.tex_fetches;
    cache_miss_bytes += o.cache_miss_bytes;
    unique_tile_bytes += o.unique_tile_bytes;
    bytes_written += o.bytes_written;
    modeled_seconds += o.modeled_seconds;
    return *this;
  }
};

/// Stage accounting is thread-safe: run() and add_stage_time() may be
/// called for the same (or different) stage names from multiple threads
/// concurrently -- the per-stage aggregate is guarded, so no update is
/// lost. Note the underlying Device is NOT itself thread-safe; concurrent
/// callers must target distinct devices or serialize draws themselves.
class StreamExecutor {
 public:
  explicit StreamExecutor(gpusim::Device& device)
      : device_(&device),
        passes_counter_(&trace::counter("stream.executor.passes")),
        stage_seconds_gauge_(&trace::gauge("stream.executor.stage_seconds")) {}

  gpusim::Device& device() { return *device_; }

  /// Runs one pass attributed to `stage`. Emits a `stage_pass` trace span
  /// wrapping the device draw, carrying the stage attribution.
  gpusim::PassStats run(const std::string& stage,
                        const gpusim::FragmentProgram& program,
                        std::span<const gpusim::TextureHandle> inputs,
                        std::span<const gpusim::float4> constants,
                        std::span<const gpusim::TextureHandle> outputs);

  /// Attributes host-side (non-pass) modeled time to a stage, e.g. the
  /// upload/download stages whose cost comes from the bus model.
  void add_stage_time(const std::string& stage, double seconds);

  /// Snapshot accessors. Do not call concurrently with run() /
  /// add_stage_time(): the returned references alias guarded state.
  const std::map<std::string, StageStats>& stages() const { return stages_; }
  /// Stage names in first-use order (std::map iteration is alphabetical).
  const std::vector<std::string>& stage_order() const { return order_; }

  /// Clears the per-stage aggregates and retracts this executor's own
  /// contribution from the process-global `stream.executor.passes`
  /// counter. Other executors' recorded passes are untouched, so two
  /// executors on different threads never cross-contaminate the counter
  /// (it used to be zeroed outright, erasing concurrent executors'
  /// history). The `stage_seconds` gauge is last-write-wins telemetry and
  /// is deliberately left alone: overwriting it with 0 here would clobber
  /// another executor's most recent reading.
  void reset();

 private:
  StageStats& stage_locked(const std::string& name);

  gpusim::Device* device_;
  mutable std::mutex mutex_;  ///< guards stages_, order_ and passes_contributed_
  std::map<std::string, StageStats> stages_;
  std::vector<std::string> order_;
  std::uint64_t passes_contributed_ = 0;  ///< our share of the global counter
  trace::Counter* passes_counter_;
  trace::Gauge* stage_seconds_gauge_;
};

}  // namespace hs::stream
