// Stage-labeled pass execution.
//
// The paper's Figure 4 organizes the GPU algorithm into named stages, each
// comprising one or more kernels ("every stage ... comprises at least one
// kernel, although in most cases the stage is implemented using more than
// one"). StreamExecutor wraps Device::draw with a stage label and keeps a
// per-stage aggregate, which the stage-breakdown bench prints.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gpusim/gpu_device.hpp"

namespace hs::stream {

struct StageStats {
  std::uint64_t passes = 0;
  std::uint64_t fragments = 0;
  std::uint64_t alu_instructions = 0;
  std::uint64_t tex_fetches = 0;
  std::uint64_t cache_miss_bytes = 0;
  std::uint64_t unique_tile_bytes = 0;
  std::uint64_t bytes_written = 0;
  double modeled_seconds = 0;
};

class StreamExecutor {
 public:
  explicit StreamExecutor(gpusim::Device& device) : device_(&device) {}

  gpusim::Device& device() { return *device_; }

  /// Runs one pass attributed to `stage`.
  gpusim::PassStats run(const std::string& stage,
                        const gpusim::FragmentProgram& program,
                        std::span<const gpusim::TextureHandle> inputs,
                        std::span<const gpusim::float4> constants,
                        std::span<const gpusim::TextureHandle> outputs);

  /// Attributes host-side (non-pass) modeled time to a stage, e.g. the
  /// upload/download stages whose cost comes from the bus model.
  void add_stage_time(const std::string& stage, double seconds);

  const std::map<std::string, StageStats>& stages() const { return stages_; }
  /// Stage names in first-use order (std::map iteration is alphabetical).
  const std::vector<std::string>& stage_order() const { return order_; }

  void reset();

 private:
  StageStats& stage(const std::string& name);

  gpusim::Device* device_;
  std::map<std::string, StageStats> stages_;
  std::vector<std::string> order_;
};

}  // namespace hs::stream
