#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace hs::util {

std::uint64_t Xoshiro256::uniform_int(std::uint64_t n) {
  HS_ASSERT(n > 0);
  // Rejection sampling on the top of the range to remove modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % n;
}

double Xoshiro256::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method: draw points in the unit disc, transform.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  have_cached_normal_ = true;
  return u * f;
}

}  // namespace hs::util
