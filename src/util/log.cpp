#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace hs::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[hs %s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace hs::util
