#include "util/log.hpp"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

namespace hs::util {

namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("HS_LOG_LEVEL")) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
  }
  return LogLevel::Warn;
}

std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

/// Small sequential per-thread ordinal; stable for the thread's lifetime
/// and much easier to read than the platform thread id.
unsigned thread_ordinal() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned ordinal = next.fetch_add(1);
  return ordinal;
}

/// "2026-08-06T12:34:56.789Z" into buf; returns chars written.
int format_timestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  return std::snprintf(buf, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                       tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                       tm.tm_hour, tm.tm_min, tm.tm_sec,
                       static_cast<int>(ms));
}

}  // namespace

void set_log_level(LogLevel level) { level_ref().store(level); }
LogLevel log_level() { return level_ref().load(); }

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower(text);
  for (char& ch : lower) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return std::nullopt;
}

void logf(LogLevel level, const char* fmt, ...) {
  if (level < level_ref().load()) return;

  char header[64];
  int head = format_timestamp(header + 1, sizeof(header) - 1);
  header[0] = '[';
  head += 1;
  head += std::snprintf(header + head, sizeof(header) - static_cast<std::size_t>(head),
                        " %s t%02u] ", level_name(level), thread_ordinal());

  // Measure the body, then format header + body + '\n' into one buffer so
  // the message reaches stderr in a single write() and lines from
  // concurrent threads never interleave.
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int body = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (body < 0) {
    va_end(args_copy);
    return;
  }

  std::string line(static_cast<std::size_t>(head + body) + 1, '\0');
  std::memcpy(line.data(), header, static_cast<std::size_t>(head));
  std::vsnprintf(line.data() + head, static_cast<std::size_t>(body) + 1, fmt,
                 args_copy);
  va_end(args_copy);
  line[static_cast<std::size_t>(head + body)] = '\n';

  // stderr is unbuffered by default, but bypass stdio entirely: one
  // write() per message is the atomicity guarantee.
  ssize_t unused = ::write(STDERR_FILENO, line.data(), line.size());
  (void)unused;
}

}  // namespace hs::util
