#include "util/log.hpp"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

namespace hs::util {

namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("HS_LOG_LEVEL")) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
  }
  return LogLevel::Warn;
}

std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

/// Small sequential per-thread ordinal; stable for the thread's lifetime
/// and much easier to read than the platform thread id.
unsigned thread_ordinal() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned ordinal = next.fetch_add(1);
  return ordinal;
}

/// "2026-08-06T12:34:56.789Z" into buf; returns chars written.
int format_timestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  return std::snprintf(buf, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                       tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                       tm.tm_hour, tm.tm_min, tm.tm_sec,
                       static_cast<int>(ms));
}

thread_local std::uint64_t t_job_tag = 0;

/// Builds `[header] body<suffix> job=N\n` in one buffer and writes it with
/// a single write() -- the shared atomicity path for logf and logkv.
void emit_line(LogLevel level, std::string_view body, std::string_view suffix) {
  char header[64];
  int head = format_timestamp(header + 1, sizeof(header) - 1);
  header[0] = '[';
  head += 1;
  head += std::snprintf(header + head,
                        sizeof(header) - static_cast<std::size_t>(head),
                        " %s t%02u] ", level_name(level), thread_ordinal());

  char job[32];
  int job_len = 0;
  if (t_job_tag != 0) {
    job_len = std::snprintf(job, sizeof(job), " job=%llu",
                            static_cast<unsigned long long>(t_job_tag));
  }

  std::string line;
  line.reserve(static_cast<std::size_t>(head) + body.size() + suffix.size() +
               static_cast<std::size_t>(job_len) + 1);
  line.append(header, static_cast<std::size_t>(head));
  line.append(body);
  line.append(suffix);
  line.append(job, static_cast<std::size_t>(job_len));
  line.push_back('\n');

  // stderr is unbuffered by default, but bypass stdio entirely: one
  // write() per message is the atomicity guarantee.
  ssize_t unused = ::write(STDERR_FILENO, line.data(), line.size());
  (void)unused;
}

/// True when the value can appear bare after `key=` and still be split on
/// whitespace by a reader.
bool is_plain_token(std::string_view v) {
  if (v.empty()) return false;
  for (const char c : v) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '"' || c == '=' ||
        c == '\\') {
      return false;
    }
  }
  return true;
}

std::string render_value(std::string_view v) {
  if (is_plain_token(v)) return std::string(v);
  std::string out;
  out.reserve(v.size() + 2);
  out.push_back('"');
  for (const char c : v) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void set_log_level(LogLevel level) { level_ref().store(level); }
LogLevel log_level() { return level_ref().load(); }

std::uint64_t current_job_tag() { return t_job_tag; }

ScopedJobTag::ScopedJobTag(std::uint64_t id) : prev_(t_job_tag) {
  t_job_tag = id;
}

ScopedJobTag::~ScopedJobTag() { t_job_tag = prev_; }

LogKv::LogKv(std::string_view k, std::string_view v)
    : key(k), value(render_value(v)) {}

LogKv::LogKv(std::string_view k, double v) : key(k) {
  char buf[64];
  if (std::nearbyint(v) == v && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  value = buf;
}

LogKv::LogKv(std::string_view k, std::int64_t v) : key(k) {
  value = std::to_string(v);
}

LogKv::LogKv(std::string_view k, std::uint64_t v) : key(k) {
  value = std::to_string(v);
}

void logkv(LogLevel level, std::string_view message,
           std::initializer_list<LogKv> fields) {
  if (level < level_ref().load()) return;
  std::string suffix;
  for (const LogKv& f : fields) {
    suffix.push_back(' ');
    suffix.append(f.key);
    suffix.push_back('=');
    suffix.append(f.value);
  }
  emit_line(level, message, suffix);
}

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower(text);
  for (char& ch : lower) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return std::nullopt;
}

void logf(LogLevel level, const char* fmt, ...) {
  if (level < level_ref().load()) return;

  // Measure the body, then format it once; emit_line() prepends the
  // header and appends the job suffix in the same single-write() buffer.
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int body = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (body < 0) {
    va_end(args_copy);
    return;
  }

  std::string text(static_cast<std::size_t>(body), '\0');
  std::vsnprintf(text.data(), static_cast<std::size_t>(body) + 1, fmt,
                 args_copy);
  va_end(args_copy);
  emit_line(level, text, {});
}

}  // namespace hs::util
