// ASCII table rendering for the bench binaries.
//
// Every table/figure bench in bench/ prints its data through this class so
// the regenerated paper exhibits have a uniform, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hs::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row. Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows: formats with the given precision.
  static std::string num(double v, int precision = 4);

  /// Renders with column-aligned cells, a header separator and an optional
  /// caption line above.
  void print(std::ostream& os, const std::string& caption = "") const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hs::util
