// Lightweight contract-checking macros.
//
// HS_ASSERT is active in all build types: the simulator and the algorithm
// code use it to guard invariants whose violation would silently corrupt
// results (texture bounds, register indices, layout arithmetic). The cost is
// negligible next to the per-fragment interpreter work, so we do not strip
// it in Release. HS_DEBUG_ASSERT compiles out in NDEBUG builds and is used
// on the hottest inner loops only.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hs {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "hs: assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace hs

#define HS_ASSERT(expr)                                          \
  do {                                                           \
    if (!(expr)) ::hs::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define HS_ASSERT_MSG(expr, msg)                                 \
  do {                                                           \
    if (!(expr)) ::hs::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define HS_DEBUG_ASSERT(expr) ((void)0)
#else
#define HS_DEBUG_ASSERT(expr) HS_ASSERT(expr)
#endif
