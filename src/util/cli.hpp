// Minimal command-line flag parser for the examples and bench binaries.
//
// Supports `--name value`, `--name=value` and boolean `--name` flags.
// Unknown flags are an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hs::util {

class Cli {
 public:
  /// Registers a flag with a help string and a default rendered in --help.
  /// Call before parse().
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value = "");

  /// Parses argv. Returns false (after printing usage) on error or --help.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  void print_usage(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
  };
  std::map<std::string, Flag> registered_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hs::util
