#include "util/timer.hpp"

#include <cstdio>

namespace hs::util {

std::string format_duration(double seconds) {
  char buf[64];
  const double abs = seconds < 0 ? -seconds : seconds;
  if (abs < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.2f ns", seconds * 1e9);
  } else if (abs < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  } else if (abs < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  }
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes < 1000ULL) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  } else if (bytes < 1000ULL * 1000) {
    std::snprintf(buf, sizeof buf, "%.1f KB", b / 1e3);
  } else if (bytes < 1000ULL * 1000 * 1000) {
    std::snprintf(buf, sizeof buf, "%.1f MB", b / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GB", b / 1e9);
  }
  return buf;
}

}  // namespace hs::util
