// Fixed-size thread pool with a blocking parallel_for.
//
// The GPU simulator partitions each rendering pass across its simulated
// fragment pipes; those partitions are executed on this pool. The pool is
// sized min(requested, hardware_concurrency) so functional results never
// depend on the host: work is split by *logical* pipe index, and a smaller
// pool simply multiplexes pipes onto fewer OS threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hs::util {

class ThreadPool {
 public:
  /// Creates `threads` worker threads. `threads == 0` means "serial":
  /// submitted work runs inline on the calling thread, which keeps
  /// single-core containers and deterministic debugging cheap.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// iterations finished. Iterations are distributed in contiguous blocks,
  /// one block per logical worker, so callers can reason about locality.
  /// Exceptions thrown by fn are rethrown (first one wins) on the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Convenience: clamps `requested` against std::thread::hardware_concurrency.
  static std::size_t clamp_to_hardware(std::size_t requested);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hs::util
