// Fixed-size thread pool with a blocking parallel_for and waitable task
// groups.
//
// The GPU simulator partitions each rendering pass across its simulated
// fragment pipes; those partitions are executed on this pool. The chunk
// scheduler (stream/scheduler.hpp) runs whole pipeline chunks on a second
// pool. The pool is sized min(requested, hardware_concurrency) so
// functional results never depend on the host: work is split by *logical*
// index, and a smaller pool simply multiplexes indices onto fewer OS
// threads.
//
// Every blocking wait in this file *helps*: while waiting for its own work
// to finish, the waiter pops and executes queued tasks. That makes nested
// use safe -- a task may call parallel_for or TaskGroup::wait on the same
// pool without deadlocking even when every worker thread is occupied --
// and it removes the wakeup round-trip when the pool is saturated (on a
// single-core host the caller typically executes its own blocks inline).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hs::util {

class ThreadPool {
 public:
  /// Creates `threads` worker threads. `threads == 0` means "serial":
  /// submitted work runs inline on the calling thread, which keeps
  /// single-core containers and deterministic debugging cheap.
  explicit ThreadPool(std::size_t threads);

  /// Drains every queued task (queued work still runs; nothing is
  /// dropped), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// iterations finished. Iterations are distributed in contiguous blocks,
  /// one block per logical worker, so callers can reason about locality.
  /// The caller helps execute blocks while waiting. Exceptions thrown by
  /// fn are rethrown (first one wins) on the caller; the pool stays usable
  /// afterwards. Safe to call from inside a task running on this pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Fire-and-forget: enqueues `task` with no completion tracking (use
  /// TaskGroup when you need to wait). Tasks still queued when the pool is
  /// destroyed run during destruction. `task` must not throw -- an escaped
  /// exception is caught and logged, never propagated.
  void submit(std::function<void()> task);

  /// Convenience: clamps `requested` against std::thread::hardware_concurrency.
  static std::size_t clamp_to_hardware(std::size_t requested);

 private:
  friend class TaskGroup;

  void worker_loop();
  /// Enqueues without notifying; callers notify once per batch.
  void enqueue_locked(std::function<void()> task);
  /// Executes queued tasks until done() holds, sleeping only when the
  /// queue is empty. done() is evaluated under the pool mutex, so it may
  /// read state published under that mutex or atomics.
  void help_until(const std::function<bool()>& done);
  /// Wakes every waiter (workers and helpers); called by completion
  /// bookkeeping after a tracked batch finishes.
  void notify_completion();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  /// Signaled when tasks arrive, on stop, and on batch completion (helpers
  /// wait on completion predicates evaluated under mutex_).
  std::condition_variable cv_;
  bool stop_ = false;
};

/// A waitable batch of tasks on a ThreadPool.
///
/// submit() may be called from any thread, including from inside a task
/// already running on the pool (nested submission). wait() blocks until
/// every submitted task completed, helping execute queued work meanwhile
/// (nested waits therefore cannot deadlock), and rethrows the first
/// exception any task threw. The group is reusable after wait().
///
/// The group must not outlive its pool, and wait() must be called (or the
/// group destroyed, which waits and swallows errors) before any state the
/// tasks reference goes out of scope.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(&pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void submit(std::function<void()> fn);

  /// Blocks (helping) until all submitted tasks finished; rethrows the
  /// first stored exception.
  void wait();

 private:
  ThreadPool* pool_;
  std::atomic<std::size_t> pending_{0};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace hs::util
