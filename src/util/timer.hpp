// Wall-clock timing utilities used by benches and examples.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace hs::util {

/// Monotonic stopwatch. start() is implicit at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration in seconds with an adaptive unit (ns/us/ms/s),
/// e.g. "12.18 ms". Used by bench table output.
std::string format_duration(double seconds);

/// Formats a byte count with an adaptive unit (B/KB/MB/GB), decimal units
/// to match how the paper reports image sizes ("547 MB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace hs::util
