#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace hs::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os, const std::string& caption) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell;
      os << std::string(widths[c] - cell.size(), ' ');
      os << (c + 1 == headers_.size() ? " |" : " | ");
    }
    os << "\n";
  };

  if (!caption.empty()) os << caption << "\n";
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace hs::util
