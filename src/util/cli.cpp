#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <string_view>
#include <system_error>

namespace hs::util {

void Cli::add_flag(const std::string& name, const std::string& help,
                   const std::string& default_value) {
  registered_[name] = Flag{help, default_value};
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name, value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      // A flag followed by a non-flag token consumes it as its value;
      // otherwise it is boolean.
      if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!registered_.count(name)) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      print_usage(argv[0]);
      return false;
    }
    values_[name] = value;
  }
  return true;
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

// Numeric flags parse with std::from_chars: unlike strtoll/strtod it never
// consults the process locale, so `--deadline 1.5` means 1.5 even when the
// host runs under de_DE (where strtod expects "1,5" and stops at the dot).
// A value that does not start with a number yields the fallback.

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::int64_t v = 0;
  const char* b = it->second.data();
  const auto r = std::from_chars(b, b + it->second.size(), v);
  return r.ec == std::errc() ? v : fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  double v = 0.0;
  const char* b = it->second.data();
  const auto r = std::from_chars(b, b + it->second.size(), v);
  return r.ec == std::errc() ? v : fallback;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void Cli::print_usage(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program.c_str());
  for (const auto& [name, flag] : registered_) {
    std::fprintf(stderr, "  --%-24s %s", name.c_str(), flag.help.c_str());
    if (!flag.default_value.empty()) {
      std::fprintf(stderr, " (default: %s)", flag.default_value.c_str());
    }
    std::fprintf(stderr, "\n");
  }
}

}  // namespace hs::util
