#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/assert.hpp"

namespace hs::util {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const std::size_t blocks = std::min(n, workers_.size());
  const std::size_t chunk = (n + blocks - 1) / blocks;

  std::atomic<std::size_t> remaining{blocks};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    HS_ASSERT_MSG(!stop_, "parallel_for on a stopped pool");
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t lo = b * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      tasks_.push([&, lo, hi] {
        try {
          for (std::size_t i = lo; i < hi; ++i) fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> elock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> dlock(done_mutex);
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> dlock(done_mutex);
  done_cv.wait(dlock, [&] { return remaining.load() == 0; });

  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::clamp_to_hardware(std::size_t requested) {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::min(requested, hw);
}

}  // namespace hs::util
