#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace hs::util {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // With no workers (serial pool) nothing drains the queue; finish any
  // fire-and-forget tasks that were queued, preserving the "queued work
  // still runs" destructor contract.
  while (!tasks_.empty()) {
    auto task = std::move(tasks_.front());
    tasks_.pop();
    task();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stop_) return;
        continue;  // woken by a batch-completion broadcast
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::enqueue_locked(std::function<void()> task) {
  HS_ASSERT_MSG(!stop_, "task submitted to a stopped pool");
  tasks_.push(std::move(task));
}

void ThreadPool::notify_completion() {
  // Lock-then-notify so a helper that just evaluated its predicate as
  // false under mutex_ cannot miss the wakeup.
  std::lock_guard<std::mutex> lock(mutex_);
  cv_.notify_all();
}

void ThreadPool::help_until(const std::function<bool()>& done) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (done()) return;
      if (tasks_.empty()) {
        cv_.wait(lock, [&] { return done() || !tasks_.empty(); });
        if (done()) return;
        if (tasks_.empty()) continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // One block per worker plus one for the helping caller.
  const std::size_t blocks = std::min(n, workers_.size() + 1);
  const std::size_t chunk = (n + blocks - 1) / blocks;

  std::atomic<std::size_t> remaining{blocks};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t lo = b * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      enqueue_locked([&, lo, hi] {
        try {
          for (std::size_t i = lo; i < hi; ++i) fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> elock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1) == 1) notify_completion();
      });
    }
  }
  cv_.notify_all();

  help_until([&] { return remaining.load() == 0; });

  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::submit(std::function<void()> task) {
  auto guarded = [t = std::move(task)] {
    try {
      t();
    } catch (...) {
      HS_LOG_WARN("thread_pool: exception escaped a fire-and-forget task");
    }
  };
  if (workers_.empty()) {
    guarded();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    enqueue_locked(std::move(guarded));
  }
  cv_.notify_one();
}

std::size_t ThreadPool::clamp_to_hardware(std::size_t requested) {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::min(requested, hw);
}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destructors must not throw; callers who care about task errors call
    // wait() themselves.
  }
}

void TaskGroup::submit(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  // After the pending_ decrement a concurrent wait() may return and the
  // group be destroyed, so the completion wakeup must go through a local
  // pool pointer, never through `this`.
  ThreadPool* pool = pool_;
  auto tracked = [this, pool, f = std::move(fn)] {
    try {
      f();
    } catch (...) {
      std::lock_guard<std::mutex> elock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (pending_.fetch_sub(1) == 1) pool->notify_completion();
  };
  if (pool_->workers_.empty()) {
    tracked();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pool_->mutex_);
    pool_->enqueue_locked(std::move(tracked));
  }
  pool_->cv_.notify_one();
}

void TaskGroup::wait() {
  pool_->help_until([this] { return pending_.load() == 0; });
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> elock(error_mutex_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace hs::util
