// Atomic file publication.
//
// A file that other processes poll while it is being written -- the
// hsi-served --port-file a router or load generator watches for, a stats
// drop a bench harvests -- must never be observable half-written. The
// POSIX idiom is to write a sibling temp file and rename(2) it over the
// target: readers then see either the old contents or the whole new
// contents, never a prefix.
#pragma once

#include <string>
#include <string_view>

namespace hs::util {

/// Writes `contents` to `path` atomically: a pid-unique sibling temp file
/// is written, flushed and closed, then renamed over the target. Returns
/// false (with the reason in *error when non-null) on any failure, after
/// removing the temp file; the target is untouched on failure.
bool write_file_atomic(const std::string& path, std::string_view contents,
                       std::string* error = nullptr);

}  // namespace hs::util
