#include "util/fileio.hpp"

#include <unistd.h>

#include <cstdio>
#include <fstream>

namespace hs::util {

bool write_file_atomic(const std::string& path, std::string_view contents,
                       std::string* error) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error) *error = "cannot open temp file: " + tmp;
      return false;
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      if (error) *error = "write failed: " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "rename to " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace hs::util
