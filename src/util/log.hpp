// Leveled stderr logging with a process-global threshold.
//
// The library itself logs nothing at Info by default; the simulator logs
// pass-level detail at Debug, which the ablation benches enable to show
// pass counts without recompiling.
//
// Safe for concurrent use: each message is formatted into one buffer and
// written with a single write() call, so lines from different threads
// never interleave. Every line carries an ISO-8601 UTC timestamp and a
// small per-thread ordinal:
//
//   [2026-08-06T12:34:56.789Z warn t03] message
//
// The initial threshold is Warn, overridable at startup with the
// HS_LOG_LEVEL environment variable (debug|info|warn|error|off).
#pragma once

#include <optional>
#include <string_view>

namespace hs::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses a level name (case-insensitive: "debug", "info", "warn"/"warning",
/// "error", "off"/"none") as used by HS_LOG_LEVEL.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// printf-style logging; fmt is a printf format string.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace hs::util

#define HS_LOG_DEBUG(...) ::hs::util::logf(::hs::util::LogLevel::Debug, __VA_ARGS__)
#define HS_LOG_INFO(...) ::hs::util::logf(::hs::util::LogLevel::Info, __VA_ARGS__)
#define HS_LOG_WARN(...) ::hs::util::logf(::hs::util::LogLevel::Warn, __VA_ARGS__)
#define HS_LOG_ERROR(...) ::hs::util::logf(::hs::util::LogLevel::Error, __VA_ARGS__)
