// Leveled stderr logging with a process-global threshold.
//
// The library itself logs nothing at Info by default; the simulator logs
// pass-level detail at Debug, which the ablation benches enable to show
// pass counts without recompiling.
//
// Safe for concurrent use: each message is formatted into one buffer and
// written with a single write() call, so lines from different threads
// never interleave. Every line carries an ISO-8601 UTC timestamp and a
// small per-thread ordinal:
//
//   [2026-08-06T12:34:56.789Z warn t03] message
//
// Structured suffixes: logkv() appends machine-parseable `key=value`
// pairs after the message, and every line (logf or logkv) emitted while a
// ScopedJobTag is live on the thread automatically gains ` job=<id>` --
// the same id the serving layer stamps on trace spans and timelines, so
// log lines join per-job timelines by a grep.
//
// The initial threshold is Warn, overridable at startup with the
// HS_LOG_LEVEL environment variable (debug|info|warn|error|off).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace hs::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses a level name (case-insensitive: "debug", "info", "warn"/"warning",
/// "error", "off"/"none") as used by HS_LOG_LEVEL.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// printf-style logging; fmt is a printf format string.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// One `key=value` suffix element for logkv(). Values render unquoted
/// when they are plain tokens; anything containing whitespace, '"' or '='
/// is double-quoted with '"' and '\' escaped, so a line stays splittable
/// on spaces outside quotes. Numeric overloads format like JSON numbers
/// (integral values without a trailing ".000000").
struct LogKv {
  LogKv(std::string_view k, std::string_view v);
  LogKv(std::string_view k, const char* v) : LogKv(k, std::string_view(v)) {}
  LogKv(std::string_view k, double v);
  LogKv(std::string_view k, std::int64_t v);
  LogKv(std::string_view k, std::uint64_t v);
  LogKv(std::string_view k, int v) : LogKv(k, static_cast<std::int64_t>(v)) {}
  LogKv(std::string_view k, bool v)
      : LogKv(k, std::string_view(v ? "true" : "false")) {}

  std::string key;
  std::string value;  ///< already rendered (quoted when needed)
};

/// `message key=value ...` with the same header/atomicity as logf().
void logkv(LogLevel level, std::string_view message,
           std::initializer_list<LogKv> fields);

/// The thread's current job id (0 = none), set by ScopedJobTag. Consumed
/// by the log suffix above and by trace spans (hs::trace reads it so a
/// span opened inside a job scope carries the job id without plumbing).
std::uint64_t current_job_tag();

/// RAII job tag for the current thread; nests (restores the previous tag).
class ScopedJobTag {
 public:
  explicit ScopedJobTag(std::uint64_t id);
  ~ScopedJobTag();
  ScopedJobTag(const ScopedJobTag&) = delete;
  ScopedJobTag& operator=(const ScopedJobTag&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace hs::util

#define HS_LOG_DEBUG(...) ::hs::util::logf(::hs::util::LogLevel::Debug, __VA_ARGS__)
#define HS_LOG_INFO(...) ::hs::util::logf(::hs::util::LogLevel::Info, __VA_ARGS__)
#define HS_LOG_WARN(...) ::hs::util::logf(::hs::util::LogLevel::Warn, __VA_ARGS__)
#define HS_LOG_ERROR(...) ::hs::util::logf(::hs::util::LogLevel::Error, __VA_ARGS__)
