// Leveled stderr logging with a process-global threshold.
//
// The library itself logs nothing at Info by default; the simulator logs
// pass-level detail at Debug, which the ablation benches enable to show
// pass counts without recompiling.
#pragma once

#include <string>

namespace hs::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; fmt is a printf format string.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace hs::util

#define HS_LOG_DEBUG(...) ::hs::util::logf(::hs::util::LogLevel::Debug, __VA_ARGS__)
#define HS_LOG_INFO(...) ::hs::util::logf(::hs::util::LogLevel::Info, __VA_ARGS__)
#define HS_LOG_WARN(...) ::hs::util::logf(::hs::util::LogLevel::Warn, __VA_ARGS__)
#define HS_LOG_ERROR(...) ::hs::util::logf(::hs::util::LogLevel::Error, __VA_ARGS__)
