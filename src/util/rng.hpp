// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (synthetic scene generation,
// noise injection, test data) draw from these generators so that every
// experiment is reproducible from a single seed. We provide splitmix64 for
// seeding and xoshiro256** as the workhorse generator; both are tiny,
// allocation-free and much faster than std::mt19937_64.
#pragma once

#include <array>
#include <cstdint>

namespace hs::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Passes BigCrush when used directly; here it only seeds xoshiro.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 64-bit generator (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it can feed <random>
/// distributions, but the uniform()/normal() members below avoid
/// the libstdc++ distribution objects entirely for cross-platform
/// bit-exact reproducibility.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection sampling to
  /// avoid modulo bias (bias is irrelevant for our n but correctness is
  /// cheap here).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Marsaglia polar method (deterministic given the
  /// stream position, unlike std::normal_distribution across libstdc++
  /// versions).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hs::util
