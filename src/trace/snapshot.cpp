#include "trace/snapshot.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "trace/histogram.hpp"
#include "trace/trace.hpp"

namespace hs::trace {

namespace {

std::string snap_json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Integral values print as integers so counters stay exact.
std::string snap_json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  if (std::nearbyint(v) == v && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

void write_snapshot_json(std::ostream& os, std::string_view name,
                         std::uint64_t sequence) {
  const double uptime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - process_epoch())
          .count();
  const auto metrics = metrics_snapshot();
  const auto histograms = histograms_snapshot();

  os << "{\n  \"schema\": \"hs.snapshot.v1\",\n  \"name\": \""
     << snap_json_escape(name) << "\",\n  \"sequence\": " << sequence
     << ",\n  \"uptime_ms\": " << snap_json_number(uptime_ms)
     << ",\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    os << "    {\"name\": \"" << snap_json_escape(metrics[i].first)
       << "\", \"value\": " << snap_json_number(metrics[i].second) << "}"
       << (i + 1 < metrics.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"histograms\": [\n";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i].second;
    os << "    {\"name\": \"" << snap_json_escape(histograms[i].first)
       << "\", \"count\": " << h.count
       << ", \"sum_ms\": " << snap_json_number(h.sum * 1e3)
       << ", \"min_ms\": " << snap_json_number(h.min * 1e3)
       << ", \"mean_ms\": " << snap_json_number(h.mean() * 1e3)
       << ", \"p50_ms\": " << snap_json_number(h.p50() * 1e3)
       << ", \"p90_ms\": " << snap_json_number(h.p90() * 1e3)
       << ", \"p95_ms\": " << snap_json_number(h.p95() * 1e3)
       << ", \"p99_ms\": " << snap_json_number(h.p99() * 1e3)
       << ", \"max_ms\": " << snap_json_number(h.max * 1e3) << "}"
       << (i + 1 < histograms.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

bool write_snapshot_json_file(const std::string& path, std::string_view name,
                              std::uint64_t sequence) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) return false;
    write_snapshot_json(os, name, sequence);
    if (!os) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

SnapshotExporter::SnapshotExporter(Options options)
    : options_(std::move(options)) {
  options_.period_seconds = std::max(options_.period_seconds, 0.01);
  thread_ = std::thread([this] { loop(); });
}

SnapshotExporter::~SnapshotExporter() { stop(); }

void SnapshotExporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stop_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Final snapshot after the thread is gone: the registry state at stop.
  if (write_snapshot_json_file(options_.path, options_.name,
                               exports_.load(std::memory_order_relaxed) + 1)) {
    exports_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SnapshotExporter::loop() {
  const auto period = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(options_.period_seconds));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, period, [this] { return stop_; })) break;
    lock.unlock();
    const std::uint64_t seq = exports_.load(std::memory_order_relaxed) + 1;
    if (write_snapshot_json_file(options_.path, options_.name, seq)) {
      exports_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
  }
}

}  // namespace hs::trace
