#include "trace/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace hs::trace {

namespace {

/// Bound math shared by the live Histogram statics and by
/// HistogramSnapshot::quantile (which must work even in an HS_TRACE=OFF
/// build, where the Histogram statics are stubbed to 0).
constexpr int kMinExp = -30;
constexpr int kMaxExp = 10;
constexpr int kSubBuckets = 8;
constexpr int kBucketCount = (kMaxExp - kMinExp) * kSubBuckets + 2;

double pow2(int e) { return std::ldexp(1.0, e); }

int raw_bucket_index(double seconds) {
  if (!(seconds > 0) || !std::isfinite(seconds)) return 0;
  if (seconds < pow2(kMinExp)) return 0;
  if (seconds >= pow2(kMaxExp)) return kBucketCount - 1;
  int exp = 0;
  const double mant = std::frexp(seconds, &exp);  // seconds = mant * 2^exp
  const int octave = exp - 1;                     // [2^octave, 2^(octave+1))
  int sub = static_cast<int>((mant - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return (octave - kMinExp) * kSubBuckets + sub + 1;
}

double raw_bucket_lower(int index) {
  if (index <= 0) return 0;
  if (index >= kBucketCount - 1) return pow2(kMaxExp);
  const int i = index - 1;
  const int octave = kMinExp + i / kSubBuckets;
  const int sub = i % kSubBuckets;
  return pow2(octave) * (1.0 + static_cast<double>(sub) / kSubBuckets);
}

double raw_bucket_upper(int index) {
  if (index <= 0) return pow2(kMinExp);
  if (index >= kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const int i = index - 1;
  const int octave = kMinExp + i / kSubBuckets;
  const int sub = i % kSubBuckets;
  if (sub == kSubBuckets - 1) return pow2(octave + 1);
  return pow2(octave) * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
}

}  // namespace

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, count]; the sample at that rank lives in the first
  // bucket whose cumulative count reaches it.
  const double target =
      std::max(1.0, std::ceil(q * static_cast<double>(count)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t n = buckets[i];
    if (n == 0) continue;
    if (static_cast<double>(cum + n) >= target) {
      const double lo = raw_bucket_lower(static_cast<int>(i));
      double hi = raw_bucket_upper(static_cast<int>(i));
      if (!std::isfinite(hi)) hi = std::max(max, lo);  // overflow bucket
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(n);
      double v = lo + (hi - lo) * frac;
      if (max > 0) v = std::min(v, max);
      if (min > 0) v = std::max(v, min);
      return v;
    }
    cum += n;
  }
  return max;
}

#if HS_TRACE_ENABLED

int Histogram::bucket_index(double seconds) { return raw_bucket_index(seconds); }
double Histogram::bucket_lower(int index) { return raw_bucket_lower(index); }
double Histogram::bucket_upper(int index) { return raw_bucket_upper(index); }

double Histogram::bucket_width_at(double seconds) {
  const int i = raw_bucket_index(seconds);
  const double hi = raw_bucket_upper(i);
  if (!std::isfinite(hi)) return raw_bucket_lower(i);  // one octave's worth
  return hi - raw_bucket_lower(i);
}

Histogram::Shard& Histogram::local_shard() {
  // Per-thread cache of (histogram -> shard). Histograms are
  // process-lifetime registry objects, so the raw pointers never dangle;
  // a small vector with linear search beats a hash map at the realistic
  // handful of histograms per process.
  thread_local std::vector<std::pair<const Histogram*, Shard*>> cache;
  for (const auto& [h, s] : cache) {
    if (h == this) return *s;
  }
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(shard));
  }
  cache.emplace_back(this, raw);
  return *raw;
}

void Histogram::record(double seconds) {
  if (!(seconds >= 0) || !std::isfinite(seconds)) return;
  Shard& s = local_shard();
  s.counts[static_cast<std::size_t>(raw_bucket_index(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  // Owner-thread-only updates: plain load+store, no RMW contention.
  s.sum.store(s.sum.load(std::memory_order_relaxed) + seconds,
              std::memory_order_relaxed);
  const std::uint64_t before = s.total.load(std::memory_order_relaxed);
  if (before == 0 || seconds < s.min.load(std::memory_order_relaxed)) {
    s.min.store(seconds, std::memory_order_relaxed);
  }
  if (before == 0 || seconds > s.max.load(std::memory_order_relaxed)) {
    s.max.store(seconds, std::memory_order_relaxed);
  }
  s.total.store(before + 1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.buckets.assign(kBucketCount, 0);
  std::lock_guard<std::mutex> lock(mu_);
  bool have_bounds = false;
  for (const auto& shard : shards_) {
    for (int i = 0; i < kBucketCount; ++i) {
      out.buckets[static_cast<std::size_t>(i)] +=
          shard->counts[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
    }
    if (shard->total.load(std::memory_order_relaxed) == 0) continue;
    out.sum += shard->sum.load(std::memory_order_relaxed);
    const double lo = shard->min.load(std::memory_order_relaxed);
    const double hi = shard->max.load(std::memory_order_relaxed);
    out.min = have_bounds ? std::min(out.min, lo) : lo;
    out.max = have_bounds ? std::max(out.max, hi) : hi;
    have_bounds = true;
  }
  for (const std::uint64_t n : out.buckets) out.count += n;
  return out;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (auto& c : shard->counts) c.store(0, std::memory_order_relaxed);
    shard->sum.store(0, std::memory_order_relaxed);
    shard->min.store(0, std::memory_order_relaxed);
    shard->max.store(0, std::memory_order_relaxed);
    shard->total.store(0, std::memory_order_relaxed);
  }
}

namespace {

struct HistogramRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

HistogramRegistry& registry() {
  static HistogramRegistry r;
  return r;
}

}  // namespace

Histogram& histogram(std::string_view name) {
  HistogramRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, HistogramSnapshot>> histograms_snapshot() {
  HistogramRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    out.emplace_back(name, h->snapshot());
  }
  return out;
}

void reset_histograms() {
  HistogramRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& [name, h] : r.histograms) h->reset();
}

#else  // HS_TRACE_ENABLED == 0

Histogram& histogram(std::string_view) {
  static Histogram dummy;
  return dummy;
}

void reset_histograms() {}

#endif  // HS_TRACE_ENABLED

}  // namespace hs::trace
