// Always-on bounded flight recorder: the last-N structured events of
// every thread, for post-mortem capture when a job fails or a worker
// wedges.
//
// Each thread records fixed-size FlightEvents into its own ring buffer
// (fixed byte budget, overwrite-oldest). Recording is one uncontended
// mutex acquisition plus a struct copy -- no allocation, no formatting --
// so it stays on even in production runs; the cost is bounded by the
// bench in BENCH_trace_overhead.json. On a trigger (job failure, retry
// exhaustion, deadline expiry, or a fatal signal via
// install_flight_signal_dump) the recorder dumps every thread's surviving
// events, merged and time-sorted, to a strict-JSON file
// (schema "hs.flight.v1", validated by trace/json_check).
//
// `kind` must be a string literal (stored by pointer, like span arg
// keys); `detail` is copied and truncated to kFlightDetailBytes-1. Events
// automatically carry the thread's current job tag
// (util::current_job_tag), so a dump slices cleanly per job.
//
// With HS_TRACE=OFF recording compiles out to empty inline stubs and the
// dump writers emit valid empty documents.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#ifndef HS_TRACE_ENABLED
#define HS_TRACE_ENABLED 1
#endif

namespace hs::trace {

inline constexpr std::size_t kFlightDetailBytes = 40;

struct FlightEvent {
  std::int64_t t_ns = 0;   ///< steady-clock ns since the recorder epoch
  std::uint32_t tid = 0;   ///< small sequential thread id
  std::uint64_t job = 0;   ///< util::current_job_tag() at record time
  const char* kind = "";   ///< string literal
  std::int64_t a = 0;      ///< two integer payload slots, kind-defined
  std::int64_t b = 0;
  char detail[kFlightDetailBytes] = {};  ///< NUL-terminated, truncated copy
};

#if HS_TRACE_ENABLED

/// Records one event into the calling thread's ring.
void flight_event(const char* kind, std::int64_t a = 0, std::int64_t b = 0,
                  std::string_view detail = {});

/// Per-thread ring budget in bytes (default 32 KiB, ~240 events). Applies
/// to rings created after the call; clamped to hold at least 8 events.
void set_flight_budget_bytes(std::size_t bytes);
std::size_t flight_budget_bytes();

/// Every thread's surviving events, oldest first (merged, time-sorted).
std::vector<FlightEvent> flight_snapshot();

/// Total events ever recorded (including overwritten ones).
std::uint64_t flight_recorded_total();

/// Clears every ring (events only; budgets and thread ids survive).
void reset_flight_recorder();

#else  // HS_TRACE_ENABLED == 0: recording compiles out entirely.

inline void flight_event(const char*, std::int64_t = 0, std::int64_t = 0,
                         std::string_view = {}) {}
inline void set_flight_budget_bytes(std::size_t) {}
inline std::size_t flight_budget_bytes() { return 0; }
inline std::vector<FlightEvent> flight_snapshot() { return {}; }
inline std::uint64_t flight_recorded_total() { return 0; }
inline void reset_flight_recorder() {}

#endif  // HS_TRACE_ENABLED

/// Strict-JSON dump (schema "hs.flight.v1"); valid empty document when
/// tracing is compiled out or nothing was recorded.
void write_flight_json(std::ostream& os, std::string_view reason);
bool write_flight_json_file(const std::string& path, std::string_view reason);

/// Installs a best-effort fatal-signal handler (SIGSEGV, SIGBUS, SIGFPE,
/// SIGILL, SIGABRT) that dumps the flight recorder to `path` and then
/// re-raises with the default disposition. Best-effort by design: the
/// dump allocates and takes the (normally uncontended) ring locks, which
/// is not async-signal-safe in the general case -- acceptable for a
/// crash-path diagnostic that would otherwise not exist at all.
void install_flight_signal_dump(const std::string& path);

}  // namespace hs::trace
