// Fixed-bucket log-linear latency histograms for the trace registry.
//
// A Histogram records positive durations (seconds) into a fixed array of
// buckets: each power-of-two octave of the value range is split into
// kSubBuckets linear sub-buckets, so relative bucket width is bounded by
// 1/kSubBuckets (12.5%) everywhere -- precise enough for p50..p99 tails
// without per-sample storage. The covered range is [2^kMinExp, 2^kMaxExp)
// seconds (~1 ns .. ~17 min); values outside clamp into underflow /
// overflow buckets that still count toward totals.
//
// Concurrency: record() is lock-free and wait-free on the hot path. Each
// recording thread owns one shard per histogram (a plain array of relaxed
// atomics only it increments); shards are created on a thread's first
// record() into that histogram (one mutex acquisition, then cached in a
// thread-local map) and merged by snapshot(). Snapshots are consistent
// enough for monitoring: totals never go backwards and a quiescent
// histogram snapshots exactly.
//
// Like Counter/Gauge, histograms are name-registered process-lifetime
// objects (`trace::histogram("serve.queue_wait_s")`) and are zeroed by
// trace::reset(). With HS_TRACE=OFF everything below compiles to no-op
// stubs; snapshots come back empty.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef HS_TRACE_ENABLED
#define HS_TRACE_ENABLED 1
#endif

namespace hs::trace {

/// Merged, immutable view of one histogram at snapshot time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0;  ///< seconds
  double min = 0;  ///< 0 when count == 0
  double max = 0;
  std::vector<std::uint64_t> buckets;  ///< per-bucket counts (may be empty)

  /// Value at quantile q in [0, 1]: the q-th sample's bucket, linearly
  /// interpolated by rank within the bucket, clamped to [min, max].
  /// Returns 0 when the histogram is empty.
  double quantile(double q) const;

  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0; }
};

#if HS_TRACE_ENABLED

class Histogram {
 public:
  /// Bucketing scheme constants (part of the exported schema: DESIGN.md
  /// documents them and the snapshot JSON carries the derived bounds).
  static constexpr int kMinExp = -30;     ///< lowest octave: 2^-30 s (~0.93 ns)
  static constexpr int kMaxExp = 10;      ///< first value past the top: 1024 s
  static constexpr int kSubBuckets = 8;   ///< linear slices per octave
  static constexpr int kBucketCount =
      (kMaxExp - kMinExp) * kSubBuckets + 2;  ///< + underflow + overflow

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one duration in seconds. Non-finite and negative values are
  /// dropped; zero lands in the underflow bucket.
  void record(double seconds);

  HistogramSnapshot snapshot() const;

  /// Zeroes every shard. Must not race record() on the same thread's
  /// shard with the expectation of an exact cut (totals stay consistent).
  void reset();

  /// Bucket index a value lands in, in [0, kBucketCount).
  static int bucket_index(double seconds);
  /// Inclusive lower / exclusive upper value bound of a bucket. The
  /// underflow bucket spans [0, 2^kMinExp); overflow [2^kMaxExp, inf).
  static double bucket_lower(int index);
  static double bucket_upper(int index);
  /// Width of the bucket containing `seconds` -- the agreement tolerance
  /// for cross-checking histogram quantiles against exact percentiles.
  static double bucket_width_at(double seconds);

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kBucketCount> counts{};
    // Owner-thread-only writes (load+store, no RMW); snapshot() reads.
    std::atomic<double> sum{0};
    std::atomic<double> min{0};
    std::atomic<double> max{0};
    std::atomic<std::uint64_t> total{0};
  };

  Shard& local_shard();

  mutable std::mutex mu_;  ///< guards shards_ registration only
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Finds or registers the named histogram (process lifetime, thread-safe;
/// same contract as counter()/gauge()).
Histogram& histogram(std::string_view name);

/// (name, snapshot) of every registered histogram, sorted by name.
std::vector<std::pair<std::string, HistogramSnapshot>> histograms_snapshot();

#else  // HS_TRACE_ENABLED == 0: no-op stubs, empty snapshots.

class Histogram {
 public:
  static constexpr int kMinExp = -30;
  static constexpr int kMaxExp = 10;
  static constexpr int kSubBuckets = 8;
  static constexpr int kBucketCount = (kMaxExp - kMinExp) * kSubBuckets + 2;

  void record(double) {}
  HistogramSnapshot snapshot() const { return {}; }
  void reset() {}

  static int bucket_index(double) { return 0; }
  static double bucket_lower(int) { return 0; }
  static double bucket_upper(int) { return 0; }
  static double bucket_width_at(double) { return 0; }
};

Histogram& histogram(std::string_view name);
inline std::vector<std::pair<std::string, HistogramSnapshot>>
histograms_snapshot() {
  return {};
}

#endif  // HS_TRACE_ENABLED

/// Zeroes every registered histogram. trace::reset() calls this; exposed
/// separately so long-lived tools can restart latency windows without
/// dropping spans. No-op when tracing is compiled out.
void reset_histograms();

}  // namespace hs::trace
