// Minimal JSON parser for validating the trace sinks' output.
//
// The Chrome-trace and metrics exporters hand-serialize JSON; this parser
// closes the loop so tests and the hsi-profile CLI can parse the files
// back and check both syntactic validity and the expected schema without
// an external dependency. It is a strict RFC-8259 subset parser (no
// comments, no trailing commas) sized for trace files, not a general
// library: numbers become doubles, objects keep insertion order.
//
// This header is compiled unconditionally (independent of HS_TRACE) so an
// HS_TRACE=OFF build can still validate the empty documents it writes.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hs::trace::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is(Kind k) const { return kind == k; }

  /// First member with `key`, or nullptr (objects only).
  const Value* find(std::string_view key) const;
};

/// Parses a complete JSON document (one value plus trailing whitespace).
/// On failure returns nullopt and, when `error` is non-null, a message
/// with the byte offset of the problem.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

/// Schema check for an exported Chrome trace: a top-level object with a
/// `traceEvents` array whose entries carry name/ph/ts (and dur for "X"
/// complete events).
bool validate_chrome_trace(std::string_view text, std::string* error = nullptr);

/// Schema check for the BENCH_*.json metrics shape: a top-level object
/// with a string `name` and a `results` array of objects, each with a
/// string `bench` and numeric values otherwise.
bool validate_metrics_json(std::string_view text, std::string* error = nullptr);

/// Schema check for "hs.snapshot.v1" (trace/snapshot.hpp): object with
/// string name, numeric sequence/uptime_ms, a `metrics` array of
/// {name, value} and a `histograms` array whose rows carry count plus the
/// *_ms summary fields.
bool validate_snapshot_json(std::string_view text,
                            std::string* error = nullptr);

/// Schema check for "hs.flight.v1" (trace/flight_recorder.hpp): object
/// with string reason, numeric recorded_total, and an `events` array of
/// {t_us, tid, job, kind, a, b, detail} rows.
bool validate_flight_json(std::string_view text, std::string* error = nullptr);

/// Schema check for "hs.timeline.v1" (serve/timeline.hpp): object with
/// numeric id, string name/kind/state, numeric attempts/queue_ms/exec_ms/
/// total_ms, and an `events` array of {t_ms, what} rows.
bool validate_timeline_json(std::string_view text,
                            std::string* error = nullptr);

}  // namespace hs::trace::json
