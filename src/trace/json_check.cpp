#include "trace/json_check.hpp"

#include <cctype>
#include <charconv>
#include <limits>
#include <system_error>

namespace hs::trace::json {

namespace {

constexpr int kMaxDepth = 128;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error{};

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out.kind = Value::Kind::String;
      return parse_string(out.string);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(Value& out, int depth) {
    out.kind = Value::Kind::Object;
    ++pos;  // '{'
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(Value& out, int depth) {
    out.kind = Value::Kind::Array;
    ++pos;  // '['
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("bad escape");
        const char e = text[pos];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 >= text.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            pos += 4;
            // The exporters only escape control characters; decode the
            // BMP code point as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("bad escape");
        }
        ++pos;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      out += c;
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_bool(Value& out) {
    out.kind = Value::Kind::Bool;
    if (text.substr(pos, 4) == "true") {
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (text.substr(pos, 5) == "false") {
      out.boolean = false;
      pos += 5;
      return true;
    }
    return fail("expected true/false");
  }

  bool parse_null(Value& out) {
    out.kind = Value::Kind::Null;
    if (text.substr(pos, 4) == "null") {
      pos += 4;
      return true;
    }
    return fail("expected null");
  }

  bool parse_number(Value& out) {
    out.kind = Value::Kind::Number;
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    auto digits = [&] {
      const std::size_t before = pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
      return pos > before;
    };
    const std::size_t int_start = pos;
    if (!digits()) return fail("expected number");
    // RFC 8259: no leading zeros ("01" is invalid, "0", "0.5" are fine).
    if (pos - int_start > 1 && text[int_start] == '0') {
      pos = int_start;
      return fail("leading zero in number");
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (!digits()) return fail("expected fraction digits");
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) return fail("expected exponent digits");
    }
    // std::from_chars, not strtod: JSON's decimal point is always '.',
    // while strtod follows the process locale (under de_DE it expects ','
    // and would truncate "1.5" to 1). The grammar above already validated
    // the token, so from_chars consumes all of it.
    const char* tb = text.data() + start;
    const char* te = text.data() + pos;
    double v = 0.0;
    if (std::from_chars(tb, te, v).ec == std::errc::result_out_of_range) {
      // Outside double's range. Mirror strtod: overflow to +-inf,
      // underflow to +-0. long double's wider exponent range decides
      // which side any practical token falls on; beyond even that, the
      // exponent's sign does.
      long double lv = 0.0L;
      if (std::from_chars(tb, te, lv).ec == std::errc()) {
        v = static_cast<double>(lv);
      } else {
        const std::string_view token(tb, static_cast<std::size_t>(te - tb));
        const std::size_t e = token.find_first_of("eE");
        const bool tiny =
            e != std::string_view::npos && token[e + 1] == '-';
        v = tiny ? 0.0 : std::numeric_limits<double>::infinity();
        if (token.front() == '-') v = -v;
      }
    }
    out.number = v;
    return true;
  }
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<Value> parse(std::string_view text, std::string* error) {
  Parser p{text};
  Value root;
  if (!p.parse_value(root, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing content at offset " + std::to_string(p.pos);
    }
    return std::nullopt;
  }
  return root;
}

namespace {

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

bool validate_chrome_trace(std::string_view text, std::string* error) {
  std::string parse_error;
  const auto doc = parse(text, &parse_error);
  if (!doc) return set_error(error, "invalid JSON: " + parse_error);
  if (!doc->is(Value::Kind::Object)) {
    return set_error(error, "top level is not an object");
  }
  const Value* events = doc->find("traceEvents");
  if (events == nullptr || !events->is(Value::Kind::Array)) {
    return set_error(error, "missing traceEvents array");
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const Value& ev = events->array[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (!ev.is(Value::Kind::Object)) return set_error(error, at + " is not an object");
    const Value* name = ev.find("name");
    const Value* ph = ev.find("ph");
    const Value* ts = ev.find("ts");
    if (name == nullptr || !name->is(Value::Kind::String)) {
      return set_error(error, at + " missing string name");
    }
    if (ph == nullptr || !ph->is(Value::Kind::String)) {
      return set_error(error, at + " missing string ph");
    }
    if (ts == nullptr || !ts->is(Value::Kind::Number)) {
      return set_error(error, at + " missing numeric ts");
    }
    if (ph->string == "X") {
      const Value* dur = ev.find("dur");
      if (dur == nullptr || !dur->is(Value::Kind::Number) || dur->number < 0) {
        return set_error(error, at + " complete event missing non-negative dur");
      }
    }
  }
  return true;
}

bool validate_metrics_json(std::string_view text, std::string* error) {
  std::string parse_error;
  const auto doc = parse(text, &parse_error);
  if (!doc) return set_error(error, "invalid JSON: " + parse_error);
  if (!doc->is(Value::Kind::Object)) {
    return set_error(error, "top level is not an object");
  }
  const Value* name = doc->find("name");
  if (name == nullptr || !name->is(Value::Kind::String)) {
    return set_error(error, "missing string name");
  }
  const Value* results = doc->find("results");
  if (results == nullptr || !results->is(Value::Kind::Array)) {
    return set_error(error, "missing results array");
  }
  for (std::size_t i = 0; i < results->array.size(); ++i) {
    const Value& row = results->array[i];
    const std::string at = "results[" + std::to_string(i) + "]";
    if (!row.is(Value::Kind::Object)) return set_error(error, at + " is not an object");
    const Value* bench = row.find("bench");
    if (bench == nullptr || !bench->is(Value::Kind::String)) {
      return set_error(error, at + " missing string bench");
    }
    for (const auto& [key, value] : row.object) {
      if (key == "bench") continue;
      if (!value.is(Value::Kind::Number)) {
        return set_error(error, at + "." + key + " is not numeric");
      }
    }
  }
  return true;
}

namespace {

/// Parses `text`, checks the top level is an object whose "schema" member
/// equals `schema`, and leaves the document in `doc`.
bool parse_versioned(std::string_view text, std::string_view schema,
                     std::optional<Value>& doc, std::string* error) {
  std::string parse_error;
  doc = parse(text, &parse_error);
  if (!doc) return set_error(error, "invalid JSON: " + parse_error);
  if (!doc->is(Value::Kind::Object)) {
    return set_error(error, "top level is not an object");
  }
  const Value* s = doc->find("schema");
  if (s == nullptr || !s->is(Value::Kind::String) || s->string != schema) {
    return set_error(error,
                     "missing schema \"" + std::string(schema) + "\"");
  }
  return true;
}

bool require_number(const Value& obj, std::string_view key,
                    const std::string& at, std::string* error) {
  const Value* v = obj.find(key);
  if (v == nullptr || !v->is(Value::Kind::Number)) {
    set_error(error, at + " missing numeric " + std::string(key));
    return false;
  }
  return true;
}

bool require_string(const Value& obj, std::string_view key,
                    const std::string& at, std::string* error) {
  const Value* v = obj.find(key);
  if (v == nullptr || !v->is(Value::Kind::String)) {
    set_error(error, at + " missing string " + std::string(key));
    return false;
  }
  return true;
}

/// Finds `key` as an array member, or fails.
const Value* require_array(const Value& obj, std::string_view key,
                           const std::string& at, std::string* error) {
  const Value* v = obj.find(key);
  if (v == nullptr || !v->is(Value::Kind::Array)) {
    set_error(error, at + " missing array " + std::string(key));
    return nullptr;
  }
  return v;
}

}  // namespace

bool validate_snapshot_json(std::string_view text, std::string* error) {
  std::optional<Value> doc;
  if (!parse_versioned(text, "hs.snapshot.v1", doc, error)) return false;
  if (!require_string(*doc, "name", "top level", error)) return false;
  if (!require_number(*doc, "sequence", "top level", error)) return false;
  if (!require_number(*doc, "uptime_ms", "top level", error)) return false;
  const Value* metrics = require_array(*doc, "metrics", "top level", error);
  if (metrics == nullptr) return false;
  for (std::size_t i = 0; i < metrics->array.size(); ++i) {
    const Value& row = metrics->array[i];
    const std::string at = "metrics[" + std::to_string(i) + "]";
    if (!row.is(Value::Kind::Object)) {
      return set_error(error, at + " is not an object");
    }
    if (!require_string(row, "name", at, error)) return false;
    if (!require_number(row, "value", at, error)) return false;
  }
  const Value* hists = require_array(*doc, "histograms", "top level", error);
  if (hists == nullptr) return false;
  for (std::size_t i = 0; i < hists->array.size(); ++i) {
    const Value& row = hists->array[i];
    const std::string at = "histograms[" + std::to_string(i) + "]";
    if (!row.is(Value::Kind::Object)) {
      return set_error(error, at + " is not an object");
    }
    if (!require_string(row, "name", at, error)) return false;
    for (const char* key : {"count", "sum_ms", "min_ms", "mean_ms", "p50_ms",
                            "p90_ms", "p95_ms", "p99_ms", "max_ms"}) {
      if (!require_number(row, key, at, error)) return false;
    }
  }
  return true;
}

bool validate_flight_json(std::string_view text, std::string* error) {
  std::optional<Value> doc;
  if (!parse_versioned(text, "hs.flight.v1", doc, error)) return false;
  if (!require_string(*doc, "reason", "top level", error)) return false;
  if (!require_number(*doc, "recorded_total", "top level", error)) {
    return false;
  }
  const Value* events = require_array(*doc, "events", "top level", error);
  if (events == nullptr) return false;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const Value& ev = events->array[i];
    const std::string at = "events[" + std::to_string(i) + "]";
    if (!ev.is(Value::Kind::Object)) {
      return set_error(error, at + " is not an object");
    }
    for (const char* key : {"t_us", "tid", "job", "a", "b"}) {
      if (!require_number(ev, key, at, error)) return false;
    }
    if (!require_string(ev, "kind", at, error)) return false;
    if (!require_string(ev, "detail", at, error)) return false;
  }
  return true;
}

bool validate_timeline_json(std::string_view text, std::string* error) {
  std::optional<Value> doc;
  if (!parse_versioned(text, "hs.timeline.v1", doc, error)) return false;
  for (const char* key : {"id", "attempts", "queue_ms", "exec_ms", "run_ms",
                          "total_ms"}) {
    if (!require_number(*doc, key, "top level", error)) return false;
  }
  for (const char* key : {"name", "kind", "priority", "state"}) {
    if (!require_string(*doc, key, "top level", error)) return false;
  }
  const Value* cached = doc->find("cached");
  if (cached == nullptr || !cached->is(Value::Kind::Bool)) {
    return set_error(error, "top level missing boolean cached");
  }
  const Value* events = require_array(*doc, "events", "top level", error);
  if (events == nullptr) return false;
  double prev_t = -1;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const Value& ev = events->array[i];
    const std::string at = "events[" + std::to_string(i) + "]";
    if (!ev.is(Value::Kind::Object)) {
      return set_error(error, at + " is not an object");
    }
    if (!require_number(ev, "t_ms", at, error)) return false;
    if (!require_string(ev, "what", at, error)) return false;
    const double t = ev.find("t_ms")->number;
    if (t < prev_t) return set_error(error, at + " out of order");
    prev_t = t;
  }
  return true;
}

}  // namespace hs::trace::json
