// Low-overhead tracing and metrics for the whole stack (`hs::trace`).
//
// The paper's argument is a stage-level performance breakdown of the AMC
// pipeline (Fig. 4); this subsystem makes that breakdown a first-class,
// exportable artifact instead of ad-hoc per-layer statistics. It provides:
//
//   * RAII `Span`s with nesting (pipeline -> chunk -> stage -> pass),
//     recorded into per-thread buffers with one uncontended lock per span;
//   * a process-global `Counter`/`Gauge` registry (cache hit/miss rates,
//     eviction counts, ...);
//   * sinks: Chrome trace-event JSON (loadable in chrome://tracing or
//     https://ui.perfetto.dev), a flat metrics JSON compatible with the
//     bench `BENCH_*.json` schema, and a human-readable summary table.
//
// Cost model: tracing is compiled out entirely with -DHS_TRACE=OFF
// (`HS_TRACE_ENABLED == 0`: every entry point below becomes an empty
// inline stub). When compiled in, it is disabled at runtime by default --
// a `Span` constructor is a single relaxed atomic load -- and is switched
// on with `set_enabled(true)` or the `HS_TRACE=1` environment variable.
// Span granularity is one pass/stage/chunk (never per fragment), so the
// enabled-mode overhead stays well under 2% of a draw call.
//
// Threading: spans may be opened and closed on any thread; events land in
// a per-thread buffer keyed by a small sequential thread id. A span must
// begin and end on the same thread. `reset()` must not run concurrently
// with open spans.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#ifndef HS_TRACE_ENABLED
#define HS_TRACE_ENABLED 1
#endif

namespace hs::trace {

/// Inline argument storage per span. arg() calls beyond this are dropped.
inline constexpr int kMaxSpanArgs = 16;

struct TraceArg {
  const char* key = "";  ///< must be a string literal (stored by pointer)
  bool is_num = true;
  double num = 0;
  std::string str;
};

/// One completed span. Durations are steady-clock nanoseconds relative to
/// the recorder epoch (process start or the last reset()).
struct TraceEvent {
  std::string name;
  std::string cat;
  std::uint32_t tid = 0;  ///< small sequential id, not the OS thread id
  int depth = 0;          ///< nesting depth within its thread at begin time
  /// Job context id (util::current_job_tag) at span begin; 0 = none. Set
  /// by the serving layer around job execution so every span a job emits
  /// -- pipeline, chunk, stage, pass -- joins its timeline. Exported as a
  /// "job" arg in the Chrome trace.
  std::uint64_t job = 0;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  /// Only the populated args (size == arg_count). Kept out-of-line so a
  /// TraceEvent stays ~100 bytes and per-thread buffers move cheaply;
  /// argless spans (the common case) never allocate here.
  std::vector<TraceArg> args;
  int arg_count = 0;
};

#if HS_TRACE_ENABLED

/// Runtime switch. Initialized from the HS_TRACE environment variable
/// ("1"/"true"/"on" enables) and off otherwise.
bool enabled();
void set_enabled(bool on);

/// Drops all recorded events, zeroes every registered counter/gauge and
/// restarts the trace clock at zero.
void reset();

std::size_t event_count();

/// Copies out all completed events, sorted by start time.
std::vector<TraceEvent> snapshot();

/// Monotonic counter with a stable address for the process lifetime.
class Counter {
 public:
  void add(std::int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void increment() { add(1); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-write-wins gauge with a stable address for the process lifetime.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<double> v_{0};
};

/// Finds or registers the named counter/gauge. References stay valid for
/// the process lifetime; registration is thread-safe.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);

/// (name, value) of every registered counter and gauge, sorted by name.
std::vector<std::pair<std::string, double>> metrics_snapshot();

/// RAII span. Records begin at construction and emits one TraceEvent at
/// destruction (or end()) when tracing was enabled at construction time.
class Span {
 public:
  Span(std::string_view name, std::string_view cat);
  ~Span();

  Span(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span& operator=(Span&&) = delete;

  /// Attaches a numeric / string argument (exported under "args" in the
  /// Chrome trace). `key` must be a string literal. No-op when inactive.
  void arg(const char* key, double value);
  void arg(const char* key, std::string_view value);

  /// Closes the span early; the destructor becomes a no-op.
  void end();

  /// True when this span is recording (tracing was enabled at begin).
  bool active() const { return active_; }

 private:
  bool active_ = false;
  int depth_ = 0;
  int arg_count_ = 0;
  std::uint64_t job_ = 0;
  std::int64_t start_ns_ = 0;
  void* buf_ = nullptr;  ///< owning thread's buffer
  std::string name_;
  std::string cat_;
  std::array<TraceArg, kMaxSpanArgs> args_{};
};

/// Chrome trace-event JSON ("X" complete events plus "C" counter samples).
void write_chrome_trace(std::ostream& os);
bool write_chrome_trace_file(const std::string& path);

/// Flat metrics JSON in the BENCH_*.json schema: per-(cat,name) span
/// aggregates plus one row holding every counter/gauge.
void write_metrics_json(std::ostream& os, std::string_view name);
bool write_metrics_json_file(const std::string& path, std::string_view name);

/// Per-span-name aggregate table plus the counter registry, via util::Table.
void print_summary(std::ostream& os);

#else  // HS_TRACE_ENABLED == 0: every entry point is an empty inline stub.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void reset() {}
inline std::size_t event_count() { return 0; }
inline std::vector<TraceEvent> snapshot() { return {}; }

class Counter {
 public:
  void add(std::int64_t) {}
  void increment() {}
  std::int64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(double) {}
  double value() const { return 0; }
  void reset() {}
};

Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
inline std::vector<std::pair<std::string, double>> metrics_snapshot() {
  return {};
}

class Span {
 public:
  Span(std::string_view, std::string_view) {}
  void arg(const char*, double) {}
  void arg(const char*, std::string_view) {}
  void end() {}
  bool active() const { return false; }
};

/// The disabled-mode sinks still emit *valid* (empty) documents so tools
/// like hsi-profile keep working in an HS_TRACE=OFF build.
void write_chrome_trace(std::ostream& os);
bool write_chrome_trace_file(const std::string& path);
void write_metrics_json(std::ostream& os, std::string_view name);
bool write_metrics_json_file(const std::string& path, std::string_view name);
void print_summary(std::ostream& os);

#endif  // HS_TRACE_ENABLED

}  // namespace hs::trace
