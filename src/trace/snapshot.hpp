// Periodic registry snapshots: the live health surface of a process.
//
// write_snapshot_json serializes the whole trace registry -- every
// counter, gauge, and histogram (with derived p50/p90/p95/p99/max in
// milliseconds) -- into a versioned strict-JSON document
// (schema "hs.snapshot.v1", validated by trace/json_check). It is what
// `hsi-top` renders and what a shard router would poll.
//
// SnapshotExporter writes that document to a file on a fixed interval
// from a background thread. Each export goes to `<path>.tmp` and is
// renamed into place, so readers always see a complete document, never a
// torn write. stop() (and the destructor) writes one final snapshot so
// short-lived processes still leave a record.
//
// Compiled in both HS_TRACE modes: with tracing compiled out the
// document is still valid, just empty -- export degrades gracefully
// rather than disappearing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace hs::trace {

/// One snapshot document. `sequence` is a monotonically increasing
/// export number so a poller can detect staleness.
void write_snapshot_json(std::ostream& os, std::string_view name,
                         std::uint64_t sequence);

/// Atomic file variant: writes `path + ".tmp"`, then renames over `path`.
bool write_snapshot_json_file(const std::string& path, std::string_view name,
                              std::uint64_t sequence);

class SnapshotExporter {
 public:
  struct Options {
    std::string path;            ///< destination file (required)
    double period_seconds = 1;   ///< export interval (clamped to >= 10 ms)
    std::string name = "hs";     ///< echoed in the document
  };

  /// Starts the exporter thread; the first export happens one period in.
  explicit SnapshotExporter(Options options);
  /// Implicit stop(): final snapshot, join.
  ~SnapshotExporter();

  SnapshotExporter(const SnapshotExporter&) = delete;
  SnapshotExporter& operator=(const SnapshotExporter&) = delete;

  /// Stops the thread and writes one final snapshot. Idempotent.
  void stop();

  /// Number of completed exports (including the final one after stop()).
  std::uint64_t exports() const {
    return exports_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  Options options_;
  std::atomic<std::uint64_t> exports_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace hs::trace
