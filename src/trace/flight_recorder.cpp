#include "trace/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/log.hpp"

namespace hs::trace {

namespace {

std::string flight_json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

#if HS_TRACE_ENABLED

namespace {

/// One thread's ring. Only the owning thread writes; the mutex is
/// uncontended on the hot path and taken briefly by snapshot/reset.
struct FlightRing {
  std::mutex m;
  std::vector<FlightEvent> slots;  ///< fixed capacity, set at creation
  std::size_t head = 0;            ///< next write position
  std::uint64_t written = 0;       ///< lifetime count (>= surviving)
  std::uint32_t tid = 0;
};

struct FlightRegistry {
  FlightRegistry() : epoch(std::chrono::steady_clock::now()) {}

  std::chrono::steady_clock::time_point epoch;
  std::atomic<std::size_t> budget_bytes{32 * 1024};
  std::mutex mu;  ///< guards rings
  std::vector<std::unique_ptr<FlightRing>> rings;
  std::uint32_t next_tid = 1;
};

FlightRegistry& flight_registry() {
  static FlightRegistry r;
  return r;
}

FlightRing& local_ring() {
  thread_local FlightRing* ring = [] {
    FlightRegistry& r = flight_registry();
    auto owned = std::make_unique<FlightRing>();
    const std::size_t budget =
        std::max(sizeof(FlightEvent) * 8,
                 r.budget_bytes.load(std::memory_order_relaxed));
    owned->slots.resize(budget / sizeof(FlightEvent));
    std::lock_guard<std::mutex> lock(r.mu);
    owned->tid = r.next_tid++;
    r.rings.push_back(std::move(owned));
    return r.rings.back().get();
  }();
  return *ring;
}

std::int64_t flight_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - flight_registry().epoch)
      .count();
}

}  // namespace

void flight_event(const char* kind, std::int64_t a, std::int64_t b,
                  std::string_view detail) {
  FlightRing& ring = local_ring();
  std::lock_guard<std::mutex> lock(ring.m);
  FlightEvent& ev = ring.slots[ring.head];
  ev.t_ns = flight_now_ns();
  ev.tid = ring.tid;
  ev.job = util::current_job_tag();
  ev.kind = kind;
  ev.a = a;
  ev.b = b;
  const std::size_t n = std::min(detail.size(), kFlightDetailBytes - 1);
  std::memcpy(ev.detail, detail.data(), n);
  ev.detail[n] = '\0';
  ring.head = (ring.head + 1) % ring.slots.size();
  ++ring.written;
}

void set_flight_budget_bytes(std::size_t bytes) {
  flight_registry().budget_bytes.store(bytes, std::memory_order_relaxed);
}

std::size_t flight_budget_bytes() {
  return flight_registry().budget_bytes.load(std::memory_order_relaxed);
}

std::vector<FlightEvent> flight_snapshot() {
  FlightRegistry& r = flight_registry();
  std::vector<FlightEvent> out;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& ring : r.rings) {
      std::lock_guard<std::mutex> rl(ring->m);
      const std::size_t cap = ring->slots.size();
      const std::size_t surviving =
          static_cast<std::size_t>(std::min<std::uint64_t>(ring->written, cap));
      // Oldest first: when the ring wrapped, the oldest survivor is at
      // head (the next overwrite target); otherwise at 0.
      const std::size_t start = ring->written >= cap ? ring->head : 0;
      for (std::size_t i = 0; i < surviving; ++i) {
        out.push_back(ring->slots[(start + i) % cap]);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.t_ns < y.t_ns;
                   });
  return out;
}

std::uint64_t flight_recorded_total() {
  FlightRegistry& r = flight_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& ring : r.rings) {
    std::lock_guard<std::mutex> rl(ring->m);
    total += ring->written;
  }
  return total;
}

void reset_flight_recorder() {
  FlightRegistry& r = flight_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) {
    std::lock_guard<std::mutex> rl(ring->m);
    ring->head = 0;
    ring->written = 0;
  }
}

#endif  // HS_TRACE_ENABLED

void write_flight_json(std::ostream& os, std::string_view reason) {
  const std::vector<FlightEvent> events = flight_snapshot();
  os << "{\n  \"schema\": \"hs.flight.v1\",\n  \"reason\": \""
     << flight_json_escape(reason) << "\",\n  \"recorded_total\": "
     << flight_recorded_total() << ",\n  \"events\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& ev = events[i];
    char ts[64];
    std::snprintf(ts, sizeof ts, "%.3f", static_cast<double>(ev.t_ns) / 1e3);
    os << "    {\"t_us\": " << ts << ", \"tid\": " << ev.tid << ", \"job\": "
       << ev.job << ", \"kind\": \"" << flight_json_escape(ev.kind)
       << "\", \"a\": " << ev.a << ", \"b\": " << ev.b << ", \"detail\": \""
       << flight_json_escape(ev.detail) << "\"}";
    os << (i + 1 < events.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

bool write_flight_json_file(const std::string& path, std::string_view reason) {
  std::ofstream os(path);
  if (!os) return false;
  write_flight_json(os, reason);
  return static_cast<bool>(os);
}

namespace {

// Signal-dump state: plain statics written once by
// install_flight_signal_dump before any handler can fire.
std::string g_signal_dump_path;  // NOLINT

void flight_signal_handler(int sig) {
  char reason[64];
  std::snprintf(reason, sizeof reason, "fatal signal %d", sig);
  write_flight_json_file(g_signal_dump_path, reason);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_flight_signal_dump(const std::string& path) {
  g_signal_dump_path = path;
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    std::signal(sig, flight_signal_handler);
  }
}

}  // namespace hs::trace
