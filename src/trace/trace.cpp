#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "trace/flight_recorder.hpp"
#include "trace/histogram.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hs::trace {

namespace {

[[maybe_unused]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Integral values print as integers so counters stay exact in JSON.
[[maybe_unused]] std::string json_number(double v) {
  char buf[64];
  if (std::nearbyint(v) == v && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

}  // namespace

#if HS_TRACE_ENABLED

namespace {

bool env_enabled() {
  const char* env = std::getenv("HS_TRACE");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
         std::strcmp(env, "on") == 0;
}

/// One thread's event store. Only the owning thread appends, so the mutex
/// is uncontended on the hot path; snapshot()/reset() take it briefly.
struct ThreadBuf {
  std::mutex m;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  int depth = 0;  ///< touched only by the owning thread
};

struct Recorder {
  Recorder() : enabled(env_enabled()), epoch(std::chrono::steady_clock::now()) {}

  std::atomic<bool> enabled;
  std::chrono::steady_clock::time_point epoch;

  std::mutex mu;  ///< guards bufs and the metric registries
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  std::uint32_t next_tid = 1;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
};

Recorder& recorder() {
  static Recorder r;
  return r;
}

ThreadBuf& local_buf() {
  thread_local ThreadBuf* buf = [] {
    Recorder& r = recorder();
    std::lock_guard<std::mutex> lock(r.mu);
    r.bufs.push_back(std::make_unique<ThreadBuf>());
    // Pre-size the event store so the hot path never pays a reallocation
    // move cascade mid-measurement (~100 bytes/event, so this is ~100 KB
    // per *traced* thread; untraced threads never reach here).
    r.bufs.back()->events.reserve(1024);
    r.bufs.back()->tid = r.next_tid++;
    return r.bufs.back().get();
  }();
  return *buf;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - recorder().epoch)
      .count();
}

}  // namespace

bool enabled() { return recorder().enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  recorder().enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& buf : r.bufs) {
    std::lock_guard<std::mutex> bl(buf->m);
    buf->events.clear();
  }
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  reset_histograms();
  reset_flight_recorder();
  r.epoch = std::chrono::steady_clock::now();
}

std::size_t event_count() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t n = 0;
  for (auto& buf : r.bufs) {
    std::lock_guard<std::mutex> bl(buf->m);
    n += buf->events.size();
  }
  return n;
}

std::vector<TraceEvent> snapshot() {
  Recorder& r = recorder();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto& buf : r.bufs) {
      std::lock_guard<std::mutex> bl(buf->m);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                     : a.depth < b.depth;
                   });
  return out;
}

Counter& counter(std::string_view name) {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) {
    it = r.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, double>> metrics_snapshot() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(r.counters.size() + r.gauges.size());
  for (const auto& [name, c] : r.counters) {
    out.emplace_back(name, static_cast<double>(c->value()));
  }
  for (const auto& [name, g] : r.gauges) out.emplace_back(name, g->value());
  std::sort(out.begin(), out.end());
  return out;
}

// ---- Span -------------------------------------------------------------------

Span::Span(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  ThreadBuf& buf = local_buf();
  buf_ = &buf;
  depth_ = buf.depth++;
  job_ = util::current_job_tag();
  name_.assign(name);
  cat_.assign(cat);
  start_ns_ = now_ns();
  active_ = true;
}

Span::Span(Span&& other) noexcept
    : active_(other.active_),
      depth_(other.depth_),
      arg_count_(other.arg_count_),
      job_(other.job_),
      start_ns_(other.start_ns_),
      buf_(other.buf_),
      name_(std::move(other.name_)),
      cat_(std::move(other.cat_)),
      args_(std::move(other.args_)) {
  other.active_ = false;
}

Span::~Span() { end(); }

void Span::end() {
  if (!active_) return;
  active_ = false;
  const std::int64_t dur = now_ns() - start_ns_;
  ThreadBuf& buf = *static_cast<ThreadBuf*>(buf_);
  buf.depth--;
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.cat = std::move(cat_);
  ev.tid = buf.tid;
  ev.depth = depth_;
  ev.job = job_;
  ev.start_ns = start_ns_;
  ev.dur_ns = dur;
  if (arg_count_ > 0) {
    ev.args.assign(std::make_move_iterator(args_.begin()),
                   std::make_move_iterator(args_.begin() + arg_count_));
  }
  ev.arg_count = arg_count_;
  std::lock_guard<std::mutex> lock(buf.m);
  buf.events.push_back(std::move(ev));
}

void Span::arg(const char* key, double value) {
  if (!active_ || arg_count_ >= kMaxSpanArgs) return;
  TraceArg& a = args_[static_cast<std::size_t>(arg_count_++)];
  a.key = key;
  a.is_num = true;
  a.num = value;
}

void Span::arg(const char* key, std::string_view value) {
  if (!active_ || arg_count_ >= kMaxSpanArgs) return;
  TraceArg& a = args_[static_cast<std::size_t>(arg_count_++)];
  a.key = key;
  a.is_num = false;
  a.str.assign(value);
}

// ---- sinks ------------------------------------------------------------------

void write_chrome_trace(std::ostream& os) {
  const std::vector<TraceEvent> events = snapshot();
  const auto metrics = metrics_snapshot();
  std::int64_t last_ns = 0;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const TraceEvent& ev : events) {
    sep();
    char ts[64], dur[64];
    std::snprintf(ts, sizeof ts, "%.3f", static_cast<double>(ev.start_ns) / 1e3);
    std::snprintf(dur, sizeof dur, "%.3f", static_cast<double>(ev.dur_ns) / 1e3);
    os << "    {\"name\": \"" << json_escape(ev.name) << "\", \"cat\": \""
       << json_escape(ev.cat) << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << ev.tid << ", \"ts\": " << ts << ", \"dur\": " << dur;
    if (ev.arg_count > 0 || ev.job != 0) {
      os << ", \"args\": {";
      for (int i = 0; i < ev.arg_count; ++i) {
        const TraceArg& a = ev.args[static_cast<std::size_t>(i)];
        if (i > 0) os << ", ";
        os << "\"" << json_escape(a.key) << "\": ";
        if (a.is_num) {
          os << json_number(a.num);
        } else {
          os << "\"" << json_escape(a.str) << "\"";
        }
      }
      if (ev.job != 0) {
        if (ev.arg_count > 0) os << ", ";
        os << "\"job\": " << ev.job;
      }
      os << "}";
    }
    os << "}";
    last_ns = std::max(last_ns, ev.start_ns + ev.dur_ns);
  }
  // Counter samples at the end of the timeline so Perfetto shows the final
  // registry state as a track per metric.
  for (const auto& [name, value] : metrics) {
    sep();
    char ts[64];
    std::snprintf(ts, sizeof ts, "%.3f", static_cast<double>(last_ns) / 1e3);
    os << "    {\"name\": \"" << json_escape(name)
       << "\", \"cat\": \"metric\", \"ph\": \"C\", \"pid\": 1, \"tid\": 0, "
          "\"ts\": "
       << ts << ", \"args\": {\"value\": " << json_number(value) << "}}";
  }
  os << "\n  ]\n}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return static_cast<bool>(os);
}

namespace {

struct SpanAggregate {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t max_ns = 0;
};

std::vector<std::pair<std::string, SpanAggregate>> aggregate_spans(
    const std::vector<TraceEvent>& events) {
  std::map<std::string, SpanAggregate> by_name;
  for (const TraceEvent& ev : events) {
    SpanAggregate& agg = by_name[ev.cat + ":" + ev.name];
    agg.count += 1;
    agg.total_ns += ev.dur_ns;
    agg.max_ns = std::max(agg.max_ns, ev.dur_ns);
  }
  std::vector<std::pair<std::string, SpanAggregate>> out(by_name.begin(),
                                                         by_name.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  return out;
}

}  // namespace

void write_metrics_json(std::ostream& os, std::string_view name) {
  const auto aggregates = aggregate_spans(snapshot());
  const auto metrics = metrics_snapshot();
  os << "{\n  \"name\": \"" << json_escape(name) << "\",\n  \"results\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& [span_name, agg] : aggregates) {
    sep();
    os << "    {\"bench\": \"span:" << json_escape(span_name) << "\", "
       << "\"count\": " << agg.count << ", \"total_us\": "
       << json_number(static_cast<double>(agg.total_ns) / 1e3)
       << ", \"mean_us\": "
       << json_number(static_cast<double>(agg.total_ns) / 1e3 /
                      static_cast<double>(std::max<std::uint64_t>(1, agg.count)))
       << ", \"max_us\": "
       << json_number(static_cast<double>(agg.max_ns) / 1e3) << "}";
  }
  if (!metrics.empty()) {
    sep();
    os << "    {\"bench\": \"counters\"";
    for (const auto& [metric_name, value] : metrics) {
      os << ", \"" << json_escape(metric_name) << "\": " << json_number(value);
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

bool write_metrics_json_file(const std::string& path, std::string_view name) {
  std::ofstream os(path);
  if (!os) return false;
  write_metrics_json(os, name);
  return static_cast<bool>(os);
}

void print_summary(std::ostream& os) {
  const auto aggregates = aggregate_spans(snapshot());
  double total_ns = 0;
  for (const auto& [name, agg] : aggregates) {
    // Only top-level-ish categories would double count; share is computed
    // against the sum of *this* table's rows, which is what readers compare.
    total_ns += static_cast<double>(agg.total_ns);
  }
  util::Table table({"Span (cat:name)", "Count", "Total", "Mean", "Max", "Share"});
  for (const auto& [name, agg] : aggregates) {
    const double t = static_cast<double>(agg.total_ns);
    table.add_row(
        {name, std::to_string(agg.count), util::format_duration(t / 1e9),
         util::format_duration(t / 1e9 /
                               static_cast<double>(std::max<std::uint64_t>(
                                   1, agg.count))),
         util::format_duration(static_cast<double>(agg.max_ns) / 1e9),
         util::Table::num(total_ns > 0 ? 100.0 * t / total_ns : 0.0, 1) + "%"});
  }
  table.print(os, "Trace summary (wall time per span kind)");

  const auto metrics = metrics_snapshot();
  if (!metrics.empty()) {
    util::Table counters({"Counter / gauge", "Value"});
    for (const auto& [name, value] : metrics) {
      counters.add_row({name, json_number(value)});
    }
    os << "\n";
    counters.print(os, "Metric registry");
  }
}

#else  // HS_TRACE_ENABLED == 0

Counter& counter(std::string_view) {
  static Counter dummy;
  return dummy;
}

Gauge& gauge(std::string_view) {
  static Gauge dummy;
  return dummy;
}

void write_chrome_trace(std::ostream& os) {
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n  ]\n}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return static_cast<bool>(os);
}

void write_metrics_json(std::ostream& os, std::string_view name) {
  os << "{\n  \"name\": \"" << json_escape(name) << "\",\n  \"results\": [\n  ]\n}\n";
}

bool write_metrics_json_file(const std::string& path, std::string_view name) {
  std::ofstream os(path);
  if (!os) return false;
  write_metrics_json(os, name);
  return static_cast<bool>(os);
}

void print_summary(std::ostream& os) {
  os << "tracing compiled out (HS_TRACE=OFF)\n";
}

#endif  // HS_TRACE_ENABLED

}  // namespace hs::trace
