#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace hs::linalg {

HouseholderQr::HouseholderQr(Matrix a) : qr_(std::move(a)) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  HS_ASSERT_MSG(m >= n, "HouseholderQr requires rows >= cols");
  beta_.assign(n, 0.0);
  rkk_.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Compute the Householder reflector for column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;  // column already zero; R(k,k)=0
    if (qr_(k, k) > 0) norm = -norm;
    for (std::size_t i = k; i < m; ++i) qr_(i, k) /= norm;
    qr_(k, k) += 1.0;
    beta_[k] = qr_(k, k);

    // Apply the reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s = -s / qr_(k, k);
      for (std::size_t i = k; i < m; ++i) qr_(i, j) += s * qr_(i, k);
    }
    // The Householder vector occupies the diagonal slot of qr_, so R's
    // diagonal entry -norm is kept separately.
    rkk_[k] = -norm;
  }
}

std::vector<double> HouseholderQr::solve(std::span<const double> b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  HS_ASSERT(b.size() == m);
  std::vector<double> y(b.begin(), b.end());

  // Apply Q^T to b.
  for (std::size_t k = 0; k < n; ++k) {
    if (beta_[k] == 0.0) continue;
    double s = 0.0;
    for (std::size_t i = k; i < m; ++i) s += qr_(i, k) * y[i];
    s = -s / qr_(k, k);
    for (std::size_t i = k; i < m; ++i) y[i] += s * qr_(i, k);
  }

  // Back substitution with R.
  std::vector<double> x(n, 0.0);
  for (std::size_t kk = n; kk-- > 0;) {
    if (rkk_[kk] == 0.0) {
      x[kk] = 0.0;  // rank-deficient column: minimum-norm-ish choice
      continue;
    }
    double v = y[kk];
    for (std::size_t j = kk + 1; j < n; ++j) v -= qr_(kk, j) * x[j];
    x[kk] = v / rkk_[kk];
  }
  return x;
}

Matrix HouseholderQr::r() const {
  const std::size_t n = qr_.cols();
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out(i, i) = rkk_[i];
    for (std::size_t j = i + 1; j < n; ++j) out(i, j) = qr_(i, j);
  }
  return out;
}

double HouseholderQr::min_diag_ratio() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (double d : rkk_) {
    lo = std::min(lo, std::fabs(d));
    hi = std::max(hi, std::fabs(d));
  }
  return hi == 0.0 ? 0.0 : lo / hi;
}

}  // namespace hs::linalg
