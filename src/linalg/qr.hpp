// Householder QR for least squares.
//
// Used as the numerically robust fallback for unmixing when the endmember
// Gram matrix is ill-conditioned (near-duplicate endmembers), and as the
// cross-check oracle in tests for the Cholesky path.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hs::linalg {

/// Thin QR of an m x n matrix with m >= n, held in factored (Householder
/// vector) form.
class HouseholderQr {
 public:
  explicit HouseholderQr(Matrix a);

  /// Minimum-norm least squares solution of A x ~= b. b.size() == m.
  std::vector<double> solve(std::span<const double> b) const;

  /// Upper-triangular factor R (n x n).
  Matrix r() const;

  /// Estimated rank deficiency indicator: smallest |R(i,i)| relative to the
  /// largest. Near-zero means A was (numerically) rank deficient.
  double min_diag_ratio() const;

 private:
  Matrix qr_;                 // Householder vectors below diag, R strictly above
  std::vector<double> beta_;  // Householder coefficients
  std::vector<double> rkk_;   // diagonal of R (the vector part occupies the
                              // diagonal slot of qr_, so R's diagonal lives here)
};

}  // namespace hs::linalg
