// Dense row-major double matrix, sized for the unmixing problems in this
// library: systems are (bands x endmembers), i.e. a few hundred by a few
// dozen at most, so a straightforward cache-friendly implementation without
// expression templates is the right level of machinery.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace hs::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Row-major construction from a nested initializer list, used heavily in
  /// tests: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;
  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  Matrix transposed() const;

  /// this * other; dimensions must agree.
  Matrix operator*(const Matrix& other) const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix& operator*=(double s);

  /// this * v for a column vector v (v.size() == cols()).
  std::vector<double> multiply(std::span<const double> v) const;

  /// transpose(this) * v, without materializing the transpose.
  std::vector<double> multiply_transposed(std::span<const double> v) const;

  /// Gram matrix transpose(this) * this, exploiting symmetry.
  Matrix gram() const;

  /// Max-abs elementwise difference; matrices must have equal shape.
  double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
double norm2(std::span<const double> v);

/// Dot product; spans must have equal length.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace hs::linalg
