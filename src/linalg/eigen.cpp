#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace hs::linalg {

EigenDecomposition eigen_symmetric(const Matrix& symmetric, int max_sweeps,
                                   double tolerance) {
  HS_ASSERT(symmetric.rows() == symmetric.cols());
  const std::size_t n = symmetric.rows();

  Matrix a = symmetric;
  Matrix v = Matrix::identity(n);

  auto off_norm = [&]() {
    double s = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) s += a(i, j) * a(i, j);
    }
    return std::sqrt(2 * s);
  };
  double total_norm = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) total_norm += a(i, j) * a(i, j);
  }
  total_norm = std::sqrt(total_norm);
  const double threshold = tolerance * std::max(total_norm, 1e-300);

  EigenDecomposition result;
  for (result.sweeps = 0; result.sweeps < max_sweeps; ++result.sweeps) {
    if (off_norm() <= threshold) {
      result.converged = true;
      break;
    }
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Rotation angle that annihilates a(p, q).
        const double theta = (aqq - app) / (2 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!result.converged && off_norm() <= threshold) result.converged = true;

  // Sort by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a(x, x) > a(y, y); });

  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    result.values[k] = a(order[k], order[k]);
    for (std::size_t i = 0; i < n; ++i) {
      result.vectors(i, k) = v(i, order[k]);
    }
  }
  return result;
}

}  // namespace hs::linalg
