// Cholesky factorization and SPD solves.
//
// The unconstrained and sum-to-one-constrained linear unmixing paths solve
// normal equations (E^T E) a = E^T x once per pixel with a factorization
// computed once per scene, so a dedicated SPD path matters.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hs::linalg {

/// Lower-triangular Cholesky factor of an SPD matrix. Factorization fails
/// (returns nullopt) on a non-positive pivot, i.e. the input was not
/// numerically positive definite.
class Cholesky {
 public:
  static std::optional<Cholesky> factor(const Matrix& spd);

  /// Solves A x = b where A = L L^T. b.size() must equal the dimension.
  std::vector<double> solve(std::span<const double> b) const;

  /// Solves for several right-hand sides given as columns of B.
  Matrix solve(const Matrix& b) const;

  const Matrix& lower() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

}  // namespace hs::linalg
