#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hs::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    HS_ASSERT_MSG(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  HS_DEBUG_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  HS_DEBUG_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  HS_DEBUG_ASSERT(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  HS_DEBUG_ASSERT(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  HS_ASSERT(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // ikj loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  HS_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  HS_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  HS_ASSERT(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* rp = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += rp[c] * v[c];
    out[r] = acc;
  }
  return out;
}

std::vector<double> Matrix::multiply_transposed(std::span<const double> v) const {
  HS_ASSERT(v.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* rp = data_.data() + r * cols_;
    const double s = v[r];
    if (s == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += rp[c] * s;
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* rp = data_.data() + r * cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = rp[i];
      if (a == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) g(i, j) += a * rp[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  HS_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

double norm2(std::span<const double> v) { return std::sqrt(dot(v, v)); }

double dot(std::span<const double> a, std::span<const double> b) {
  HS_ASSERT(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace hs::linalg
