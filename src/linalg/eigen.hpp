// Symmetric eigendecomposition (cyclic Jacobi).
//
// Sized for band-covariance matrices (a few hundred square): Jacobi is
// simple, numerically robust, and more than fast enough at that scale.
// Used by the PCA dimensionality-reduction module.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace hs::linalg {

struct EigenDecomposition {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column k of `vectors` is the unit eigenvector of values[k].
  Matrix vectors;
  int sweeps = 0;      ///< Jacobi sweeps used
  bool converged = false;
};

/// Decomposes a symmetric matrix. `max_sweeps` caps the cyclic sweeps;
/// convergence is off-diagonal Frobenius norm below `tolerance` relative
/// to the matrix norm.
EigenDecomposition eigen_symmetric(const Matrix& symmetric,
                                   int max_sweeps = 64,
                                   double tolerance = 1e-12);

}  // namespace hs::linalg
