#include "linalg/nnls.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/qr.hpp"
#include "util/assert.hpp"

namespace hs::linalg {

namespace {

/// Solves the unconstrained LS restricted to the columns in `passive`
/// (indices into a's columns). Returns the solution scattered into a
/// full-size vector with zeros elsewhere.
std::vector<double> solve_subproblem(const Matrix& a, std::span<const double> b,
                                     const std::vector<std::size_t>& passive) {
  const std::size_t m = a.rows();
  Matrix sub(m, passive.size());
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < passive.size(); ++c) {
      sub(r, c) = a(r, passive[c]);
    }
  }
  HouseholderQr qr(std::move(sub));
  const auto z = qr.solve(b);
  std::vector<double> full(a.cols(), 0.0);
  for (std::size_t c = 0; c < passive.size(); ++c) full[passive[c]] = z[c];
  return full;
}

}  // namespace

NnlsResult nnls(const Matrix& a, std::span<const double> b, int max_iterations) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HS_ASSERT(b.size() == m);
  if (max_iterations <= 0) max_iterations = static_cast<int>(3 * n) + 10;

  std::vector<bool> in_passive(n, false);
  std::vector<double> x(n, 0.0);
  NnlsResult result;
  result.iterations = 0;
  result.converged = false;

  constexpr double kTol = 1e-10;

  for (; result.iterations < max_iterations; ++result.iterations) {
    // Gradient of the active (zero) set: w = A^T (b - A x).
    std::vector<double> residual(m);
    const auto ax = a.multiply(x);
    for (std::size_t i = 0; i < m; ++i) residual[i] = b[i] - ax[i];
    const auto w = a.multiply_transposed(residual);

    // Pick the most violated active constraint.
    double best = kTol;
    std::ptrdiff_t pick = -1;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_passive[j] && w[j] > best) {
        best = w[j];
        pick = static_cast<std::ptrdiff_t>(j);
      }
    }
    if (pick < 0) {
      result.converged = true;
      break;  // KKT satisfied
    }
    in_passive[static_cast<std::size_t>(pick)] = true;

    // Inner loop: solve on the passive set; walk back along the segment to
    // keep feasibility, dropping variables that hit zero.
    for (;;) {
      std::vector<std::size_t> passive;
      for (std::size_t j = 0; j < n; ++j) {
        if (in_passive[j]) passive.push_back(j);
      }
      auto z = solve_subproblem(a, b, passive);

      bool all_positive = true;
      for (std::size_t j : passive) {
        if (z[j] <= kTol) {
          all_positive = false;
          break;
        }
      }
      if (all_positive) {
        x = std::move(z);
        break;
      }

      double alpha = std::numeric_limits<double>::infinity();
      for (std::size_t j : passive) {
        if (z[j] <= kTol) {
          const double denom = x[j] - z[j];
          if (denom > 0) alpha = std::min(alpha, x[j] / denom);
        }
      }
      if (!std::isfinite(alpha)) alpha = 0.0;
      for (std::size_t j = 0; j < n; ++j) x[j] += alpha * (z[j] - x[j]);
      for (std::size_t j : passive) {
        if (x[j] <= kTol) {
          x[j] = 0.0;
          in_passive[j] = false;
        }
      }
    }
  }

  const auto ax = a.multiply(x);
  double rss = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double d = b[i] - ax[i];
    rss += d * d;
  }
  result.residual_norm = std::sqrt(rss);
  result.x = std::move(x);
  return result;
}

}  // namespace hs::linalg
