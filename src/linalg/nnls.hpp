// Non-negative least squares (Lawson–Hanson active-set algorithm).
//
// The paper's AMC uses the standard (unconstrained) linear mixture model;
// NNLS is provided as the physically-constrained extension (abundances are
// fractions and cannot be negative), used by the extension example and the
// unmixing ablation.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hs::linalg {

struct NnlsResult {
  std::vector<double> x;   ///< solution, all entries >= 0
  double residual_norm;    ///< ||A x - b||_2
  int iterations;          ///< outer-loop iterations used
  bool converged;          ///< false if the iteration cap was hit
};

/// Solves min ||A x - b|| subject to x >= 0.
/// `max_iterations` caps the outer loop (3*n is the classical default).
NnlsResult nnls(const Matrix& a, std::span<const double> b,
                int max_iterations = 0);

}  // namespace hs::linalg
