#include "linalg/cholesky.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace hs::linalg {

std::optional<Cholesky> Cholesky::factor(const Matrix& spd) {
  HS_ASSERT(spd.rows() == spd.cols());
  const std::size_t n = spd.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = spd(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0)) return std::nullopt;  // also catches NaN
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = spd(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / ljj;
    }
  }
  return Cholesky(std::move(l));
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  HS_ASSERT(b.size() == n);
  std::vector<double> y(n);
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l_(i, k) * y[k];
    y[i] = v / l_(i, i);
  }
  // Back substitution L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l_(k, ii) * x[k];
    x[ii] = v / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
  HS_ASSERT(b.rows() == l_.rows());
  Matrix out(b.rows(), b.cols());
  std::vector<double> rhs(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) rhs[r] = b(r, c);
    const auto x = solve(rhs);
    for (std::size_t r = 0; r < b.rows(); ++r) out(r, c) = x[r];
  }
  return out;
}

}  // namespace hs::linalg
